# Convenience entry points; see README.md and docs/TRACING.md.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: tier1 test lint trace-test trace-demo trace-gate bench bench-gate chaos shard-gate iso-gate serve-gate obs-gate

tier1: test bench-gate trace-gate iso-gate serve-gate obs-gate lint  ## full tier-1 flow: tests + gates + lint

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

lint:            ## repro-lint static analysis (determinism + runtime protocol,
                 ## docs/ANALYSIS.md); exits nonzero on any un-baselined violation
	$(PYTHON) -m repro.analysis

bench-gate:      ## hot-path benchmark gate: writes the next BENCH_NNNN.json at the
                 ## repo root and exits nonzero on >10% events/sec regression or any
                 ## simulated-time checksum drift vs the prior record (EXPERIMENTS.md)
	$(PYTHON) -c "from repro.harness.benchgate import main; raise SystemExit(main())"

shard-gate:      ## sharded-vs-serial equivalence gate: every gated benchmark must
                 ## produce bit-identical simulated times on the sharded PDES engine
                 ## (shards 1/2/4 + the subprocess transport) and the serial engine
                 ## (docs/SCALING.md)
	$(PYTHON) -c "from repro.harness.benchgate import main; raise SystemExit(main(['--shard-gate']))"

iso-gate:        ## concurrent-Environment isolation gate: N independent
                 ## Environments stepped in adversarial interleaving must
                 ## checksum bit-identically to solo runs (docs/ANALYSIS.md,
                 ## G/S rule families); checked-engine mode catches protocol
                 ## violations the interleaving might expose
	REPRO_SANITIZE=1 $(PYTHON) -m repro.harness.isogate

serve-gate:      ## simulation-as-a-service gate: a synthetic many-client load
                 ## (mixed iso-gate, sharded-PDES and perfmodel jobs across
                 ## priorities and pacing) over one JobService process; every
                 ## served job must checksum bit-identically to its solo run
                 ## (ARCHITECTURE.md, "Simulation as a service")
	REPRO_SANITIZE=1 $(PYTHON) -m repro.harness.servebench --json-out serve_report.json

obs-gate:        ## host-side observability gate: profiled runs of the gated
                 ## benchmarks must checksum bit-identically to unprofiled runs
                 ## and the committed BENCH record (cycle neutrality), profiling
                 ## overhead must stay within budget, and hotspot attribution
                 ## must stay concentrated and stable vs the committed baseline
                 ## (docs/OBSERVABILITY.md)
	$(PYTHON) -m repro.harness.obsgate --json-out benchmarks/output/obsgate_report.json

chaos:           ## chaos suite: pingpong/m2m/jacobi/lattice under seeded fault
                 ## profiles x delivery-QoS modes with the checked DES engine;
                 ## reliable cells assert bit-correct payloads, best-effort cells
                 ## the degraded-but-correct gate, all cells eventual quiescence
	REPRO_SANITIZE=1 $(PYTHON) -m repro.harness.chaosbench \
		--profiles drop5 chaos partition --seeds 0 1 2 \
		--workloads pingpong m2m jacobi lattice \
		--qos reliable best_effort fresh \
		--json-out chaos_matrix.json

trace-gate:      ## trace-diff regression gate: re-runs the figure trace configs
                 ## and diffs counters / utilization / critical-path length vs the
                 ## committed baselines in benchmarks/baselines/ (docs/TRACING.md)
	$(PYTHON) -m repro.harness.tracegate

trace-test:      ## just the tracing-subsystem tests (pytest -m trace)
	$(PYTHON) -m pytest -q -m trace tests/trace

trace-demo:      ## traced mini-NAMD run + Chrome/Perfetto + manifest export
	$(PYTHON) -m repro.trace.demo

bench:           ## regenerate every paper table/figure into benchmarks/output/
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
