# Convenience entry points; see README.md and docs/TRACING.md.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test trace-test trace-demo bench

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

trace-test:      ## just the tracing-subsystem tests (pytest -m trace)
	$(PYTHON) -m pytest -q -m trace tests/trace

trace-demo:      ## traced mini-NAMD run + Chrome/Perfetto + manifest export
	$(PYTHON) -m repro.trace.demo

bench:           ## regenerate every paper table/figure into benchmarks/output/
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
