"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes or varies one of the paper's optimizations and
measures the effect on the DES — the counterpart of the paper's own
§III discussion:

* idle-poll flavour (L2-atomic stall vs naive spin, §III-D);
* number of communication threads driving a short-message burst
  (message-rate scaling, §III-C/E);
* eager-vs-rendezvous threshold (machine-layer protocol choice);
* deterministic vs adaptive torus routing under contention.
"""

from repro.bgq import BGQMachine, BGQParams, Core
from repro.bgq.params import CYCLES_PER_US
from repro.converse import RunConfig
from repro.harness import format_table, pingpong_oneway_us
from repro.pami import CommThread, ManyToManyRegistry, PamiClient
from repro.sim import Environment


def _burst_time_us(n_comm_threads: int, nmsgs: int = 96) -> float:
    env = Environment()
    m = BGQMachine(env, 2)
    clients = [PamiClient(env, m.node(i)) for i in range(2)]
    ctxs, cts, regs = [], [], []
    for node_id, client in enumerate(clients):
        node_cts = []
        node_ctxs = []
        for k in range(n_comm_threads):
            ctx = client.create_context()
            hw = m.node(node_id).thread(m.node(node_id).n_threads - 1 - k)
            node_cts.append(CommThread(env, hw, [ctx]))
            node_ctxs.append(ctx)
        ctxs.append(node_ctxs)
        cts.append(node_cts)
        regs.append(ManyToManyRegistry(env, node_ctxs, node_cts))
    sends = [(ctxs[1][i % n_comm_threads].endpoint, 32, i) for i in range(nmsgs)]
    h0 = regs[0].register(1, sends, expected_recvs=0)
    regs[1].register(1, [], expected_recvs=nmsgs)
    h1 = regs[1].handles[1]

    def starter():
        yield from regs[0].start(m.node(0).thread(0), h0)

    env.process(starter())
    env.run(until=h1.recv_done)
    for node_cts in cts:
        for ct in node_cts:
            ct.stop()
    return env.now / CYCLES_PER_US


def test_ablation_commthread_message_rate(benchmark, report):
    """Message-rate acceleration: burst time vs comm-thread count."""
    data = benchmark.pedantic(
        lambda: {n: _burst_time_us(n) for n in (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )
    rows = [[n, round(t, 1), f"{data[1] / t:.2f}x"] for n, t in data.items()]
    report(
        format_table(
            ["comm threads", "96-msg burst (us)", "speedup vs 1"],
            rows,
            title="Ablation: comm-thread count vs m2m burst time (DES)",
        )
    )
    assert data[4] < data[1] / 1.8  # parallel injection FIFOs pay off
    assert data[8] <= data[4] * 1.1  # diminishing returns, no regression


def test_ablation_idle_poll(benchmark, report):
    """§III-D: the L2-stall idle poll returns throughput to busy
    siblings on the core; the naive spin burns it."""
    params = BGQParams()

    def run(weight):
        env = Environment()
        core = Core(env, params=params)
        done = {}

        def busy():
            yield from core.compute(500_000)
            done["t"] = env.now

        for _ in range(3):
            core.register(weight)
        env.process(busy())
        env.run()
        return done["t"] / CYCLES_PER_US

    data = benchmark.pedantic(
        lambda: {
            "l2-stall": run(params.idle_poll_l2_weight),
            "naive-spin": run(params.idle_poll_naive_weight),
        },
        rounds=1, iterations=1,
    )
    report(
        "Ablation: idle-poll flavour (1 busy + 3 idle threads/core)\n"
        f"  L2-stall poll:  {data['l2-stall']:8.1f} us\n"
        f"  naive spin:     {data['naive-spin']:8.1f} us"
        f"  ({data['naive-spin'] / data['l2-stall']:.2f}x slower for the busy thread)"
    )
    assert data["naive-spin"] > 1.4 * data["l2-stall"]


def test_ablation_rendezvous_threshold(benchmark, report):
    """Eager vs rendezvous: one-way latency around the switch point."""

    def run():
        out = {}
        for threshold in (1024, 65536):
            params = BGQParams(rendezvous_threshold=threshold)
            from repro.converse import ConverseRuntime
            from repro.converse.messages import ConverseMessage
            from repro.sim import Environment as Env

            cfg = RunConfig(nnodes=2, workers_per_process=1)
            for size in (2048, 32768):
                env = Env()
                rt = ConverseRuntime(env, cfg, params=params)
                done = env.event()
                t = {}

                def pong(pe, msg):
                    t["oneway"] = (env.now - msg.payload) / CYCLES_PER_US
                    done.succeed()

                hid = rt.register_handler(pong)

                def kick(pe, msg):
                    yield from pe.send(1, hid, size, env.now)

                kid = rt.register_handler(kick)
                rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
                rt.run_until(done)
                out[(threshold, size)] = t["oneway"]
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [thr, size, round(v, 2),
         "eager" if size <= thr else "rendezvous"]
        for (thr, size), v in sorted(data.items())
    ]
    report(
        format_table(
            ["threshold B", "msg B", "one-way us", "protocol"],
            rows,
            title="Ablation: rendezvous threshold (DES one-way latency)",
        )
    )
    # A 2 KB message is cheaper eager than through the rendezvous
    # handshake; a 32 KB transfer survives either protocol.
    assert data[(65536, 2048)] <= data[(1024, 2048)]
    for v in data.values():
        assert v > 0


def test_ablation_adaptive_routing(benchmark, report):
    """Deterministic vs adaptive routing under cross-traffic."""
    from repro.sim import Environment as Env

    def run(routing):
        env = Env()
        m = BGQMachine(env, 16, shape=(4, 4, 1, 1, 1), routing=routing)
        descs = []
        for row in range(4):
            src = m.torus.rank((row, 0, 0, 0, 0))
            dst = m.torus.rank(((row + 2) % 4, 3, 0, 0, 0))
            rf = m.node(dst).mu.allocate_reception_fifo()
            inj = m.node(src).mu.allocate_injection_fifo()
            for _ in range(4):
                d = m.node(src).mu.make_descriptor(
                    dst=dst, nbytes=64 * 1024, rec_fifo=rf.fifo_id
                )
                inj.post(d)
                descs.append(d)
        env.run(until=env.all_of([d.delivered for d in descs]))
        return env.now / CYCLES_PER_US

    data = benchmark.pedantic(
        lambda: {r: run(r) for r in ("deterministic", "adaptive")},
        rounds=1, iterations=1,
    )
    report(
        "Ablation: torus routing under contending flows\n"
        f"  deterministic: {data['deterministic']:8.1f} us\n"
        f"  adaptive:      {data['adaptive']:8.1f} us"
        f"  ({data['deterministic'] / data['adaptive']:.2f}x)"
    )
    assert data["adaptive"] < data["deterministic"]
