"""Figure 11: ApoA1 (PME every 4 steps) on BG/P vs BG/Q.

Paper: best BG/Q timestep 683 us at 4096 nodes (and 782 us with PME
every step); the best configuration shifts from all-64-threads to
32w+8c and then fewer workers as the node count grows; BG/Q beats BG/P
at every node count.
"""

from repro.harness import apoa1_pme_every_step, fig11_bgp_vs_bgq, format_table

NODES = (64, 128, 256, 512, 1024, 2048, 4096)


def test_fig11_bgp_vs_bgq(benchmark, report):
    data = benchmark.pedantic(lambda: fig11_bgp_vs_bgq(NODES), rounds=1, iterations=1)
    rows = [
        [n, round(data["bgp"][n]), round(data["bgq"][n]), data["bgq_config"][n]]
        for n in NODES
    ]
    t_pme1 = apoa1_pme_every_step(4096)
    report(
        format_table(
            ["nodes", "BG/P us", "BG/Q us", "BG/Q best config"],
            rows,
            title="Fig. 11: ApoA1 scaling, BG/P vs BG/Q (model)",
        )
        + f"\nBG/Q @4096, PME every step: {t_pme1:.0f} us (paper: 782)"
        + "\npaper anchors: BG/Q 1090 us @1024, 683 us @4096"
    )
    # BG/Q wins everywhere, by a lot.
    for n in NODES:
        assert data["bgq"][n] < data["bgp"][n] / 3
    # Both curves scale monotonically.
    bgq = [data["bgq"][n] for n in NODES]
    assert bgq == sorted(bgq, reverse=True)
    # The paper's headline numbers, within 25%.
    assert abs(data["bgq"][4096] - 683) / 683 < 0.25
    assert abs(data["bgq"][1024] - 1090) / 1090 < 0.25
    # PME every step costs more than PME every 4 steps but stays <2x.
    assert data["bgq"][4096] < t_pme1 < 2 * data["bgq"][4096]
