"""§IV-B1 single-node claims: QPX serial speedup and SMT scaling.

Paper: the QPX + load-to-use-distance tuning improved serial NAMD by
about 15.8% on ApoA1, and using all four hardware threads of a core
gives a 2.3x speedup over one thread.
"""

import pytest

from repro.harness import qpx_serial_speedup, smt_thread_speedup_des


def test_qpx_serial_speedup(benchmark, report):
    s = benchmark.pedantic(qpx_serial_speedup, rounds=1, iterations=1)
    report(f"QPX/L1P serial kernel speedup: {(s - 1) * 100:.1f}% (paper: 15.8%)")
    assert s == pytest.approx(1.158, rel=1e-6)


def test_smt_2_3x_des(benchmark, report):
    s = benchmark.pedantic(smt_thread_speedup_des, rounds=1, iterations=1)
    report(f"4 threads vs 1 on an A2 core (DES): {s:.2f}x (paper: 2.3x)")
    assert s == pytest.approx(2.3, rel=0.03)
