"""Figure 12: 20M-atom STMV scaling with PME every 4 steps.

Paper: the CmiDirectManytomany PME lets the 20M-atom system scale to
16,384 BG/Q nodes at 5.8 ms/step.
"""

from repro.harness import fig12_stmv20m, format_table

NODES = (1024, 2048, 4096, 8192, 16384)


def test_fig12_stmv20m(benchmark, report):
    data = benchmark.pedantic(lambda: fig12_stmv20m(NODES), rounds=1, iterations=1)
    rows = [[n, round(data[n], 2)] for n in NODES]
    report(
        format_table(
            ["nodes", "ms/step"], rows,
            title="Fig. 12: STMV 20M, PME every 4 steps (model)",
        )
        + "\npaper: 5.8 ms/step at 16,384 nodes"
    )
    times = [data[n] for n in NODES]
    # Scales all the way to 16,384 nodes (no flattening reversal).
    assert times == sorted(times, reverse=True)
    # Keeps improving substantially from 8192 to 16384 nodes.
    assert data[16384] < 0.75 * data[8192]
    # Millisecond regime at 16,384 nodes (paper: 5.8 ms; model is within
    # a small factor and documented in EXPERIMENTS.md).
    assert 1.0 < data[16384] < 12.0
