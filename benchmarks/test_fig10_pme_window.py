"""Figure 10: steps completed in a fixed window, standard vs m2m PME.

Paper: on 1024 nodes, nine ApoA1 timesteps complete in a 15 ms window
with many-to-many PME vs seven with standard point-to-point PME.  The
DES regenerates the same experiment at mini scale: same window, more
steps with m2m.  Trace artifacts are archived as
``output/fig10_{std,m2m}.{trace,manifest}.json``.
"""

import pathlib

from repro.harness import export_trace_artifacts, fig10_pme_window

_OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def test_fig10_pme_window(benchmark, report):
    data = benchmark.pedantic(
        lambda: fig10_pme_window(),
        rounds=1,
        iterations=1,
    )
    std, m2m = data["std"], data["m2m"]
    export_trace_artifacts(std, _OUTPUT_DIR, "fig10_std")
    export_trace_artifacts(m2m, _OUTPUT_DIR, "fig10_m2m")
    report(
        "Fig. 10: steps in a fixed window (DES mini-NAMD, PME every step)\n"
        f"  window: {data['window_us']:.0f} us\n"
        f"  standard PME: {data['steps_in_window_std']} steps"
        f" ({std.us_per_step:.0f} us/step)\n"
        f"  m2m PME:      {data['steps_in_window_m2m']} steps"
        f" ({m2m.us_per_step:.0f} us/step)\n"
        "  paper: 7 vs 9 steps in 15 ms on 1024 nodes\n"
        "  trace artifacts: output/fig10_std.trace.json,"
        " output/fig10_m2m.trace.json"
    )
    assert data["steps_in_window_m2m"] >= data["steps_in_window_std"]
    assert m2m.us_per_step < std.us_per_step
    # m2m coalesces the FFT burst: fewer machine-layer sends per step.
    assert m2m.counters["converse.msgs_sent"] < std.counters["converse.msgs_sent"]
