"""Figure 8: ApoA1 with and without L2 atomics.

Paper: "at 512 nodes, L2 atomics speed up one process per node by 67%";
splitting into more processes reduces the contention and therefore the
gain.
"""

from repro.harness import fig8_l2_atomics, format_table


def test_fig8_l2_atomics(benchmark, report):
    data = benchmark.pedantic(lambda: fig8_l2_atomics(512), rounds=1, iterations=1)
    rows = [
        [k, round(v["l2"], 1), round(v["mutex"], 1), f"{v['speedup']:.2f}x"]
        for k, v in data.items()
    ]
    report(
        format_table(
            ["config", "with L2 atomics (us)", "mutex/arena (us)", "speedup"],
            rows,
            title="Fig. 8: ApoA1 @512 nodes, L2-atomics ablation (model)",
        )
        + "\npaper: 67% speedup at 1 process/node"
    )
    one = data["1ppn"]["speedup"]
    two = data["2ppn"]["speedup"]
    # The paper's 1.67x, within a generous band.
    assert 1.3 < one < 2.4
    # More processes -> fewer contenders per lock -> smaller gain.
    assert two < one
    assert two > 1.0
