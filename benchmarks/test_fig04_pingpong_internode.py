"""Figure 4: Converse ping-pong one-way latency to a neighbouring node.

Paper: non-SMP ~2.9 us for <32 B; SMP ~3.3 us; SMP with communication
threads ~3.7 us; all modes converge for messages >16 KB where the
network dominates.
"""

from repro.harness import fig4_internode, format_table

SIZES = (16, 32, 512, 4096, 16384, 65536)
PAPER_SMALL = {"non-SMP": 2.9, "SMP": 3.3, "SMP+commthread": 3.7}


def test_fig4_pingpong_internode(benchmark, report):
    data = benchmark.pedantic(
        lambda: fig4_internode(sizes=SIZES, trips=6), rounds=1, iterations=1
    )
    rows = []
    for size in SIZES:
        rows.append([size] + [round(data[m][size], 2) for m in data])
    report(
        format_table(
            ["bytes"] + list(data), rows,
            title="Fig. 4: one-way inter-node latency (us), DES",
        )
        + f"\npaper small-message anchors: {PAPER_SMALL}"
    )
    # Shape: mode ordering for small messages...
    small = {m: data[m][16] for m in data}
    assert small["non-SMP"] < small["SMP"] < small["SMP+commthread"]
    # ...absolute small-message latencies in the paper's regime...
    for mode, target in PAPER_SMALL.items():
        assert 0.5 * target < small[mode] < 2.0 * target
    # ...and convergence at large sizes (network-bound).
    big = [data[m][65536] for m in data]
    assert max(big) / min(big) < 1.10
