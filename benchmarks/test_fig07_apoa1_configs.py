"""Figure 7: ApoA1 step time under three thread configurations.

Paper: with 64 worker threads per node the application wins while it is
compute bound (small node counts); once communication bound, the
configurations with dedicated communication threads take over.
"""

from repro.harness import fig7_configurations, format_table

NODES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def test_fig7_configurations(benchmark, report):
    data = benchmark.pedantic(
        lambda: fig7_configurations(NODES), rounds=1, iterations=1
    )
    labels = list(data)
    rows = [[n] + [round(data[l][n], 1) for l in labels] for n in NODES]
    report(
        format_table(
            ["nodes"] + labels, rows,
            title="Fig. 7: ApoA1 us/step, three configurations (model)",
        )
        + "\npaper: 64 threads best when compute bound; comm threads best at scale"
    )
    full = "1p x 64w+0c"
    offload = "1p x 32w+8c"
    # Compute-bound regime: all-worker config wins.
    assert data[full][16] < data[offload][16]
    # Communication-bound regime: comm-thread config wins.
    assert data[offload][4096] < data[full][4096]
    # There is a crossover strictly inside the sweep.
    crossover = [n for n in NODES if data[offload][n] < data[full][n]]
    assert crossover and crossover[0] not in (NODES[0], NODES[-1])
