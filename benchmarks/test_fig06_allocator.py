"""Figure 6: malloc/free on 64 threads — GNU arenas vs lockless pools.

Paper: each of the 64 threads allocates 100 buffers then frees them;
the lockless pool allocator has significantly lower overheads because
it avoids mutex contention on free (§III-B).
"""

from repro.harness import fig6_allocator, format_table


def test_fig6_allocator(benchmark, report):
    results = benchmark.pedantic(fig6_allocator, rounds=1, iterations=1)
    rows = [
        [
            r.kind,
            r.n_threads,
            r.buffers_per_thread,
            round(r.total_us, 1),
            round(r.us_per_op, 3),
            r.contended_acquires,
            round(r.contention_wait_us, 1),
        ]
        for r in results.values()
    ]
    report(
        format_table(
            ["allocator", "threads", "bufs/thread", "total us",
             "us/op/thread", "contended locks", "lock wait us"],
            rows,
            title="Fig. 6: 64-thread malloc/free (DES)",
        )
    )
    gnu, pool = results["gnu"], results["pool"]
    # The pool allocator wins big and eliminates arena-lock contention.
    assert gnu.total_us / pool.total_us > 3.0
    assert pool.contended_acquires == 0
    assert gnu.contended_acquires > 1000
