"""Figure 9: ApoA1 time profile with and without communication threads.

Paper: with communication threads the CPU utilization profile shows
more timestep peaks in the same window — messaging overhead moves off
the worker threads and overlaps with compute.  This regenerates the
profile from a DES mini-NAMD run and archives the trace artifacts as
``output/fig09_{without,with}_ct.{trace,manifest}.json`` (the
comm-thread runs carry dedicated ``commthread-*`` tracks, so the
Perfetto view shows exactly the offload the paper describes).
"""

import pathlib

import numpy as np

from repro.harness import export_trace_artifacts, fig9_commthread_profile

_OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def test_fig9_commthread_profile(benchmark, report):
    data = benchmark.pedantic(
        lambda: fig9_commthread_profile(n_atoms=1372, nnodes=2, n_steps=3),
        rounds=1,
        iterations=1,
    )
    wo, wi = data["without"], data["with"]
    export_trace_artifacts(wo, _OUTPUT_DIR, "fig09_without_ct")
    export_trace_artifacts(wi, _OUTPUT_DIR, "fig09_with_ct")
    lines = ["Fig. 9: mini-NAMD utilization, DES (2 nodes)"]
    for r in (wo, wi):
        lines.append(
            f"  {r.label:>18}: {r.us_per_step:8.1f} us/step,"
            f" busy={r.busy_fraction * 100:.0f}%"
            f" useful={r.useful_fraction * 100:.0f}%"
            f" (msgs={r.counters.get('converse.msgs_sent', 0):.0f},"
            f" wakeups={r.counters.get('commthread.wakeups', 0):.0f})"
        )
    lines.append(
        "  trace artifacts: output/fig09_without_ct.trace.json,"
        " output/fig09_with_ct.trace.json"
    )
    report("\n".join(lines))
    # Communication threads speed up the step (more peaks per window).
    assert wi.us_per_step < wo.us_per_step
    # Both profiles show alternating compute and idle phases.
    for r in (wo, wi):
        idle = r.profile.get("idle")
        assert idle is not None and idle.max() > 0.05
        assert 0.05 < r.busy_fraction <= 1.0
        assert r.useful_fraction <= r.busy_fraction
    # Only the comm-thread run exercises the comm-thread counters.
    assert wi.counters.get("commthread.wakeups", 0) > 0
    assert "commthread.wakeups" not in wo.counters
