"""Table II: 100M-atom STMV step times, PME every 4 steps.

Paper: 98.8 / 55.4 / 30.3 / 17.9 ms/step at 2048 / 4096 / 8192 / 16384
nodes (speedups normalized to parallel efficiency 1 at 2048 nodes).
"""

from repro.harness import PAPER_TABLE2, table2_stmv100m
from repro.namd.system import STMV100M
from repro.perfmodel import NamdRunConfig, namd_step_time


def test_table2_stmv100m(benchmark, report):
    report(benchmark.pedantic(table2_stmv100m, rounds=1, iterations=1))
    model = {}
    for nodes, (_c, _p, threads, paper_ms, _s) in PAPER_TABLE2.items():
        t = namd_step_time(
            STMV100M,
            nodes,
            NamdRunConfig(workers=threads - 8, comm_threads=8, nonbonded_every=2),
        )
        model[nodes] = t * 1e3
        # Every row within 2x of the paper.
        assert 0.5 < model[nodes] / paper_ms < 2.0
    # Monotone scaling with the paper's efficiency character:
    # 8x more nodes buys between 4x and 8x.
    ratio = model[2048] / model[16384]
    assert 4.0 < ratio < 8.0
