"""Tracer overhead on the ping-pong micro-benchmark.

Two guarantees of the tracing subsystem (docs/TRACING.md):

1. **Simulated-time neutrality** — the tracer only reads the clock, so
   enabling it must not change any simulated result.  Checked exactly.
2. **Low host-time overhead (<5% target)** — hot components keep plain
   integer statistics that are snapshotted once at ``Tracer.finish()``,
   so the live cost of tracing is only span recording on activity
   transitions.  Measured here (interleaved runs, median of several
   repetitions, to cancel host load drift) and recorded in
   ``output/results.txt``.
"""

import statistics
import time

import pytest

from repro.converse import RunConfig
from repro.harness import pingpong_oneway_us


def _config(trace: bool) -> RunConfig:
    return RunConfig(
        nnodes=2, workers_per_process=4, comm_threads_per_process=1, trace=trace
    )


def _one(trace: bool, nbytes: int = 512, trips: int = 32):
    t0 = time.perf_counter()
    latency = pingpong_oneway_us(_config(trace), nbytes, trips=trips)
    return latency, time.perf_counter() - t0


@pytest.mark.trace
def test_tracer_overhead_pingpong(benchmark, report):
    def run():
        _one(False)
        _one(True)  # warm-up pair
        offs, ons = [], []
        lat_off = lat_on = None
        for _ in range(9):  # interleaved to cancel host-load drift
            lat_off, w = _one(False)
            offs.append(w)
            lat_on, w = _one(True)
            ons.append(w)
        return lat_off, statistics.median(offs), lat_on, statistics.median(ons)

    lat_off, wall_off, lat_on, wall_on = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = (wall_on - wall_off) / wall_off * 100.0
    report(
        "Tracer overhead (ping-pong, 512 B, SMP+commthread, 32 trips,\n"
        "interleaved median of 9)\n"
        f"  simulated one-way latency: {lat_off:.3f} us (tracing off)"
        f" / {lat_on:.3f} us (tracing on)\n"
        f"  host wall time: {wall_off * 1e3:.1f} ms off"
        f" / {wall_on * 1e3:.1f} ms on ({overhead:+.1f}%; target <5%)"
    )
    # Tracing must never perturb the simulation itself.
    assert lat_on == pytest.approx(lat_off, rel=0, abs=0)
    # Host-time bound: target is <5%; assert with slack for noisy CI
    # machines (the representative figure is the one recorded above).
    assert wall_on < 1.10 * wall_off + 0.02
