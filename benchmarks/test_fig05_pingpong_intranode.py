"""Figure 5: ping-pong latency within one BG/Q node.

Paper: between threads of one Charm++ SMP process the one-way latency
is ~1.1 us (1.3 us with comm threads) and does not change with message
size — only pointers are exchanged.  Between processes on the same
node the message crosses the MU (loopback), so it behaves like a
network message.
"""

from repro.harness import fig5_intranode, format_table

SIZES = (16, 512, 8192, 131072)


def test_fig5_pingpong_intranode(benchmark, report):
    data = benchmark.pedantic(
        lambda: fig5_intranode(sizes=SIZES, trips=6), rounds=1, iterations=1
    )
    rows = [[s] + [round(data[m][s], 2) for m in data] for s in SIZES]
    report(
        format_table(
            ["bytes"] + list(data), rows,
            title="Fig. 5: one-way intra-node latency (us), DES",
        )
        + "\npaper: SMP pointer exchange ~1.1 us, size-independent"
    )
    # SMP pointer exchange: ~1.1 us and size-independent.
    smp = data["smp"]
    assert 0.6 < smp[16] < 1.7
    assert abs(smp[131072] - smp[16]) / smp[16] < 0.05
    # Cross-process messages grow with size and are far slower.
    proc = data["processes"]
    assert proc[131072] > 4 * proc[16]
    assert proc[16] > 2 * smp[16]
