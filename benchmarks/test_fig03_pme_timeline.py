"""Figure 3: per-thread timelines of PME steps, p2p vs many-to-many.

Paper: with standard PME each thread sends/receives 36 small messages
per FFT phase (long green PME stretches, much white idle); with
many-to-many the whole burst goes in one call and the PME phase
shrinks.  This regenerates ASCII timelines from the DES.
"""

from repro.harness import fig3_pme_timeline


def test_fig3_pme_timeline(benchmark, report):
    data = benchmark.pedantic(
        lambda: fig3_pme_timeline(), rounds=1, iterations=1
    )
    report(
        "Fig. 3: PME-step timelines (R=integrate P=nonbonded G=pme .=idle)\n"
        "--- standard PME (p2p) ---\n" + data["standard"] + "\n"
        "--- optimized PME (m2m) ---\n" + data["optimized"]
    )
    # Both timelines show the full activity mix.
    for art in data.values():
        assert "G" in art  # PME work present
        assert "R" in art or "P" in art  # integration / nonbonded present
