"""Figure 3: per-thread timelines of PME steps, p2p vs many-to-many.

Paper: with standard PME each thread sends/receives 36 small messages
per FFT phase (long green PME stretches, much white idle); with
many-to-many the whole burst goes in one call and the PME phase
shrinks.  This regenerates ASCII timelines from the DES and archives
the interactive trace artifacts (Chrome ``trace_event`` JSON +
manifest) as ``output/fig03_{std,m2m}.{trace,manifest}.json``.
"""

import pathlib

from repro.harness import export_trace_artifacts, fig3_pme_timeline

_OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def test_fig3_pme_timeline(benchmark, report):
    data = benchmark.pedantic(
        lambda: fig3_pme_timeline(), rounds=1, iterations=1
    )
    paths = export_trace_artifacts(data["std_run"], _OUTPUT_DIR, "fig03_std")
    export_trace_artifacts(data["m2m_run"], _OUTPUT_DIR, "fig03_m2m")
    report(
        "Fig. 3: PME-step timelines (R=integrate P=nonbonded G=pme .=idle)\n"
        "--- standard PME (p2p) ---\n" + data["standard"] + "\n"
        "--- optimized PME (m2m) ---\n" + data["optimized"] + "\n"
        f"trace artifacts: output/fig03_std.trace.json, output/fig03_m2m.trace.json"
    )
    # Both timelines show the full activity mix.
    for art in (data["standard"], data["optimized"]):
        assert "G" in art  # PME work present
        assert "R" in art or "P" in art  # integration / nonbonded present
    assert pathlib.Path(paths["chrome"]).stat().st_size > 0
