"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper; the
regenerated rows/series are printed (run with ``-s`` to see them) and
also appended to ``benchmarks/output/results.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves a complete
paper-vs-reproduced record behind.
"""

import os
import pathlib

import pytest

_OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def report():
    """Print a block and append it to benchmarks/output/results.txt."""
    _OUTPUT_DIR.mkdir(exist_ok=True)
    out_path = _OUTPUT_DIR / "results.txt"

    def emit(text: str) -> None:
        print()
        print(text)
        with open(out_path, "a") as fh:
            fh.write(text + "\n\n")

    return emit
