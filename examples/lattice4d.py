#!/usr/bin/env python
"""4D lattice halo exchange with best-effort deadline rounds.

Runs the :mod:`repro.workloads.lattice` JLQCD-style stencil — a
2x2x2x2 lattice split across two SMP processes, exchanging the t-slab
boundary each round through persistent CmiDirect bursts — reliable vs
best-effort under increasing loss, and prints the degradation metrics:
shortfall (updates the deadline gave up on), per-site staleness, and
the ACK traffic each mode paid.

Run:  python examples/lattice4d.py
"""

from repro.bgq.params import CYCLES_PER_US
from repro.converse import CmiDirectManytomany, ConverseRuntime, RunConfig
from repro.converse.quiescence import QuiescenceDetector
from repro.faults import FaultPlan
from repro.faults.qos import QOS_BEST_EFFORT, QOS_RELIABLE, qos_name
from repro.sim import Environment
from repro.workloads import LatticeHalo

HORIZON = 600e6


def run_once(qos: int, profile=None, seed: int = 0):
    plan = FaultPlan.profile(profile, seed=seed) if profile else None
    env = Environment()
    cfg = RunConfig(
        nnodes=2,
        workers_per_process=2,
        comm_threads_per_process=1,
        fault_plan=plan,
    )
    rt = ConverseRuntime(env, cfg)
    cmidirect = CmiDirectManytomany(rt)
    lat = LatticeHalo(
        rt, cmidirect, rounds=4, qos=qos, deadline_cycles=400 * CYCLES_PER_US
    ).install()
    qd = QuiescenceDetector(rt, poll_interval_us=20.0)
    quiesced = qd.start()
    rt.start()
    waiters = [lat.all_done, env.timeout(HORIZON)]
    if qos == QOS_RELIABLE:
        waiters.append(quiesced)
    env.run(until=env.any_of(waiters))
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    rels = [
        c.reliability
        for p in rt.processes
        for c in p.client.contexts
        if c.reliability is not None
    ]
    acks = sum(r.acks_sent for r in rels)
    stale = lat.staleness()
    label = profile or "faults-off"
    print(
        f"  {qos_name(qos):<11} {label:<10} "
        f"updates={lat.distinct_updates()}/{lat.expected_updates} "
        f"shortfall={lat.shortfall:<3d} max_staleness={max(stale.values())} "
        f"integrity={'ok' if lat.integrity_ok() else 'VIOLATED'} "
        f"acks={acks:<4d} sim_us={env.now / CYCLES_PER_US:.0f}"
    )


def main() -> None:
    print("2x2x2x2 lattice, 4 halo rounds, t-slab split over 2 processes:")
    for profile in (None, "drop10", "chaos"):
        for qos in (QOS_RELIABLE, QOS_BEST_EFFORT):
            run_once(qos, profile)


if __name__ == "__main__":
    main()
