#!/usr/bin/env python
"""Mini-NAMD: molecular dynamics with PME on the Charm++ runtime (§IV-B).

1. Runs the sequential reference engine on a synthetic system (real
   LJ + Ewald forces, real smooth PME) and shows energy conservation.
2. Runs the same system distributed over a simulated 2-node BG/Q
   partition and verifies the trajectories agree.
3. Renders a Projections-style per-thread timeline (the paper's
   Figs. 3/9/10 style) and exports the interactive trace artifacts
   (Chrome ``trace_event`` JSON for chrome://tracing / Perfetto, plus
   a machine-readable run manifest) — see docs/TRACING.md.

Run:  python examples/namd_mini.py
"""

import numpy as np

from repro.bgq.params import CYCLES_PER_US
from repro.charm import Charm
from repro.converse import RunConfig
from repro.namd import NamdCharm, SequentialMD, build_system
from repro.sim import render_ascii_timeline
from repro.trace import format_utilization_table, write_chrome_trace, write_run_manifest


def main() -> None:
    n_atoms, steps, dt = 300, 6, 0.005

    # ---- sequential reference ------------------------------------------
    system = build_system(n_atoms, temperature=0.004, bond_fraction=0.0, seed=3)
    md = SequentialMD(system, pme_every=2, dt=dt)
    energies = md.run(steps)
    totals = [e.total for e in energies]
    print(f"sequential mini-NAMD: {n_atoms} atoms, {steps} steps")
    print(f"  E_total first/last: {totals[0]:.4f} / {totals[-1]:.4f}")
    print(f"  relative drift: {abs(totals[-1] - totals[0]) / abs(totals[0]):.2e}")
    print(f"  non-bonded pairs/step: {md.mean_pairs_per_step():.0f}")

    # ---- distributed on the simulated BG/Q -------------------------------
    system2 = build_system(n_atoms, temperature=0.004, bond_fraction=0.0, seed=3)
    charm = Charm(
        RunConfig(
            nnodes=2,
            workers_per_process=4,
            comm_threads_per_process=1,
            record_timeline=True,
        )
    )
    app = NamdCharm(charm, system2, n_steps=steps, pme_every=2, dt=dt)
    app.run()
    got = app.gather_positions()
    want = system.positions % system.box
    print(f"\ndistributed run on 2 simulated BG/Q nodes ({charm.npes} PEs):")
    print(f"  max |x_charm - x_sequential| = {np.max(np.abs(got - want)):.2e} A")
    print(f"  simulated step time: {app.step_log[-1][0] / steps / CYCLES_PER_US:.0f} us")
    print(f"  PME reciprocal energy: {app.recip_energies[-1]:.6f} e^2/A")

    tracer = charm.tracer
    tracer.finish()
    busy, useful = tracer.utilization()
    print(f"  utilization: busy={busy * 100:.0f}% useful={useful * 100:.0f}%")
    print(f"  messages sent: {tracer.get('converse.msgs_sent'):.0f}"
          f" ({tracer.get('converse.bytes_sent') / 1024:.0f} KiB),"
          f" L2 atomic ops: {tracer.get('l2.atomic_ops'):.0f}")
    print("\nper-thread timeline (first 6 PEs):")
    print(render_ascii_timeline(tracer, width=90, threads=tracer.tracks()[:6]))
    print("\nper-PE utilization (us per category):")
    print(format_utilization_table(tracer, scale=1.0 / CYCLES_PER_US, unit="us"))
    chrome = write_chrome_trace(tracer, "namd_mini.trace.json",
                                scale=1.0 / CYCLES_PER_US, process_name="namd_mini")
    manifest = write_run_manifest(tracer, "namd_mini.manifest.json",
                                  label="namd_mini", scale=1.0 / CYCLES_PER_US,
                                  time_unit="us", n_atoms=n_atoms, steps=steps)
    print(f"\nwrote {chrome} (open in chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {manifest}")


if __name__ == "__main__":
    main()
