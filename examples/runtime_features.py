#!/usr/bin/env python
"""Runtime features tour: priorities, sections, quiescence, balancing.

Shows the Charm++ machinery beyond plain sends:

* prioritized entry methods overtaking a backlog,
* section multicast over a PE spanning tree,
* quiescence detection over an active message storm,
* measured chare loads feeding the greedy load balancer.

Run:  python examples/runtime_features.py
"""

from repro.bgq.params import CYCLES_PER_US
from repro.charm import Chare, Charm, greedy_rebalance
from repro.converse import RunConfig
from repro.converse.quiescence import QuiescenceDetector


def main() -> None:
    charm = Charm(RunConfig(nnodes=2, workers_per_process=4))
    order = []

    class Worker(Chare):
        def __init__(self, idx):
            self.notes = []

        def work(self, tag, amount):
            order.append(tag)
            yield from self.charge(amount)

        def note(self, text):
            self.notes.append(text)

    workers = charm.create_array("w", Worker, range(8))

    class Driver(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            # Backlog on element 0, then an urgent message jumps the queue.
            yield from self.send_to(workers, 0, "work", 64, "head", 200_000)
            for i in range(4):
                yield from workers.send_from(
                    self._pe, 0, "work", 64, f"bulk{i}", 150_000, priority=10
                )
            yield from workers.send_from(
                self._pe, 0, "work", 64, "URGENT", 50_000, priority=-5
            )
            # Section multicast to the even elements.
            section = charm.create_section(workers, [0, 2, 4, 6])
            yield from section.multicast_from(self._pe, "note", 64, "even-team")

    drv = charm.create_array("drv", Driver, [0])
    drv.home[0] = charm.npes - 1  # drive from the last PE
    drv.element(0)._pe = charm.runtime.pes[charm.npes - 1]
    charm.seed(drv, 0, "go")

    qd = QuiescenceDetector(charm.runtime)
    done = qd.start()
    charm.start()
    t_quiet = charm.env.run(until=done)
    charm.runtime.stop()

    print("execution order on the congested PE:", order)
    assert order.index("URGENT") < order.index("bulk3")
    print(f"quiescence declared at {t_quiet / CYCLES_PER_US:.1f} us "
          f"({qd.rounds} detector rounds)")
    noted = [i for i in range(8) if workers.element(i).notes]
    print("section multicast reached elements:", noted)

    loads = charm.measured_loads(workers)
    print("measured chare loads (cycles):",
          {i: round(l) for i, l in loads if l > 0})
    assignment = greedy_rebalance(loads, npes=charm.npes)
    print("greedy rebalance proposal:", assignment)


if __name__ == "__main__":
    main()
