#!/usr/bin/env python
"""Tour of the simulated BG/Q features the paper's runtime exploits.

* L2 atomic bounded increment and the lockless queue built on it (§III-A)
* the mutex-queue contrast under producer contention
* the per-thread pool allocator vs the GNU arena allocator (§III-B, Fig. 6)
* idle-poll weights: L2-stall spin vs naive spin (§III-D)

Run:  python examples/bgq_features.py
"""

from repro.bgq import BGQMachine, BGQParams
from repro.bgq.params import CYCLES_PER_US
from repro.harness import fig6_allocator
from repro.queues import L2AtomicQueue, MutexQueue
from repro.sim import Environment


def queue_contention_demo() -> None:
    print("lockless L2 queue vs mutex queue: 8 producers x 40 messages")

    def run(make_queue):
        env = Environment()
        machine = BGQMachine(env, 1)
        node = machine.node(0)
        q = make_queue(env, node)
        consumed = []

        def producer(pid):
            thread = node.thread(pid + 1)
            for i in range(40):
                yield from q.enqueue(thread, (pid, i))

        def consumer():
            thread = node.thread(0)
            while len(consumed) < 8 * 40:
                item = yield from q.dequeue(thread)
                if item is not None:
                    consumed.append(item)
                else:
                    yield env.timeout(50)

        for pid in range(8):
            env.process(producer(pid))
        env.process(consumer())
        env.run()
        return env.now / CYCLES_PER_US

    t_mutex = run(lambda env, node: MutexQueue(env))
    t_l2 = run(lambda env, node: L2AtomicQueue(env, node.l2, size=512))
    print(f"  mutex queue: {t_mutex:7.1f} us")
    print(f"  L2 queue:    {t_l2:7.1f} us   ({t_mutex / t_l2:.2f}x faster)\n")


def idle_poll_demo() -> None:
    print("idle poll on a shared core (one busy thread + 3 idle pollers):")
    params = BGQParams()

    def run(weight):
        env = Environment()
        machine = BGQMachine(env, 1, params=params)
        core = machine.node(0).cores[0]
        done = {}

        def busy():
            yield from core.compute(1_000_000)
            done["t"] = env.now

        for _ in range(3):
            core.register(weight)  # an idle poller parked on the core
        env.process(busy())
        env.run()
        return done["t"] / CYCLES_PER_US

    t_l2 = run(params.idle_poll_l2_weight)
    t_naive = run(params.idle_poll_naive_weight)
    print(f"  neighbours spin on L2 atomics (~1 instr / 60 cycles): {t_l2:8.1f} us")
    print(f"  neighbours spin naively (1 instr / cycle):            {t_naive:8.1f} us")
    print(f"  optimized idle poll recovers {t_naive / t_l2:.2f}x for the busy thread\n")


def allocator_demo() -> None:
    print("Fig. 6 workload: 64 threads, 100 buffers each:")
    results = fig6_allocator()
    for kind, r in results.items():
        print(
            f"  {kind:>4}: total {r.total_us:8.1f} us,"
            f" arena-lock waits {r.contention_wait_us:9.1f} us"
        )
    print(
        f"  pool speedup: "
        f"{results['gnu'].total_us / results['pool'].total_us:.1f}x\n"
    )


if __name__ == "__main__":
    queue_contention_demo()
    idle_poll_demo()
    allocator_demo()
