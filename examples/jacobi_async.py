#!/usr/bin/env python
"""Asynchronous Jacobi (chaotic relaxation) under lossy delivery.

Runs the :mod:`repro.workloads.jacobi` chare-array solver across two
simulated BG/Q nodes in each QoS mode (repro.faults.qos), fault-free
and under the drop10 profile, and prints the converged residual plus
the reliability-layer cost each mode paid.  The point of the demo:
with a contraction-mapping sweep, best-effort halos converge to the
same answer while sending no ACKs and keeping no retransmit state.

Run:  python examples/jacobi_async.py
"""

from repro.charm import Charm
from repro.converse import RunConfig
from repro.converse.quiescence import QuiescenceDetector
from repro.faults import FaultPlan
from repro.faults.qos import QOS_BEST_EFFORT, QOS_BEST_EFFORT_FRESH, QOS_RELIABLE, qos_name
from repro.sim import Environment
from repro.workloads import build_jacobi

HORIZON = 600e6


def run_once(qos: int, profile=None, seed: int = 0):
    plan = FaultPlan.profile(profile, seed=seed) if profile else None
    env = Environment()
    cfg = RunConfig(
        nnodes=2,
        workers_per_process=2,
        comm_threads_per_process=1,
        fault_plan=plan,
    )
    charm = Charm(cfg, env=env)
    box = build_jacobi(charm, ncells=8, sweeps=60, qos=qos)
    qd = QuiescenceDetector(charm.runtime, poll_interval_us=20.0)
    quiesced = qd.start()
    charm.start()
    env.run(until=env.any_of([charm.done, quiesced, env.timeout(HORIZON)]))
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    charm.runtime.stop()
    rels = [
        c.reliability
        for p in charm.runtime.processes
        for c in p.client.contexts
        if c.reliability is not None
    ]
    acks = sum(r.acks_sent for r in rels)
    retries = sum(r.retries for r in rels)
    label = profile or "faults-off"
    print(
        f"  {qos_name(qos):<11} {label:<10} residual={box['residual']:.3e} "
        f"acks={acks:<4d} retries={retries:<3d} "
        f"qd_msgs={qd.protocol_msgs} sim_us={env.now / 1600:.0f}"
    )


def main() -> None:
    print("async Jacobi, 8 cells x 60 sweeps, 2 nodes (+1 comm thread each):")
    for profile in (None, "drop10"):
        for qos in (QOS_RELIABLE, QOS_BEST_EFFORT, QOS_BEST_EFFORT_FRESH):
            run_once(qos, profile)


if __name__ == "__main__":
    main()
