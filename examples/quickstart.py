#!/usr/bin/env python
"""Quickstart: a message-driven ring on a simulated BG/Q partition.

Builds a 2-node BG/Q machine with 4 worker threads per process, creates
a chare array, and passes a token around the ring; every hop is a real
simulated message (intra-process pointer exchange or a PAMI active
message through the torus).

Run:  python examples/quickstart.py
"""

from repro.bgq.params import CYCLES_PER_US
from repro.charm import Chare, Charm
from repro.converse import RunConfig


class RingElement(Chare):
    """One element of the ring."""

    def __init__(self, idx):
        self.hops_seen = 0

    def pass_token(self, hops_left):
        self.hops_seen += 1
        # Pretend to do a little work on each hop (50k instructions).
        yield from self.charge(50_000)
        if hops_left == 0:
            self.charm.exit(("done", self.thisIndex, self.env.now))
            return
        nxt = (self.thisIndex + 1) % len(self._array)
        yield from self.send(nxt, "pass_token", 64, hops_left - 1)


def main() -> None:
    # 2 BG/Q nodes, one SMP process each, 4 workers + 1 comm thread.
    charm = Charm(
        RunConfig(nnodes=2, workers_per_process=4, comm_threads_per_process=1)
    )
    ring = charm.create_array("ring", RingElement, range(8))
    print(f"{charm.npes} PEs across {charm.config.nnodes} nodes; 8 ring elements")

    charm.seed(ring, 0, "pass_token", 24)  # 24 hops, 3 laps
    tag, idx, t = charm.run()

    print(f"token stopped at element {idx} after 24 hops")
    print(f"simulated time: {t / CYCLES_PER_US:.1f} us")
    per_hop = t / 24 / CYCLES_PER_US
    print(f"per hop (compute + message): {per_hop:.2f} us")
    for i in range(8):
        print(f"  element {i} on PE {ring.pe_of(i)}: {ring.element(i).hops_seen} visits")


if __name__ == "__main__":
    main()
