#!/usr/bin/env python
"""Distributed 3D FFT: point-to-point vs CmiDirectManytomany (§IV-A).

Runs the pencil-decomposed 3D FFT on a simulated 8-node BG/Q partition
with both transpose transports, validates the distributed result
against numpy.fft.fftn, and reports the m2m speedup (the Table I
effect).

Run:  python examples/fft3d_pencil.py
"""

import numpy as np

from repro.bgq.params import CYCLES_PER_US
from repro.charm import Charm
from repro.converse import RunConfig
from repro.fft import FFT3D
from repro.perfmodel import fft_step_time


def run_mode(use_m2m: bool, n: int = 16, nnodes: int = 8):
    charm = Charm(
        RunConfig(nnodes=nnodes, workers_per_process=1, comm_threads_per_process=1)
    )
    driver = FFT3D(
        charm,
        n,
        nchares=nnodes,
        use_m2m=use_m2m,
        iterations=3,
        capture_forward=True,
    )
    result = driver.run()
    return driver, result


def main() -> None:
    n, nnodes = 16, 8
    print(f"{n}^3 complex-to-complex FFT, {nnodes} simulated BG/Q nodes\n")

    times = {}
    for mode, use_m2m in (("p2p", False), ("m2m", True)):
        driver, result = run_mode(use_m2m, n, nnodes)
        # Validate forward transform against numpy.
        got = driver.grid.gather_x(result.forward_blocks)
        want = np.fft.fftn(driver.input)
        err = np.max(np.abs(got - want))
        # Validate the backward transform restored the input.
        back = driver.grid.gather_z(result.blocks)
        rt_err = np.max(np.abs(back - driver.input))
        times[mode] = result.mean_step_time / CYCLES_PER_US
        print(
            f"{mode}: {times[mode]:8.1f} us/step "
            f"(fwd err vs numpy: {err:.2e}, roundtrip err: {rt_err:.2e})"
        )

    print(f"\nm2m speedup (DES): {times['p2p'] / times['m2m']:.2f}x")
    mp = fft_step_time(n, nnodes, "p2p") * 1e6
    mm = fft_step_time(n, nnodes, "m2m") * 1e6
    print(f"m2m speedup (analytic model, same cell): {mp / mm:.2f}x")
    print("\npaper Table I (e.g. 32^3 at 64 nodes): 457 vs 142 us = 3.2x")


if __name__ == "__main__":
    main()
