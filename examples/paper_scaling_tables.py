#!/usr/bin/env python
"""Regenerate the paper's scaling tables and figure series from the
calibrated analytic models (Figs. 7/11/12, Tables I/II).

Run:  python examples/paper_scaling_tables.py
"""

from repro.harness import (
    apoa1_pme_every_step,
    fig7_configurations,
    fig8_l2_atomics,
    fig11_bgp_vs_bgq,
    fig12_stmv20m,
    format_table,
    table1_report,
    table2_stmv100m,
)


def main() -> None:
    print(table1_report())
    print()

    data = fig7_configurations((64, 256, 1024, 4096))
    labels = list(data)
    rows = [[n] + [round(data[l][n]) for l in labels] for n in (64, 256, 1024, 4096)]
    print(format_table(["nodes"] + labels, rows,
                       title="Fig. 7: ApoA1 us/step by configuration"))
    print()

    f8 = fig8_l2_atomics(512)
    rows = [[k, round(v["l2"]), round(v["mutex"]), f"{v['speedup']:.2f}x"]
            for k, v in f8.items()]
    print(format_table(["config", "L2 atomics", "mutex", "speedup"], rows,
                       title="Fig. 8: ApoA1 @512 nodes (paper: 67% at 1 ppn)"))
    print()

    f11 = fig11_bgp_vs_bgq()
    rows = [[n, round(f11["bgp"][n]), round(f11["bgq"][n]), f11["bgq_config"][n]]
            for n in sorted(f11["bgq"])]
    print(format_table(["nodes", "BG/P us", "BG/Q us", "best config"], rows,
                       title="Fig. 11: ApoA1, BG/P vs BG/Q"))
    print(f"BG/Q @4096 with PME every step: {apoa1_pme_every_step():.0f} us "
          "(paper: 782)")
    print()

    f12 = fig12_stmv20m()
    print(format_table(["nodes", "ms/step"],
                       [[n, round(v, 2)] for n, v in f12.items()],
                       title="Fig. 12: STMV 20M (paper: 5.8 ms @16384)"))
    print()

    print(table2_stmv100m())


if __name__ == "__main__":
    main()
