"""Legacy setup shim: the offline environment lacks the `wheel` package,
so `pip install -e .` (PEP 660) cannot build an editable wheel.
`python setup.py develop` provides the equivalent editable install."""
from setuptools import setup

setup()
