"""``Environment.run(until=Event)`` lifecycle edges.

The serve job runtime leans on three run-loop edges that had no direct
coverage: re-running until an already-processed event (a worker retries
a finished job's done event), failed events that a waiter defused vs
nobody consumed (cancelled-job teardown), and drain-then-resubmit reuse
of one Environment (back-to-back jobs on a pooled engine).
"""

import pytest

from repro.sim import Environment, SimulationError


def _ticker(env, done, ticks, dt=1.0):
    def proc():
        for _ in range(ticks):
            yield env.timeout(dt)
        done.succeed(ticks)

    return env.process(proc())


def test_run_until_already_processed_event_is_a_no_op():
    """A second run(until=done) returns the value without stepping."""
    env = Environment()
    done = env.event()
    _ticker(env, done, 5)
    assert env.run(until=done) == 5
    executed = env.events_executed
    now = env.now
    # More work is pending, but an already-processed `until` must not
    # advance anything — the serve worker's double-check on a finished
    # job's done event has to be side-effect free.
    env.process((env.timeout(1.0) for _ in range(1)))
    assert env.run(until=done) == 5
    assert env.events_executed == executed
    assert env.now == now


def test_run_until_completes_past_defused_failure():
    """An intermediate event that fails into a catching waiter (defused)
    must not abort run(until=done)."""
    env = Environment()
    done = env.event()
    doomed = env.event()
    caught = []

    def failer():
        yield env.timeout(1.0)
        doomed.fail(RuntimeError("link down"))

    def waiter():
        try:
            yield doomed
        except RuntimeError as exc:
            caught.append(str(exc))
        yield env.timeout(1.0)
        done.succeed("recovered")

    env.process(failer())
    env.process(waiter())
    assert env.run(until=done) == "recovered"
    assert caught == ["link down"]
    assert doomed.processed and not doomed.ok


def test_run_until_propagates_undefused_failure():
    """Nobody waiting on a failed event: the failure must surface from
    run() rather than vanish (lost-error edge)."""
    env = Environment()
    done = env.event()
    doomed = env.event()

    def failer():
        yield env.timeout(1.0)
        doomed.fail(RuntimeError("unconsumed"))

    env.process(failer())
    _ticker(env, done, 5)
    with pytest.raises(RuntimeError, match="unconsumed"):
        env.run(until=done)


def test_run_until_pending_event_with_drained_queue_raises():
    env = Environment()
    never = env.event()
    _ticker(env, env.event(), 2)
    with pytest.raises(SimulationError, match="ran out of events"):
        env.run(until=never)
    assert not never.triggered


def test_drain_then_resubmit_reuses_the_environment():
    """One Environment, two back-to-back jobs: clock and event counter
    carry forward, the second job runs exactly like the first."""
    env = Environment()
    first = env.event()
    _ticker(env, first, 4)
    assert env.run(until=first) == 4
    t1, n1 = env.now, env.events_executed
    assert t1 == 4.0

    second = env.event()
    _ticker(env, second, 3)
    assert env.run(until=second) == 3
    assert env.now == t1 + 3.0
    assert env.events_executed > n1

    # Full drain also leaves the env reusable.
    env.run()
    third = env.event()
    _ticker(env, third, 2)
    assert env.run(until=third) == 2


def test_resubmit_after_drain_matches_fresh_environment_deltas():
    """Engine reuse is observationally clean: the resubmitted job's
    simulated-time and event-count *deltas* equal a fresh env's run."""
    fresh = Environment()
    fdone = fresh.event()
    _ticker(fresh, fdone, 6, dt=0.5)
    fresh.run(until=fdone)

    reused = Environment()
    warm = reused.event()
    _ticker(reused, warm, 3, dt=2.0)
    reused.run(until=warm)
    reused.run()  # drain the warm job's leftovers before handing over
    t0, n0 = reused.now, reused.events_executed
    rdone = reused.event()
    _ticker(reused, rdone, 6, dt=0.5)
    reused.run(until=rdone)

    assert reused.now - t0 == fresh.now
    assert reused.events_executed - n0 == fresh.events_executed
