"""Unit tests for mutexes, semaphores and stores."""

import pytest

from repro.sim import Environment, Mutex, Semaphore, SimulationError, Store


def test_mutex_mutual_exclusion_and_fifo():
    env = Environment()
    m = Mutex(env)
    log = []

    def worker(tag, hold):
        yield from m.acquire()
        log.append(("in", tag, env.now))
        yield env.timeout(hold)
        log.append(("out", tag, env.now))
        yield from m.release()

    env.process(worker("a", 10))
    env.process(worker("b", 5))
    env.process(worker("c", 5))
    env.run()
    # Strict FIFO: a then b then c, no overlap.
    assert [e[1] for e in log] == ["a", "a", "b", "b", "c", "c"]
    assert log[2][2] == 10 and log[4][2] == 15


def test_mutex_acquire_cost_charged_even_uncontended():
    env = Environment()
    m = Mutex(env, acquire_cost=7)

    def worker():
        yield from m.acquire()
        assert env.now == 7
        yield from m.release()

    env.process(worker())
    env.run()
    assert m.stats.acquisitions == 1
    assert m.stats.contended == 0


def test_mutex_contention_stats():
    env = Environment()
    m = Mutex(env)

    def holder():
        yield from m.acquire()
        yield env.timeout(20)
        yield from m.release()

    def waiter():
        yield env.timeout(1)
        yield from m.acquire()
        yield from m.release()

    env.process(holder())
    env.process(waiter())
    env.run()
    assert m.stats.acquisitions == 2
    assert m.stats.contended == 1
    assert m.stats.total_wait == pytest.approx(19)
    assert m.stats.max_wait == pytest.approx(19)
    assert m.stats.mean_wait == pytest.approx(19 / 2)


def test_mutex_try_acquire():
    env = Environment()
    m = Mutex(env)
    assert m.try_acquire()
    assert not m.try_acquire()
    m.release_nowait()
    assert m.try_acquire()


def test_mutex_release_unlocked_is_error():
    env = Environment()
    m = Mutex(env)

    def bad():
        yield from m.release()

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_semaphore_counting():
    env = Environment()
    s = Semaphore(env, value=2)
    log = []

    def worker(tag):
        yield from s.acquire()
        log.append((tag, env.now))

    def releaser():
        yield env.timeout(10)
        s.release()

    for tag in "abc":
        env.process(worker(tag))
    env.process(releaser())
    env.run()
    assert log == [("a", 0), ("b", 0), ("c", 10)]


def test_semaphore_negative_init_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Semaphore(env, value=-1)


def test_store_put_then_get():
    env = Environment()
    st = Store(env)
    got = []

    def consumer():
        x = yield from st.get()
        got.append((x, env.now))

    def producer():
        yield env.timeout(5)
        st.put("msg")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("msg", 5)]


def test_store_buffers_when_no_getter():
    env = Environment()
    st = Store(env)
    st.put(1)
    st.put(2)
    assert len(st) == 2
    assert st.try_get() == 1
    assert st.try_get() == 2
    assert st.try_get() is None


def test_store_fifo_getters():
    env = Environment()
    st = Store(env)
    got = []

    def consumer(tag):
        x = yield from st.get()
        got.append((tag, x))

    env.process(consumer("first"))
    env.process(consumer("second"))

    def producer():
        yield env.timeout(1)
        st.put("A")
        st.put("B")

    env.process(producer())
    env.run()
    assert got == [("first", "A"), ("second", "B")]
