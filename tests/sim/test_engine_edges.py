"""Edge-case coverage for the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, SimulationError
from repro.sim.engine import _ConditionValue


def test_condition_value_ordering_and_todict():
    env = Environment()
    t1 = env.timeout(1, value="a")
    t2 = env.timeout(2, value="b")
    got = []

    def proc():
        res = yield env.all_of([t1, t2])
        got.append(res.todict())

    env.process(proc())
    env.run()
    assert got[0] == {t1: "a", t2: "b"}
    assert list(got[0].values()) == ["a", "b"]


def test_any_of_with_failed_event_propagates():
    env = Environment()
    bad = env.event()
    caught = []

    def proc():
        try:
            yield env.any_of([bad, env.timeout(10)])
        except RuntimeError:
            caught.append(env.now)

    def failer():
        yield env.timeout(1)
        bad.fail(RuntimeError("boom"))

    env.process(proc())
    env.process(failer())
    env.run()
    assert caught == [1]


def test_all_of_with_pre_processed_events():
    env = Environment()
    t = env.timeout(0, value="x")
    env.run()  # process the timeout fully
    got = []

    def proc():
        res = yield env.all_of([t])
        got.append(list(res))

    env.process(proc())
    env.run()
    assert got == [["x"]]


def test_event_trigger_chains_outcome():
    env = Environment()
    src, dst = env.event(), env.event()
    src.succeed(7)
    dst.trigger(src)
    got = []

    def proc():
        got.append((yield dst))

    env.process(proc())
    env.run()
    assert got == [7]


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_value_of_untriggered_event_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().value


def test_process_interrupt_cause_and_resume():
    env = Environment()
    log = []

    def worker():
        from repro.sim import Interrupt

        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append(i.cause)
        yield env.timeout(5)
        log.append(env.now)

    p = env.process(worker())

    def interrupter():
        yield env.timeout(3)
        p.interrupt(cause={"why": "test"})

    env.process(interrupter())
    env.run()
    assert log == [{"why": "test"}, 8]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # not a generator


def test_environment_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0
    ticks = []

    def proc():
        yield env.timeout(5)
        ticks.append(env.now)

    env.process(proc())
    env.run()
    assert ticks == [105.0]


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc())
    assert env.active_process is None
    env.run()
    assert seen == [p]
    assert env.active_process is None
