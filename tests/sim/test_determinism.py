"""Determinism fuzz suite for the engine fast path.

Two properties, checked over randomized producer/consumer workloads:

1. **Run-to-run determinism** — the same seed produces bit-identical
   trajectories (event counts, final simulated time, queue and L2
   statistics) across repeated runs.

2. **Fast path == slow path** — setting ``REPRO_ENGINE_SLOWPATH=1``
   (which routes every event through the reference heap instead of the
   zero-delay deque, see ``repro.sim.engine``) yields a bit-identical
   trajectory.  This is the engine's core invariant: the fast path must
   be cycle-for-cycle neutral, not merely "statistically equivalent".

All random choices are drawn *before* the simulation starts, so the
workload itself cannot leak host iteration order into the trajectory.
"""

import random

import pytest

from repro.bgq import BGQMachine
from repro.converse import RunConfig
from repro.harness.pingpong import pingpong_run
from repro.queues import L2AtomicQueue, MutexQueue
from repro.sim import Environment

SEEDS = [7, 23, 1234]


def _fuzz_workload(seed: int) -> dict:
    """Randomized queues + SMT compute + wakeup workload; returns a
    trajectory fingerprint (exact reprs, no tolerances)."""
    rng = random.Random(seed)
    # Pre-draw every random choice (see module docstring).
    qsize = rng.choice([1, 2, 4, 16])
    n_producers = rng.randint(2, 5)
    plans = [
        [(rng.randint(0, 4000), rng.randint(0, 1)) for _ in range(rng.randint(3, 12))]
        for _ in range(n_producers)
    ]
    compute_plans = [
        (rng.randint(1, 6), rng.uniform(100, 5000), rng.choice([1.0, 1.0, 0.25]))
        for _ in range(rng.randint(1, 4))
    ]
    total = sum(len(p) for p in plans)

    env = Environment()
    machine = BGQMachine(env, 1)
    node = machine.node(0)
    l2q = L2AtomicQueue(env, node.l2, size=qsize)
    mq = MutexQueue(env)
    received = []

    def producer(pid, plan):
        thread = node.thread(8 + pid)
        for i, (delay, which) in enumerate(plan):
            yield env.timeout(delay)
            q = l2q if which == 0 else mq
            yield from q.enqueue(thread, (pid, i))

    def consumer():
        thread = node.thread(0)
        while len(received) < total:
            item = yield from l2q.dequeue(thread)
            if item is None:
                item = yield from mq.dequeue(thread)
            if item is not None:
                received.append(item)
                continue
            # Sleep on the queues' wakeup sources (arm/disarm path).
            armed = [(s, s.arm(latency=60.0)) for s in (l2q.wakeup, mq.wakeup)]
            yield env.any_of([ev for _, ev in armed])
            for s, ev in armed:
                s.disarm(ev)

    def computer(cid, reps, instr, weight):
        thread = node.thread(1 + cid)
        for _ in range(reps):
            yield from thread.compute(instr, weight)
            yield env.timeout(17 * (cid + 1))

    for pid, plan in enumerate(plans):
        env.process(producer(pid, plan))
    env.process(consumer())
    for cid, (reps, instr, weight) in enumerate(compute_plans):
        env.process(computer(cid, reps, instr, weight))
    env.run()

    return {
        "now": repr(env.now),
        "events": env.events_executed,
        "received": received,
        "l2q": (l2q.enqueues, l2q.dequeues, l2q.overflow_enqueues),
        "mq": (mq.enqueues, mq.dequeues),
        "l2_ops": node.l2.op_count,
        "wakeups": (l2q.wakeup.signals, l2q.wakeup.wakeups, mq.wakeup.signals),
        "instructions": repr(sum(t.instructions for t in node.threads)),
    }


def _pingpong_fingerprint() -> dict:
    run = pingpong_run(
        RunConfig(nnodes=2, workers_per_process=2, comm_threads_per_process=1),
        nbytes=256,
        trips=6,
    )
    return {"sim_time": repr(run["sim_time"]), "events": run["events"]}


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_workload_run_twice_identical(seed):
    assert _fuzz_workload(seed) == _fuzz_workload(seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_workload_fastpath_matches_slowpath(seed, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_SLOWPATH", raising=False)
    fast = _fuzz_workload(seed)
    monkeypatch.setenv("REPRO_ENGINE_SLOWPATH", "1")
    slow = _fuzz_workload(seed)
    assert fast == slow


def test_pingpong_fastpath_matches_slowpath(monkeypatch):
    """Full-stack coverage: Converse runtime + PAMI + MU + torus."""
    monkeypatch.delenv("REPRO_ENGINE_SLOWPATH", raising=False)
    fast = _pingpong_fingerprint()
    monkeypatch.setenv("REPRO_ENGINE_SLOWPATH", "1")
    slow = _pingpong_fingerprint()
    assert fast == slow
