"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(10)
        done.append(env.now)
        yield env.timeout(5.5)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [10, 15.5]
    assert env.now == 15.5


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1, value="hello")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        v = yield ev
        got.append((env.now, v))

    def firer():
        yield env.timeout(3)
        ev.succeed(42)

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [(3, 42)]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_raises():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        env.run()


def test_process_return_value_via_wait():
    env = Environment()
    result = []

    def child():
        yield env.timeout(2)
        return "child-result"

    def parent():
        v = yield env.process(child())
        result.append((env.now, v))

    env.process(parent())
    env.run()
    assert result == [(2, "child-result")]


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def make(tag):
        def proc():
            yield env.timeout(5)
            order.append(tag)

        return proc

    for tag in ("a", "b", "c"):
        env.process(make(tag)())
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=25)
    assert env.now == 25


def test_run_until_time_bound_is_exclusive():
    """Events scheduled exactly at `until` belong to the *next* window.

    Regression test: the bound used to be inclusive (`> stop_time`), so
    windowed drivers calling run(until=...) repeatedly executed boundary
    events in the wrong window.
    """
    env = Environment()
    hits = []

    def proc():
        yield env.timeout(10)
        hits.append(env.now)
        yield env.timeout(10)
        hits.append(env.now)

    env.process(proc())
    env.run(until=10)
    assert hits == []  # the t=10 event is outside the [0, 10) window
    assert env.now == 10
    env.run(until=20)
    assert hits == [10.0]  # window [10, 20): the t=20 event again excluded
    assert env.now == 20
    env.run()
    assert hits == [10.0, 20.0]


def test_run_until_event():
    env = Environment()
    ev = env.event()

    def proc():
        yield env.timeout(7)
        ev.succeed("done")
        yield env.timeout(100)

    env.process(proc())
    val = env.run(until=ev)
    assert val == "done"
    assert env.now == 7


def test_run_until_event_never_fires_is_error():
    env = Environment()
    ev = env.event()

    def proc():
        yield env.timeout(1)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_run_until_past_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_all_of_waits_for_everything():
    env = Environment()
    got = []

    def proc():
        t1 = env.timeout(3, value="x")
        t2 = env.timeout(9, value="y")
        res = yield env.all_of([t1, t2])
        got.append((env.now, list(res)))

    env.process(proc())
    env.run()
    assert got == [(9, ["x", "y"])]


def test_any_of_fires_on_first():
    env = Environment()
    got = []

    def proc():
        t1 = env.timeout(3, value="fast")
        t2 = env.timeout(9, value="slow")
        yield env.any_of([t1, t2])
        got.append(env.now)

    env.process(proc())
    env.run()
    assert got[0] == 3


def test_all_of_empty_fires_immediately():
    env = Environment()
    got = []

    def proc():
        yield env.all_of([])
        got.append(env.now)

    env.process(proc())
    env.run()
    assert got == [0]


def test_any_of_member_failing_after_trigger_is_defused():
    """A constituent that fails *after* the condition fired must not
    crash the run.

    Regression test: `_Condition._check` used to return without
    defusing late failures, so an AnyOf whose losing member later
    failed raised the member's exception from the event loop.
    """
    env = Environment()
    loser = env.event()
    got = []

    def proc():
        winner = env.timeout(5, value="won")
        res = yield env.any_of([winner, loser])
        got.append((env.now, list(res)))

    def late_failer():
        yield env.timeout(10)
        loser.fail(RuntimeError("late failure"))

    env.process(proc())
    env.process(late_failer())
    env.run()  # pre-fix: raised RuntimeError("late failure")
    assert got == [(5, ["won"])]
    assert env.now == 10


def test_all_of_second_failure_after_condition_failed_is_defused():
    env = Environment()
    a = env.event()
    b = env.event()
    caught = []

    def proc():
        try:
            yield env.all_of([a, b])
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        a.fail(RuntimeError("first"))
        yield env.timeout(1)
        b.fail(RuntimeError("second"))

    env.process(proc())
    env.process(failer())
    env.run()  # pre-fix: raised RuntimeError("second")
    assert caught == ["first"]


def test_interrupt_thrown_into_waiting_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(p):
        yield env.timeout(4)
        p.interrupt(cause="wakeup")

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    assert log == [(4, "wakeup")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1)
        raise KeyError("broken")

    def parent():
        try:
            yield env.process(bad())
        except KeyError:
            caught.append(env.now)

    env.process(parent())
    env.run()
    assert caught == [1]


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        # The engine's non-Event-yield guard is the subject under test.
        yield 42  # repro-lint: disable=P1

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_peek_and_step():
    env = Environment()
    env.process(iter([env.timeout(5)]).__iter__() if False else _gen(env))
    assert env.peek() == 0  # process-init event
    while env.peek() != float("inf"):
        env.step()
    assert env.now == 5


def _gen(env):
    yield env.timeout(5)


def test_step_empty_queue_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_nested_processes_compose():
    env = Environment()
    trace = []

    def leaf(tag, d):
        yield env.timeout(d)
        trace.append(tag)
        return d

    def mid():
        a = yield env.process(leaf("a", 2))
        b = yield env.process(leaf("b", 3))
        return a + b

    def top():
        total = yield env.process(mid())
        trace.append(total)

    env.process(top())
    env.run()
    assert trace == ["a", "b", 5]
    assert env.now == 5


def test_determinism_same_structure_same_trace():
    def build_and_run():
        env = Environment()
        order = []

        def worker(i):
            for k in range(3):
                yield env.timeout(1 + (i % 2))
                order.append((env.now, i, k))

        for i in range(4):
            env.process(worker(i))
        env.run()
        return order

    assert build_and_run() == build_and_run()
