"""Tests for the timeline recorder and utilization profiles."""

import numpy as np
import pytest

from repro.sim import Environment, TimelineRecorder
from repro.sim.trace import render_ascii_timeline, utilization_profile


def make_recorder():
    env = Environment()
    rec = TimelineRecorder(env)

    def worker():
        rec.begin(0, "integrate")
        yield env.timeout(10)
        rec.begin(0, "pme")
        yield env.timeout(30)
        rec.begin(0, "idle")
        yield env.timeout(60)
        rec.end(0)

    env.process(worker())
    env.run()
    return env, rec


def test_segments_recorded():
    _, rec = make_recorder()
    cats = [(s.category, s.start, s.end) for s in rec.segments]
    assert cats == [("integrate", 0, 10), ("pme", 10, 40), ("idle", 40, 100)]


def test_time_in_category():
    _, rec = make_recorder()
    assert rec.time_in("pme") == 30
    assert rec.time_in("idle") == 60
    assert rec.time_in("missing") == 0


def test_utilization_busy_and_useful():
    _, rec = make_recorder()
    busy, useful = rec.utilization()
    assert busy == pytest.approx(0.4)  # 40/100 non-idle
    assert useful == pytest.approx(0.4)  # integrate+pme are useful


def test_utilization_excludes_overhead_from_useful():
    env = Environment()
    rec = TimelineRecorder(env)
    rec.record(0, "comm", 0, 50)
    rec.record(0, "pme", 50, 100)
    busy, useful = rec.utilization()
    assert busy == pytest.approx(1.0)
    assert useful == pytest.approx(0.5)


def test_finish_closes_open_segments():
    env = Environment()
    rec = TimelineRecorder(env)

    def worker():
        rec.begin(3, "nonbonded")
        yield env.timeout(25)
        # never ends explicitly

    env.process(worker())
    env.run()
    rec.finish()
    assert len(rec.segments) == 1
    seg = rec.segments[0]
    assert (seg.thread, seg.category, seg.start, seg.end) == (3, "nonbonded", 0, 25)


def test_record_validates_order():
    env = Environment()
    rec = TimelineRecorder(env)
    with pytest.raises(ValueError):
        rec.record(0, "pme", 10, 5)


def test_zero_length_segments_dropped():
    env = Environment()
    rec = TimelineRecorder(env)
    rec.record(0, "pme", 5, 5)
    assert rec.segments == []


def test_utilization_profile_bins_sum():
    env = Environment()
    rec = TimelineRecorder(env)
    rec.record(0, "pme", 0, 50)
    rec.record(0, "idle", 50, 100)
    prof = utilization_profile(rec, bins=10)
    assert prof["pme"][:5] == pytest.approx(np.ones(5))
    assert prof["pme"][5:] == pytest.approx(np.zeros(5))
    assert prof["idle"][5:] == pytest.approx(np.ones(5))


def test_utilization_profile_multi_thread_normalized():
    env = Environment()
    rec = TimelineRecorder(env)
    rec.record(0, "pme", 0, 100)
    rec.record(1, "idle", 0, 100)
    prof = utilization_profile(rec, bins=4)
    # Only half of thread-time is pme.
    assert prof["pme"] == pytest.approx(0.5 * np.ones(4))


def test_utilization_profile_empty_raises():
    env = Environment()
    rec = TimelineRecorder(env)
    with pytest.raises(ValueError):
        utilization_profile(rec)


def test_ascii_render_contains_threads_and_legend():
    _, rec = make_recorder()
    art = render_ascii_timeline(rec, width=40)
    assert "T  0" in art
    assert "legend:" in art
    assert "R" in art and "G" in art


def test_ascii_render_empty():
    env = Environment()
    rec = TimelineRecorder(env)
    assert "empty" in render_ascii_timeline(rec)
