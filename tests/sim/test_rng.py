"""StreamRegistry reset semantics (the stale-cached-generator bugfix).

Pre-fix behaviour: ``reset()`` *dropped* the name->Generator mapping,
so the next ``stream(name)`` call built a fresh generator — but any
component that had cached the old handle kept drawing from the stale,
already-advanced sequence.  Per-job reseeding on engine reuse (the
serve job runtime's pattern) therefore silently produced draws from
the previous job's stream position.
"""

import numpy as np
import pytest

from repro.sim.rng import StreamRegistry


def test_stream_is_deterministic_per_name():
    a = StreamRegistry(42).stream("link.0.1")
    b = StreamRegistry(42).stream("link.0.1")
    assert a.uniform() == b.uniform()


def test_streams_independent_by_name():
    reg = StreamRegistry(42)
    assert reg.stream("a").uniform() != reg.stream("b").uniform()


def test_reset_rewinds_fresh_lookup():
    """Post-reset lookup restarts the sequence (held pre-fix too)."""
    reg = StreamRegistry(7)
    first = reg.stream("x").uniform()
    reg.stream("x").uniform()
    reg.reset()
    assert reg.stream("x").uniform() == first


def test_reset_rewinds_cached_handle():
    """THE pre-fix-failing case: a cached Generator must follow reset().

    Before the fix reset() cleared the mapping, so ``cached`` kept
    drawing from the stale pre-reset stream while new ``stream()``
    calls drew the reseeded sequence — two components disagreeing on
    the same named stream.
    """
    reg = StreamRegistry(7)
    cached = reg.stream("x")  # component caches the handle at setup
    first = cached.uniform()
    cached.uniform()  # advance
    reg.reset()
    assert cached.uniform() == first
    # And the cached handle is still THE registry stream, not a fork.
    assert reg.stream("x") is cached


def test_reset_with_new_root_seed_rebases_cached_handles():
    """Per-job reseeding: reset(root_seed=s) == fresh registry at s."""
    reg = StreamRegistry(1)
    cached = reg.stream("job.rng")
    cached.uniform()
    reg.reset(root_seed=2)
    expect = StreamRegistry(2).stream("job.rng")
    assert cached.uniform() == expect.uniform()
    assert [cached.integers(100) for _ in range(4)] == [
        expect.integers(100) for _ in range(4)
    ]
    assert reg.root_seed == 2


def test_reset_interleaved_jobs_bit_identical():
    """Engine-reuse scenario: job A, reset to job B's seed, back to A.

    Every replay of a seed must reproduce the exact draw sequence no
    matter what ran before the reset.
    """
    reg = StreamRegistry(11)
    gens = {name: reg.stream(name) for name in ("link.0.1", "rfifo.3.0")}

    def run_job(seed, ndraws):
        reg.reset(root_seed=seed)
        return {n: [g.uniform() for _ in range(ndraws)] for n, g in gens.items()}

    a1 = run_job(100, 5)
    b = run_job(200, 3)
    a2 = run_job(100, 5)
    assert a1 == a2
    assert b != a1


def test_reset_preserves_numpy_generator_type():
    reg = StreamRegistry(3)
    gen = reg.stream("y")
    reg.reset()
    assert isinstance(gen, np.random.Generator)
    # Full Generator API still works on the reseeded handle.
    gen.exponential(2.0)
    gen.integers(10)


def test_new_stream_after_reset_matches_fresh_registry():
    """A name first requested *after* a reseeding reset is also rebased."""
    reg = StreamRegistry(5)
    reg.stream("old").uniform()
    reg.reset(root_seed=6)
    assert (
        reg.stream("brand.new").uniform()
        == StreamRegistry(6).stream("brand.new").uniform()
    )
