"""Sharded conservative-PDES engine: serial-equivalence and isolation.

The contract under test (docs/SCALING.md): for any workload, shard
count, and transport, the sharded engine produces **bit-identical**
simulated times to the single-process serial engine — same final clock
``repr``, same per-message arrival order at shard boundaries.  Plus the
module-global-state audit: two simulations in one process must never
observe each other (ISSUE satellite: concurrent Environments).
"""

import dataclasses

import pytest

from repro.charm import Charm
from repro.converse import ConverseRuntime, RunConfig
from repro.converse.messages import ConverseMessage
from repro.harness.pingpong import pingpong_run
from repro.harness.shardbench import run_sharded_namd, run_sharded_pingpong
from repro.sim import Environment

SHARD_COUNTS = (1, 2, 4)


# -- fuzz matrix: bit-identical sim times vs serial -------------------------

@pytest.mark.parametrize("nbytes", [16, 2048])
@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_pingpong_sharded_matches_serial(nshards, nbytes):
    config = RunConfig(nnodes=4, workers_per_process=4)
    dst = (config.nnodes - 1) * config.pes_per_node
    serial = pingpong_run(config, nbytes, dst_rank=dst, trips=6)
    sharded = run_sharded_pingpong(config, nbytes, nshards, trips=6)
    assert repr(sharded["sim_time"]) == repr(serial["sim_time"])
    assert [repr(t) for t in sharded["rtts"]] == [repr(t) for t in serial["rtts"]]


def _serial_namd(seed):
    from repro.harness.benchgate import _namd_run

    return _namd_run(True, 1, 256, 4, 1, 1, seed=seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [17, 42])
@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_namd_sharded_matches_serial(nshards, seed):
    """Mini-NAMD (m2m PME, reductions, RDMA) across the fuzz matrix."""
    serial = _serial_namd(seed)
    sharded = run_sharded_namd(True, 1, 256, 4, 1, 1, nshards, seed=seed)
    assert repr(sharded["sim_time"]) == repr(serial["sim_time"])
    assert [repr(t) for t in sharded["step_times"]] == [
        repr(t) for t in serial["step_times"]
    ]


# -- shard-boundary message ordering ----------------------------------------

def _all_to_one(build):
    """Every PE sends one message to rank 0; return ordered arrivals.

    ``build(record_arrivals)`` returns (runner, finisher); arrivals are
    (repr(sim_time), src_rank) tuples in delivery order — the exact
    observable a shard-boundary ordering bug would corrupt, since the
    senders live on different shards but their messages interleave at
    one destination.
    """
    arrivals = []
    run = build(arrivals)
    run()
    return arrivals


def _setup_all_to_one(rt, env, arrivals, expected, nbytes=64):
    done = env.event()

    def collect(pe, msg):
        arrivals.append((repr(env.now), msg.payload))
        if len(arrivals) >= expected:
            done.succeed()
        return
        yield  # pragma: no cover - makes `collect` a generator handler

    def kick(pe, msg):
        yield from pe.send(0, hid_collect, nbytes, pe.rank)

    hid_collect = rt.register_handler(collect)
    hid_kick = rt.register_handler(kick)
    for rank in range(1, expected + 1):
        pe = rt.pes[rank]
        if pe is not None:
            pe.local_q.append(ConverseMessage(hid_kick, 0, None, rank, rank))
    return done


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_boundary_arrival_order_matches_serial(nshards):
    """Concurrent cross-shard sends to one PE keep the serial order."""
    config = RunConfig(nnodes=4, workers_per_process=4)
    expected = config.nnodes * config.pes_per_node - 1

    env = Environment()
    rt = ConverseRuntime(env, config)
    serial_arrivals = []
    done = _setup_all_to_one(rt, env, serial_arrivals, expected)
    rt.run_until(done)
    assert len(serial_arrivals) == expected

    from repro.bgq.shardnet import ReservationFabric, ShardedBGQMachine
    from repro.sim.shard import ShardCoordinator, ShardEnvironment

    fabric = ReservationFabric(config.nnodes, nshards)
    shard_arrivals = []
    shards = []
    for sid in range(nshards):
        senv = ShardEnvironment(sid)
        machine = ShardedBGQMachine(senv, config.nnodes, sid, nshards, fabric=fabric)
        srt = ConverseRuntime(senv, config, machine=machine)
        sdone = _setup_all_to_one(
            srt, senv, shard_arrivals if sid == 0 else [], expected
        )
        srt.start()
        shards.append((senv, srt, sdone))
    ShardCoordinator([s[0] for s in shards], fabric.window, fabric).run(
        shards[0][2]
    )
    for _, srt, _ in shards:
        srt.stop()
    assert shard_arrivals == serial_arrivals


# -- subprocess transport ----------------------------------------------------

def test_mp_transport_matches_serial():
    config = RunConfig(nnodes=4, workers_per_process=4)
    dst = (config.nnodes - 1) * config.pes_per_node
    serial = pingpong_run(config, 512, dst_rank=dst, trips=6)
    try:
        sharded = run_sharded_pingpong(config, 512, 2, trips=6, transport="mp")
    except (ImportError, OSError, PermissionError) as exc:
        pytest.skip(f"shared-memory subprocess transport unavailable: {exc}")
    assert repr(sharded["sim_time"]) == repr(serial["sim_time"])
    assert [repr(t) for t in sharded["rtts"]] == [repr(t) for t in serial["rtts"]]


# -- rank -> endpoint formula -------------------------------------------------

@pytest.mark.parametrize(
    "config",
    [
        RunConfig(nnodes=2, workers_per_process=4),
        RunConfig(nnodes=2, workers_per_process=4, comm_threads_per_process=1),
        RunConfig(nnodes=2, workers_per_process=4, comm_threads_per_process=2),
        RunConfig(nnodes=2, processes_per_node=2, workers_per_process=2),
        RunConfig(
            nnodes=2, processes_per_node=2, workers_per_process=2,
            comm_threads_per_process=1,
        ),
    ],
    ids=["smp", "smp+1ct", "smp+2ct", "2proc", "2proc+ct"],
)
def test_rank_endpoint_matches_constructed_pes(config):
    """The closed-form mapping equals the object-derived endpoints.

    ``rank_endpoint`` is what sharded mirrors use to address PEs they
    did not construct; it must agree with the endpoint every locally
    constructed PE actually has, for every process/commthread layout.
    """
    env = Environment()
    rt = ConverseRuntime(env, config)
    for rank, pe in enumerate(rt.pes):
        expected = pe.process.inbound_endpoint(pe.local_index)
        assert rt.rank_endpoint(rank) == expected


# -- module-global-state isolation (concurrent Environments) -----------------

def test_two_charms_mint_independent_section_ids_and_uids():
    config = RunConfig(nnodes=1, workers_per_process=2)
    c1 = Charm(config)
    c2 = Charm(config)
    assert next(c1._section_counter) == 0
    assert next(c2._section_counter) == 0
    assert c1.next_uid() == 1
    assert c2.next_uid() == 1


def test_two_l2_units_mint_independent_anon_queue_names():
    from repro.bgq.l2 import L2AtomicUnit
    from repro.queues import L2AtomicQueue

    e1, e2 = Environment(), Environment()
    l2a, l2b = L2AtomicUnit(e1), L2AtomicUnit(e2)
    qa = L2AtomicQueue(e1, l2a)
    qb = L2AtomicQueue(e2, l2b)
    assert qa.name == qb.name  # both first anonymous queue in their sim


def test_two_cores_mint_independent_member_ids():
    from repro.bgq.core import Core

    e1, e2 = Environment(), Environment()
    c1, c2 = Core(e1), Core(e2)
    m1 = c1.register(1.0)
    m2 = c2.register(1.0)
    assert m1.id == m2.id == 0


def test_two_ffts_in_different_charms_get_equal_uids():
    """FFT3D uids come from the owning Charm, not a class-level global
    — two concurrent simulations must mint the same uid sequence or
    their m2m tags (which embed the uid) would diverge between a
    sharded mirror and the serial engine."""
    from repro.fft.fft3d import FFT3D

    config = RunConfig(nnodes=1, workers_per_process=2)
    uids = []
    for _ in range(2):
        charm = Charm(config)
        fft = FFT3D(charm, n=4, use_m2m=False)
        uids.append(fft.uid)
    assert uids[0] == uids[1]
