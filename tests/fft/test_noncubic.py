"""Non-cubic grids: pencil geometry and end-to-end distributed FFT."""

import numpy as np
import pytest

from repro.charm import Charm
from repro.converse import RunConfig
from repro.fft import FFT3D, PencilGrid, choose_grid


def test_choose_grid_noncubic_constraints():
    # PR splits X and Y; PC splits Y and Z.
    pr, pc = choose_grid(8, (16, 4, 16))
    assert pr <= 4 and pc <= 4 and pr * pc == 8
    with pytest.raises(ValueError):
        choose_grid(64, (2, 2, 64))  # no admissible factorization


def test_pencil_grid_noncubic_shapes():
    g = PencilGrid((12, 8, 6), 2, 2)
    assert g.shape3 == (12, 8, 6)
    assert g.z_shape(0, 0) == (6, 4, 6)
    assert g.y_shape(0, 0) == (6, 8, 3)
    assert g.x_shape(0, 0) == (12, 4, 3)


def test_pencil_grid_block_bytes_conservation_noncubic():
    g = PencilGrid((12, 8, 6), 2, 4)
    total = sum(
        g.zy_block_bytes(r, c, k)
        for r in range(2) for c in range(4) for k in range(4)
    )
    assert total == 12 * 8 * 6 * 16


def test_scatter_gather_noncubic_roundtrip():
    g = PencilGrid((12, 8, 6), 2, 2)
    rng = np.random.default_rng(1)
    full = rng.standard_normal((12, 8, 6)) + 0j
    assert np.allclose(g.gather_z(g.scatter_z(full)), full)


@pytest.mark.parametrize("use_m2m", [False, True])
def test_distributed_fft_noncubic_matches_numpy(use_m2m):
    charm = Charm(
        RunConfig(nnodes=2, workers_per_process=2,
                  comm_threads_per_process=1 if use_m2m else 0)
    )
    driver = FFT3D(
        charm, (12, 8, 6), nchares=4, use_m2m=use_m2m,
        iterations=1, capture_forward=True,
    )
    result = driver.run()
    got = driver.grid.gather_x(result.forward_blocks)
    want = np.fft.fftn(driver.input)
    assert np.allclose(got, want, atol=1e-9)
    back = driver.grid.gather_z(result.blocks)
    assert np.allclose(back, driver.input, atol=1e-9)


def test_namd_pme_noncubic_grid():
    """Distributed PME on a non-cubic grid matches the reference."""
    import dataclasses

    from repro.namd.charm_app import NamdCharm
    from repro.namd.pme import pme_reciprocal
    from repro.namd.system import MolecularSystem, build_system

    base = build_system(96, temperature=0.0, bond_fraction=0.0, seed=5)
    # Force a non-cubic PME grid over the same (cubic) box.
    spec = dataclasses.replace(base.spec, pme_grid=(12, 10, 8))
    system = MolecularSystem(
        spec=spec,
        positions=base.positions.copy(),
        velocities=base.velocities.copy(),
        charges=base.charges,
        masses=base.masses,
        bonds=[],
    )
    e_ref, _ = pme_reciprocal(
        system.positions, system.charges, system.box, (12, 10, 8), 0.35, 4
    )
    charm = Charm(RunConfig(nnodes=2, workers_per_process=2))
    app = NamdCharm(charm, system, pme_enabled=True, pme_every=1, n_steps=1, dt=0.004)
    app.run()
    assert app.recip_energies[0] == pytest.approx(e_ref, rel=1e-9)
