"""Tests for the distributed 3D FFT: geometry and end-to-end numerics."""

import numpy as np
import pytest

from repro.charm import Charm
from repro.converse import RunConfig
from repro.fft import FFT3D, PencilGrid, choose_grid, fft_flops, fft_instructions, split_ranges


# ---------- geometry ----------------------------------------------------------

def test_split_ranges_cover_exactly():
    rngs = split_ranges(10, 3)
    assert rngs == [(0, 4), (4, 7), (7, 10)]
    assert split_ranges(8, 8) == [(i, i + 1) for i in range(8)]


def test_split_ranges_validate():
    with pytest.raises(ValueError):
        split_ranges(4, 5)
    with pytest.raises(ValueError):
        split_ranges(4, 0)


def test_choose_grid_near_square():
    assert choose_grid(16, 64) == (4, 4)
    assert choose_grid(8, 64) == (2, 4)
    assert choose_grid(1, 8) == (1, 1)


def test_choose_grid_respects_problem_size():
    # 64 chares on an 8^3 problem: 8x8 fits exactly.
    assert choose_grid(64, 8) == (8, 8)
    with pytest.raises(ValueError):
        choose_grid(128, 8)  # would need a factor > 8


def test_pencil_grid_shapes_consistent():
    g = PencilGrid(8, 2, 4)
    for r in range(2):
        for c in range(4):
            zx, zy, zz = g.z_shape(r, c)
            assert zz == 8
            yx, yy, yz = g.y_shape(r, c)
            assert yy == 8
            xx, xy_, xz = g.x_shape(r, c)
            assert xx == 8


def test_scatter_gather_z_roundtrip():
    g = PencilGrid(8, 2, 2)
    rng = np.random.default_rng(0)
    full = rng.standard_normal((8, 8, 8)) + 0j
    blocks = g.scatter_z(full)
    assert np.allclose(g.gather_z(blocks), full)


def test_block_bytes_sum_to_whole_grid():
    g = PencilGrid(8, 2, 4)
    total = sum(
        g.zy_block_bytes(r, c, k)
        for r in range(2)
        for c in range(4)
        for k in range(4)
    )
    assert total == 8 * 8 * 8 * 16  # every element moved exactly once


def test_fft_cost_model():
    assert fft_flops(1) == 0
    assert fft_flops(8) == pytest.approx(5 * 8 * 3)
    assert fft_instructions(8, qpx=True) * 4 == pytest.approx(fft_flops(8))
    assert fft_instructions(8, qpx=False) == pytest.approx(fft_flops(8))
    with pytest.raises(ValueError):
        fft_flops(0)


# ---------- end-to-end ------------------------------------------------------

def run_fft(n=8, nchares=4, use_m2m=False, iterations=1, nnodes=2, workers=2,
            comm_threads=0, capture_forward=True):
    charm = Charm(
        RunConfig(
            nnodes=nnodes,
            workers_per_process=workers,
            comm_threads_per_process=comm_threads,
        )
    )
    driver = FFT3D(
        charm,
        n,
        nchares=nchares,
        use_m2m=use_m2m,
        iterations=iterations,
        capture_forward=capture_forward,
    )
    result = driver.run()
    return driver, result


def test_p2p_forward_matches_numpy():
    driver, result = run_fft(n=8, nchares=4, use_m2m=False)
    got = driver.grid.gather_x(result.forward_blocks)
    want = np.fft.fftn(driver.input)
    assert np.allclose(got, want, atol=1e-9)


def test_p2p_roundtrip_restores_input():
    driver, result = run_fft(n=8, nchares=4, use_m2m=False)
    got = driver.grid.gather_z(result.blocks)
    assert np.allclose(got, driver.input, atol=1e-9)


def test_m2m_forward_matches_numpy():
    driver, result = run_fft(
        n=8, nchares=4, use_m2m=True, nnodes=2, workers=2, comm_threads=1
    )
    got = driver.grid.gather_x(result.forward_blocks)
    want = np.fft.fftn(driver.input)
    assert np.allclose(got, want, atol=1e-9)


def test_m2m_roundtrip_restores_input():
    driver, result = run_fft(
        n=8, nchares=4, use_m2m=True, nnodes=2, workers=2, comm_threads=1
    )
    got = driver.grid.gather_z(result.blocks)
    assert np.allclose(got, driver.input, atol=1e-9)


def test_p2p_and_m2m_numerics_identical():
    d1, r1 = run_fft(n=8, nchares=4, use_m2m=False)
    d2, r2 = run_fft(n=8, nchares=4, use_m2m=True, comm_threads=1)
    a = d1.grid.gather_x(r1.forward_blocks)
    b = d2.grid.gather_x(r2.forward_blocks)
    assert np.allclose(a, b, atol=1e-9)


def test_multiple_iterations_counted():
    driver, result = run_fft(n=8, nchares=4, iterations=3)
    assert len(result.step_times) == 3
    assert result.step_times == sorted(result.step_times)
    assert result.mean_step_time > 0


def test_single_chare_degenerate_case():
    driver, result = run_fft(n=8, nchares=1, nnodes=1, workers=1)
    got = driver.grid.gather_z(result.blocks)
    assert np.allclose(got, driver.input, atol=1e-9)


def test_fine_grained_m2m_beats_p2p():
    """Table I's headline: at the strong-scaling limit (one pencil per
    node, every transpose block a small remote message), m2m completes
    a step substantially faster than p2p."""
    common = dict(n=8, nchares=8, nnodes=8, workers=1, iterations=3,
                  capture_forward=False)
    _, r_p2p = run_fft(use_m2m=False, comm_threads=1, **common)
    _, r_m2m = run_fft(use_m2m=True, comm_threads=1, **common)
    assert r_p2p.mean_step_time / r_m2m.mean_step_time > 1.4


def test_iterations_validate():
    charm = Charm(RunConfig(nnodes=1, workers_per_process=1))
    with pytest.raises(ValueError):
        FFT3D(charm, 8, iterations=0)
