"""Exporter edge cases: empty profiles, zero-sample nodes, CLI verbs."""

import json

from repro.obs import (
    Profile,
    ProfileSession,
    format_collapsed,
    format_compare,
    format_hotspots,
    load_profile,
    write_collapsed,
    write_profile_json,
)
from repro.obs.cli import main as obs_main
from repro.obs.exporters import compare_profiles
from repro.sim import Environment


def make_profile(label="t", n=60):
    with ProfileSession(label, stride=1) as sess:
        env = Environment()

        def worker(env):
            for i in range(n):
                yield env.timeout(0.0 if i % 2 else 1.0)

        env.process(worker(env), name="pe0")
        env.run()
    return sess.profile()


def empty_profile(label="empty"):
    return Profile(label, [], envs=0)


# -- collapsed-stack ----------------------------------------------------


def test_collapsed_emits_three_level_stacks():
    text = format_collapsed(make_profile())
    for line in text.strip().splitlines():
        stack, value = line.rsplit(" ", 1)
        assert stack.startswith("engine;")
        assert len(stack.split(";")) == 3
        assert int(value) > 0


def test_collapsed_empty_profile_is_empty_string():
    assert format_collapsed(empty_profile()) == ""


def test_collapsed_skips_zero_sample_nodes():
    profile = Profile(
        "z",
        [
            {"event_type": "Timeout", "owner": "a", "count": 5, "nanos": 100,
             "deque_pops": 0, "heap_pops": 5, "span_first": -1, "span_last": -1},
            {"event_type": "Timeout", "owner": "b", "count": 1, "nanos": 0,
             "deque_pops": 1, "heap_pops": 0, "span_first": -1, "span_last": -1},
        ],
        envs=1,
    )
    text = format_collapsed(profile)
    assert "engine;Timeout;a 100" in text
    assert ";b" not in text


def test_write_collapsed_roundtrip(tmp_path):
    profile = make_profile()
    out = tmp_path / "flame.txt"
    write_collapsed(profile, out)
    assert out.read_text() == format_collapsed(profile)


# -- hotspot table ------------------------------------------------------


def test_hotspots_table_mentions_coverage():
    text = format_hotspots(make_profile(), top=5)
    assert "coverage:" in text
    assert "share" in text


def test_hotspots_empty_profile():
    text = format_hotspots(empty_profile())
    assert "(empty profile)" in text


# -- compare ------------------------------------------------------------


def test_compare_deltas_sum_to_zero_for_same_profile():
    profile = make_profile()
    rows = compare_profiles(profile, profile)
    assert all(row["delta"] == 0.0 for row in rows)


def test_compare_detects_new_site():
    before = make_profile("a", n=30)
    extra = dict(before.nodes[0])
    extra["owner"] = "brand.new"
    after = Profile("b", [dict(n) for n in before.nodes] + [extra], envs=1)
    rows = compare_profiles(before, after)
    news = [r for r in rows if r["owner"] == "brand.new"]
    assert news and news[0]["share_before"] == 0.0
    assert news[0]["delta"] > 0


def test_format_compare_empty_profiles():
    text = format_compare(empty_profile("a"), empty_profile("b"))
    assert "(no sites in either profile)" in text


# -- JSON roundtrip + CLI ----------------------------------------------


def test_profile_json_file_roundtrip(tmp_path):
    profile = make_profile()
    path = tmp_path / "p.json"
    write_profile_json(profile, path)
    back = load_profile(path)
    assert back.to_json() == profile.to_json()
    # committed-artifact hygiene: trailing newline, sorted keys
    raw = path.read_text()
    assert raw.endswith("\n")
    assert json.loads(raw)["schema"] == 1


def test_cli_hotspots_and_flame(tmp_path, capsys):
    path = tmp_path / "p.json"
    write_profile_json(make_profile(), path)
    assert obs_main(["hotspots", str(path)]) == 0
    out = capsys.readouterr().out
    assert "coverage:" in out

    flame_out = tmp_path / "f.txt"
    assert obs_main(["flame", str(path), "-o", str(flame_out)]) == 0
    assert flame_out.read_text().startswith("engine;")


def test_cli_compare(tmp_path, capsys):
    pa = tmp_path / "a.json"
    pb = tmp_path / "b.json"
    write_profile_json(make_profile("a", n=30), pa)
    write_profile_json(make_profile("b", n=90), pb)
    assert obs_main(["compare", str(pa), str(pb)]) == 0
    out = capsys.readouterr().out
    assert "profile compare:" in out
    assert "delta" in out
