"""Metrics registry: counters/gauges/histograms, snapshots, Prometheus text."""

import json

import pytest

from repro.obs import LATENCY_BUCKETS_S, MetricsRegistry, percentile
from repro.obs.metrics import Counter, Gauge, Histogram, _format_float, _prom_label_value, _prom_name


# -- percentile (the canonical nearest-rank shared with servebench) -----


def test_percentile_empty_and_single():
    assert percentile([], 0.5) == 0.0
    assert percentile([3.0], 0.0) == 3.0
    assert percentile([3.0], 1.0) == 3.0


def test_percentile_nearest_rank():
    vals = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(vals, 0.0) == 1.0
    assert percentile(vals, 0.5) == 3.0
    assert percentile(vals, 1.0) == 5.0


# -- metric types ------------------------------------------------------


def test_counter_inc_and_negative_rejected():
    reg = MetricsRegistry()
    c = reg.counter("jobs", "jobs seen")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "queue depth")
    g.set(5)
    g.dec()
    g.inc(3)
    assert g.value == 7


def test_histogram_buckets_and_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(56.05)
    # cumulative(): le=0.1 -> 1, le=1.0 -> 3, le=10.0 -> 4, +Inf -> 5
    assert h.cumulative() == [
        (0.1, 1),
        (1.0, 3),
        (10.0, 4),
        (float("inf"), 5),
    ]
    assert h.percentile(0.5) == 0.5
    assert h.percentile(1.0) == 50.0


def test_histogram_percentile_matches_module_percentile():
    h = MetricsRegistry().histogram("x", "x", buckets=LATENCY_BUCKETS_S)
    vals = [0.31 * (i % 7) + 0.01 for i in range(40)]
    for v in vals:
        h.observe(v)
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert h.percentile(q) == percentile(vals, q)


def test_labels_create_child_series():
    reg = MetricsRegistry()
    c = reg.counter("done", "jobs", labels=("state",))
    c.labels(state="ok").inc()
    c.labels(state="ok").inc()
    c.labels(state="failed").inc()
    snap = reg.snapshot()
    series = snap["done"]["series"]
    assert {(s["labels"]["state"], s["value"]) for s in series} == {
        ("ok", 2.0),
        ("failed", 1.0),
    }


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    c1 = reg.counter("a", "help")
    assert reg.counter("a", "help") is c1
    assert reg.get("a") is c1
    assert reg.get("missing") is None
    with pytest.raises(ValueError):
        reg.gauge("a", "help")


def test_snapshot_is_deterministic_and_json_safe():
    reg = MetricsRegistry()
    reg.counter("z", "z").inc()
    reg.gauge("a", "a").set(1)
    h = reg.histogram("m", "m", buckets=(1.0,))
    h.observe(0.5)
    snap1 = reg.snapshot()
    snap2 = reg.snapshot()
    assert snap1 == snap2
    assert list(snap1) == sorted(snap1)
    json.dumps(snap1)  # must be serializable as-is


# -- Prometheus text exposition ---------------------------------------


def test_prometheus_text_histogram_shape():
    reg = MetricsRegistry()
    h = reg.histogram("slice_s", "slice durations", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    text = reg.prometheus_text()
    assert '# TYPE slice_s histogram' in text
    assert 'slice_s_bucket{le="0.1"} 1' in text
    assert 'slice_s_bucket{le="1"} 2' in text
    assert 'slice_s_bucket{le="+Inf"} 2' in text
    assert "slice_s_count 2" in text
    assert text.endswith("\n")


def test_prometheus_label_escaping():
    reg = MetricsRegistry()
    c = reg.counter("odd", "weird labels", labels=("tag",))
    c.labels(tag='a"b\\c\nd').inc()
    text = reg.prometheus_text()
    assert 'tag="a\\"b\\\\c\\nd"' in text


def test_prometheus_name_sanitization():
    assert _prom_name("serve.queue.depth") == "serve_queue_depth"
    assert _prom_name("9lives") == "_9lives"
    assert _prom_label_value('x"y') == 'x\\"y'


def test_format_float_collapses_integers():
    assert _format_float(2.0) == "2"
    assert _format_float(0.25) == "0.25"
    assert _format_float(float("inf")) == "+Inf"


def test_write_json_and_prometheus(tmp_path):
    reg = MetricsRegistry()
    reg.counter("c", "c").inc()
    jpath = tmp_path / "m.json"
    ppath = tmp_path / "m.prom"
    reg.write_json(jpath)
    reg.write_prometheus(ppath)
    assert json.loads(jpath.read_text())["c"]["series"][0]["value"] == 1.0
    assert "c_total" in ppath.read_text() or "c 1" in ppath.read_text()
