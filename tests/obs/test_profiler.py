"""Profiler contract: deterministic, bounded, correctly attributed.

The two load-bearing claims (docs/OBSERVABILITY.md):

1. Profiling never perturbs the simulation — sim times and event
   counts are bit-identical with and without a ProfileSession.
2. The accumulator stays bounded by *code*, not events: per-event
   callable instances degrade to their class, process names aggregate
   across ranks.
"""

import pytest

from repro.obs import EngineProfiler, Profile, ProfileSession, owner_name
from repro.obs.profiler import _norm
from repro.sim import Environment
from repro.sim import engine as engine_mod


def run_workload(env, n=200):
    """A deterministic mix of zero-delay and timed events."""
    log = []

    def worker(env, k):
        for i in range(n):
            if i % 3 == 0:
                yield env.timeout(0.0)
            else:
                yield env.timeout(0.5 + k)
            log.append((k, env.now))

    for k in range(3):
        env.process(worker(env, k), name=f"pe{k}")
    env.run()
    return env.now, env.events_executed, tuple(log)


def test_profiled_run_is_bit_identical():
    base = run_workload(Environment())
    with ProfileSession("t"):
        prof = run_workload(Environment())
    assert base == prof


@pytest.mark.parametrize("stride", [1, 4, 32])
def test_profiled_run_is_bit_identical_at_any_stride(stride):
    base = run_workload(Environment())
    with ProfileSession("t", stride=stride):
        prof = run_workload(Environment())
    assert base == prof


def test_event_counts_are_exact_despite_sampling():
    """Every event lands in exactly one sampled interval."""
    with ProfileSession("t", stride=7) as sess:
        env = Environment()
        run_workload(env)
    profile = sess.profile()
    assert profile.total_count == env.events_executed
    # Pop-site split also covers every event exactly once.
    pops = sum(n["deque_pops"] + n["heap_pops"] for n in profile.nodes)
    assert pops == env.events_executed


def test_exact_mode_attributes_every_event():
    with ProfileSession("t", stride=1) as sess:
        env = Environment()
        run_workload(env)
    profile = sess.profile()
    assert profile.total_count == env.events_executed
    # In exact mode the timed share is everything but the final flush.
    assert all(n["count"] > 0 for n in profile.nodes)


def test_accumulator_is_bounded_by_code_not_events():
    """10x the events must not mean 10x the keys."""
    with ProfileSession("small", stride=1) as sess_small:
        run_workload(Environment(), n=50)
    with ProfileSession("big", stride=1) as sess_big:
        run_workload(Environment(), n=500)
    small = {k for p in sess_small.profilers for k in p.acc}
    big = {k for p in sess_big.profilers for k in p.acc}
    assert len(big) <= len(small) + 2


def test_owner_names_aggregate_ranks():
    with ProfileSession("t", stride=1) as sess:
        run_workload(Environment())
    profile = sess.profile()
    owners = {n["owner"] for n in profile.nodes}
    # The three pe0/pe1/pe2 processes collapse into one owner.
    assert any("pe*" in o for o in owners)
    assert not any("pe0" in o or "pe1" in o for o in owners)


def test_session_only_covers_environments_constructed_inside():
    outside = Environment()
    with ProfileSession("t") as sess:
        inside = Environment()
    after = Environment()
    assert outside.profiler is None
    assert after.profiler is None
    assert inside.profiler is sess.profilers[0]
    assert engine_mod._PROFILER_FACTORY[0] is None


def test_sessions_restore_previous_hook_when_nested():
    with ProfileSession("outer") as outer:
        with ProfileSession("inner") as inner:
            env = Environment()
        env2 = Environment()
    assert env.profiler in inner.profilers
    assert env2.profiler in outer.profilers
    assert engine_mod._PROFILER_FACTORY[0] is None


def test_session_disarms_after_exception():
    try:
        with ProfileSession("t"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert engine_mod._PROFILER_FACTORY[0] is None


def test_next_gap_is_deterministic_and_jittered():
    a = EngineProfiler(index=0, stride=8)
    b = EngineProfiler(index=0, stride=8)
    gaps_a = [a.next_gap() for _ in range(100)]
    gaps_b = [b.next_gap() for _ in range(100)]
    assert gaps_a == gaps_b
    assert all(1 <= g <= 15 for g in gaps_a)
    assert len(set(gaps_a)) > 3  # jittered, not a fixed stride
    # stride=1 is exact mode: every gap is 1.
    exact = EngineProfiler(index=0, stride=1)
    assert [exact.next_gap() for _ in range(10)] == [1] * 10


def test_sibling_profilers_sample_out_of_lockstep():
    gaps0 = [EngineProfiler(index=0, stride=8).next_gap() for _ in range(1)]
    p0 = EngineProfiler(index=0, stride=8)
    p1 = EngineProfiler(index=1, stride=8)
    assert [p0.next_gap() for _ in range(20)] != [p1.next_gap() for _ in range(20)]
    assert gaps0  # silence unused warning


def test_flush_is_idempotent():
    with ProfileSession("t", stride=1) as sess:
        env = Environment()
        run_workload(env, n=10)
    prof = sess.profilers[0]
    prof.flush()
    count_once = prof.total_count()
    prof.flush()
    assert prof.total_count() == count_once == env.events_executed


def test_norm_collapses_digit_runs():
    assert _norm("pe3") == "pe*"
    assert _norm("mu0-ififo12") == "mu*-ififo*"
    assert _norm("pkt-1->5") == "pkt-*->*"
    assert _norm("plain") == "plain"


def test_owner_name_shapes():
    assert owner_name(None) == "(no-callback)"

    class Waker:
        def __call__(self, ev):
            pass

    assert owner_name(Waker) == "Waker"

    class Proc:
        name = "pe7"

        def resume(self, ev):
            pass

    assert owner_name(Proc().resume) == "Proc.resume:pe*"

    def free_fn(ev):
        pass

    assert "free_fn" in owner_name(free_fn)


def test_profile_roundtrip_and_coverage():
    with ProfileSession("t", stride=1) as sess:
        run_workload(Environment())
    profile = sess.profile()
    data = profile.to_json()
    back = Profile.from_json(data)
    assert back.to_json() == data
    assert 0.0 < profile.coverage(10) <= 1.0
    assert profile.coverage(len(profile.nodes)) == pytest.approx(1.0)
    assert profile.top(3) == profile.nodes[:3]


def test_profile_from_json_rejects_unknown_schema():
    with pytest.raises(ValueError):
        Profile.from_json({"schema": 99, "nodes": []})


def test_profile_merge_sums_counts():
    with ProfileSession("a", stride=1) as sa:
        run_workload(Environment(), n=20)
    with ProfileSession("b", stride=1) as sb:
        run_workload(Environment(), n=20)
    pa, pb = sa.profile(), sb.profile()
    merged = Profile.merge("ab", [pa, pb])
    assert merged.total_count == pa.total_count + pb.total_count
    assert merged.envs == pa.envs + pb.envs
