"""Tests for the L2 atomic unit semantics (paper §II / Fig. 2)."""

import pytest

from repro.bgq import BOUNDED_INCREMENT_FAILED, L2AtomicUnit
from repro.bgq.params import BGQParams
from repro.sim import Environment


def run(gen_factory):
    env = Environment()
    l2 = L2AtomicUnit(env)
    results = []

    def proc():
        out = yield from gen_factory(env, l2)
        results.append(out)

    env.process(proc())
    env.run()
    return env, l2, results


def test_load_increment_returns_old_value():
    def body(env, l2):
        c = l2.allocate("c")
        a = yield from l2.load_increment(c)
        b = yield from l2.load_increment(c)
        return (a, b, l2.peek(c))

    _, _, res = run(body)
    assert res == [(0, 1, 2)]


def test_atomic_latency_charged():
    def body(env, l2):
        c = l2.allocate("c")
        yield from l2.load_increment(c)
        return env.now

    env, l2, res = run(body)
    assert res == [pytest.approx(l2.params.l2_atomic_latency)]


def test_bounded_increment_fails_at_bound():
    def body(env, l2):
        c = l2.allocate("c", value=0, bound=2)
        r1 = yield from l2.load_increment_bounded(c)
        r2 = yield from l2.load_increment_bounded(c)
        r3 = yield from l2.load_increment_bounded(c)
        return (r1, r2, r3)

    _, _, res = run(body)
    assert res == [(0, 1, BOUNDED_INCREMENT_FAILED)]


def test_bound_advance_reenables_increment():
    """Consumer advancing the bound lets producers enqueue again (Fig. 2c)."""

    def body(env, l2):
        c = l2.allocate("c", value=0, bound=1)
        r1 = yield from l2.load_increment_bounded(c)
        r2 = yield from l2.load_increment_bounded(c)
        yield from l2.store_add_bound(c, 1)
        r3 = yield from l2.load_increment_bounded(c)
        return (r1, r2, r3)

    _, _, res = run(body)
    assert res == [(0, BOUNDED_INCREMENT_FAILED, 1)]


def test_bounded_increment_requires_bound_word():
    def body(env, l2):
        c = l2.allocate("c")
        yield from l2.load_increment_bounded(c)

    with pytest.raises(ValueError):
        run(body)


def test_store_ops():
    def body(env, l2):
        c = l2.allocate("c", value=5)
        yield from l2.store_add(c, 3)
        v1 = l2.peek(c)
        yield from l2.store_or(c, 0b1000000)
        v2 = l2.peek(c)
        yield from l2.store_xor(c, 0b1000000)
        v3 = l2.peek(c)
        yield from l2.store(c, 0)
        return (v1, v2, v3, l2.peek(c))

    _, _, res = run(body)
    assert res == [(8, 8 | 64, 8, 0)]


def test_duplicate_allocation_rejected():
    env = Environment()
    l2 = L2AtomicUnit(env)
    l2.allocate("x")
    with pytest.raises(ValueError):
        l2.allocate("x")


def test_concurrent_increments_never_lose_updates():
    """Many producers hammering one counter: every increment lands."""
    env = Environment()
    l2 = L2AtomicUnit(env)
    c = l2.allocate("shared")
    seen = []

    def producer(n):
        for _ in range(n):
            old = yield from l2.load_increment(c)
            seen.append(old)

    for _ in range(8):
        env.process(producer(25))
    env.run()
    assert l2.peek(c) == 200
    assert sorted(seen) == list(range(200))  # all distinct slots


def test_op_count_tracks_usage():
    def body(env, l2):
        c = l2.allocate("c", bound=10)
        yield from l2.load(c)
        yield from l2.load_increment(c)
        yield from l2.load_increment_bounded(c)
        return None

    _, l2, _ = run(body)
    assert l2.op_count == 3
