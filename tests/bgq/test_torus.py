"""Tests for 5D torus topology and routing."""

import pytest

from repro.bgq import PARTITION_SHAPES, Torus, bgq_partition_shape


def test_known_partition_shapes():
    assert bgq_partition_shape(512) == (4, 4, 4, 4, 2)
    assert bgq_partition_shape(1024) == (4, 4, 4, 8, 2)
    assert bgq_partition_shape(16384) == (8, 8, 16, 8, 2)


def test_partition_shape_product_matches():
    for n, shape in PARTITION_SHAPES.items():
        prod = 1
        for s in shape:
            prod *= s
        assert prod == n, f"shape {shape} does not have {n} nodes"


def test_derived_shape_for_unknown_power_of_two():
    shape = bgq_partition_shape(2**15)
    prod = 1
    for s in shape:
        prod *= s
    assert prod == 2**15
    assert shape[4] <= 2  # E dimension capped at 2


def test_non_power_of_two_rejected():
    with pytest.raises(ValueError):
        bgq_partition_shape(100)


def test_zero_nodes_rejected():
    with pytest.raises(ValueError):
        bgq_partition_shape(0)


def test_rank_coords_roundtrip():
    t = Torus((2, 3, 4))
    for r in range(t.nnodes):
        assert t.rank(t.coords(r)) == r


def test_coords_out_of_range():
    t = Torus((2, 2))
    with pytest.raises(ValueError):
        t.coords(4)
    with pytest.raises(ValueError):
        t.rank((2, 0))
    with pytest.raises(ValueError):
        t.rank((0,))


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        Torus(())
    with pytest.raises(ValueError):
        Torus((2, 0, 2))


def test_hops_wraparound():
    t = Torus((8,))
    assert t.hops(0, 1) == 1
    assert t.hops(0, 7) == 1  # wraps
    assert t.hops(0, 4) == 4  # antipode
    assert t.hops(3, 3) == 0


def test_hops_multidim():
    t = Torus((4, 4, 4, 4, 2))
    a = t.rank((0, 0, 0, 0, 0))
    b = t.rank((2, 1, 3, 2, 1))
    assert t.hops(a, b) == 2 + 1 + 1 + 2 + 1


def test_max_hops_is_diameter():
    t = Torus((4, 4, 4, 4, 2))
    assert t.max_hops() == 2 + 2 + 2 + 2 + 1
    worst = max(t.hops(0, r) for r in range(t.nnodes))
    assert worst == t.max_hops()


def test_5d_torus_beats_3d_on_diameter():
    """The architectural point of the 5D torus (paper §II-A)."""
    t5 = Torus(bgq_partition_shape(512))
    t3 = Torus((8, 8, 8))
    assert t5.max_hops() < t3.max_hops()


def test_neighbors_counts():
    t = Torus((4, 4, 4, 4, 2))
    # 2 neighbours per dim of size>2, 1 per dim of size 2.
    assert len(t.neighbors(0)) == 2 * 4 + 1
    t_small = Torus((2, 1, 1, 1, 1))
    assert t_small.neighbors(0) == [1]


def test_route_is_minimal_and_connected():
    t = Torus((4, 4, 2))
    for a in [0, 5, 17]:
        for b in [0, 3, 22, 31]:
            route = t.route(a, b)
            assert len(route) == t.hops(a, b)
            # Connectivity: consecutive links chain from a to b.
            cur = a
            for (u, v) in route:
                assert u == cur
                assert v in t.neighbors(u)
                cur = v
            if a != b:
                assert cur == b
            else:
                assert route == []


def test_route_dimension_ordered():
    t = Torus((4, 4))
    route = t.route(t.rank((0, 0)), t.rank((1, 1)))
    # First hop moves along dim 0, then dim 1.
    assert t.coords(route[0][1]) == (1, 0)
    assert t.coords(route[1][1]) == (1, 1)


def test_links_are_all_directed_pairs():
    t = Torus((2, 2))
    links = list(t.links())
    assert len(links) == len(set(links))
    for (u, v) in links:
        assert v in t.neighbors(u)


def test_bisection_scales_with_shape():
    big = Torus((4, 4, 4, 4, 2))
    small = Torus((2, 2, 2, 2, 2))
    assert big.bisection_links() > small.bisection_links()


def test_dim_distance_signed():
    t = Torus((8,))
    assert t.dim_distance(0, 3, 0) == 3
    assert t.dim_distance(0, 7, 0) == -1
    assert t.dim_distance(0, 4, 0) == 4  # tie resolves positive
