"""Tests for the torus network model and messaging unit."""

import pytest

from repro.bgq import BGQMachine, BGQParams, MEMFIFO
from repro.bgq.network import Packet
from repro.sim import Environment


def make_machine(nnodes=2, **kw):
    env = Environment()
    params = BGQParams(**kw)
    m = BGQMachine(env, nnodes, params=params)
    return env, m, params


def test_packet_latency_components():
    """One small packet: nic + hops*hop_latency + serialization."""
    env, m, p = make_machine(2)
    rfifo = m.node(1).mu.allocate_reception_fifo()
    ififo = m.node(0).mu.allocate_injection_fifo()
    desc = m.node(0).mu.make_descriptor(dst=1, nbytes=32, rec_fifo=rfifo.fifo_id)
    ififo.post(desc)
    env.run(until=desc.delivered)
    hops = m.torus.hops(0, 1)
    ser = (32 + p.packet_header_bytes) / (p.link_bandwidth / 1.6e9)
    expected = p.mu_packet_overhead + p.nic_latency + hops * p.hop_latency + ser
    assert env.now == pytest.approx(expected)
    assert len(rfifo) == 1


def test_message_packetized_512B():
    env, m, p = make_machine(2)
    rfifo = m.node(1).mu.allocate_reception_fifo()
    ififo = m.node(0).mu.allocate_injection_fifo()
    desc = m.node(0).mu.make_descriptor(dst=1, nbytes=2048, rec_fifo=rfifo.fifo_id)
    ififo.post(desc)
    env.run(until=desc.delivered)
    assert rfifo.packets_received == 4
    pkts = [rfifo.pop() for _ in range(4)]
    assert [q.seq for q in pkts] == [0, 1, 2, 3]
    assert pkts[-1].is_last and not pkts[0].is_last
    assert sum(q.payload_bytes for q in pkts) == 2048


def test_bandwidth_dominates_large_messages():
    """A 1 MB transfer's time is ~ bytes / link bandwidth."""
    env, m, p = make_machine(2)
    rfifo = m.node(1).mu.allocate_reception_fifo()
    ififo = m.node(0).mu.allocate_injection_fifo()
    nbytes = 1 << 20
    desc = m.node(0).mu.make_descriptor(dst=1, nbytes=nbytes, rec_fifo=rfifo.fifo_id)
    ififo.post(desc)
    env.run(until=desc.delivered)
    bw_cycles = nbytes / (p.link_bandwidth / 1.6e9)
    assert env.now == pytest.approx(bw_cycles, rel=0.35)
    # Effective payload rate must be below the raw link rate (header tax).
    assert nbytes / env.now < p.link_bandwidth / 1.6e9


def test_two_senders_share_a_link():
    """Contention: two flows over the same link take ~2x longer."""
    env = Environment()
    p = BGQParams()
    m = BGQMachine(env, 4, params=p, shape=(4, 1, 1, 1, 1))
    # Routes 0->2 and 1->2: the link 1->2 is shared.
    r2 = m.node(2).mu.allocate_reception_fifo()
    i0 = m.node(0).mu.allocate_injection_fifo()
    i1 = m.node(1).mu.allocate_injection_fifo()
    nbytes = 256 * 1024

    d_solo = m.node(0).mu.make_descriptor(dst=2, nbytes=nbytes, rec_fifo=r2.fifo_id)
    i0.post(d_solo)
    env.run(until=d_solo.delivered)
    t_solo = env.now

    env2 = Environment()
    m2 = BGQMachine(env2, 4, params=p, shape=(4, 1, 1, 1, 1))
    r2b = m2.node(2).mu.allocate_reception_fifo()
    i0b = m2.node(0).mu.allocate_injection_fifo()
    i1b = m2.node(1).mu.allocate_injection_fifo()
    da = m2.node(0).mu.make_descriptor(dst=2, nbytes=nbytes, rec_fifo=r2b.fifo_id)
    db = m2.node(1).mu.make_descriptor(dst=2, nbytes=nbytes, rec_fifo=r2b.fifo_id)
    i0b.post(da)
    i1b.post(db)
    env2.run()
    t_both = env2.now
    assert t_both > 1.6 * t_solo


def test_disjoint_routes_do_not_contend():
    env = Environment()
    p = BGQParams()
    m = BGQMachine(env, 4, params=p, shape=(2, 2, 1, 1, 1))
    nbytes = 128 * 1024
    # 0->1 along dim1 and 2->3 along dim1: disjoint links.
    ra = m.node(1).mu.allocate_reception_fifo()
    rb = m.node(3).mu.allocate_reception_fifo()
    ia = m.node(0).mu.allocate_injection_fifo()
    ib = m.node(2).mu.allocate_injection_fifo()
    da = m.node(0).mu.make_descriptor(dst=1, nbytes=nbytes, rec_fifo=ra.fifo_id)
    db = m.node(2).mu.make_descriptor(dst=3, nbytes=nbytes, rec_fifo=rb.fifo_id)
    ia.post(da)
    ib.post(db)
    env.run(until=env.all_of([da.delivered, db.delivered]))
    t_both = env.now

    env2 = Environment()
    m2 = BGQMachine(env2, 4, params=p, shape=(2, 2, 1, 1, 1))
    ra2 = m2.node(1).mu.allocate_reception_fifo()
    ia2 = m2.node(0).mu.allocate_injection_fifo()
    da2 = m2.node(0).mu.make_descriptor(dst=1, nbytes=nbytes, rec_fifo=ra2.fifo_id)
    ia2.post(da2)
    env2.run(until=da2.delivered)
    assert t_both == pytest.approx(env2.now, rel=0.01)


def test_rget_round_trip_no_remote_software():
    """RDMA read: request out, data streams back, completion fires."""
    env, m, p = make_machine(2)
    ififo = m.node(0).mu.allocate_injection_fifo()
    desc = m.node(0).mu.post_rget(ififo, dst=1, nbytes=8192)
    env.run(until=desc.delivered)
    # Round trip: must exceed 2x one-way small-packet latency plus data
    # serialization, and no reception FIFO was ever needed on node 1.
    one_way = p.nic_latency + p.hop_latency
    assert env.now > 2 * one_way
    assert m.node(1).mu._reception == []


def test_wakeup_signal_on_packet_arrival():
    env, m, p = make_machine(2)
    rfifo = m.node(1).mu.allocate_reception_fifo()
    ififo = m.node(0).mu.allocate_injection_fifo()
    woke = []

    def sleeper():
        thread = m.node(1).thread(0)
        yield from thread.wait_on(rfifo.wakeup)
        woke.append(env.now)

    env.process(sleeper())
    desc = m.node(0).mu.make_descriptor(dst=1, nbytes=64, rec_fifo=rfifo.fifo_id)
    ififo.post(desc)
    env.run()
    assert len(woke) == 1
    assert woke[0] > p.wakeup_latency  # arrival + interrupt delivery


def test_loopback_send_delivers_locally():
    """MU loopback: a node can send to itself (used by processes that
    share a node) without touching any torus link."""
    env, m, p = make_machine(2)
    rfifo = m.node(0).mu.allocate_reception_fifo()
    ififo = m.node(0).mu.allocate_injection_fifo()
    desc = m.node(0).mu.make_descriptor(dst=0, nbytes=64, rec_fifo=rfifo.fifo_id)
    ififo.post(desc)
    env.run(until=desc.delivered)
    assert len(rfifo) == 1
    assert env.now == pytest.approx(p.mu_packet_overhead + p.nic_latency)
    assert m.network.link_utilization() == {}


def test_fifo_pools_bounded():
    env, m, p = make_machine(2)
    mu = m.node(0).mu
    small = BGQParams(mu_injection_fifos=2, mu_reception_fifos=1)
    env2 = Environment()
    m2 = BGQMachine(env2, 2, params=small)
    mu2 = m2.node(0).mu
    mu2.allocate_injection_fifo()
    mu2.allocate_injection_fifo()
    with pytest.raises(RuntimeError):
        mu2.allocate_injection_fifo()
    mu2.allocate_reception_fifo()
    with pytest.raises(RuntimeError):
        mu2.allocate_reception_fifo()


def test_per_fifo_message_rate_bounded_multiple_fifos_scale():
    """Small-message rate: two injection FIFOs ~2x one (paper §III-E)."""
    p = BGQParams()
    nmsgs = 50

    def run_with_fifos(nfifos):
        env = Environment()
        m = BGQMachine(env, 2, params=p)
        rfifo = m.node(1).mu.allocate_reception_fifo()
        fifos = [m.node(0).mu.allocate_injection_fifo() for _ in range(nfifos)]
        descs = []
        for i in range(nmsgs):
            d = m.node(0).mu.make_descriptor(dst=1, nbytes=32, rec_fifo=rfifo.fifo_id)
            fifos[i % nfifos].post(d)
            descs.append(d)
        env.run(until=env.all_of([d.delivered for d in descs]))
        return env.now

    t1 = run_with_fifos(1)
    t2 = run_with_fifos(2)
    assert t1 / t2 > 1.5
