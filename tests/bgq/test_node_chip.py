"""Coverage for node/HWThread behaviours and wakeup-source semantics."""

import pytest

from repro.bgq import BGQMachine, BGQParams, WakeupSource
from repro.sim import Environment


def one_node(**kw):
    env = Environment()
    m = BGQMachine(env, 1, params=BGQParams(**kw))
    return env, m.node(0)


def test_node_thread_layout():
    env, node = one_node()
    assert node.n_threads == 64
    # Threads map to cores in groups of 4 (BG/Q numbering).
    assert node.thread(0).core is node.thread(3).core
    assert node.thread(4).core is not node.thread(0).core
    assert node.thread(63).core is node.cores[15]
    assert [node.thread(i).slot for i in range(4)] == [0, 1, 2, 3]


def test_hwthread_spin_occupies_core():
    env, node = one_node()
    core = node.thread(0).core
    done = {}

    def spinner():
        yield from node.thread(0).spin(10_000, weight=1.0)

    def worker():
        yield from node.thread(1).compute(6_000)
        done["t"] = env.now

    env.process(spinner())
    env.process(worker())
    env.run()
    solo = 6_000 / BGQParams().base_ipc
    assert done["t"] > solo  # the spinner slowed the worker down


def test_hwthread_wait_consumes_nothing():
    env, node = one_node()
    src = WakeupSource(env)
    core = node.thread(0).core
    done = {}

    def waiter():
        yield from node.thread(0).wait_on(src)

    def worker():
        yield from node.thread(1).compute(6_000)
        done["t"] = env.now

    env.process(waiter())
    env.process(worker())
    env.run(until=1_000_000)
    solo = 6_000 / BGQParams().base_ipc
    assert done["t"] == pytest.approx(solo)  # full single-thread speed


def test_wakeup_latched_signal_fires_next_arm():
    env = Environment()
    src = WakeupSource(env)
    src.signal()  # nothing armed: latches
    got = []

    def waiter():
        yield src.arm()
        got.append(env.now)

    env.process(waiter())
    env.run()
    assert len(got) == 1
    assert got[0] == pytest.approx(BGQParams().wakeup_latency)


def test_wakeup_clear_drops_latch():
    env = Environment()
    src = WakeupSource(env)
    src.signal()
    src.clear()
    got = []

    def waiter():
        yield src.arm()
        got.append(env.now)

    env.process(waiter())
    env.run(until=10_000)
    assert got == []  # nothing fired; the latch was cleared


def test_wakeup_disarm_prevents_delivery():
    env = Environment()
    src = WakeupSource(env)
    ev = src.arm()
    assert src.disarm(ev)
    assert not src.disarm(ev)  # second disarm is a no-op
    src.signal()
    env.run(until=10_000)
    assert not ev.triggered


def test_wakeup_multiple_waiters_all_fire():
    env = Environment()
    src = WakeupSource(env)
    got = []

    def waiter(tag):
        yield src.arm()
        got.append(tag)

    env.process(waiter("a"))
    env.process(waiter("b"))

    def signaller():
        yield env.timeout(100)
        src.signal()

    env.process(signaller())
    env.run()
    assert sorted(got) == ["a", "b"]


def test_instr_cycles_solo_helper():
    p = BGQParams()
    assert p.instr_cycles_solo(600) == pytest.approx(1000)
    assert p.bytes_per_cycle == pytest.approx(1.8e9 / 1.6e9)
    assert p.threads_per_node == 64
