"""Tests for the GNU arena allocator model (paper §III-B / Fig. 6)."""

import pytest

from repro.bgq import BGQMachine, BGQParams
from repro.bgq.memory import Buffer
from repro.sim import Environment


def one_node(**kw):
    env = Environment()
    m = BGQMachine(env, 1, params=BGQParams(**kw))
    return env, m.node(0)


def test_malloc_free_roundtrip():
    env, node = one_node()
    alloc = node.arena_allocator
    out = []

    def worker():
        buf = yield from alloc.malloc(node.thread(0), 1024)
        out.append(buf)
        yield from alloc.free(node.thread(0), buf)

    env.process(worker())
    env.run()
    assert out[0].size == 1024
    assert alloc.mallocs == 1 and alloc.frees == 1
    assert not any(lock.locked for lock in alloc.locks)


def test_home_arena_assignment():
    env, node = one_node()
    alloc = node.arena_allocator
    assert alloc.home_arena(0) == 0
    assert alloc.home_arena(8) == 0
    assert alloc.home_arena(9) == 1


def test_free_requires_gnu_buffer():
    env, node = one_node()
    alloc = node.arena_allocator

    def worker():
        yield from alloc.free(node.thread(0), Buffer(size=8, arena=0, origin="pool"))

    env.process(worker())
    with pytest.raises(ValueError):
        env.run()


def test_cross_thread_frees_contend_on_arena():
    """Many threads freeing to one arena serialize on its mutex."""
    env, node = one_node()
    alloc = node.arena_allocator
    buffers = []

    def allocator_phase():
        # Thread 0 allocates everything from its home arena (arena 0).
        for _ in range(32):
            buf = yield from alloc.malloc(node.thread(0), 256)
            buffers.append(buf)

    env.process(allocator_phase())
    env.run()
    assert all(b.arena == 0 for b in buffers)

    def freer(tid, buf):
        yield from alloc.free(node.thread(tid), buf)

    for i, buf in enumerate(buffers):
        env.process(freer(i % node.n_threads, buf))
    env.run()
    assert alloc.locks[0].stats.contended > 10
    assert alloc.total_contention_wait() > 0


def test_malloc_falls_over_to_free_arena():
    """If the home arena is locked, malloc probes the next one."""
    env, node = one_node()
    alloc = node.arena_allocator
    got = []

    def hog():
        # Hold arena 0's lock for a long time.
        yield from alloc.locks[0].acquire()
        yield env.timeout(1e6)
        yield from alloc.locks[0].release()

    def worker():
        yield env.timeout(10)
        buf = yield from alloc.malloc(node.thread(0), 64)
        got.append((buf.arena, env.now))

    env.process(hog())
    env.process(worker())
    env.run()
    arena, t = got[0]
    assert arena == 1  # fell over, did not wait a million cycles
    assert t < 1e5


def test_all_arenas_locked_blocks_on_home():
    env, node = one_node()
    alloc = node.arena_allocator
    got = []

    def hog(i, hold):
        yield from alloc.locks[i].acquire()
        yield env.timeout(hold)
        yield from alloc.locks[i].release()

    for i in range(alloc.n_arenas):
        env.process(hog(i, 50_000 if i == 0 else 200_000))

    def worker():
        yield env.timeout(10)
        buf = yield from alloc.malloc(node.thread(0), 64)
        got.append((buf.arena, env.now))

    env.process(worker())
    env.run()
    arena, t = got[0]
    assert arena == 0  # waited for home arena
    assert t >= 50_000  # blocked until the home hog released


def test_arena_count_validates():
    env = Environment()
    from repro.bgq.memory import ArenaAllocator

    with pytest.raises(ValueError):
        ArenaAllocator(env, n_arenas=0)
