"""Tests for adaptive vs deterministic routing."""

import pytest

from repro.bgq import BGQMachine, BGQParams, Torus
from repro.sim import Environment


def test_route_with_custom_dim_order_still_minimal():
    t = Torus((4, 4, 2))
    a, b = 0, t.rank((2, 3, 1))
    for order in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
        route = t.route(a, b, dim_order=order)
        assert len(route) == t.hops(a, b)
        cur = a
        for (u, v) in route:
            assert u == cur
            cur = v
        assert cur == b


def test_route_bad_dim_order_rejected():
    t = Torus((4, 4))
    with pytest.raises(ValueError):
        t.route(0, 5, dim_order=[0, 0])


def test_adaptive_routing_is_deterministic_replayable():
    def run():
        env = Environment()
        m = BGQMachine(env, 8, routing="adaptive")
        r = m.node(7).mu.allocate_reception_fifo()
        f = m.node(0).mu.allocate_injection_fifo()
        descs = []
        for _ in range(10):
            d = m.node(0).mu.make_descriptor(dst=7, nbytes=512, rec_fifo=r.fifo_id)
            f.post(d)
            descs.append(d)
        env.run(until=env.all_of([d.delivered for d in descs]))
        return env.now

    assert run() == run()


def test_unknown_routing_mode_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        BGQMachine(env, 2, routing="quantum")


def test_adaptive_routing_spreads_contended_traffic():
    """Several flows sharing a dimension-ordered bottleneck finish
    faster when packets spread across dimension orders."""

    def run(routing):
        env = Environment()
        m = BGQMachine(env, 16, params=BGQParams(), shape=(4, 4, 1, 1, 1),
                       routing=routing)
        # Four sources in column 0 all send to nodes in column 3:
        # deterministic dim-order routing funnels everything along
        # dimension 0 first, colliding on the same links.
        descs = []
        for src_row in range(4):
            src = m.torus.rank((src_row, 0, 0, 0, 0))
            dst = m.torus.rank(((src_row + 2) % 4, 3, 0, 0, 0))
            rf = m.node(dst).mu.allocate_reception_fifo()
            inj = m.node(src).mu.allocate_injection_fifo()
            for _ in range(4):
                d = m.node(src).mu.make_descriptor(
                    dst=dst, nbytes=64 * 1024, rec_fifo=rf.fifo_id
                )
                inj.post(d)
                descs.append(d)
        env.run(until=env.all_of([d.delivered for d in descs]))
        return env.now

    t_det = run("deterministic")
    t_ad = run("adaptive")
    assert t_ad < t_det
