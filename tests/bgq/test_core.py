"""Tests for the A2 core SMT sharing model."""

import pytest

from repro.bgq import Core
from repro.bgq.params import BGQParams
from repro.sim import Environment


def run_threads(n, instructions=10000.0, weights=None, params=None):
    env = Environment()
    core = Core(env, params=params or BGQParams())
    finish = []

    def worker(i, w):
        yield from core.compute(instructions, weight=w)
        finish.append((i, env.now))

    weights = weights or [1.0] * n
    for i in range(n):
        env.process(worker(i, weights[i]))
    env.run()
    return env, core, finish


def test_single_thread_runs_at_base_ipc():
    p = BGQParams()
    env, _, finish = run_threads(1, instructions=6000)
    assert finish[0][1] == pytest.approx(6000 / p.base_ipc)


def test_four_threads_give_2_3x_aggregate():
    """The paper's measured SMT scaling: 4 threads = 2.3x one thread."""
    p = BGQParams()
    _, _, f1 = run_threads(1, instructions=10000)
    _, _, f4 = run_threads(4, instructions=10000)
    t1 = f1[0][1]
    t4 = max(t for _, t in f4)
    # 4 threads each doing the same work in t4: aggregate speedup = 4*t1/t4
    speedup = 4 * t1 / t4
    assert speedup == pytest.approx(2.3, rel=0.02)


def test_two_threads_between_1x_and_2x():
    _, _, f1 = run_threads(1, instructions=10000)
    _, _, f2 = run_threads(2, instructions=10000)
    speedup = 2 * f1[0][1] / max(t for _, t in f2)
    assert 1.3 < speedup < 2.0


def test_low_weight_spinner_barely_slows_compute():
    """Optimized idle poll (weight ~1/60, §III-D) costs compute <3%."""
    p = BGQParams()
    env = Environment()
    core = Core(env, params=p)
    done = []

    def spinner():
        m = core.register(p.idle_poll_l2_weight)
        yield env.timeout(1e9)
        core.unregister(m)

    def worker():
        yield from core.compute(10000)
        done.append(env.now)

    env.process(spinner())
    env.process(worker())
    env.run(until=1e8)
    solo = 10000 / p.base_ipc
    assert done[0] < solo * 1.03


def test_naive_spinner_slows_compute_substantially():
    """A naive spin loop (weight 1.0) steals issue slots from workers."""
    p = BGQParams()
    env = Environment()
    core = Core(env, params=p)
    done = []

    def spinner():
        core.register(p.idle_poll_naive_weight)
        yield env.timeout(1e9)

    def worker():
        yield from core.compute(10000)
        done.append(env.now)

    env.process(spinner())
    env.process(worker())
    env.run(until=1e8)
    solo = 10000 / p.base_ipc
    assert done[0] > solo * 1.15


def test_membership_change_rescales_rates():
    """A thread finishing early speeds up the remaining one."""
    env = Environment()
    p = BGQParams()
    core = Core(env, params=p)
    times = {}

    def worker(tag, instr):
        yield from core.compute(instr)
        times[tag] = env.now

    env.process(worker("short", 1000))
    env.process(worker("long", 10000))
    env.run()
    # The long worker must beat the all-shared lower bound: once the
    # short one finishes it runs solo.
    shared_rate = p.base_ipc / (1 + p.smt_interference)
    all_shared = 10000 / shared_rate
    assert times["long"] < all_shared
    solo = 10000 / p.base_ipc
    assert times["long"] > solo  # but slower than a pure solo run


def test_zero_instructions_is_instant():
    env = Environment()
    core = Core(env)
    out = []

    def worker():
        yield from core.compute(0)
        out.append(env.now)
        return
        yield  # keep generator shape even if compute returns fast

    env.process(worker())
    env.run()
    assert out == [0]


def test_negative_instructions_rejected():
    env = Environment()
    core = Core(env)

    def worker():
        yield from core.compute(-5)

    env.process(worker())
    with pytest.raises(ValueError):
        env.run()


def test_weights_validate():
    env = Environment()
    core = Core(env)
    with pytest.raises(ValueError):
        core.register(-1.0)


def test_unregister_is_idempotent():
    env = Environment()
    core = Core(env)
    m = core.register(1.0)
    core.unregister(m)
    core.unregister(m)  # no error
    assert core.n_members == 0


def test_aggregate_issue_width_respected():
    """However many threads run, total throughput stays <= issue width."""
    p = BGQParams(base_ipc=1.0, smt_interference=0.0)  # remove other limits
    env, core, finish = run_threads(4, instructions=8000, params=p)
    total_time = max(t for _, t in finish)
    aggregate_ipc = 4 * 8000 / total_time
    assert aggregate_ipc <= p.core_issue_width + 1e-6
