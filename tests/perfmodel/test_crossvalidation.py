"""DES-vs-model cross-validation (the overlap between the engines)."""

import pytest

from repro.perfmodel.validate import (
    CrossCheck,
    fft_speedup_crosscheck,
    pingpong_mode_crosscheck,
    run_all,
    sharded_torus_crosscheck,
    smt_crosscheck,
)


def test_crosscheck_ratio_math():
    c = CrossCheck("x", 2.0, 4.0, tolerance_ratio=2.5)
    assert c.ratio == pytest.approx(2.0)
    assert c.ok
    assert not CrossCheck("y", 1.0, 3.0, 2.5).ok


def test_smt_des_matches_closed_form():
    c = smt_crosscheck()
    assert c.ok, str(c)
    assert c.ratio < 1.02  # same mechanism, must agree tightly


def test_pingpong_smp_delta_matches_instruction_count():
    c = pingpong_mode_crosscheck()
    assert c.ok, str(c)


def test_fft_speedup_des_vs_model():
    c = fft_speedup_crosscheck(n=16, nnodes=8, iterations=2)
    assert c.des_value > 1.2  # both engines agree m2m wins...
    assert c.model_value > 1.2
    assert c.ok, str(c)  # ...by a comparable factor


def test_sharded_torus_transit_matches_hop_model():
    """128-node sharded DES vs the closed-form extra-hop prediction.

    The hop-latency delta is deterministic in the DES, so the two
    engines must agree essentially exactly at the paper's node scale.
    """
    c = sharded_torus_crosscheck(nnodes=128, nshards=4)
    assert c.ok, str(c)
    assert c.ratio < 1.01


def test_run_all_reports_every_check():
    checks = run_all()
    assert len(checks) == 4
    for c in checks:
        assert c.ok, str(c)
