"""Shape tests for the analytic performance models.

The reproduction target is *shape*, not absolute microseconds: who
wins, by roughly what factor, where crossovers fall.  Each test pins
one of the paper's qualitative claims; looser band tests pin the
quantitative anchors.
"""

import pytest

from repro.bgp import BGP, bgp_step_time
from repro.namd.system import APOA1, STMV100M, STMV20M
from repro.perfmodel import (
    FIG7_CONFIGS,
    PAPER_TABLE1,
    NamdRunConfig,
    best_config,
    core_issue_rate,
    fft_step_time,
    fft_table,
    namd_step_time,
    node_issue_rate,
    per_thread_ipc,
    queue_contention_factor,
)


# ---------- machine model ------------------------------------------------------

def test_smt_2_3x_at_four_threads():
    assert 4 * per_thread_ipc(4) / per_thread_ipc(1) == pytest.approx(2.3, rel=0.02)


def test_core_rate_monotonic_in_threads():
    rates = [core_issue_rate(n) for n in (1, 2, 3, 4)]
    assert rates == sorted(rates)


def test_node_rate_spreads_over_cores():
    # 16 workers on 16 cores run at full single-thread speed each.
    assert node_issue_rate(16) == pytest.approx(16 * per_thread_ipc(1))
    assert node_issue_rate(64) == pytest.approx(64 * per_thread_ipc(4))


def test_per_thread_ipc_validates():
    with pytest.raises(ValueError):
        per_thread_ipc(0)


def test_queue_contention_factor_shape():
    assert queue_contention_factor(64, l2_atomics=True) == 1.0
    f1 = queue_contention_factor(16, l2_atomics=False)
    f2 = queue_contention_factor(64, l2_atomics=False)
    assert 1.0 < f1 < f2


# ---------- FFT model (Table I) -----------------------------------------------

def test_fft_m2m_wins_every_cell():
    table = fft_table()
    for n, rows in table.items():
        for nodes, (p2p, m2m) in rows.items():
            assert m2m < p2p, f"{n}^3 at {nodes} nodes"


def test_fft_m2m_advantage_grows_with_node_count():
    """Strong scaling the same problem, m2m helps more on more nodes."""
    table = fft_table()
    for n in (128, 64, 32):
        r64 = table[n][64][0] / table[n][64][1]
        r1024 = table[n][1024][0] / table[n][1024][1]
        assert r1024 > r64


def test_fft_m2m_advantage_grows_with_finer_problems():
    """At fixed node count, smaller grids benefit more (paper: 1.66x for
    128^3 vs 3.33x for 32^3 on 64 nodes)."""
    table = fft_table()
    r128 = table[128][64][0] / table[128][64][1]
    r32 = table[32][64][0] / table[32][64][1]
    assert r32 > 1.5 * r128


def test_fft_cells_within_band_of_paper():
    """Every modelled cell within ~2.5x of the published value (the
    substrate is a simulator; shape, not absolute time, is the target)."""
    table = fft_table()
    for n, rows in PAPER_TABLE1.items():
        for nodes, (pp, pm) in rows.items():
            mp, mm = table[n][nodes]
            assert 1 / 2.5 < mp / pp < 2.5, (n, nodes, "p2p")
            assert 1 / 2.5 < mm / pm < 2.5, (n, nodes, "m2m")


def test_fft_validates():
    with pytest.raises(ValueError):
        fft_step_time(64, 16, mode="carrier-pigeon")
    with pytest.raises(ValueError):
        fft_step_time(1, 16)


# ---------- NAMD model ---------------------------------------------------------

def test_apoa1_anchor_4096_nodes():
    """683 us/step at 4096 nodes (the paper's headline), within 25%."""
    _, t = best_config(APOA1, 4096)
    assert t == pytest.approx(683e-6, rel=0.25)


def test_apoa1_anchor_1024_nodes():
    """Speedup 2495 over one core at 1024 nodes -> ~1.09 ms/step."""
    _, t = best_config(APOA1, 1024)
    assert t == pytest.approx(1090e-6, rel=0.25)


def test_apoa1_single_core_anchor():
    """2.72 s/step on one core (4 HW threads, the paper's speedup
    base), within 25%: derived from the full-node model time scaled by
    the issue-rate ratio of one 4-thread core to the 64-thread node."""
    t_node = namd_step_time(APOA1, 1, NamdRunConfig(workers=64, comm_threads=0))
    one_core_equiv = t_node * node_issue_rate(64) / core_issue_rate(4)
    assert one_core_equiv == pytest.approx(2.72, rel=0.25)


def test_fig7_config_crossover():
    """Compute-bound small runs favour 64 worker threads; at scale the
    dedicated-communication-thread configs win (Fig. 7)."""
    c64, c48, c32 = FIG7_CONFIGS
    t64_small = namd_step_time(APOA1, 32, c64)
    t32_small = namd_step_time(APOA1, 32, c32)
    assert t64_small < t32_small
    t64_big = namd_step_time(APOA1, 4096, c64)
    t32_big = namd_step_time(APOA1, 4096, c32)
    assert t32_big < t64_big


def test_fig11_best_config_progression():
    """The paper: 64 threads best till 128 nodes, 32w+8c from 256-1024,
    fewer workers at the scaling limit."""
    cfg_small, _ = best_config(APOA1, 64)
    cfg_big, _ = best_config(APOA1, 4096)
    assert cfg_small.comm_threads == 0
    assert cfg_big.comm_threads > 0
    assert cfg_big.workers < cfg_small.workers


def test_fig8_l2_atomics_speedup_one_process():
    """~67% speedup from L2 atomics at 512 nodes, 1 process/node."""
    base = NamdRunConfig(workers=56, comm_threads=8)
    ablt = NamdRunConfig(workers=56, comm_threads=8, l2_atomics=False)
    t1 = namd_step_time(APOA1, 512, base)
    t2 = namd_step_time(APOA1, 512, ablt)
    assert 1.4 < t2 / t1 < 2.4  # paper: 1.67


def test_fig8_more_processes_less_contention():
    """Two processes/node halve the contenders per mutex: the ablation
    hurts less (the paper's 1-ppn case shows the largest gain)."""

    def ratio(ppn):
        base = NamdRunConfig(workers=56, comm_threads=8, processes_per_node=ppn)
        ablt = NamdRunConfig(
            workers=56, comm_threads=8, processes_per_node=ppn, l2_atomics=False
        )
        return namd_step_time(APOA1, 512, ablt) / namd_step_time(APOA1, 512, base)

    assert ratio(2) < ratio(1)


def test_apoa1_scaling_monotonic_but_saturating():
    times = [best_config(APOA1, n)[1] for n in (64, 256, 1024, 4096)]
    assert times == sorted(times, reverse=True)
    # Efficiency decays: 64x more nodes buys far less than 64x.
    assert times[0] / times[-1] < 16


def test_stmv100m_table2_band():
    """Table II within ~2x at every node count, correct scaling trend."""
    paper = {2048: 98.8e-3, 4096: 55.4e-3, 8192: 30.3e-3, 16384: 17.9e-3}
    prev = None
    for nodes, target in paper.items():
        w = 48 if nodes < 16384 else 32
        t = namd_step_time(
            STMV100M, nodes, NamdRunConfig(workers=w, comm_threads=8, nonbonded_every=2)
        )
        assert 1 / 2.0 < t / target < 2.0, nodes
        if prev is not None:
            assert t < prev
        prev = t


def test_stmv100m_efficiency_band():
    """2048 -> 16384 nodes: the paper's 5.52x of the ideal 8x."""
    t2k = namd_step_time(STMV100M, 2048, NamdRunConfig(workers=48, comm_threads=8, nonbonded_every=2))
    t16k = namd_step_time(STMV100M, 16384, NamdRunConfig(workers=32, comm_threads=8, nonbonded_every=2))
    assert 4.0 < t2k / t16k < 8.0


def test_stmv20m_scales_to_16384():
    """Fig. 12: with m2m PME the 20M-atom system keeps scaling."""
    ts = [
        namd_step_time(STMV20M, n, NamdRunConfig(workers=32, comm_threads=8, nonbonded_every=2))
        for n in (2048, 4096, 8192, 16384)
    ]
    assert ts == sorted(ts, reverse=True)
    assert 1e-3 < ts[-1] < 10e-3  # millisecond regime (paper: 5.8 ms)


def test_qpx_ablation_speeds_up_compute_bound_runs():
    base = namd_step_time(APOA1, 16, NamdRunConfig(workers=64))
    noqpx = namd_step_time(APOA1, 16, NamdRunConfig(workers=64, qpx=False))
    assert noqpx > 1.5 * base  # scalar kernel is >4x slower per pair


def test_bgp_slower_than_bgq_everywhere():
    """Fig. 11: the BG/Q port beats BG/P at every node count."""
    for nodes in (256, 512, 1024, 2048, 4096):
        t_bgp = bgp_step_time(APOA1, nodes)
        _, t_bgq = best_config(APOA1, nodes)
        assert t_bgp > 3 * t_bgq


def test_namd_model_validates():
    with pytest.raises(ValueError):
        namd_step_time(APOA1, 0)
