"""Serve-layer metrics: registry wiring, labels, and the percentile
equality contract with servebench's reported p50/p99."""

import asyncio

import pytest

from repro.harness.servebench import run_serve_load
from repro.obs.metrics import percentile
from repro.serve import CANCELLED, DONE, JobService, JobSpec
from tests.serve.test_service import make_build, stall_build


def run_jobs(njobs=6, workers=2, priorities=None):
    async def go():
        svc = JobService(workers=workers)
        svc.start()
        for i in range(njobs):
            prio = priorities[i % len(priorities)] if priorities else 1
            svc.submit(
                JobSpec(name=f"j{i}", build=make_build(i, ticks=10),
                        priority=prio)
            )
        await svc.join()
        snap = svc.metrics_snapshot()
        await svc.close()
        return svc, snap

    return asyncio.run(go())


def series(snap, name):
    return snap[name]["series"]


def test_job_lifecycle_counters():
    svc, snap = run_jobs(njobs=5)
    assert series(snap, "serve.jobs.submitted")[0]["value"] == 5.0
    done = [
        s for s in series(snap, "serve.jobs.completed")
        if s["labels"]["state"] == DONE
    ]
    assert done and done[0]["value"] == 5.0
    # All jobs drained: queue depth gauge reads zero.
    assert series(snap, "serve.queue.depth")[0]["value"] == 0.0


def test_latency_histogram_counts_every_job():
    svc, snap = run_jobs(njobs=4)
    lat = series(snap, "serve.latency_s")[0]
    assert lat["count"] == 4
    assert lat["sum"] > 0.0
    assert lat["p50"] <= lat["p99"]


def test_queue_wait_is_labeled_by_priority():
    svc, snap = run_jobs(njobs=6, workers=1, priorities=[0, 2])
    waits = series(snap, "serve.queue.wait_s")
    prios = {s["labels"]["priority"] for s in waits}
    assert prios == {"0", "2"}
    assert sum(s["count"] for s in waits) == 6


def test_slice_metrics_observe_each_advance():
    svc, snap = run_jobs(njobs=2)
    slices = series(snap, "serve.slice.duration_s")[0]
    events = series(snap, "serve.slice.events")[0]
    # Every advance() call contributes one sample to both histograms.
    assert slices["count"] == events["count"] > 0


def test_cancel_counter_increments():
    async def go():
        svc = JobService(workers=1)
        svc.start()
        blocker = svc.submit(JobSpec(name="blocker", build=make_build(0)))
        victim = svc.submit(JobSpec(name="victim", build=make_build(1)))
        assert await svc.cancel(victim.id)
        await svc.join()
        snap = svc.metrics_snapshot()
        await svc.close()
        return victim, snap

    victim, snap = asyncio.run(go())
    assert victim.state == CANCELLED
    assert series(snap, "serve.cancel.requests")[0]["value"] == 1.0
    cancelled = [
        s for s in series(snap, "serve.jobs.completed")
        if s["labels"]["state"] == CANCELLED
    ]
    assert cancelled and cancelled[0]["value"] == 1.0


def test_worker_busy_and_idle_counters_exist():
    svc, snap = run_jobs(njobs=3, workers=2)
    busy = series(snap, "serve.worker.busy_s")
    assert {s["labels"]["worker"] for s in busy} == {"0", "1"}
    assert all(s["value"] >= 0.0 for s in busy)


def test_snapshot_refreshes_cache_gauges():
    svc, snap = run_jobs(njobs=3)
    assert "serve.cache.hit_rate" in snap
    assert "serve.cache.entries" in snap


@pytest.mark.slow
def test_servebench_percentiles_equal_histogram_percentiles():
    """The reported p50/p99 must BE the metrics histogram's percentiles.

    servebench routes its latency summary through serve.latency_s; a
    drift between the report numbers and the metrics surface would mean
    two competing definitions of serve latency.
    """
    report = run_serve_load(scale="tiny", workers=3)
    lat = report["serve_metrics"]["serve.latency_s"]["series"][0]
    assert report["latency_p50_s"] == round(lat["p50"], 4)
    assert report["latency_p99_s"] == round(lat["p99"], 4)
    # And the histogram's own samples reproduce them via the shared
    # nearest-rank percentile (one definition, three surfaces).
    # count equals the number of gated jobs.
    assert lat["count"] == report["njobs"]


def test_percentile_definition_is_shared():
    vals = [0.4, 0.1, 0.9, 0.2]
    assert percentile(vals, 0.5) == sorted(vals)[2]
