"""JobService behaviour: ordering, cancellation, streaming, determinism.

The determinism matrix is the heart of the tentpole's contract: the
same jobs served under shifting worker interleavings (workers x
slice_events) must checksum bit-identically to solo runs every time.
"""

import asyncio

import pytest

from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    EnvTask,
    JobService,
    JobSpec,
    ModelTask,
)
from repro.sim import Environment


def make_build(seed, ticks=40, record=None):
    """Deterministic seed-dependent workload: dt and a result value
    derive from the seed, so distinct seeds yield distinct checksums."""

    def build(spec):
        if record is not None:
            record.append(spec.name)
        env = Environment()
        done = env.event()
        dt = 1.0 + (seed % 5) * 0.25

        def proc():
            acc = seed
            for i in range(ticks):
                acc = (acc * 1103515245 + i) & 0xFFFFFFFF
                yield env.timeout(dt)
            done.succeed(acc)

        env.process(proc())
        return EnvTask(
            env, done,
            result_fn=lambda: {"acc": repr(done.value), "seed": seed},
            label=spec.name,
        )

    return build


def solo_checksum(seed, ticks=40):
    spec = JobSpec(name="solo", build=make_build(seed, ticks))
    task = spec.build(spec)
    task.start()
    task.env.run(until=task.done)
    task.stop()
    return task.checksum()


def stall_build(spec):
    env = Environment()
    done = env.event()  # never succeeds; the queue drains first
    env.process((env.timeout(1.0) for _ in range(1)))
    return EnvTask(env, done, label=spec.name)


def test_priority_bands_run_in_order_fifo_within_band():
    record = []

    async def run():
        svc = JobService(workers=1)
        svc.start()
        for name, prio in [("a", 2), ("b", 0), ("c", 1), ("d", 0)]:
            svc.submit(JobSpec(name=name, build=make_build(0, record=record),
                               priority=prio))
        await svc.join()
        await svc.close()

    asyncio.run(run())
    assert record == ["b", "d", "c", "a"]


def test_cancel_queued_job_never_builds():
    record = []

    async def run():
        svc = JobService(workers=1)
        svc.start()
        blocker = svc.submit(JobSpec(name="blocker", build=make_build(0, record=record)))
        victim = svc.submit(JobSpec(name="victim", build=make_build(1, record=record)))
        assert await svc.cancel(victim.id)
        await svc.join()
        await svc.close()
        return blocker, victim

    blocker, victim = asyncio.run(run())
    assert blocker.state == DONE
    assert victim.state == CANCELLED
    assert victim.error == "cancelled while queued"
    assert record == ["blocker"]  # the victim's build never ran
    assert victim.checksum is None


def test_cancel_running_job_stops_at_slice_boundary():
    async def run():
        svc = JobService(workers=2)
        svc.start()
        job = svc.submit(
            JobSpec(name="long", build=make_build(0, ticks=200_000), slice_events=32)
        )
        while job.state != RUNNING:
            await asyncio.sleep(0)
        assert await svc.cancel(job.id)
        await job.wait()
        # Cancelling again (the second teardown path) is a clean no-op.
        assert not await svc.cancel(job.id)
        await svc.close()
        return job

    job = asyncio.run(run())
    assert job.state == CANCELLED
    assert job.error == "cancelled while running"
    assert job.result is None and job.checksum is None


def test_stalled_job_fails_with_stall_diagnostic():
    async def run():
        svc = JobService(workers=1)
        svc.start()
        job = svc.submit(JobSpec(name="stall", build=stall_build))
        await svc.join()
        await svc.close()
        return job

    job = asyncio.run(run())
    assert job.state == FAILED
    assert "drained" in job.error


def test_failed_build_marks_job_failed():
    def bad_build(spec):
        raise ValueError("no such workload")

    async def run():
        svc = JobService(workers=1)
        svc.start()
        job = svc.submit(JobSpec(name="bad", build=bad_build))
        await job.wait()
        await svc.close()
        return job

    job = asyncio.run(run())
    assert job.state == FAILED
    assert "no such workload" in job.error


def test_stream_replays_history_and_follows_live():
    async def run():
        svc = JobService(workers=1)
        svc.start()
        job = svc.submit(
            JobSpec(name="s", build=make_build(3, ticks=64), slice_events=8,
                    stream_every=1)
        )
        live = [c async for c in svc.stream(job.id)]
        late = [c async for c in svc.stream(job.id)]  # post-terminal replay
        await svc.close()
        return job, live, late

    job, live, late = asyncio.run(run())
    types = [c["type"] for c in live]
    assert types[0] == "queued"
    assert types[1] == "running"
    assert "progress" in types
    assert types[-1] == "done"
    assert live[-1]["checksum"] == job.checksum
    # Progress chunks carry monotone engine observables.
    events = [c["events"] for c in live if c["type"] == "progress"]
    assert events == sorted(events)
    assert late == live == job.chunks


def test_status_snapshots_track_lifecycle():
    async def run():
        svc = JobService(workers=1)
        svc.start()
        job = svc.submit(JobSpec(name="snap", build=make_build(2), priority=5))
        before = svc.status(job.id)
        await svc.join()
        after = svc.status(job.id)
        all_jobs = svc.jobs()
        await svc.close()
        return before, after, all_jobs

    before, after, all_jobs = asyncio.run(run())
    assert before["state"] == "queued" and before["priority"] == 5
    assert after["state"] == "done"
    assert after["checksum"] is not None
    assert after["latency_s"] >= 0.0
    assert [j["id"] for j in all_jobs] == [after["id"]]


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
@pytest.mark.parametrize("slice_events", [1, 7, 64])
def test_served_checksums_bit_identical_across_interleavings(workers, slice_events):
    """THE serve contract: every (workers, slice_events) point yields a
    different interleaving of the same six jobs; all must reproduce the
    solo checksums exactly."""
    seeds = [0, 1, 2, 3, 4, 5]
    solo = {seed: solo_checksum(seed) for seed in seeds}

    async def run():
        svc = JobService(workers=workers)
        svc.start()
        jobs = [
            svc.submit(
                JobSpec(
                    name=f"seed{seed}", build=make_build(seed), seed=seed,
                    priority=seed % 3, slice_events=slice_events,
                )
            )
            for seed in seeds
        ]
        await svc.join()
        await svc.close()
        return jobs

    jobs = asyncio.run(run())
    assert all(j.state == DONE for j in jobs)
    assert {j.spec.seed: j.checksum for j in jobs} == solo
    # Distinct seeds really are distinct workloads (the oracle isn't
    # vacuously comparing six identical runs).
    assert len(set(solo.values())) == len(seeds)


def test_model_jobs_share_the_service_calibration_cache():
    calls = []

    def curve(nodes):
        calls.append(nodes)
        return [float(nodes), float(nodes) / 2.0]

    async def run():
        svc = JobService(workers=2)
        svc.start()

        def model_build(spec):
            return ModelTask(curve, spec.config["nodes"], cache=svc.cache)

        jobs = [
            svc.submit(JobSpec(name=f"m{i}", build=model_build,
                               config={"nodes": 128}))
            for i in range(3)
        ]
        await svc.join()
        await svc.close()
        return jobs, svc.cache.stats()

    jobs, stats = asyncio.run(run())
    assert calls == [128]  # one real evaluation, two cache hits
    assert stats["hits"] == 2 and stats["misses"] == 1
    checksums = {j.checksum for j in jobs}
    assert len(checksums) == 1  # hit-path results == miss-path results
    assert all(j.state == DONE for j in jobs)


def test_close_cancels_pending_and_running_work():
    async def run():
        svc = JobService(workers=1)
        svc.start()
        running = svc.submit(
            JobSpec(name="run", build=make_build(0, ticks=200_000), slice_events=16)
        )
        queued = svc.submit(JobSpec(name="wait", build=make_build(1)))
        while running.state != RUNNING:
            await asyncio.sleep(0)
        await svc.close()
        return running, queued

    running, queued = asyncio.run(run())
    assert running.state == CANCELLED
    assert queued.state == CANCELLED
