"""Unit coverage for the service's priority queue and calibration cache."""

import asyncio

import pytest

from repro.serve import CalibrationCache, Job, JobQueue, JobSpec
from repro.serve.job import CANCELLED


def _job(seq, priority=0, name=None):
    spec = JobSpec(name=name or f"j{seq}", build=lambda s: None, priority=priority)
    return Job(f"{spec.name}-{seq:04d}", seq, spec, 0.0)


def test_pop_orders_by_priority_then_submission():
    async def run():
        q = JobQueue()
        for seq, prio in enumerate([2, 0, 1, 0, 2]):
            q.push(_job(seq, prio))
        order = []
        while len(q):
            order.append((await q.pop()).seq)
        return order

    # priority 0 first (FIFO within the band), then 1, then 2.
    assert asyncio.run(run()) == [1, 3, 2, 0, 4]


def test_pop_skips_lazily_cancelled_jobs():
    async def run():
        q = JobQueue()
        jobs = [_job(seq) for seq in range(4)]
        for j in jobs:
            q.push(j)
        jobs[0].finalize(CANCELLED, 0.0)  # control plane cancels in place
        jobs[2].finalize(CANCELLED, 0.0)
        q.close()
        order = []
        while (j := await q.pop()) is not None:
            order.append(j.seq)
        return order

    assert asyncio.run(run()) == [1, 3]


def test_pop_blocks_until_push_then_drains_on_close():
    async def run():
        q = JobQueue()
        got = []

        async def consumer():
            while (j := await q.pop()) is not None:
                got.append(j.seq)

        task = asyncio.ensure_future(consumer())
        await asyncio.sleep(0)
        q.push(_job(0))
        q.push(_job(1))
        await asyncio.sleep(0)
        q.close()
        await task
        return got

    assert asyncio.run(run()) == [0, 1]


def test_closed_queue_rejects_push():
    q = JobQueue()
    q.close()
    with pytest.raises(RuntimeError):
        q.push(_job(0))


def test_pending_lists_runnable_jobs_in_execution_order():
    q = JobQueue()
    jobs = [_job(seq, prio) for seq, prio in enumerate([1, 0, 1])]
    for j in jobs:
        q.push(j)
    jobs[2].finalize(CANCELLED, 0.0)
    assert [j.seq for j in q.pending()] == [1, 0]


# -- calibration cache -----------------------------------------------------

def test_cache_memoizes_per_argument_set():
    cache = CalibrationCache()
    calls = []

    def curve(nodes, m2m=False):
        calls.append((nodes, m2m))
        return nodes * (2.0 if m2m else 1.0)

    assert cache.call(curve, 128) == 128.0
    assert cache.call(curve, 128) == 128.0  # hit
    assert cache.call(curve, 128, m2m=True) == 256.0  # distinct key
    assert cache.call(curve, 256) == 256.0
    assert calls == [(128, False), (128, True), (256, False)]
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 3
    assert stats["hit_rate"] == pytest.approx(0.25)


def test_cache_hit_returns_identical_object():
    cache = CalibrationCache()
    obj = {"curve": [1.0, 2.0]}
    got1 = cache.call(lambda: obj)
    got2 = cache.call(lambda: obj)
    assert got1 is got2 is obj


def test_cache_eviction_keeps_working_past_capacity():
    cache = CalibrationCache(max_entries=2)
    seen = []

    def f(x):
        seen.append(x)
        return x

    for x in (1, 2, 3, 1):  # 1 evicted by 3, so the last call re-misses
        cache.call(f, x)
    assert seen == [1, 2, 3, 1]
    assert len(cache) == 2
