"""Tests for the lockless queue implementations (paper §III-A, Fig. 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgq import BGQMachine, BGQParams
from repro.queues import L2AtomicQueue, MPIOrderedQueue, MutexQueue
from repro.sim import Environment


def one_node():
    env = Environment()
    m = BGQMachine(env, 1)
    return env, m.node(0)


def drain_all(env, node, q, consumer_tid=0):
    """Consumer process that drains until told to stop; returns items."""
    items = []
    stop = {"flag": False}

    def consumer():
        thread = node.thread(consumer_tid)
        while True:
            item = yield from q.dequeue(thread)
            if item is not None:
                items.append(item)
            elif stop["flag"] and len(q) == 0:
                return
            else:
                yield env.timeout(50)  # poll interval

    proc = env.process(consumer())
    return items, stop, proc


@pytest.mark.parametrize("qcls", ["mutex", "l2", "mpi"])
def test_single_producer_fifo_order_without_overflow(qcls):
    """FIFO holds as long as the overflow path never engages."""
    env, node = one_node()
    if qcls == "mutex":
        q = MutexQueue(env)
    elif qcls == "l2":
        q = L2AtomicQueue(env, node.l2, size=64)
    else:
        q = MPIOrderedQueue(env, node.l2, size=64)
    items, stop, proc = drain_all(env, node, q)

    def producer():
        thread = node.thread(4)
        for i in range(20):
            yield from q.enqueue(thread, i)
        stop["flag"] = True

    env.process(producer())
    env.run()
    assert items == list(range(20))
    assert getattr(q, "overflow_enqueues", 0) == 0


def test_overflow_path_may_reorder_by_design():
    """Once the queue fills, later messages can overtake ones parked in
    the overflow queue.  This is deliberate: Charm++ has no message
    ordering requirement (§III-A), which is what lets the consumer leave
    the overflow mutex off the fast path."""
    env, node = one_node()
    q = L2AtomicQueue(env, node.l2, size=2)
    items = []

    def flow():
        prod = node.thread(4)
        cons = node.thread(0)
        # Fill the L2 queue (0, 1) and park 2, 3 in overflow.
        for i in range(4):
            yield from q.enqueue(prod, i)
        assert q.overflow_enqueues == 2
        # Consume two: frees two L2 slots (bound advances).
        for _ in range(2):
            items.append((yield from q.dequeue(cons)))
        # New messages land in the L2 queue ahead of parked 2, 3.
        for i in (4, 5):
            yield from q.enqueue(prod, i)
        while len(items) < 6:
            item = yield from q.dequeue(cons)
            assert item is not None
            items.append(item)

    env.process(flow())
    env.run()
    assert sorted(items) == list(range(6))  # conserved...
    # ...but 4 and 5 overtook the overflow-parked 2 and 3.
    assert items == [0, 1, 4, 5, 2, 3]


@pytest.mark.parametrize("qcls", ["mutex", "l2", "mpi"])
def test_many_producers_no_loss_no_dup(qcls):
    env, node = one_node()
    if qcls == "mutex":
        q = MutexQueue(env)
    elif qcls == "l2":
        q = L2AtomicQueue(env, node.l2, size=4)  # tiny: forces overflow
    else:
        q = MPIOrderedQueue(env, node.l2, size=4)
    items, stop, proc = drain_all(env, node, q)
    n_producers, per = 7, 15
    finished = []

    def producer(pid):
        thread = node.thread(pid + 1)
        for i in range(per):
            yield from q.enqueue(thread, (pid, i))
        finished.append(pid)
        if len(finished) == n_producers:
            stop["flag"] = True

    for pid in range(n_producers):
        env.process(producer(pid))
    env.run()
    # Conservation is the guarantee; ordering is not (see
    # test_overflow_path_may_reorder_by_design).
    assert sorted(items) == sorted((p, i) for p in range(n_producers) for i in range(per))


def test_l2_queue_overflow_used_when_full():
    env, node = one_node()
    q = L2AtomicQueue(env, node.l2, size=2)

    def producer():
        thread = node.thread(1)
        for i in range(5):
            yield from q.enqueue(thread, i)

    env.process(producer())
    env.run()
    assert q.overflow_enqueues == 3
    assert len(q.overflow) == 3
    assert len(q) == 5


def test_l2_queue_bound_readvance_after_dequeue():
    """Fig. 2(c): consuming re-enables a producer slot via the bound."""
    env, node = one_node()
    q = L2AtomicQueue(env, node.l2, size=2)
    log = []

    def flow():
        thread = node.thread(1)
        yield from q.enqueue(thread, "a")
        yield from q.enqueue(thread, "b")
        assert node.l2.peek_bound(q.counter) == 2
        item = yield from q.dequeue(node.thread(0))
        log.append(item)
        assert node.l2.peek_bound(q.counter) == 3
        yield from q.enqueue(thread, "c")  # fits again without overflow
        assert q.overflow_enqueues == 0

    env.process(flow())
    env.run()
    assert log == ["a"]


def test_dequeue_empty_returns_none():
    env, node = one_node()
    q = L2AtomicQueue(env, node.l2, size=4)
    out = []

    def consumer():
        item = yield from q.dequeue(node.thread(0))
        out.append(item)

    env.process(consumer())
    env.run()
    assert out == [None]


def test_queue_size_validates():
    env, node = one_node()
    with pytest.raises(ValueError):
        L2AtomicQueue(env, node.l2, size=0)


def test_l2_queue_cheaper_than_mutex_queue_under_contention():
    """The headline claim of §III-A: L2 queues beat mutex queues when
    several producers hammer one consumer."""

    def run(qfactory):
        env, node = one_node()
        q = qfactory(env, node)
        done = []
        n_producers, per = 8, 30

        def producer(pid):
            thread = node.thread(pid + 1)
            for i in range(per):
                yield from q.enqueue(thread, i)
            done.append(pid)

        for pid in range(n_producers):
            env.process(producer(pid))
        env.run()
        return env.now

    t_mutex = run(lambda env, node: MutexQueue(env))
    t_l2 = run(lambda env, node: L2AtomicQueue(env, node.l2, size=1024))
    assert t_l2 < t_mutex


def test_mpi_ordered_dequeue_costs_more_than_charm():
    """The PAMI/MPI ordering check makes its dequeue strictly slower."""

    def run(qcls):
        env, node = one_node()
        q = qcls(env, node.l2, size=64)
        times = []

        def flow():
            thread = node.thread(1)
            for i in range(20):
                yield from q.enqueue(thread, i)
            t0 = env.now
            for _ in range(20):
                item = yield from q.dequeue(node.thread(0))
                assert item is not None
            times.append(env.now - t0)

        env.process(flow())
        env.run()
        return times[0]

    assert run(MPIOrderedQueue) > run(L2AtomicQueue)


def test_wakeup_signalled_on_enqueue():
    env, node = one_node()
    q = L2AtomicQueue(env, node.l2, size=4)
    woke = []

    def sleeper():
        yield from node.thread(0).wait_on(q.wakeup)
        woke.append(env.now)

    def producer():
        yield env.timeout(500)
        yield from q.enqueue(node.thread(1), "x")

    env.process(sleeper())
    env.process(producer())
    env.run()
    assert len(woke) == 1 and woke[0] > 500


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=6), st.integers(0, 3)),
        min_size=1,
        max_size=60,
    ),
    qsize=st.integers(min_value=1, max_value=8),
)
def test_property_no_loss_no_dup_arbitrary_interleaving(ops, qsize):
    """Property: any interleaving of producers (with arbitrary delays)
    against one consumer conserves the multiset of messages."""
    env = Environment()
    m = BGQMachine(env, 1)
    node = m.node(0)
    q = L2AtomicQueue(env, node.l2, size=qsize)
    sent = []
    received = []
    total = len(ops)

    def producer(pid, delay, token):
        thread = node.thread(1 + (pid % 7))
        yield env.timeout(delay * 37)
        yield from q.enqueue(thread, token)

    def consumer():
        thread = node.thread(0)
        while len(received) < total:
            item = yield from q.dequeue(thread)
            if item is not None:
                received.append(item)
            else:
                yield env.timeout(23)

    for i, (pid, delay) in enumerate(ops):
        token = (pid, i)
        sent.append(token)
        env.process(producer(pid, delay, token))
    env.process(consumer())
    env.run()
    assert sorted(received) == sorted(sent)


def test_inflight_head_does_not_starve_overflow():
    """A stalled producer (counter incremented, slot pointer not yet
    written) must not starve messages parked in the overflow deque.

    Regression test: `L2AtomicQueue.dequeue` used to return None
    whenever the head slot was in-flight, even with deliverable
    overflow messages — the consumer could spin on None indefinitely
    behind one stalled producer.  Charm++ has no ordering requirement,
    so the dequeue falls through to the overflow check.
    """
    from repro.bgq.l2 import BOUNDED_INCREMENT_FAILED

    env, node = one_node()
    q = L2AtomicQueue(env, node.l2, size=1)
    got = []

    def stalled_producer():
        # Wins the slot... then never writes the message pointer.
        thread = node.thread(4)
        yield from thread.compute(10)
        slot = yield from q.l2.load_increment_bounded(q.counter)
        assert slot is not BOUNDED_INCREMENT_FAILED

    def overflow_producer():
        # Queue (size 1) is claimed: lands in the overflow deque.
        thread = node.thread(5)
        yield env.timeout(5_000)
        yield from q.enqueue(thread, "parked")
        assert q.overflow_enqueues == 1

    def consumer():
        thread = node.thread(0)
        yield env.timeout(10_000)
        assert q.has_ready()
        got.append((yield from q.dequeue(thread)))

    env.process(stalled_producer())
    env.process(overflow_producer())
    env.process(consumer())
    env.run()
    assert got == ["parked"]  # pre-fix: [None] forever


def test_mpi_ordered_inflight_head_blocks_overflow():
    """Contrast case: the MPI-ordered queue must *not* overtake an
    in-flight head — ordering requires returning None until the stalled
    producer completes."""
    from repro.bgq.l2 import BOUNDED_INCREMENT_FAILED

    env, node = one_node()
    q = MPIOrderedQueue(env, node.l2, size=1)
    got = []

    def flow():
        prod = node.thread(4)
        cons = node.thread(0)
        slot = yield from q.l2.load_increment_bounded(q.counter)
        assert slot is not BOUNDED_INCREMENT_FAILED
        yield from q.enqueue(prod, "parked")  # -> overflow
        assert not q.has_ready()
        got.append((yield from q.dequeue(cons)))

    env.process(flow())
    env.run()
    assert got == [None]


def test_has_ready_matches_dequeue_progress():
    """has_ready() is exactly "dequeue would deliver or charge work"."""
    env, node = one_node()
    q = L2AtomicQueue(env, node.l2, size=4)
    mq = MutexQueue(env)
    assert not q.has_ready()  # empty lockless queue: nothing to do
    assert mq.has_ready()  # mutex queue always pays the lock

    def flow():
        thread = node.thread(4)
        yield from q.enqueue(thread, "x")
        assert q.has_ready()
        item = yield from q.dequeue(thread)
        assert item == "x"
        assert not q.has_ready()

    env.process(flow())
    env.run()
