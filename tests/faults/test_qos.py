"""Delivery-QoS semantics: best-effort footprint, FRESH supersede,
and the quiescence accounting contract.

The QoS contract (docs/ARCHITECTURE.md): a best-effort or FRESH send
is unstamped — no sequence number, no pending record, no ACK, no
retransmit timer — and is invisible to quiescence accounting; FRESH
additionally filters duplicates and stale generations per flow key.
"""

import pytest

from repro.converse import ConverseRuntime, RunConfig
from repro.converse.messages import ConverseMessage
from repro.converse.quiescence import QuiescenceDetector
from repro.faults import (
    FaultPlan,
    FaultRates,
    QOS_BEST_EFFORT,
    QOS_BEST_EFFORT_FRESH,
    QOS_RELIABLE,
    parse_qos,
    qos_name,
)
from repro.sim import Environment

HORIZON = 400_000_000.0


def run_qos(qos, plan=None, n_msgs=8, fresh_key=None, reliable=None):
    """Send ``n_msgs`` node 0 -> node 1 with the given QoS; quiesce."""
    env = Environment()
    cfg = RunConfig(
        nnodes=2, workers_per_process=1, fault_plan=plan, reliable=reliable
    )
    rt = ConverseRuntime(env, cfg)
    received = []
    hid = rt.register_handler(lambda pe, msg: received.append(msg.payload))

    def kick(pe, msg):
        for i in range(n_msgs):
            yield from pe.send(
                cfg.pes_per_node, hid, 64, ("m", i), qos=qos, fresh_key=fresh_key
            )

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=20.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    rels = [
        c.reliability
        for p in rt.processes
        for c in p.client.contexts
        if c.reliability is not None
    ]
    return rt, received, rels, quiesced


def totals(rels, counter):
    return sum(getattr(r, counter) for r in rels)


# -- names and parsing -------------------------------------------------------


def test_qos_names_round_trip():
    assert qos_name(QOS_RELIABLE) == "reliable"
    assert qos_name(QOS_BEST_EFFORT) == "best_effort"
    assert qos_name(QOS_BEST_EFFORT_FRESH) == "fresh"
    for spec, want in [
        ("reliable", QOS_RELIABLE),
        ("best_effort", QOS_BEST_EFFORT),
        ("best-effort", QOS_BEST_EFFORT),
        ("fresh", QOS_BEST_EFFORT_FRESH),
        ("best_effort_fresh", QOS_BEST_EFFORT_FRESH),
        (QOS_BEST_EFFORT, QOS_BEST_EFFORT),
    ]:
        assert parse_qos(spec) == want
    with pytest.raises(ValueError):
        parse_qos("bogus")
    with pytest.raises(ValueError):
        parse_qos(7)


# -- best-effort footprint ---------------------------------------------------


def test_best_effort_sends_leave_no_transport_state():
    """Unstamped: no seq, no pending record, no ACK, no retransmit."""
    rt, received, rels, quiesced = run_qos(QOS_BEST_EFFORT, reliable=True)
    assert quiesced.triggered
    assert received == [("m", i) for i in range(8)]  # clean network
    assert totals(rels, "acks_sent") == 0  # nothing was ever stamped
    assert totals(rels, "retries") == 0
    assert totals(rels, "in_flight") == 0
    for r in rels:
        assert r.pending == {}
    assert rt.messages_sent == 0  # converse `created` axis untouched
    assert rt.best_effort_sends == 8


def test_reliable_sends_do_stamp_and_ack():
    rt, received, rels, quiesced = run_qos(QOS_RELIABLE, reliable=True)
    assert quiesced.triggered
    assert received == [("m", i) for i in range(8)]
    assert totals(rels, "acks_sent") == 8  # one ACK per stamped send
    assert rt.messages_sent > 0


def test_best_effort_drop_loses_quietly_and_quiesces():
    """100% one-way loss: nothing delivered, nothing retried, no hang."""
    plan = FaultPlan(
        seed=0, name="oneway", per_link={(0, 1): FaultRates(drop=1.0)}
    )
    rt, received, rels, quiesced = run_qos(QOS_BEST_EFFORT, plan=plan)
    assert quiesced.triggered
    assert received == []
    assert totals(rels, "retries") == 0
    assert totals(rels, "gave_up") == 0
    assert totals(rels, "in_flight") == 0


def test_rendezvous_size_forces_reliable():
    """Messages above the rendezvous threshold ignore best-effort qos:
    the three-way RTS/rget protocol cannot tolerate lost legs."""
    env = Environment()
    cfg = RunConfig(nnodes=2, workers_per_process=1, reliable=True)
    rt = ConverseRuntime(env, cfg)
    big = rt.params.rendezvous_threshold + 512
    received = []
    hid = rt.register_handler(lambda pe, msg: received.append(msg.nbytes))

    def kick(pe, msg):
        yield from pe.send(cfg.pes_per_node, hid, big, "bulk", qos=QOS_BEST_EFFORT)

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=20.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    assert received == [big]
    assert rt.best_effort_sends == 0
    assert rt.messages_sent > 0  # it rode the reliable path


# -- ACK-drop recovery (the reliable contrast) -------------------------------


def test_ack_drop_retransmits_to_exactly_once():
    """Dropping every ACK (1->0) forces retransmits; dedup keeps the
    application view exactly-once and the run still quiesces."""
    plan = FaultPlan(
        seed=0,
        name="ackdrop",
        per_link={(1, 0): FaultRates(drop=1.0)},
        retry_timeout_us=5.0,
        retry_max=3,
    )
    rt, received, rels, quiesced = run_qos(
        QOS_RELIABLE, plan=plan, n_msgs=5, reliable=True
    )
    assert quiesced.triggered
    assert sorted(received) == [("m", i) for i in range(5)]
    assert totals(rels, "retries") > 0
    assert totals(rels, "dup_suppressed") > 0  # retransmits of ACKed sends
    assert totals(rels, "in_flight") == 0  # give-ups drained pending


# -- FRESH: duplicate and stale filtering ------------------------------------


def test_fresh_filters_duplicates_by_generation():
    """A duplicated FRESH packet replays the same generation and is
    dropped as stale — exactly-once without any transport state."""
    plan = FaultPlan(seed=0, name="dup", link=FaultRates(duplicate=1.0))
    rt, received, rels, quiesced = run_qos(
        QOS_BEST_EFFORT_FRESH, plan=plan, fresh_key="flowA"
    )
    assert quiesced.triggered
    assert received == [("m", i) for i in range(8)]
    assert totals(rels, "stale_dropped") > 0
    assert totals(rels, "dup_suppressed") == 0  # seq-dedup never engaged
    assert totals(rels, "acks_sent") == 0


def test_plain_best_effort_does_not_filter_duplicates():
    """Contrast: without FRESH generations, duplicates dispatch twice."""
    plan = FaultPlan(seed=0, name="dup", link=FaultRates(duplicate=1.0))
    rt, received, rels, quiesced = run_qos(QOS_BEST_EFFORT, plan=plan)
    assert quiesced.triggered
    assert len(received) > 8
    assert totals(rels, "stale_dropped") == 0


def test_fresh_flows_are_independent_per_key():
    """Two interleaved flows to one destination keep separate
    generation counters: neither supersedes the other."""
    env = Environment()
    cfg = RunConfig(nnodes=2, workers_per_process=1, reliable=True)
    rt = ConverseRuntime(env, cfg)
    received = []
    hid = rt.register_handler(lambda pe, msg: received.append(msg.payload))

    def kick(pe, msg):
        for i in range(4):
            yield from pe.send(
                cfg.pes_per_node, hid, 64, ("a", i),
                qos=QOS_BEST_EFFORT_FRESH, fresh_key="flowA",
            )
            yield from pe.send(
                cfg.pes_per_node, hid, 64, ("b", i),
                qos=QOS_BEST_EFFORT_FRESH, fresh_key="flowB",
            )

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=20.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    assert quiesced.triggered
    assert [p for p in received if p[0] == "a"] == [("a", i) for i in range(4)]
    assert [p for p in received if p[0] == "b"] == [("b", i) for i in range(4)]


# -- quiescence accounting ---------------------------------------------------


def test_quiescence_ignores_best_effort_traffic():
    """Dropped best-effort sends never count as created/in-flight, so
    the detector converges exactly as on an idle system."""
    plan = FaultPlan(
        seed=0, name="oneway", per_link={(0, 1): FaultRates(drop=1.0)}
    )
    rt, received, rels, quiesced = run_qos(QOS_BEST_EFFORT, plan=plan)
    assert quiesced.triggered
    # `created` excludes all 8 best-effort sends.
    assert rt.messages_sent == 0
    assert rt.best_effort_sends == 8


def test_quiescence_counts_acks_on_no_axis():
    """ACK traffic is transport-internal: it inflates neither the
    created nor the processed totals in either QoS mode."""
    rt, received, rels, quiesced = run_qos(QOS_RELIABLE, reliable=True)
    assert quiesced.triggered
    acks = totals(rels, "acks_sent")
    assert acks == 8
    # created: 1 kick seed is local-only; 8 reliable sends counted.
    assert rt.messages_sent == 8
    # processed: kick + 8 sinks — ACK consumption adds nothing.
    assert sum(pe.messages_executed for pe in rt.pes) == 9
