"""Tests for the fault injector: seeded, per-choke-point draws."""

import pytest

from repro.bgq.mu import Descriptor
from repro.bgq.network import MEMFIFO, RDMA_DATA, Packet
from repro.faults import FaultInjector, FaultPlan, FaultRates, LinkDownWindow
from repro.sim import Environment


def packet(kind=MEMFIFO, is_last=True, src=0, dst=1):
    desc = Descriptor(Environment(), dst=dst, nbytes=32, kind=kind)
    return Packet(
        src=src, dst=dst, kind=kind, payload_bytes=32,
        message=desc, is_last=is_last,
    )


def injector(**plan_kw):
    plan_kw.setdefault("seed", 0)
    return FaultInjector(Environment(), FaultPlan(**plan_kw))


ROUTE = [(0, 1)]


# -- routing choke point ----------------------------------------------------


def test_no_faults_on_null_rates():
    inj = injector()
    assert inj.on_route(packet(), ROUTE) is None
    assert inj.stats.as_dict() == {k: 0 for k in inj.stats.as_dict()}


def test_kind_filter_spares_rdma_traffic():
    inj = injector(link=FaultRates(drop=1.0))
    assert inj.on_route(packet(kind=RDMA_DATA), ROUTE) is None
    assert inj.stats.dropped == 0


def test_certain_drop():
    inj = injector(link=FaultRates(drop=1.0))
    action = inj.on_route(packet(), ROUTE)
    assert action.drop
    assert inj.stats.dropped == 1


def test_dropped_fragment_taints_message():
    """Losing a non-final packet corrupts the whole multi-packet message."""
    inj = injector(link=FaultRates(drop=1.0))
    pkt_mid = packet(is_last=False)
    inj.on_route(pkt_mid, ROUTE)
    assert pkt_mid.message.corrupted
    pkt_last = packet(is_last=True)
    inj.on_route(pkt_last, ROUTE)
    assert not pkt_last.message.corrupted  # last-packet loss needs no taint


def test_certain_duplicate():
    inj = injector(link=FaultRates(duplicate=1.0))
    action = inj.on_route(packet(), ROUTE)
    assert not action.drop
    assert action.dup_gap is not None and action.dup_gap > 0.0
    assert inj.stats.duplicated == 1


def test_certain_delay():
    inj = injector(link=FaultRates(delay=1.0))
    action = inj.on_route(packet(), ROUTE)
    assert not action.drop and action.dup_gap is None
    assert action.extra_delay > 0.0
    assert inj.stats.delayed == 1


def test_reorder_holds_back_longer_than_delay_on_average():
    """Reorder draws come from a much longer-mean exponential."""
    plan_d = dict(seed=0, delay_mean_cycles=1_000.0, reorder_mean_cycles=50_000.0)
    delays = injector(link=FaultRates(delay=1.0), **plan_d)
    reorders = injector(link=FaultRates(reorder=1.0), **plan_d)
    n = 200
    mean_delay = sum(delays.on_route(packet(), ROUTE).extra_delay for _ in range(n)) / n
    mean_reorder = sum(reorders.on_route(packet(), ROUTE).extra_delay for _ in range(n)) / n
    assert mean_reorder > 5 * mean_delay
    assert reorders.stats.reordered == n


def test_certain_corrupt_taints_but_delivers():
    inj = injector(link=FaultRates(corrupt=1.0))
    pkt = packet()
    action = inj.on_route(pkt, ROUTE)
    assert action is not None and not action.drop
    assert pkt.message.corrupted
    assert inj.stats.corrupted == 1


def test_link_down_window_drops_everything():
    inj = injector(down=(LinkDownWindow(None, None, 0.0, 1_000.0),))
    action = inj.on_route(packet(), ROUTE)
    assert action.drop
    assert inj.stats.link_down_drops == 1


def test_link_down_window_respects_time_and_link():
    env = Environment()
    plan = FaultPlan(seed=0, down=(LinkDownWindow(0, 1, 500.0, 1_000.0),))
    inj = FaultInjector(env, plan)
    # Window not yet open.
    assert inj.on_route(packet(), ROUTE) is None
    env.run(until=600.0)
    assert inj.on_route(packet(), ROUTE).drop
    # A route avoiding the downed directed link is unaffected.
    assert inj.on_route(packet(src=1, dst=0), [(1, 0)]) is None


def test_per_link_override_scopes_faults():
    inj = injector(per_link={(0, 1): FaultRates(drop=1.0)})
    assert inj.on_route(packet(), [(0, 1)]).drop
    assert inj.on_route(packet(src=1, dst=0), [(1, 0)]) is None


# -- reception-FIFO choke point ---------------------------------------------


def test_fifo_certain_drop_and_dup():
    dropper = injector(rec_fifo=FaultRates(drop=1.0))
    assert dropper.on_reception(1, 0, packet()) == "drop"
    assert dropper.stats.fifo_dropped == 1
    dupper = injector(rec_fifo=FaultRates(duplicate=1.0))
    assert dupper.on_reception(1, 0, packet()) == "dup"
    assert dupper.stats.fifo_duplicated == 1


def test_fifo_kind_filter_and_per_fifo_override():
    inj = injector(per_fifo={(1, 3): FaultRates(drop=1.0)})
    assert inj.on_reception(1, 3, packet(kind=RDMA_DATA)) is None
    assert inj.on_reception(1, 3, packet()) == "drop"
    assert inj.on_reception(1, 2, packet()) is None
    assert inj.on_reception(2, 3, packet()) is None


# -- determinism ------------------------------------------------------------


def drop5_decisions(seed, route=((0, 1),), n=200):
    inj = injector(seed=seed, link=FaultRates(drop=0.05, delay=0.05))
    out = []
    for _ in range(n):
        action = inj.on_route(packet(), list(route))
        out.append(None if action is None else (action.drop, action.extra_delay))
    return out


def test_same_seed_reproduces_fault_schedule():
    assert drop5_decisions(seed=7) == drop5_decisions(seed=7)


def test_different_seed_changes_fault_schedule():
    assert drop5_decisions(seed=0) != drop5_decisions(seed=1)


def test_per_link_streams_are_independent():
    """Traffic on one link never perturbs another link's draws."""
    quiet = injector(seed=3, link=FaultRates(drop=0.05, delay=0.05))
    noisy = injector(seed=3, link=FaultRates(drop=0.05, delay=0.05))
    decisions_quiet = []
    decisions_noisy = []
    for i in range(200):
        # The noisy injector sees interleaved traffic on link (2, 3).
        noisy.on_route(packet(src=2, dst=3), [(2, 3)])
        a = quiet.on_route(packet(), ROUTE)
        b = noisy.on_route(packet(), ROUTE)
        decisions_quiet.append(None if a is None else (a.drop, a.extra_delay))
        decisions_noisy.append(None if b is None else (b.drop, b.extra_delay))
    assert decisions_quiet == decisions_noisy


def test_fifo_streams_distinct_per_fifo():
    inj = injector(seed=5, rec_fifo=FaultRates(drop=0.5))
    a = [inj.on_reception(0, 0, packet()) for _ in range(100)]
    inj2 = injector(seed=5, rec_fifo=FaultRates(drop=0.5))
    b = [inj2.on_reception(0, 1, packet()) for _ in range(100)]
    assert a != b  # distinct named streams
