"""Tests for the reliability layer: stamp/ACK/retransmit/dedup end-to-end.

These run the real Converse runtime over the simulated torus with
crafted fault plans — certain-duplicate links, lossy links, permanent
partitions — and assert the transport's exactly-once delivery and its
graceful-degradation counters.
"""

import pytest

from repro.converse import ConverseRuntime, RunConfig
from repro.converse.messages import ConverseMessage
from repro.converse.quiescence import QuiescenceDetector
from repro.faults import FaultPlan, FaultRates, LinkDownWindow
from repro.sim import Environment

HORIZON = 400_000_000.0


def run_reliable(plan, n_msgs=10):
    """Send ``n_msgs`` Converse messages node 0 -> node 1 under ``plan``."""
    env = Environment()
    cfg = RunConfig(nnodes=2, workers_per_process=1, fault_plan=plan)
    rt = ConverseRuntime(env, cfg)
    received = []

    def sink(pe, msg):
        received.append(msg.payload)

    hid = rt.register_handler(sink)

    def kick(pe, msg):
        for i in range(n_msgs):
            yield from pe.send(cfg.pes_per_node, hid, 64, ("m", i))

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=20.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    rels = [
        c.reliability
        for p in rt.processes
        for c in p.client.contexts
        if c.reliability is not None
    ]
    return rt, received, rels, quiesced


def rel_total(rels, counter):
    return sum(getattr(r, counter) for r in rels)


# -- wiring ------------------------------------------------------------------


def test_no_plan_means_no_injector_and_no_transport(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    rt = ConverseRuntime(Environment(), RunConfig(nnodes=2, workers_per_process=1))
    assert rt.fault_injector is None
    for proc in rt.processes:
        for ctx in proc.client.contexts:
            assert ctx.reliability is None


def test_null_plan_installs_nothing():
    cfg = RunConfig(nnodes=1, workers_per_process=1, fault_plan=FaultPlan.profile("none"))
    rt = ConverseRuntime(Environment(), cfg)
    assert rt.fault_injector is None
    assert all(
        ctx.reliability is None
        for proc in rt.processes
        for ctx in proc.client.contexts
    )


def test_env_switch_installs_injector(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "drop5@3")
    rt = ConverseRuntime(Environment(), RunConfig(nnodes=2, workers_per_process=1))
    assert rt.fault_injector is not None
    assert rt.fault_plan.name == "drop5" and rt.fault_plan.seed == 3
    assert all(
        ctx.reliability is not None
        for proc in rt.processes
        for ctx in proc.client.contexts
    )


def test_reliable_override_without_faults():
    cfg = RunConfig(nnodes=2, workers_per_process=1, reliable=True)
    rt = ConverseRuntime(Environment(), cfg)
    assert rt.fault_injector is None
    assert all(
        ctx.reliability is not None
        for proc in rt.processes
        for ctx in proc.client.contexts
    )


# -- recovery properties -----------------------------------------------------


def test_reliable_delivery_without_faults_is_exact():
    # A rate-free plan is null (no transport at all — see the wiring
    # tests), so exercise the transport itself via the reliable override.
    env = Environment()
    cfg = RunConfig(nnodes=2, workers_per_process=1, reliable=True)
    rt = ConverseRuntime(env, cfg)
    received = []
    hid = rt.register_handler(lambda pe, msg: received.append(msg.payload))

    def kick(pe, msg):
        for i in range(5):
            yield from pe.send(cfg.pes_per_node, hid, 64, i)

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=20.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    rels = [
        c.reliability for p in rt.processes for c in p.client.contexts if c.reliability
    ]
    assert received == list(range(5))
    assert quiesced.triggered
    assert rel_total(rels, "retries") == 0
    assert rel_total(rels, "dup_suppressed") == 0
    assert rel_total(rels, "in_flight") == 0


def test_drop_recovery_delivers_every_message():
    plan = FaultPlan(seed=0, name="lossy", link=FaultRates(drop=0.4))
    _, received, rels, quiesced = run_reliable(plan, n_msgs=10)
    assert sorted(received) == [("m", i) for i in range(10)]
    assert quiesced.triggered
    assert rel_total(rels, "retries") > 0
    assert rel_total(rels, "gave_up") == 0
    assert rel_total(rels, "in_flight") == 0


def test_duplicate_links_suppressed_to_exactly_once():
    plan = FaultPlan(seed=0, name="dup", link=FaultRates(duplicate=1.0))
    _, received, rels, quiesced = run_reliable(plan, n_msgs=10)
    assert sorted(received) == [("m", i) for i in range(10)]
    assert quiesced.triggered
    assert rel_total(rels, "dup_suppressed") > 0


def test_corrupt_links_never_dispatch_damaged_payloads():
    plan = FaultPlan(seed=0, name="bitrot", link=FaultRates(corrupt=0.5))
    _, received, rels, quiesced = run_reliable(plan, n_msgs=10)
    assert sorted(received) == [("m", i) for i in range(10)]
    assert quiesced.triggered
    assert rel_total(rels, "corrupt_dropped") > 0
    assert rel_total(rels, "retries") > 0


def test_gave_up_send_drains_pending_on_partitioned_network():
    """A permanently severed link must not pin in-flight accounting.

    The send bypasses the Converse counters (PAMI-level post, the m2m
    pattern), so quiescence hinges on the transport: after the backoff
    ladder is exhausted the record leaves ``pending`` and the detector
    may declare quiescence on the partitioned machine.
    """
    env = Environment()
    plan = FaultPlan(
        seed=0,
        down=(LinkDownWindow(None, None, 0.0, 1e18),),
        retry_timeout_us=5.0,
        retry_max=2,
    )
    rt = ConverseRuntime(env, RunConfig(nnodes=2, workers_per_process=1, fault_plan=plan))
    ctx0 = rt.processes[0].contexts[0]
    ctx1 = rt.processes[1].contexts[0]
    delivered = []
    ctx1.register_dispatch(0x50, lambda c, t, payload: delivered.append(payload.data))
    qd = QuiescenceDetector(rt, poll_interval_us=5.0)
    quiesced = qd.start()
    rt.start()
    ctx0._post(ctx1.endpoint, 0x50, 32, "doomed")
    rel = ctx0.reliability
    assert rel.in_flight == 1
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    assert delivered == []
    assert rel.gave_up == 1
    assert rel.in_flight == 0
    assert quiesced.triggered


def test_acks_are_never_user_dispatched():
    """The transport consumes its own ACK dispatch id before user code."""
    from repro.faults.recovery import RELIABLE_ACK_DISPATCH

    plan = FaultPlan(seed=1, name="lossy", link=FaultRates(drop=0.3))
    rt, received, rels, quiesced = run_reliable(plan, n_msgs=8)
    assert quiesced.triggered
    assert rel_total(rels, "acks_sent") >= 8
    # No context ever registered (or needed) a user handler for the id.
    for proc in rt.processes:
        for ctx in proc.client.contexts:
            assert RELIABLE_ACK_DISPATCH not in ctx.dispatch


def test_fault_schedule_is_deterministic_per_seed():
    plan = FaultPlan(seed=4, name="lossy", link=FaultRates(drop=0.3, duplicate=0.1))

    def fingerprint():
        rt, received, rels, quiesced = run_reliable(plan, n_msgs=10)
        return (
            received,
            quiesced.triggered,
            rt.env.now,
            rt.fault_injector.stats.as_dict(),
            rel_total(rels, "retries"),
            rel_total(rels, "dup_suppressed"),
        )

    assert fingerprint() == fingerprint()


# -- bugfix sweep: dedup-window bound + timer lifecycle ----------------------


def test_recv_flow_dedup_window_bounded_after_sender_give_up():
    """A gap abandoned by a given-up sender must not grow `early` forever.

    Pre-fix, seq 0 never arriving meant every later seq parked in the
    early-set permanently: an unbounded leak, and `is_dup` costs grew
    with it.  The bounded window skips the hole once EARLY_WINDOW
    out-of-order arrivals prove the sender moved on.
    """
    from repro.faults.recovery import EARLY_WINDOW, _RecvFlow

    flow = _RecvFlow()
    holes_total = 0
    # Sender gave up on seq 0; seqs 1..EARLY_WINDOW+199 all arrive.
    for seq in range(1, EARLY_WINDOW + 200):
        _in_order, holes = flow.accept(seq)
        holes_total += holes
    assert holes_total == 1  # exactly the abandoned seq 0
    assert len(flow.early) < EARLY_WINDOW
    # Flow is back in order: the next expected seq drains immediately.
    in_order, holes = flow.accept(EARLY_WINDOW + 200)
    assert in_order and holes == 0
    # A late original of the skipped hole now suppresses as a duplicate.
    assert flow.is_dup(0)


def test_window_skip_keeps_exactly_once_under_partial_partition():
    """End-to-end: one give-up plus >EARLY_WINDOW later sends — the
    receiver skips the hole, counts it, and delivers everything else
    exactly once."""
    from repro.faults.recovery import EARLY_WINDOW

    n = EARLY_WINDOW + 80
    # Link down long enough to exhaust the short retry ladder for the
    # first send only; everything sent after recovery flows cleanly.
    plan = FaultPlan(
        seed=0,
        down=(LinkDownWindow(None, None, 0.0, 60_000.0),),
        retry_timeout_us=5.0,
        retry_max=2,
    )
    env = Environment()
    rt = ConverseRuntime(
        env, RunConfig(nnodes=2, workers_per_process=1, fault_plan=plan)
    )
    ctx0 = rt.processes[0].contexts[0]
    ctx1 = rt.processes[1].contexts[0]
    delivered = []
    ctx1.register_dispatch(0x51, lambda c, t, p: delivered.append(p.data))
    qd = QuiescenceDetector(rt, poll_interval_us=5.0)
    rt.start()
    # Phase 1: the doomed send exhausts its ladder inside the outage.
    ctx0._post(ctx1.endpoint, 0x51, 32, ("doomed", 0))
    env.run(until=env.timeout(100_000.0))
    rel0, rel1 = ctx0.reliability, ctx1.reliability
    assert rel0.gave_up == 1
    # Phase 2: the link is back; flood past the dedup window (a fresh
    # detector event — the phase-1 lull may already have quiesced).
    for i in range(1, n + 1):
        ctx0._post(ctx1.endpoint, 0x51, 32, ("ok", i))
    quiesced = qd.start()
    env.run(until=env.any_of([quiesced, env.timeout(HORIZON)]))
    rt.stop()
    assert quiesced.triggered
    assert sorted(delivered) == sorted(("ok", i) for i in range(1, n + 1))
    assert rel1.holes_skipped == 1
    # The receive flow's early-set is drained, not grown without bound.
    for flow in rel1._flows.values():
        assert len(flow.early) < EARLY_WINDOW


def test_ack_cancels_retransmit_timer():
    """An ACKed send's backoff timer must die with the pending record.

    Pre-fix the timer generator kept rescheduling no-op wakeups through
    the whole exponential ladder (~327M cycles of dead heap events per
    send).  Post-fix the ACK cancels it: after quiescence no armed
    event in the heap points past `now`.
    """
    env = Environment()
    cfg = RunConfig(nnodes=2, workers_per_process=1, reliable=True)
    rt = ConverseRuntime(env, cfg)
    received = []
    hid = rt.register_handler(lambda pe, msg: received.append(msg.payload))

    def kick(pe, msg):
        for i in range(6):
            yield from pe.send(cfg.pes_per_node, hid, 64, i)

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=20.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=quiesced)  # no faults: guaranteed to quiesce
    rt.stop()
    rels = [
        c.reliability for p in rt.processes for c in p.client.contexts if c.reliability
    ]
    assert received == list(range(6))
    assert rel_total(rels, "timers_cancelled") == rel_total(rels, "acks_sent")
    assert rel_total(rels, "timers_cancelled") >= 6
    # Cancelled timers may still sit in the heap, but defused: nothing
    # scheduled after `now` still has callbacks armed.
    live = [  # heap introspection is the point of this test
        ev
        for (t, _seq, ev) in env._queue  # repro-lint: disable=P3
        if t > env.now and ev.callbacks
    ]
    assert live == []


def test_retransmitted_then_acked_send_cancels_final_timer():
    """Timers survive retransmits (rearmed per attempt) but die at ACK."""
    plan = FaultPlan(seed=0, name="lossy", link=FaultRates(drop=0.4))
    rt, received, rels, quiesced = run_reliable(plan, n_msgs=10)
    assert quiesced.triggered
    assert sorted(received) == [("m", i) for i in range(10)]
    assert rel_total(rels, "retries") > 0
    assert rel_total(rels, "timers_cancelled") > 0
    assert rel_total(rels, "in_flight") == 0
    env = rt.env
    live = [  # heap introspection is the point of this test
        ev
        for (t, _seq, ev) in env._queue  # repro-lint: disable=P3
        if t > env.now and ev.callbacks
    ]
    # The only live future event is the test's own horizon timeout.
    assert len(live) <= 1
