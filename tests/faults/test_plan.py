"""Tests for fault plans: profiles, validation, the REPRO_FAULTS switch."""

import pytest

from repro.bgq.params import CYCLES_PER_US
from repro.faults import FaultPlan, FaultRates, LinkDownWindow, PROFILES


# -- rates ------------------------------------------------------------------


def test_rates_total_and_validate():
    r = FaultRates(drop=0.1, duplicate=0.2, delay=0.3)
    assert r.total == pytest.approx(0.6)
    r.validate("ok")  # no raise


@pytest.mark.parametrize(
    "rates",
    [
        FaultRates(drop=-0.1),
        FaultRates(drop=0.6, duplicate=0.6),  # sum > 1
    ],
)
def test_bad_rates_rejected(rates):
    with pytest.raises(ValueError):
        rates.validate("bad")


def test_plan_validates_rates_on_construction():
    with pytest.raises(ValueError):
        FaultPlan(link=FaultRates(drop=1.5))
    with pytest.raises(ValueError):
        FaultPlan(per_fifo={(0, 0): FaultRates(drop=-1.0)})
    with pytest.raises(ValueError):
        FaultPlan(retry_backoff=0.5)


# -- link-down windows ------------------------------------------------------


def test_down_window_wildcards():
    w = LinkDownWindow(None, None, 10.0, 20.0)
    assert w.matches((0, 1)) and w.matches((7, 3))
    assert w.active(10.0) and w.active(19.9)
    assert not w.active(9.9) and not w.active(20.0)
    out_of_3 = LinkDownWindow(3, None, 0.0, 1.0)
    assert out_of_3.matches((3, 0)) and not out_of_3.matches((0, 3))


def test_down_window_for_picks_first_active():
    w1 = LinkDownWindow(None, None, 0.0, 10.0)
    w2 = LinkDownWindow(None, None, 5.0, 30.0)
    plan = FaultPlan(down=(w1, w2))
    assert plan.down_window_for(2.0) is w1
    assert plan.down_window_for(15.0) is w2
    assert plan.down_window_for(40.0) is None


# -- lookups ----------------------------------------------------------------


def test_per_link_and_per_fifo_overrides():
    hot = FaultRates(drop=0.5)
    plan = FaultPlan(
        link=FaultRates(drop=0.01),
        per_link={(0, 1): hot},
        per_fifo={(1, 2): hot},
    )
    assert plan.rates_for((0, 1)) is hot
    assert plan.rates_for((1, 0)).drop == 0.01
    assert plan.fifo_rates_for(1, 2) is hot
    assert plan.fifo_rates_for(0, 0).total == 0.0


def test_is_null():
    assert FaultPlan().is_null
    assert FaultPlan.profile("none").is_null
    assert not FaultPlan.profile("drop5").is_null
    # An outage window alone makes a plan non-null even with zero rates.
    assert not FaultPlan(down=(LinkDownWindow(None, None, 0.0, 1.0),)).is_null


def test_retry_policy_unit_conversion():
    plan = FaultPlan(retry_timeout_us=10.0, retry_backoff=3.0, retry_max=4)
    pol = plan.retry_policy()
    assert pol.timeout_cycles == pytest.approx(10.0 * CYCLES_PER_US)
    assert pol.backoff == 3.0
    assert pol.max_retries == 4


# -- profiles ---------------------------------------------------------------


def test_profile_construction():
    plan = FaultPlan.profile("drop5", seed=3)
    assert plan.name == "drop5"
    assert plan.seed == 3
    assert plan.link.drop == pytest.approx(0.05)


def test_every_registered_profile_builds():
    for name in PROFILES:
        plan = FaultPlan.profile(name, seed=1)
        assert plan.name == name


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown fault profile"):
        FaultPlan.profile("meteor-strike")


def test_profile_overrides():
    plan = FaultPlan.profile("drop5", link=FaultRates(drop=0.5))
    assert plan.link.drop == 0.5


# -- REPRO_FAULTS environment switch ----------------------------------------


def test_from_env_unset_is_none(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert FaultPlan.from_env() is None


@pytest.mark.parametrize("spec", ["", "  ", "0", "none", "off"])
def test_from_env_disabled_spellings(monkeypatch, spec):
    monkeypatch.setenv("REPRO_FAULTS", spec)
    assert FaultPlan.from_env() is None


def test_from_env_profile(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "drop10")
    plan = FaultPlan.from_env()
    assert plan.name == "drop10" and plan.seed == 0


def test_from_env_profile_with_seed(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "chaos@7")
    plan = FaultPlan.from_env()
    assert plan.name == "chaos" and plan.seed == 7


def test_from_env_unknown_profile_raises(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "nope")
    with pytest.raises(ValueError):
        FaultPlan.from_env()
