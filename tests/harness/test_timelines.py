"""Tests for the trace harness (Figs. 3/9/10 machinery)."""

import numpy as np
import pytest

from repro.harness.timelines import TraceResult, run_traced_namd


@pytest.fixture(scope="module")
def trace():
    return run_traced_namd(
        "probe", n_atoms=500, nnodes=2, workers=2, comm_threads=1,
        pme_every=2, n_steps=2,
    )


def test_trace_result_fields(trace):
    assert trace.n_steps == 2
    assert trace.total_us > 0
    assert trace.us_per_step == pytest.approx(trace.total_us / 2)
    assert 0 < trace.busy_fraction <= 1
    assert 0 < trace.useful_fraction <= trace.busy_fraction
    assert len(trace.step_times_us) == 2
    assert list(trace.step_times_us) == sorted(trace.step_times_us)


def test_trace_timeline_has_activity_glyphs(trace):
    art = trace.timeline_ascii
    assert "legend:" in art
    assert any(g in art for g in "RPG")


def test_trace_profile_bins_normalized(trace):
    prof = trace.profile
    assert "_edges" in prof
    cats = [k for k in prof if k != "_edges"]
    stacked = np.zeros_like(prof[cats[0]])
    for c in cats:
        assert np.all(prof[c] >= -1e-9)
        stacked += prof[c]
    # Total thread-time fractions never exceed 1 per bin.
    assert np.all(stacked <= 1.0 + 1e-6)


def test_m2m_trace_runs_and_is_not_slower_big(trace):
    m2m = run_traced_namd(
        "probe-m2m", n_atoms=500, nnodes=2, workers=2, comm_threads=1,
        pme_every=2, n_steps=2, use_m2m_pme=True,
    )
    # Same workload; m2m PME must not be dramatically slower.
    assert m2m.us_per_step < 1.5 * trace.us_per_step
