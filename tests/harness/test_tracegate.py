"""The trace-gate driver: baseline writing, pass/fail/missing flows."""

import json

import pytest

pytestmark = pytest.mark.slow

from repro.harness import tracegate
from repro.harness.tracegate import main

#: The shipped configs, captured before the tiny-gate fixture swaps them.
REAL_CONFIGS = list(tracegate.GATE_CONFIGS)

TINY = [
    {
        "name": "gate_tiny",
        "label": "gate tiny",
        "kwargs": dict(n_atoms=128, nnodes=2, workers=2, comm_threads=1,
                       pme_every=2, use_m2m_pme=False, n_steps=2, seed=7),
    }
]


@pytest.fixture(autouse=True)
def tiny_gate(monkeypatch):
    monkeypatch.setattr(tracegate, "GATE_CONFIGS", TINY)


def test_missing_baselines_exit_2(tmp_path, capsys):
    rc = main([
        "--baselines", str(tmp_path / "baselines"),
        "--output", str(tmp_path / "output"),
    ])
    assert rc == 2
    assert "missing baselines" in capsys.readouterr().err


def test_write_then_pass(tmp_path, capsys):
    basedir = tmp_path / "baselines"
    outdir = tmp_path / "output"
    assert main([
        "--baselines", str(basedir), "--output", str(outdir),
        "--write-baselines",
    ]) == 0
    assert (basedir / "gate_tiny.manifest.json").is_file()
    capsys.readouterr()
    # The DES is deterministic: a re-run diffs clean against itself.
    rc = main(["--baselines", str(basedir), "--output", str(outdir)])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "trace-gate: OK" in out


def test_perturbed_baseline_fails_the_gate(tmp_path, capsys):
    basedir = tmp_path / "baselines"
    outdir = tmp_path / "output"
    main(["--baselines", str(basedir), "--output", str(outdir),
          "--write-baselines"])
    base = basedir / "gate_tiny.manifest.json"
    doc = json.loads(base.read_text())
    # Simulate a behavior regression: the committed baseline expects
    # far more MU descriptor traffic than the fresh run produces.
    doc["counters"]["hpm.mu.descriptors"] *= 3
    base.write_text(json.dumps(doc))
    capsys.readouterr()
    rc = main(["--baselines", str(basedir), "--output", str(outdir)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL counter:hpm.mu.descriptors" in out
    assert "trace-gate: FAILED" in out


def test_committed_baselines_match_gate_configs():
    """Every shipped gate config has a committed baseline (CI contract)."""
    import pathlib

    repo = pathlib.Path(__file__).parents[2]
    assert REAL_CONFIGS, "gate ships no configurations"
    for cfg in REAL_CONFIGS:
        path = repo / "benchmarks" / "baselines" / f"{cfg['name']}.manifest.json"
        assert path.is_file(), f"missing committed baseline {path}"
        doc = json.loads(path.read_text())
        assert doc["label"] == cfg["label"]
        assert "counters" in doc and "critical_path" in doc
