"""Unit tests for the benchmark-regression gate (harness/benchgate.py).

The tiny-scale runners are exercised for real (seconds, not minutes);
the gate logic (record schema, file numbering, comparison rules) is
tested against synthetic records.  No wall-clock assertions — host
speed must never fail the test suite, only the gate itself.
"""

import json

import pytest

from repro.harness.benchgate import (
    GATE_BENCHMARKS,
    _checksum,
    bench_fig3_m2m,
    bench_pingpong,
    compare_records,
    find_bench_files,
    main,
    next_bench_path,
    run_gate,
)


def _rec(events_per_sec, checksum="abc", sim_times=None):
    return {
        "events_per_sec": events_per_sec,
        "checksum": checksum,
        "sim_times": sim_times or {"final": "1.0"},
    }


def _record_with(**benchmarks):
    return {"benchmarks": benchmarks}


# -- benchmark runners (tiny scale) ----------------------------------------

def test_bench_pingpong_record_schema():
    rec = bench_pingpong(nbytes=64, trips=6)
    assert rec["events"] > 0
    assert rec["wall_s"] > 0
    assert rec["events_per_sec"] > 0
    assert rec["checksum"] == _checksum(rec["sim_times"])
    assert set(rec["sim_times"]) == {"final", "rtt_sum"}


def test_bench_fig3_is_deterministic_across_runs():
    a = bench_fig3_m2m(n_steps=1, n_atoms=128, nnodes=2, workers=1, comm_threads=1)
    b = bench_fig3_m2m(n_steps=1, n_atoms=128, nnodes=2, workers=1, comm_threads=1)
    # Wall-clock differs run to run; the simulated trajectory must not.
    assert a["checksum"] == b["checksum"]
    assert a["sim_times"] == b["sim_times"]
    assert a["events"] == b["events"]


@pytest.mark.slow
def test_run_gate_tiny_covers_all_benchmarks():
    out = run_gate(scale="tiny")
    assert set(out) == set(GATE_BENCHMARKS)
    for rec in out.values():
        assert rec["events"] > 0
        assert rec["checksum"] == _checksum(rec["sim_times"])


# -- trajectory files -------------------------------------------------------

def test_bench_file_numbering(tmp_path):
    assert find_bench_files(tmp_path) == []
    assert next_bench_path(tmp_path).name == "BENCH_0001.json"
    (tmp_path / "BENCH_0001.json").write_text("{}")
    (tmp_path / "BENCH_0007.json").write_text("{}")
    (tmp_path / "BENCH_02.json").write_text("{}")  # malformed: ignored
    assert [p.name for p in find_bench_files(tmp_path)] == [
        "BENCH_0001.json",
        "BENCH_0007.json",
    ]
    assert next_bench_path(tmp_path).name == "BENCH_0008.json"


# -- comparison rules -------------------------------------------------------

def test_compare_passes_within_tolerance():
    base = _record_with(x=_rec(100.0))
    cur = _record_with(x=_rec(95.0))  # -5% < 10% tolerance
    failures, notes = compare_records(base, cur)
    assert failures == []
    assert any("0.95x" in n for n in notes)


def test_compare_fails_on_regression():
    base = _record_with(x=_rec(100.0))
    cur = _record_with(x=_rec(85.0))  # -15% > 10% tolerance
    failures, _ = compare_records(base, cur)
    assert len(failures) == 1
    assert "regression" in failures[0]


def test_compare_hard_fails_on_checksum_drift_even_when_faster():
    base = _record_with(x=_rec(100.0, checksum="aaa", sim_times={"final": "1.0"}))
    cur = _record_with(x=_rec(500.0, checksum="bbb", sim_times={"final": "2.0"}))
    failures, _ = compare_records(base, cur)
    assert len(failures) == 1
    assert "checksum drift" in failures[0]
    assert "final" in failures[0]  # names the diverging observable


def test_compare_normalizes_by_machine_calibration():
    base = _record_with(x=_rec(100.0))
    base["calibration_wall_s"] = 1.0
    cur = _record_with(x=_rec(80.0))  # -20% raw...
    cur["calibration_wall_s"] = 1.25  # ...on a 1.25x-slower box: 1.00x adjusted
    failures, notes = compare_records(base, cur)
    assert failures == []
    assert any("machine-adjusted" in n for n in notes)
    # A real regression is still caught even on a faster box.
    cur2 = _record_with(x=_rec(85.0))
    cur2["calibration_wall_s"] = 0.95  # faster box, still 0.81x adjusted
    failures, _ = compare_records(base, cur2)
    assert len(failures) == 1
    assert "machine-adjusted" in failures[0]


def test_compare_uncalibrated_baseline_gates_on_checksums_only():
    base = _record_with(x=_rec(100.0))  # no calibration field (pre-PR-6 record)
    cur = _record_with(x=_rec(50.0))
    cur["calibration_wall_s"] = 1.0
    failures, notes = compare_records(base, cur)
    assert failures == []
    assert any("calibration present in only one record" in n for n in notes)
    drift = _record_with(x=_rec(100.0, checksum="bbb", sim_times={"final": "2.0"}))
    failures, _ = compare_records(base, drift)
    assert len(failures) == 1 and "checksum drift" in failures[0]


def test_compare_checksum_only_skips_throughput_not_checksums():
    base = _record_with(x=_rec(100.0))
    cur = _record_with(x=_rec(50.0))  # -50%: fails the normal gate
    failures, notes = compare_records(base, cur, checksum_only=True)
    assert failures == []  # foreign-hardware mode: ev/s is a note only
    assert any("0.50x" in n for n in notes)
    drift = _record_with(x=_rec(100.0, checksum="bbb", sim_times={"final": "2.0"}))
    failures, _ = compare_records(base, drift, checksum_only=True)
    assert len(failures) == 1
    assert "checksum drift" in failures[0]


def test_compare_new_benchmark_is_note_not_failure():
    failures, notes = compare_records(_record_with(), _record_with(x=_rec(1.0)))
    assert failures == []
    assert any("no baseline" in n for n in notes)


def test_checksum_is_order_independent():
    assert _checksum({"a": "1", "b": "2"}) == _checksum({"b": "2", "a": "1"})
    assert _checksum({"a": "1"}) != _checksum({"a": "2"})


# -- CLI --------------------------------------------------------------------

@pytest.mark.slow
def test_main_records_then_gates(tmp_path, capsys):
    rc = main(["--root", str(tmp_path), "--scale", "tiny"])
    assert rc == 0
    assert (tmp_path / "BENCH_0001.json").exists()
    out = capsys.readouterr().out
    assert "nothing to gate" in out

    # Second run gates against the first: same code, same checksums.
    # Tiny-scale runs are far too short for a stable events/sec, so the
    # perf tolerance is slackened — this asserts the *checksum* path.
    rc = main(["--root", str(tmp_path), "--scale", "tiny", "--tolerance", "0.99"])
    assert rc == 0
    assert (tmp_path / "BENCH_0002.json").exists()
    assert "PASS" in capsys.readouterr().out

    record = json.loads((tmp_path / "BENCH_0002.json").read_text())
    assert record["schema"] == 1
    assert set(record["benchmarks"]) == set(GATE_BENCHMARKS)


@pytest.mark.slow
def test_main_fails_on_doctored_baseline(tmp_path, capsys):
    assert main(["--root", str(tmp_path), "--scale", "tiny"]) == 0
    path = tmp_path / "BENCH_0001.json"
    record = json.loads(path.read_text())
    for rec in record["benchmarks"].values():
        rec["checksum"] = "doctored"
    path.write_text(json.dumps(record))
    rc = main(["--root", str(tmp_path), "--scale", "tiny", "--tolerance", "0.99"])
    assert rc == 1
    assert "HARD FAIL" in capsys.readouterr().err
