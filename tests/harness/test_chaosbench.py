"""Tests for the chaos fuzz harness (small cells of the CI matrix)."""

from repro.harness.chaosbench import main, run_m2m_chaos, run_matrix, run_pingpong_chaos


def test_pingpong_under_drop5():
    r = run_pingpong_chaos("drop5", seed=0, trips=8)
    assert r["ok"] and r["payload_ok"] and r["quiesced"]
    assert r["workload"] == "pingpong" and r["profile"] == "drop5"
    assert r["gave_up"] == 0
    assert r["in_flight_left"] == 0
    assert r["qd_rounds"] >= 2


def test_m2m_under_drop5():
    r = run_m2m_chaos("drop5", seed=0, rounds=2, fanout=6)
    assert r["ok"] and r["payload_ok"] and r["quiesced"]
    assert r["workload"] == "m2m"
    assert r["gave_up"] == 0
    assert r["in_flight_left"] == 0


def test_pingpong_without_faults_is_clean():
    """The 'none' profile runs the harness with no injector at all."""
    r = run_pingpong_chaos("none", seed=0, trips=6)
    assert r["ok"]
    assert r["faults"] == {}
    assert r["retries"] == 0 and r["dup_suppressed"] == 0


def test_cells_are_deterministic():
    a = run_pingpong_chaos("chaos", seed=1, trips=6)
    b = run_pingpong_chaos("chaos", seed=1, trips=6)
    assert a == b


def test_run_matrix_shapes_cells():
    results = run_matrix(
        ["drop5"], [0], ["pingpong", "m2m"],
        pingpong={"trips": 4}, m2m={"rounds": 1, "fanout": 4},
    )
    assert [r["workload"] for r in results] == ["pingpong", "m2m"]
    assert all(r["ok"] for r in results)


def test_main_exit_status(capsys):
    rc = main(["--profiles", "drop1", "--seeds", "0", "--workloads", "pingpong",
               "--trips", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[ok] pingpong" in out
    assert "1/1 cells passed" in out
