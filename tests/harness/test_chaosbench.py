"""Tests for the chaos fuzz harness (small cells of the CI matrix)."""

from repro.harness.chaosbench import main, run_m2m_chaos, run_matrix, run_pingpong_chaos


def test_pingpong_under_drop5():
    r = run_pingpong_chaos("drop5", seed=0, trips=8)
    assert r["ok"] and r["payload_ok"] and r["quiesced"]
    assert r["workload"] == "pingpong" and r["profile"] == "drop5"
    assert r["gave_up"] == 0
    assert r["in_flight_left"] == 0
    assert r["qd_rounds"] >= 2


def test_m2m_under_drop5():
    r = run_m2m_chaos("drop5", seed=0, rounds=2, fanout=6)
    assert r["ok"] and r["payload_ok"] and r["quiesced"]
    assert r["workload"] == "m2m"
    assert r["gave_up"] == 0
    assert r["in_flight_left"] == 0


def test_pingpong_without_faults_is_clean():
    """The 'none' profile runs the harness with no injector at all."""
    r = run_pingpong_chaos("none", seed=0, trips=6)
    assert r["ok"]
    assert r["faults"] == {}
    assert r["retries"] == 0 and r["dup_suppressed"] == 0


def test_cells_are_deterministic():
    a = run_pingpong_chaos("chaos", seed=1, trips=6)
    b = run_pingpong_chaos("chaos", seed=1, trips=6)
    assert a == b


def test_run_matrix_shapes_cells():
    results = run_matrix(
        ["drop5"], [0], ["pingpong", "m2m"],
        pingpong={"trips": 4}, m2m={"rounds": 1, "fanout": 4},
    )
    assert [r["workload"] for r in results] == ["pingpong", "m2m"]
    assert all(r["ok"] for r in results)


def test_main_exit_status(capsys):
    rc = main(["--profiles", "drop1", "--seeds", "0", "--workloads", "pingpong",
               "--trips", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[ok] pingpong" in out
    assert "1/1 cells passed" in out


def test_pingpong_partition_gives_up_and_quiesces():
    """Full partition: nothing echoes, the sender abandons the chain,
    and the run still terminates through quiescence (no hang)."""
    r = run_pingpong_chaos("partition", seed=0, trips=6)
    assert r["ok"] and r["quiesced"]
    assert r["gave_up"] > 0
    assert r["in_flight_left"] == 0


def test_m2m_partition_gives_up_and_quiesces():
    r = run_m2m_chaos("partition", seed=0, rounds=1, fanout=4)
    assert r["ok"] and r["quiesced"]
    assert r["gave_up"] > 0
    assert r["in_flight_left"] == 0


def test_jacobi_converges_under_chaos():
    from repro.harness.chaosbench import run_jacobi_chaos

    r = run_jacobi_chaos("chaos", seed=0, ncells=8, sweeps=40)
    assert r["ok"] and r["quiesced"]
    assert r["residual"] < 1.0e-3


def test_jacobi_best_effort_converges_under_drop():
    """The degraded-but-correct gate: halos ride best-effort, chaotic
    relaxation still contracts to the exact solution."""
    from repro.harness.chaosbench import run_jacobi_chaos

    r = run_jacobi_chaos("drop5", seed=0, ncells=8, sweeps=40,
                         qos="best_effort")
    assert r["ok"] and r["quiesced"]
    assert r["residual"] < 1.0e-3
    assert r["qos"] == "best_effort"


def test_lattice_reliable_vs_best_effort_rows():
    from repro.harness.chaosbench import run_lattice_chaos

    rel = run_lattice_chaos("drop5", seed=0, rounds=3)
    assert rel["ok"] and rel["payload_ok"]
    assert rel["distinct_updates"] == rel["expected_updates"]
    be = run_lattice_chaos("drop5", seed=0, rounds=3, qos="best_effort")
    assert be["ok"] and be["payload_ok"]
    assert be["distinct_updates"] <= be["expected_updates"]
    assert be["acks_sent"] == 0  # no reliability footprint at all


def test_matrix_grows_a_qos_axis():
    results = run_matrix(
        ["drop5"], [0], ["pingpong"],
        qos_modes=["reliable", "best_effort"],
        pingpong={"trips": 4},
    )
    assert [r["qos"] for r in results] == ["reliable", "best_effort"]
    assert all(r["ok"] for r in results)


def test_main_writes_json_summary(tmp_path):
    out_path = tmp_path / "chaos.json"
    rc = main(["--profiles", "drop1", "--seeds", "0",
               "--workloads", "pingpong", "--trips", "4",
               "--qos", "reliable", "best_effort",
               "--json-out", str(out_path)])
    assert rc == 0
    import json

    summary = json.loads(out_path.read_text())
    assert summary["cells"] == 2
    assert summary["passed"] == 2
    assert summary["qos"] == ["reliable", "best_effort"]
    assert len(summary["results"]) == 2
