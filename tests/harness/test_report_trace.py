"""Report rendering of manifest trace/HPM sections (with and without)."""

import pytest

from repro.harness.report import format_manifest, format_trace_summary


def _plain_manifest():
    return {
        "label": "plain",
        "time_unit": "us",
        "span": [0.0, 100.0],
        "counters": {"converse.msgs_sent": 4},
        "utilization": [
            {"track": 0, "label": "pe0", "busy": 0.8, "useful": 0.6},
        ],
    }


def _traced_manifest():
    doc = _plain_manifest()
    doc["label"] = "traced"
    doc["messages"] = {
        "messages": 25, "executed": 25, "bytes": 4096,
        "latency": {"count": 20, "min": 1.0, "mean": 2.5, "p50": 2.0, "max": 6.0},
        "size": {"count": 25, "min": 0.0, "mean": 163.8, "p50": 128.0, "max": 512.0},
    }
    doc["critical_path"] = {
        "length": 90.0, "nsegments": 12, "exec_time": 60.0, "xfer_time": 10.0,
    }
    doc["hpm"] = {
        "0": {"mu.descriptors": 48, "l2.store_add": 10,
              "l2.load_increment_bounded": 30, "wu.wakeups": 7,
              "commthread.interrupts": 5},
        "1": {"mu.descriptors": 56, "wu.wakeups": 9},
    }
    return doc


def test_summary_empty_without_trace_sections():
    assert format_trace_summary(_plain_manifest()) == ""
    # And format_manifest stays exactly the pre-trace rendering: no
    # dangling blank line or summary header appears.
    text = format_manifest(_plain_manifest())
    assert "messages:" not in text
    assert "critical path" not in text
    assert "hpm" not in text
    assert not text.endswith("\n")


def test_summary_renders_all_sections():
    text = format_trace_summary(_traced_manifest())
    lines = text.splitlines()
    assert lines[0] == (
        "messages: 25 stamped, 25 executed, 4,096 bytes, "
        "latency mean 2.5 max 6.0 us"
    )
    assert lines[1] == (
        "critical path: 90.0 us over 12 segments (exec 60.0, xfer 10.0)"
    )
    assert lines[2] == (
        "hpm node0: 48 MU descriptors, 40 L2 atomic ops, 7 WU wakeups, "
        "5 comm-thread interrupts"
    )
    assert lines[3] == (
        "hpm node1: 56 MU descriptors, 0 L2 atomic ops, 9 WU wakeups, "
        "0 comm-thread interrupts"
    )


def test_format_manifest_appends_trace_summary():
    text = format_manifest(_traced_manifest())
    assert "pe0" in text  # utilization table still leads
    assert "messages: 25 stamped" in text
    assert "critical path: 90.0 us" in text
    assert "hpm node0" in text


@pytest.mark.slow
def test_format_manifest_from_real_traced_run():
    """End-to-end: a traced run's manifest renders every section."""
    from repro.harness.timelines import run_traced_namd

    result = run_traced_namd(
        "report-unit", n_atoms=128, nnodes=2, workers=2, comm_threads=1,
        n_steps=2, seed=3,
    )
    text = format_manifest(result.manifest())
    assert "messages:" in text and "stamped" in text
    assert "critical path:" in text
    assert "hpm node0" in text and "hpm node1" in text
