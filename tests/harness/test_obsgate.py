"""Obs-gate self-tests (tiny scale) and baseline-diff logic."""

import pytest

from repro.harness.obsgate import (
    BASELINE_TOP,
    baseline_summary,
    _check_baseline,
    main as obsgate_main,
    obs_gate,
)
from repro.obs import Profile


def fake_profile(label, owner="Process._resume:pe*"):
    return Profile(
        label,
        [
            {"event_type": "Timeout", "owner": owner, "count": 90,
             "nanos": 9000, "deque_pops": 0, "heap_pops": 90,
             "span_first": -1, "span_last": -1},
            {"event_type": "Event", "owner": "(no-callback)", "count": 10,
             "nanos": 1000, "deque_pops": 10, "heap_pops": 0,
             "span_first": -1, "span_last": -1},
        ],
        envs=1,
    )


@pytest.mark.slow
def test_obs_gate_tiny_passes_with_loose_budget():
    failures, notes, report, profiles = obs_gate(
        scale="tiny", budget=10.0, verbose=False
    )
    assert failures == [], failures
    assert report["pass"] is True
    assert set(report["benchmarks"]) == {"pingpong", "fig3_m2m", "fig10_window"}
    for name, entry in report["benchmarks"].items():
        # checksum recorded and identical across off/on reps (else the
        # gate would have failed above)
        assert entry["checksum"]
        assert entry["coverage_top10"] >= 0.80
        assert entry["profiled_events"] > 0
        assert entry["best_ratio"] == min(entry["ratios"])
    assert profiles["pingpong"].total_count > 0


@pytest.mark.slow
def test_obs_gate_cli_tiny(tmp_path, capsys):
    rc = obsgate_main([
        "--scale", "tiny",
        "--budget", "10.0",
        "--baseline", str(tmp_path / "hotspots.json"),
        "--write-baseline",
        "--profile-dir", str(tmp_path / "profiles"),
        "--json-out", str(tmp_path / "report.json"),
    ])
    assert rc == 0
    assert (tmp_path / "hotspots.json").exists()
    assert (tmp_path / "report.json").exists()
    assert (tmp_path / "profiles" / "hotspots_pingpong.json").exists()
    out = capsys.readouterr().out
    assert "PASS" in out


def test_baseline_summary_shape():
    summary = baseline_summary({"pingpong": fake_profile("pingpong")}, "t")
    entry = summary["benchmarks"]["pingpong"]
    assert entry["total_events"] == 100
    assert len(entry["top"]) <= BASELINE_TOP
    assert entry["top"][0]["owner"] == "Process._resume:pe*"
    assert entry["top"][0]["share"] == pytest.approx(0.9)


def test_check_baseline_gates_top_site_identity():
    baseline = baseline_summary({"pingpong": fake_profile("pingpong")})
    failures, notes = [], []
    _check_baseline(
        baseline, {"pingpong": fake_profile("now")}, failures, notes
    )
    assert failures == []
    assert any("top site" in n for n in notes)

    # The dominant site vanishing is a hard failure...
    failures, notes = [], []
    _check_baseline(
        baseline,
        {"pingpong": fake_profile("now", owner="Somewhere.else")},
        failures,
        notes,
    )
    assert len(failures) == 1
    assert "absent" in failures[0]

    # ...but a benchmark missing from the run is only a note.
    failures, notes = [], []
    _check_baseline(baseline, {}, failures, notes)
    assert failures == []
    assert any("not in this run" in n for n in notes)
