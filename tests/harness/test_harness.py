"""Smoke tests for the benchmark harness (small, fast configurations)."""

import pytest

from repro.converse import RunConfig
from repro.harness import (
    banner,
    fig5_intranode,
    format_comparison,
    format_table,
    pingpong_oneway_us,
    qpx_serial_speedup,
    run_alloc_bench,
    smt_thread_speedup_des,
    table1_report,
)


def test_format_table_alignment():
    t = format_table(["a", "bb"], [[1, 2.5], [30, 4000.0]], title="T")
    lines = t.splitlines()
    assert "T" in lines[0]
    assert "4,000" in t


def test_format_comparison_ratio_column():
    t = format_comparison(["x", "paper", "model"], [[1, 100.0, 150.0]], ratio_of=(1, 2))
    assert "1.50x" in t


def test_banner_width():
    assert len(banner("hi", width=40)) == 40


def test_pingpong_basic_modes():
    t_nonsmp = pingpong_oneway_us(
        RunConfig(nnodes=2, workers_per_process=1), 16, trips=4, skip=1
    )
    t_smp = pingpong_oneway_us(
        RunConfig(nnodes=2, workers_per_process=2), 16, trips=4, skip=1
    )
    assert 1.0 < t_nonsmp < 8.0
    assert t_smp > t_nonsmp


def test_pingpong_intranode_pointer_exchange():
    data = fig5_intranode(sizes=(16, 4096), trips=4)
    smp = data["smp"]
    assert smp[4096] == pytest.approx(smp[16], rel=0.05)


def test_alloc_bench_small():
    r = run_alloc_bench("pool", n_threads=8, buffers_per_thread=10, warm=True)
    assert r.total_us > 0
    assert r.contended_acquires == 0
    g = run_alloc_bench("gnu", n_threads=8, buffers_per_thread=10)
    assert g.total_us > r.total_us


def test_qpx_and_smt_claims():
    assert qpx_serial_speedup() == pytest.approx(1.158)
    assert smt_thread_speedup_des() == pytest.approx(2.3, rel=0.03)


def test_table1_report_contains_all_cells():
    text = table1_report()
    for n in ("128^3", "64^3", "32^3"):
        assert n in text
    assert "3,030" in text or "3030" in text  # the paper's first cell
