"""Report formatters for the obs surfaces.

Contract: when the obs layer is absent (no snapshot, no profile), both
formatters return the empty string so existing report output stays
byte-identical.
"""

from repro.harness.report import format_hotspot_summary, format_serve_metrics


SNAPSHOT = {
    "serve.queue.depth": {
        "kind": "gauge",
        "help": "jobs queued",
        "series": [{"labels": {}, "value": 0.0}],
    },
    "serve.jobs.completed": {
        "kind": "counter",
        "help": "jobs by terminal state",
        "series": [
            {"labels": {"state": "done"}, "value": 5.0},
            {"labels": {"state": "cancelled"}, "value": 1.0},
        ],
    },
    "serve.latency_s": {
        "kind": "histogram",
        "help": "submit-to-done latency",
        "series": [
            {"labels": {}, "count": 6, "sum": 1.2, "p50": 0.18345,
             "p99": 0.41019, "buckets": [], "inf": 6}
        ],
    },
    "serve.cache.hit_rate": {
        "kind": "gauge",
        "help": "cache hit rate",
        "series": [{"labels": {}, "value": 0.75}],
    },
}

PROFILE = {
    "schema": 1,
    "label": "pingpong",
    "total_nanos": 2_500_000,
    "nodes": [
        {"event_type": "Timeout", "owner": "Process._resume:pe*",
         "count": 9000, "nanos": 2_000_000, "share": 0.8},
        {"event_type": "Event", "owner": "(no-callback)",
         "count": 1000, "nanos": 500_000, "share": 0.2},
    ],
}


# -- byte-stability when obs is absent ---------------------------------


def test_serve_metrics_absent_is_empty_string():
    assert format_serve_metrics(None) == ""
    assert format_serve_metrics({}) == ""


def test_hotspot_summary_absent_is_empty_string():
    assert format_hotspot_summary(None) == ""
    assert format_hotspot_summary({}) == ""
    assert format_hotspot_summary({"schema": 1, "nodes": []}) == ""


# -- rendering ---------------------------------------------------------


def test_serve_metrics_renders_all_sections():
    text = format_serve_metrics(SNAPSHOT)
    lines = text.splitlines()
    assert "serve queue depth: 0" in lines[0]
    assert "done=5, cancelled=1" in lines[1]
    assert "p50 0.1835s p99 0.4102s over 6 jobs" in lines[2]
    assert "serve cache hit rate: 75.0%" in lines[3]


def test_serve_metrics_skips_missing_metrics():
    partial = {"serve.queue.depth": SNAPSHOT["serve.queue.depth"]}
    text = format_serve_metrics(partial)
    assert text == "serve queue depth: 0"


def test_hotspot_summary_top_lines():
    text = format_hotspot_summary(PROFILE)
    lines = text.splitlines()
    assert lines[0] == "engine hotspots (pingpong, 2.5 ms attributed):"
    assert "80.0%" in lines[1] and "Timeout/Process._resume:pe*" in lines[1]
    assert "(9,000 events)" in lines[1]
    assert "20.0%" in lines[2] and "Event/(no-callback)" in lines[2]


def test_hotspot_summary_respects_top():
    text = format_hotspot_summary(PROFILE, top=1)
    assert len(text.splitlines()) == 2  # header + one site
