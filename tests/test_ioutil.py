"""Atomic artifact writes (temp file + ``os.replace``).

The corruption these tests pin down: artifacts were written in place,
so a writer crashing mid-``json.dump`` (cancelled job) truncated the
destination, and two concurrent workers could interleave partial
writes.  Post-fix every writer goes through :mod:`repro.ioutil` and a
reader can only ever observe a complete payload.
"""

import json
import threading

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text, atomic_write_with


def test_atomic_write_text_roundtrip(tmp_path):
    p = tmp_path / "artifact.json"
    atomic_write_text(p, '{"v": 1}\n')
    assert json.loads(p.read_text()) == {"v": 1}


def test_crash_mid_write_preserves_old_content(tmp_path):
    p = tmp_path / "artifact.json"
    atomic_write_json(p, {"v": 1})

    def boom(fh):
        fh.write('{"v": 2, "partial', )
        raise RuntimeError("writer died mid-stream")

    with pytest.raises(RuntimeError):
        atomic_write_with(p, boom)
    assert json.loads(p.read_text()) == {"v": 1}


def test_crash_leaves_no_temp_residue(tmp_path):
    p = tmp_path / "artifact.json"
    with pytest.raises(RuntimeError):
        atomic_write_with(p, lambda fh: (_ for _ in ()).throw(RuntimeError()))
    atomic_write_json(p, {"ok": True})
    assert sorted(f.name for f in tmp_path.iterdir()) == ["artifact.json"]


def test_unserializable_payload_aborts_without_touching_target(tmp_path):
    p = tmp_path / "artifact.json"
    atomic_write_json(p, {"v": 1})
    with pytest.raises(TypeError):
        atomic_write_json(p, {"bad": object()})
    assert json.loads(p.read_text()) == {"v": 1}


def test_concurrent_writers_never_expose_partial_file(tmp_path):
    """Many writers hammering one path; every read parses completely.

    With in-place writes this interleaves truncate+write windows; with
    temp+rename each observed file is exactly one writer's payload.
    """
    p = tmp_path / "shared.json"
    atomic_write_json(p, {"writer": -1, "fill": "x" * 4096})
    stop = threading.Event()
    errors = []

    def writer(wid):
        i = 0
        while not stop.is_set():
            atomic_write_json(p, {"writer": wid, "i": i, "fill": "x" * 4096})
            i += 1

    def reader():
        while not stop.is_set():
            try:
                doc = json.loads(p.read_text())
            except ValueError as exc:  # truncated/interleaved content
                errors.append(exc)
                return
            if set(doc) != {"writer", "fill"} and set(doc) != {
                "writer", "i", "fill",
            }:
                errors.append(AssertionError(f"mixed payload: {sorted(doc)}"))
                return

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    timer = threading.Timer(0.5, stop.set)
    timer.start()
    for t in threads:
        t.join()
    timer.cancel()
    assert not errors
    assert json.loads(p.read_text())["fill"] == "x" * 4096
    assert sorted(f.name for f in tmp_path.iterdir()) == ["shared.json"]


def test_manifest_export_crash_preserves_prior_manifest(tmp_path):
    """Pre-fix-failing case on a real writer: ``write_run_manifest``.

    A manifest export whose metadata turns out not to be
    JSON-serializable raises ``TypeError`` *mid-dump*.  In-place
    writing truncated the previously-exported manifest; the atomic
    writer leaves it byte-identical.
    """
    from repro.trace import Tracer
    from repro.trace.exporters import write_run_manifest

    class Clock:
        now = 0.0

    tr = Tracer(Clock())
    tr.count("msgs", 3)
    tr.finish()
    path = tmp_path / "run.manifest.json"
    write_run_manifest(tr, str(path), label="good")
    before = path.read_text()
    with pytest.raises(TypeError):
        write_run_manifest(tr, str(path), label="bad", poison=object())
    assert path.read_text() == before
    assert json.loads(before)["counters"]["msgs"] == 3


def test_lint_cache_flush_is_atomic(tmp_path, monkeypatch):
    """A cache flush that dies mid-write must not corrupt the old cache."""
    from repro.analysis.cache import LintCache
    import repro.analysis.cache as cache_mod

    path = tmp_path / ".repro-lint-cache.json"
    src = tmp_path / "m.py"
    src.write_text("x = 1\n")
    c1 = LintCache(path, ["D1"])
    c1.put_file("m.py", src, [])
    c1.flush()
    before = path.read_text()

    c2 = LintCache(path, ["D1"])
    c2.put_file("m.py", src, [])

    def boom(p, text):
        raise RuntimeError("killed mid-flush")

    monkeypatch.setattr(cache_mod, "atomic_write_text", boom)
    with pytest.raises(RuntimeError):
        c2.flush()
    assert path.read_text() == before
    # And a fresh load still parses (treated-as-valid, not as-empty).
    c3 = LintCache(path, ["D1"])
    assert c3.get_file("m.py", src) == []
