"""Property-based tests (hypothesis) over core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bgq import Torus
from repro.charm import Chare, Charm, greedy_rebalance
from repro.converse import ConverseRuntime, RunConfig
from repro.converse.messages import ConverseMessage
from repro.fft import PencilGrid, split_ranges
from repro.namd.pme import bspline_weights, spread_charges
from repro.sim import Environment


# ---------- torus -----------------------------------------------------------

shapes = st.lists(st.integers(1, 5), min_size=1, max_size=5).filter(
    lambda s: 2 <= np.prod(s) <= 200
)


@settings(max_examples=40, deadline=None)
@given(shape=shapes, data=st.data())
def test_route_length_equals_hops_and_connects(shape, data):
    t = Torus(shape)
    a = data.draw(st.integers(0, t.nnodes - 1))
    b = data.draw(st.integers(0, t.nnodes - 1))
    route = t.route(a, b)
    assert len(route) == t.hops(a, b)
    cur = a
    for (u, v) in route:
        assert u == cur
        assert v in t.neighbors(u) or u == v
        cur = v
    assert cur == b or (a == b and route == [])


@settings(max_examples=40, deadline=None)
@given(shape=shapes, data=st.data())
def test_hops_is_a_metric(shape, data):
    t = Torus(shape)
    a = data.draw(st.integers(0, t.nnodes - 1))
    b = data.draw(st.integers(0, t.nnodes - 1))
    c = data.draw(st.integers(0, t.nnodes - 1))
    assert t.hops(a, a) == 0
    assert t.hops(a, b) == t.hops(b, a)
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
    assert t.hops(a, b) <= t.max_hops()


@settings(max_examples=40, deadline=None)
@given(shape=shapes, data=st.data())
def test_rank_coords_bijection(shape, data):
    t = Torus(shape)
    r = data.draw(st.integers(0, t.nnodes - 1))
    assert t.rank(t.coords(r)) == r


# ---------- pencil decomposition -----------------------------------------------

@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 64), parts=st.integers(1, 64))
def test_split_ranges_partition(n, parts):
    if parts > n:
        with pytest.raises(ValueError):
            split_ranges(n, parts)
        return
    rngs = split_ranges(n, parts)
    covered = [i for (a, b) in rngs for i in range(a, b)]
    assert covered == list(range(n))
    sizes = [b - a for (a, b) in rngs]
    assert max(sizes) - min(sizes) <= 1


@settings(max_examples=25, deadline=None)
@given(
    nx=st.integers(2, 10), ny=st.integers(2, 10), nz=st.integers(2, 10),
    data=st.data(),
)
def test_pencil_scatter_gather_identity(nx, ny, nz, data):
    pr = data.draw(st.integers(1, min(nx, ny)))
    pc = data.draw(st.integers(1, min(ny, nz)))
    g = PencilGrid((nx, ny, nz), pr, pc)
    rng = np.random.default_rng(0)
    full = rng.standard_normal((nx, ny, nz)) + 0j
    assert np.allclose(g.gather_z(g.scatter_z(full)), full)
    # Every element is moved exactly once per transpose.
    total = sum(
        g.zy_block_bytes(r, c, k)
        for r in range(pr) for c in range(pc) for k in range(pc)
    )
    assert total == nx * ny * nz * 16


# ---------- PME -----------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(order=st.integers(2, 6), data=st.data())
def test_bspline_partition_of_unity_property(order, data):
    frac = np.asarray(data.draw(
        st.lists(st.floats(0, 0.999999), min_size=1, max_size=20)
    ))
    w, dw = bspline_weights(frac, order)
    assert np.allclose(w.sum(axis=1), 1.0)
    assert np.allclose(dw.sum(axis=1), 0.0, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 12),
    k=st.integers(8, 20),
    seed=st.integers(0, 1000),
)
def test_spread_charge_conservation_property(n, k, seed):
    rng = np.random.default_rng(seed)
    box = np.array([9.0, 10.0, 11.0])
    pos = rng.random((n, 3)) * box
    q = rng.standard_normal(n)
    grid = spread_charges(pos, q, (k, k, k), box, order=4)
    assert grid.sum() == pytest.approx(q.sum(), abs=1e-10)


# ---------- load balancer ---------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    loads=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=40),
    npes=st.integers(1, 8),
)
def test_greedy_rebalance_bounds(loads, npes):
    pairs = list(enumerate(loads))
    assignment = greedy_rebalance(pairs, npes)
    assert set(assignment) == set(range(len(loads)))
    pe_load = [0.0] * npes
    for idx, load in pairs:
        pe_load[assignment[idx]] += load
    # Greedy LPT bound: max load <= average + largest item.
    avg = sum(loads) / npes
    assert max(pe_load) <= avg + max(loads) + 1e-9


# ---------- runtime determinism -----------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(
    nmsgs=st.integers(1, 12),
    sizes=st.lists(st.integers(8, 8192), min_size=1, max_size=4),
)
def test_runtime_schedule_is_deterministic(nmsgs, sizes):
    """Identical workloads produce bit-identical simulated schedules."""

    def run():
        env = Environment()
        rt = ConverseRuntime(env, RunConfig(nnodes=2, workers_per_process=2))
        arrivals = []
        done = env.event()
        total = nmsgs * len(sizes)

        def sink(pe, msg):
            arrivals.append((env.now, pe.rank, msg.nbytes))
            if len(arrivals) == total:
                done.succeed()

        hid = rt.register_handler(sink)

        def kick(pe, msg):
            for i in range(nmsgs):
                for s in sizes:
                    yield from pe.send((i % 3) + 1, hid, s, None)

        kid = rt.register_handler(kick)
        rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
        rt.run_until(done)
        return arrivals

    assert run() == run()


# ---------- charm load metering --------------------------------------------------

def test_measured_loads_feed_rebalance():
    charm = Charm(RunConfig(nnodes=1, workers_per_process=2))

    class Worker(Chare):
        def __init__(self, idx):
            pass

        def work(self, amount):
            yield from self.charge(amount)

    arr = charm.create_array("w", Worker, range(4))
    for i in range(4):
        charm.seed(arr, i, "work", (i + 1) * 100_000)
    charm.start()
    charm.env.run(until=100_000_000)
    charm.runtime.stop()
    loads = dict(charm.measured_loads(arr))
    # Heavier elements measured heavier.
    assert loads[3] > loads[2] > loads[1] > loads[0] > 0
    assignment = greedy_rebalance(list(loads.items()), npes=2)
    pe_load = [0.0, 0.0]
    for idx, load in loads.items():
        pe_load[assignment[idx]] += load
    assert max(pe_load) / sum(pe_load) < 0.7  # reasonably balanced
