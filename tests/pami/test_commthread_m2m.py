"""Tests for communication threads and the many-to-many interface."""

import pytest

from repro.bgq import BGQMachine, BGQParams
from repro.pami import CommThread, ManyToManyRegistry, PamiClient
from repro.sim import Environment


def build(nnodes=2, comm_threads_per_node=1):
    env = Environment()
    m = BGQMachine(env, nnodes)
    clients, contexts, cthreads, registries = [], [], [], []
    for n in range(nnodes):
        client = PamiClient(env, m.node(n))
        ctx = client.create_context()
        cts = []
        for k in range(comm_threads_per_node):
            # Comm threads sit on the last hardware threads of the node.
            hw = m.node(n).thread(m.node(n).n_threads - 1 - k)
            cts.append(CommThread(env, hw, [ctx]))
        clients.append(client)
        contexts.append(ctx)
        cthreads.append(cts)
        registries.append(ManyToManyRegistry(env, [ctx], cts))
    return env, m, contexts, cthreads, registries


def test_commthread_sleeps_then_wakes_on_packet():
    env, m, ctxs, cts, _ = build(2)
    got = []
    ctxs[1].register_dispatch(5, lambda c, t, p: got.append(env.now))

    def sender():
        yield env.timeout(100_000)
        yield from ctxs[0].send_immediate(
            m.node(0).thread(0), ctxs[1].endpoint, 5, 64, None
        )

    env.process(sender())
    env.run(until=300_000)
    assert got and got[0] > 100_000
    ct = cts[1][0]
    assert ct.wakeup_count >= 1
    # While idle, the comm thread consumed no core resources at all.
    assert ct.thread.core.n_members == 0 or ct.thread.core.occupancy == 0


def test_commthread_processes_posted_work():
    env, m, ctxs, cts, _ = build(1)
    ran = []

    def work(ctx, thread):
        ran.append(thread.tid)

    def poster():
        yield env.timeout(1000)
        yield from ctxs[0].post_work(m.node(0).thread(0), work)

    env.process(poster())
    env.run(until=200_000)
    assert ran == [cts[0][0].thread.tid]  # ran on the comm thread


def test_commthread_stop():
    env, m, ctxs, cts, _ = build(1)
    ct = cts[0][0]
    env.run(until=50_000)
    assert ct.process.is_alive
    ct.stop()
    env.run(until=100_000)
    assert not ct.process.is_alive


def test_commthread_requires_context():
    env = Environment()
    m = BGQMachine(env, 1)
    with pytest.raises(ValueError):
        CommThread(env, m.node(0).thread(0), [])


def test_m2m_round_trip_all_messages_arrive():
    env, m, ctxs, cts, regs = build(2)
    # Node 0 sends 8 small messages to node 1; node 1 sends 8 back.
    tag = 11
    h0 = regs[0].register(tag, [(ctxs[1].endpoint, 32, i) for i in range(8)], expected_recvs=8)
    h1 = regs[1].register(tag, [(ctxs[0].endpoint, 32, i) for i in range(8)], expected_recvs=8)
    seen0, seen1 = [], []
    h0.on_message = lambda src, data: seen0.append(data)
    h1.on_message = lambda src, data: seen1.append(data)

    def starter(reg, handle, node):
        yield from reg.start(m.node(node).thread(0), handle)

    env.process(starter(regs[0], h0, 0))
    env.process(starter(regs[1], h1, 1))
    env.run(until=env.all_of([h0.complete, h1.complete]))
    assert sorted(seen0) == list(range(8))
    assert sorted(seen1) == list(range(8))
    assert h0.send_done.triggered and h0.recv_done.triggered


def test_m2m_handle_reset_allows_reuse():
    env, m, ctxs, cts, regs = build(2)
    tag = 3
    h0 = regs[0].register(tag, [(ctxs[1].endpoint, 32, 0)], expected_recvs=0)
    h1 = regs[1].register(tag, [], expected_recvs=1)

    def run_once():
        yield from regs[0].start(m.node(0).thread(0), h0)
        yield h1.recv_done
        h0.reset()
        h1.reset()
        yield from regs[0].start(m.node(0).thread(0), h0)
        yield h1.recv_done

    done = env.process(run_once())
    env.run(until=done)
    assert h0.starts == 2


def test_m2m_duplicate_tag_rejected():
    env, m, ctxs, cts, regs = build(1)
    regs[0].register(1, [], expected_recvs=0)
    with pytest.raises(ValueError):
        regs[0].register(1, [], expected_recvs=0)


def test_m2m_empty_handle_completes_immediately():
    env, m, ctxs, cts, regs = build(1)
    h = regs[0].register(2, [], expected_recvs=0)

    def starter():
        yield from regs[0].start(m.node(0).thread(0), h)

    env.process(starter())
    env.run(until=h.complete)
    assert h.send_done.triggered and h.recv_done.triggered


def test_m2m_without_comm_threads_runs_inline():
    env = Environment()
    m = BGQMachine(env, 2)
    clients = [PamiClient(env, m.node(i)) for i in range(2)]
    ctxs = [c.create_context() for c in clients]
    regs = [ManyToManyRegistry(env, [ctx], []) for ctx in ctxs]
    h0 = regs[0].register(4, [(ctxs[1].endpoint, 32, i) for i in range(4)], expected_recvs=0)
    regs[1].register(4, [], expected_recvs=4)
    h1 = regs[1].handles[4]

    def starter():
        yield from regs[0].start(m.node(0).thread(0), h0)

    def receiver():
        thread = m.node(1).thread(0)
        while not h1.recv_done.triggered:
            yield from ctxs[1].advance(thread)
            if not h1.recv_done.triggered:
                yield env.timeout(100)

    env.process(starter())
    env.process(receiver())
    env.run(until=h1.recv_done)
    assert h0.send_done.triggered


def test_m2m_burst_faster_with_more_comm_threads():
    """Message-rate acceleration: 4 comm threads inject a 64-message
    burst faster than 1 (parallel injection FIFOs, §III-E)."""

    def burst_time(nct):
        env, m, ctxs, cts, regs = build(2, comm_threads_per_node=nct)
        sends = [(ctxs[1].endpoint, 32, i) for i in range(64)]
        h0 = regs[0].register(9, sends, expected_recvs=0)
        regs[1].register(9, [], expected_recvs=64)
        h1 = regs[1].handles[9]

        def starter():
            yield from regs[0].start(m.node(0).thread(0), h0)

        env.process(starter())
        env.run(until=h1.recv_done)
        return env.now

    t1 = burst_time(1)
    t4 = burst_time(4)
    assert t1 / t4 > 1.5
