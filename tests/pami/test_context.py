"""Tests for PAMI contexts, sends and dispatch."""

import pytest

from repro.bgq import BGQMachine, BGQParams
from repro.pami import PamiClient
from repro.sim import Environment


def two_nodes():
    env = Environment()
    m = BGQMachine(env, 2)
    c0 = PamiClient(env, m.node(0))
    c1 = PamiClient(env, m.node(1))
    return env, m, c0.create_context(), c1.create_context()


def test_send_immediate_dispatches_at_destination():
    env, m, ctx0, ctx1 = two_nodes()
    got = []

    def handler(ctx, thread, payload):
        got.append((payload.dispatch_id, payload.data, payload.nbytes, env.now))

    ctx1.register_dispatch(7, handler)

    def sender():
        yield from ctx0.send_immediate(m.node(0).thread(0), ctx1.endpoint, 7, 32, "hi")

    def receiver():
        thread = m.node(1).thread(0)
        while not got:
            yield from ctx1.advance(thread)
            if not got:
                yield env.timeout(100)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got[0][:3] == (7, "hi", 32)
    assert got[0][3] > 0
    assert ctx0.messages_sent == 1
    assert ctx1.messages_received == 1


def test_send_immediate_size_limited():
    env, m, ctx0, ctx1 = two_nodes()

    def sender():
        yield from ctx0.send_immediate(m.node(0).thread(0), ctx1.endpoint, 7, 4096, None)

    env.process(sender())
    with pytest.raises(ValueError):
        env.run()


def test_send_handles_multi_packet_messages():
    env, m, ctx0, ctx1 = two_nodes()
    got = []
    ctx1.register_dispatch(3, lambda c, t, p: got.append(p.nbytes))

    def sender():
        yield from ctx0.send(m.node(0).thread(0), ctx1.endpoint, 3, 8192, None)

    def receiver():
        thread = m.node(1).thread(0)
        while not got:
            yield from ctx1.advance(thread)
            if not got:
                yield env.timeout(100)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got == [8192]
    # 8 KB = 16 packets, one dispatch.
    assert ctx1.rfifo.packets_received == 16


def test_duplicate_dispatch_rejected():
    env, m, ctx0, _ = two_nodes()
    ctx0.register_dispatch(1, lambda *a: None)
    with pytest.raises(ValueError):
        ctx0.register_dispatch(1, lambda *a: None)


def test_unregistered_dispatch_raises_at_receiver():
    env, m, ctx0, ctx1 = two_nodes()

    def sender():
        yield from ctx0.send_immediate(m.node(0).thread(0), ctx1.endpoint, 9, 16, None)

    def receiver():
        yield env.timeout(50_000)
        yield from ctx1.advance(m.node(1).thread(0))

    env.process(sender())
    env.process(receiver())
    with pytest.raises(RuntimeError, match="no dispatch"):
        env.run()


def test_generator_dispatch_charges_work():
    env, m, ctx0, ctx1 = two_nodes()
    times = []

    def handler(ctx, thread, payload):
        t0 = env.now
        yield from thread.compute(100_000)
        times.append(env.now - t0)

    ctx1.register_dispatch(2, handler)

    def sender():
        yield from ctx0.send_immediate(m.node(0).thread(0), ctx1.endpoint, 2, 8, None)

    def receiver():
        thread = m.node(1).thread(0)
        while not times:
            yield from ctx1.advance(thread)
            if not times:
                yield env.timeout(100)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert times[0] > 0


def test_rget_completion():
    env, m, ctx0, ctx1 = two_nodes()
    done = []

    def getter():
        desc = yield from ctx0.rget(m.node(0).thread(0), src_node=1, nbytes=65536)
        yield desc.delivered
        done.append(env.now)

    env.process(getter())
    env.run()
    assert done and done[0] > 0


def test_post_work_runs_on_advance():
    env, m, ctx0, _ = two_nodes()
    ran = []

    def work(ctx, thread):
        ran.append(env.now)

    def poster():
        yield from ctx0.post_work(m.node(0).thread(1), work)

    def advancer():
        thread = m.node(0).thread(0)
        while not ran:
            yield from ctx0.advance(thread)
            if not ran:
                yield env.timeout(50)

    env.process(poster())
    env.process(advancer())
    env.run()
    assert len(ran) == 1


def test_empty_advance_returns_zero_and_costs_little():
    env, m, ctx0, _ = two_nodes()
    out = []

    def advancer():
        n = yield from ctx0.advance(m.node(0).thread(0))
        out.append((n, env.now))

    env.process(advancer())
    env.run()
    n, t = out[0]
    assert n == 0
    assert t < 1000  # just the empty-poll cost


def test_multiple_contexts_have_distinct_endpoints():
    env = Environment()
    m = BGQMachine(env, 1)
    client = PamiClient(env, m.node(0))
    a, b = client.create_context(), client.create_context()
    assert a.endpoint != b.endpoint
