"""RDMA write path + assorted coverage for the PAMI layer."""

import pytest

from repro.bgq import BGQMachine, BGQParams
from repro.pami import CommThread, PamiClient
from repro.sim import Environment


def two_nodes():
    env = Environment()
    m = BGQMachine(env, 2)
    c0 = PamiClient(env, m.node(0))
    c1 = PamiClient(env, m.node(1))
    return env, m, c0.create_context(), c1.create_context()


def test_rput_completes_without_remote_software():
    env, m, ctx0, ctx1 = two_nodes()
    done = []

    def putter():
        desc = yield from ctx0.rput(m.node(0).thread(0), dst_node=1, nbytes=32768)
        yield desc.delivered
        done.append(env.now)

    env.process(putter())
    env.run()
    assert done and done[0] > 0
    # Nothing ever landed in node 1's reception FIFO.
    assert len(ctx1.rfifo) == 0
    assert ctx1.messages_received == 0


def test_rput_time_scales_with_size():
    def one(nbytes):
        env, m, ctx0, _ = two_nodes()
        t = {}

        def putter():
            desc = yield from ctx0.rput(m.node(0).thread(0), 1, nbytes)
            yield desc.delivered
            t["v"] = env.now

        env.process(putter())
        env.run()
        return t["v"]

    assert one(1 << 20) > 4 * one(1 << 16)


def test_rget_and_rput_roundtrip_cost_symmetry():
    """A one-sided read costs roughly a put plus the request leg."""

    def run(kind):
        env, m, ctx0, _ = two_nodes()
        t = {}

        def driver():
            thread = m.node(0).thread(0)
            if kind == "rget":
                desc = yield from ctx0.rget(thread, src_node=1, nbytes=65536)
            else:
                desc = yield from ctx0.rput(thread, dst_node=1, nbytes=65536)
            yield desc.delivered
            t["v"] = env.now

        env.process(driver())
        env.run()
        return t["v"]

    t_put = run("rput")
    t_get = run("rget")
    assert t_get > t_put  # extra request packet + remote turnaround
    assert t_get < 2.0 * t_put  # but transfer-dominated at 64 KB


def test_commthread_drives_multiple_contexts():
    env = Environment()
    m = BGQMachine(env, 2)
    client0 = PamiClient(env, m.node(0))
    client1 = PamiClient(env, m.node(1))
    ctx_a = client1.create_context()
    ctx_b = client1.create_context()
    ct = CommThread(env, m.node(1).thread(60), [ctx_a, ctx_b])
    ctx0 = client0.create_context()
    got = []
    ctx_a.register_dispatch(1, lambda c, t, p: got.append(("a", p.data)))
    ctx_b.register_dispatch(1, lambda c, t, p: got.append(("b", p.data)))

    def sender():
        thread = m.node(0).thread(0)
        yield from ctx0.send_immediate(thread, ctx_a.endpoint, 1, 16, "x")
        yield from ctx0.send_immediate(thread, ctx_b.endpoint, 1, 16, "y")

    env.process(sender())
    env.run(until=1_000_000)
    ct.stop()
    assert sorted(got) == [("a", "x"), ("b", "y")]


def test_network_link_utilization_reports_busy_links():
    env, m, ctx0, ctx1 = two_nodes()

    def sender():
        yield from ctx0.send(m.node(0).thread(0), ctx1.endpoint, 1, 4096, None)

    ctx1.register_dispatch(1, lambda *a: None)
    env.process(sender())
    env.run(until=200_000)
    assert len(m.network.link_utilization()) >= 1
