"""Tests for CmiDirectManytomany at the Converse level (§III-E)."""

import pytest

from repro.converse import CmiDirectManytomany, ConverseRuntime, RunConfig
from repro.converse.messages import ConverseMessage
from repro.sim import Environment


def build(nnodes=2, workers=2, comm_threads=1):
    env = Environment()
    rt = ConverseRuntime(
        env,
        RunConfig(
            nnodes=nnodes,
            workers_per_process=workers,
            comm_threads_per_process=comm_threads,
        ),
    )
    cmid = CmiDirectManytomany(rt)
    return env, rt, cmid


def test_burst_delivery_and_completion_message():
    env, rt, cmid = build()
    got = []
    completions = []

    def on_complete(pe, msg):
        completions.append((pe.rank, msg.payload))
        rt.stop()

    hid = rt.register_handler(on_complete)
    # Process 0 (PE 0) sends 6 messages to PEs of process 1; process 1
    # registers the receive side with a completion handler on its PE 2.
    tag = 42
    sends = [(2 + (i % 2), 32, i) for i in range(6)]
    h0 = cmid.register(tag, rt.pes[0], sends, expected_recvs=0)
    h1 = cmid.register(
        tag,
        rt.pes[2],
        [],
        expected_recvs=6,
        on_message=lambda src_node, data: got.append((src_node, data)),
        completion_handler=hid,
    )

    def kick(pe, msg):
        yield from h0.start()

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    rt.start()
    env.run(until=20_000_000)
    assert sorted(d for _, d in got) == list(range(6))
    assert all(src == 0 for src, _ in got)
    assert completions == [(2, tag)]


def test_handle_reset_supports_iteration():
    env, rt, cmid = build()
    rounds = []
    tag = 7
    h0 = cmid.register(tag, rt.pes[0], [(2, 32, "x")], expected_recvs=0)
    h1 = cmid.register(tag, rt.pes[2], [], expected_recvs=1)

    def driver(pe, msg):
        for _ in range(3):
            yield from h0.start()
            yield h1.recv_done
            rounds.append(env.now)
            h0.reset()
            h1.reset()
        rt.stop()

    did = rt.register_handler(driver)
    rt.pes[0].local_q.append(ConverseMessage(did, 0, None, 0, 0))
    rt.start()
    env.run(until=50_000_000)
    assert len(rounds) == 3
    assert rounds == sorted(rounds)


def test_m2m_intranode_between_processes():
    """Burst destinations on the same node, different process (loopback)."""
    env, rt, cmid = build(nnodes=1, workers=2, comm_threads=1)
    # One node, but force two processes.
    env = Environment()
    rt = ConverseRuntime(
        env,
        RunConfig(
            nnodes=1,
            processes_per_node=2,
            workers_per_process=2,
            comm_threads_per_process=1,
        ),
    )
    cmid = CmiDirectManytomany(rt)
    got = []
    tag = 9
    h0 = cmid.register(tag, rt.pes[0], [(2, 64, "hello")], expected_recvs=0)
    h1 = cmid.register(
        tag, rt.pes[2], [], expected_recvs=1,
        on_message=lambda src, data: got.append(data),
    )

    def kick(pe, msg):
        yield from h0.start()

    kid = rt.register_handler(kick)
    from repro.converse.messages import ConverseMessage

    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    rt.start()
    env.run(until=h1.recv_done)
    rt.stop()
    assert got == ["hello"]


def test_burst_cheaper_per_message_than_p2p():
    """The §III-E claim: a 32-message burst via m2m completes faster
    than the same 32 messages through the p2p send path."""
    NMSG, SIZE = 32, 32

    def run_m2m():
        env, rt, cmid = build(nnodes=2, workers=2, comm_threads=2)
        tag = 1
        h0 = cmid.register(tag, rt.pes[0], [(2, SIZE, i) for i in range(NMSG)], 0)
        h1 = cmid.register(tag, rt.pes[2], [], expected_recvs=NMSG)

        def kick(pe, msg):
            yield from h0.start()

        kid = rt.register_handler(kick)
        rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
        rt.start()
        env.run(until=h1.recv_done)
        rt.stop()
        return env.now

    def run_p2p():
        env, rt, _ = build(nnodes=2, workers=2, comm_threads=2)
        done = env.event()
        seen = []

        def sink(pe, msg):
            seen.append(msg.payload)
            if len(seen) == NMSG:
                done.succeed()

        hid = rt.register_handler(sink)

        def kick(pe, msg):
            for i in range(NMSG):
                yield from pe.send(2, hid, SIZE, i)

        kid = rt.register_handler(kick)
        rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
        rt.start()
        env.run(until=done)
        rt.stop()
        return env.now

    t_m2m = run_m2m()
    t_p2p = run_p2p()
    assert t_m2m < t_p2p
