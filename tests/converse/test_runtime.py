"""Integration tests for the Converse runtime: all three modes."""

import pytest

from repro.converse import ConverseRuntime, RunConfig
from repro.sim import Environment


def build(config):
    env = Environment()
    rt = ConverseRuntime(env, config)
    return env, rt


def ping_once(env, rt, nbytes=32, src=0, dst=None):
    """Send one message src->dst; returns (one_way_cycles,)."""
    if dst is None:
        dst = rt.config.total_pes - 1
    done = env.event()
    t_recv = {}

    def on_pong(pe, msg):
        t_recv["t"] = env.now - msg.payload
        done.succeed()

    hid = rt.register_handler(on_pong)

    def kick(pe, msg):
        yield from pe.send(dst, hid, nbytes, env.now)

    kid = rt.register_handler(kick)
    from repro.converse.messages import ConverseMessage

    rt.pes[src].local_q.append(ConverseMessage(kid, 0, None, src, src))
    rt.run_until(done)
    return t_recv["t"]


def test_nonsmp_message_roundtrip():
    env, rt = build(RunConfig(nnodes=2, processes_per_node=1, workers_per_process=1))
    t = ping_once(env, rt, nbytes=32)
    assert t > 0


def test_smp_intra_process_pointer_exchange_is_fast_and_size_independent():
    env, rt = build(RunConfig(nnodes=1, workers_per_process=4))
    t_small = ping_once(env, rt, nbytes=16, src=0, dst=3)
    env2, rt2 = build(RunConfig(nnodes=1, workers_per_process=4))
    t_big = ping_once(env2, rt2, nbytes=1 << 20, src=0, dst=3)
    # Pointer exchange: latency independent of message size (Fig. 5).
    assert t_big == pytest.approx(t_small, rel=0.05)


def test_internode_latency_grows_with_size():
    cfg = RunConfig(nnodes=2, workers_per_process=2)
    env, rt = build(cfg)
    t_small = ping_once(env, rt, nbytes=32)
    env2, rt2 = build(cfg)
    t_big = ping_once(env2, rt2, nbytes=65536)
    assert t_big > 2 * t_small


def test_comm_thread_mode_delivers():
    cfg = RunConfig(nnodes=2, workers_per_process=4, comm_threads_per_process=1)
    env, rt = build(cfg)
    t = ping_once(env, rt, nbytes=128)
    assert t > 0


def test_rendezvous_path_used_for_large_messages():
    cfg = RunConfig(nnodes=2, workers_per_process=1)
    env, rt = build(cfg)
    proc_src = rt.pes[0].process
    done = env.event()

    def sink(pe, msg):
        done.succeed(env.now)

    hid = rt.register_handler(sink)

    def kick(pe, msg):
        yield from pe.send(1, hid, 1 << 16, None)

    kid = rt.register_handler(kick)
    from repro.converse.messages import ConverseMessage

    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    rt.start()
    env.run(until=done)
    # Large message: the sender parked its buffer awaiting the ACK.
    # Keep the runtime alive so the ACK dispatch can free it.
    env.run(until=env.now + 2_000_000)
    rt.stop()
    assert proc_src.pending_sends == {}


def test_eager_path_multi_packet():
    cfg = RunConfig(nnodes=2, workers_per_process=1)
    env, rt = build(cfg)
    t = ping_once(env, rt, nbytes=2048)  # > packet, < rendezvous threshold
    assert t > 0


def test_messages_to_all_pes_fan_out():
    cfg = RunConfig(nnodes=2, processes_per_node=2, workers_per_process=2)
    env, rt = build(cfg)
    total = cfg.total_pes
    got = []
    done = env.event()

    def sink(pe, msg):
        got.append(pe.rank)
        if len(got) == total - 1:
            done.succeed()

    hid = rt.register_handler(sink)

    def kick(pe, msg):
        for r in range(1, total):
            yield from pe.send(r, hid, 64, None)

    kid = rt.register_handler(kick)
    from repro.converse.messages import ConverseMessage

    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    rt.run_until(done)
    assert sorted(got) == list(range(1, total))


def test_config_validation():
    with pytest.raises(ValueError):
        RunConfig(queue_kind="bogus")
    with pytest.raises(ValueError):
        RunConfig(allocator="bogus")
    with pytest.raises(ValueError):
        RunConfig(idle_poll="spin-harder")
    with pytest.raises(ValueError):
        RunConfig(nnodes=0)
    with pytest.raises(ValueError):
        RunConfig(workers_per_process=70)  # > 64 threads/node
    with pytest.raises(ValueError):
        RunConfig(workers_per_process=60, comm_threads_per_process=8)
    with pytest.raises(ValueError):
        RunConfig(processes_per_node=2, workers_per_process=33)


def test_mode_descriptions():
    assert "non-SMP" in RunConfig(processes_per_node=64).describe()
    assert "no comm threads" in RunConfig(workers_per_process=64).describe()
    assert "+8c" in RunConfig(workers_per_process=32, comm_threads_per_process=8).describe()


def test_bad_destination_and_handler_rejected():
    env, rt = build(RunConfig(nnodes=1, workers_per_process=2))
    errors = []

    def kick(pe, msg):
        try:
            yield from pe.send(99, 0, 8, None)
        except ValueError as e:
            errors.append("rank")
        try:
            yield from pe.send(1, 12345, 8, None)
        except ValueError:
            errors.append("handler")
        rt.stop()

    kid = rt.register_handler(kick)
    from repro.converse.messages import ConverseMessage

    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    rt.start()
    env.run(until=10_000_000)
    assert errors == ["rank", "handler"]


def test_stop_terminates_all_schedulers():
    env, rt = build(RunConfig(nnodes=1, workers_per_process=4, comm_threads_per_process=1))
    rt.start()
    env.run(until=100_000)
    rt.stop()
    env.run(until=1_000_000)
    assert env.peek() == float("inf")  # simulation fully drained
