"""Tests for the pool allocator vs the GNU arena allocator (§III-B)."""

import pytest

from repro.bgq import BGQMachine
from repro.converse.alloc import GnuAllocator, PoolAllocator, make_allocator
from repro.sim import Environment


def one_node():
    env = Environment()
    m = BGQMachine(env, 1)
    return env, m.node(0)


def test_make_allocator_kinds():
    env, node = one_node()
    assert isinstance(make_allocator(node, "pool"), PoolAllocator)
    assert isinstance(make_allocator(node, "gnu"), GnuAllocator)
    with pytest.raises(ValueError):
        make_allocator(node, "jemalloc")


def test_pool_reuses_freed_buffers():
    env, node = one_node()
    alloc = PoolAllocator(node)
    log = []

    def worker():
        t = node.thread(0)
        b1 = yield from alloc.malloc(t, 128)
        yield from alloc.free(t, b1)
        b2 = yield from alloc.malloc(t, 128)
        log.append(b1 is b2)

    env.process(worker())
    env.run()
    assert log == [True]
    assert alloc.pool_hits == 1
    assert alloc.pool_misses == 1  # only the first malloc hit the heap


def test_pool_free_goes_to_creator_thread():
    """Cross-thread free: buffer returns to its creator's pool."""
    env, node = one_node()
    alloc = PoolAllocator(node)
    log = []

    def flow():
        t0, t9 = node.thread(0), node.thread(9)
        buf = yield from alloc.malloc(t0, 64)
        assert buf.owner_tid == 0
        yield from alloc.free(t9, buf)  # freed by a different thread
        again = yield from alloc.malloc(t0, 64)
        log.append(buf is again)

    env.process(flow())
    env.run()
    assert log == [True]


def test_pool_spills_past_threshold():
    env, node = one_node()
    alloc = PoolAllocator(node, pool_threshold=2)

    def flow():
        t = node.thread(0)
        bufs = []
        for _ in range(4):
            b = yield from alloc.malloc(t, 32)
            bufs.append(b)
        for b in bufs:
            yield from alloc.free(t, b)

    env.process(flow())
    env.run()
    assert alloc.spills == 2  # pool holds 2, the rest spill to the heap


def test_pool_avoids_arena_mutex_contention():
    """The Fig. 6 effect: 64 threads malloc+free, pool beats arena."""

    def run(kind):
        env, node = one_node()
        alloc = make_allocator(node, kind)
        n_threads, n_bufs = 64, 20
        finished = []

        def worker(tid):
            t = node.thread(tid)
            bufs = []
            for _ in range(n_bufs):
                b = yield from alloc.malloc(t, 256)
                bufs.append(b)
            for b in bufs:
                yield from alloc.free(t, b)
            finished.append(tid)

        for tid in range(n_threads):
            env.process(worker(tid))
        env.run()
        assert len(finished) == n_threads
        return env.now, node.arena_allocator.total_contention_wait()

    t_gnu, wait_gnu = run("gnu")
    t_pool, wait_pool = run("pool")
    assert t_pool < t_gnu
    assert wait_pool < wait_gnu


def test_pool_warm_reuse_never_touches_arena():
    """After warmup, a malloc/free cycle stays entirely in L2 pools."""
    env, node = one_node()
    alloc = PoolAllocator(node)

    def flow():
        t = node.thread(0)
        b = yield from alloc.malloc(t, 64)
        yield from alloc.free(t, b)
        before = node.arena_allocator.mallocs + node.arena_allocator.frees
        for _ in range(10):
            b = yield from alloc.malloc(t, 64)
            yield from alloc.free(t, b)
        after = node.arena_allocator.mallocs + node.arena_allocator.frees
        assert before == after

    env.process(flow())
    env.run()
