"""Tests for quiescence detection."""

import pytest

from repro.converse import ConverseRuntime, RunConfig
from repro.converse.messages import ConverseMessage
from repro.converse.quiescence import QuiescenceDetector
from repro.sim import Environment


def build(nnodes=2, workers=2):
    env = Environment()
    rt = ConverseRuntime(env, RunConfig(nnodes=nnodes, workers_per_process=workers))
    return env, rt


def test_quiescence_after_message_storm():
    env, rt = build()
    received = []

    def sink(pe, msg):
        received.append(msg.payload)

    hid = rt.register_handler(sink)

    def kick(pe, msg):
        for r in range(rt.config.total_pes):
            for i in range(5):
                yield from pe.send(r, hid, 64, (r, i))

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt)
    done = qd.start()
    rt.start()
    t = env.run(until=done)
    rt.stop()
    # Quiescence fired only after everything was delivered.
    assert len(received) == rt.config.total_pes * 5
    assert t > 0
    assert qd.rounds >= 2


def test_quiescence_waits_for_chains():
    """A message chain keeps the system non-quiescent until it ends."""
    env, rt = build(nnodes=1, workers=2)
    chain_len = 10
    log = []

    def relay(pe, msg):
        hops = msg.payload
        log.append((env.now, hops))
        if hops > 0:
            yield from pe.send((pe.rank + 1) % 2, hid, 64, hops - 1)

    hid = rt.register_handler(relay)
    rt.pes[0].local_q.append(ConverseMessage(hid, 0, chain_len, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=2.0)
    done = qd.start()
    rt.start()
    t_q = env.run(until=done)
    rt.stop()
    t_last_hop = log[-1][0]
    assert len(log) == chain_len + 1
    assert t_q > t_last_hop  # declared only after the chain finished


def test_quiescence_on_idle_system_is_fast():
    env, rt = build(nnodes=1, workers=1)
    qd = QuiescenceDetector(rt, poll_interval_us=1.0)
    done = qd.start()
    rt.start()
    t = env.run(until=done)
    rt.stop()
    assert t < 10_000  # a few polls of an idle system


def test_start_is_idempotent_while_armed():
    env, rt = build(nnodes=1, workers=1)
    qd = QuiescenceDetector(rt)
    e1 = qd.start()
    e2 = qd.start()
    assert e1 is e2


# -- protocol cost (the reduction/broadcast each round stands for) ----------


def test_qd_rounds_charge_protocol_messages_and_latency():
    env, rt = build(nnodes=2, workers=2)  # P = 4
    qd = QuiescenceDetector(rt, poll_interval_us=5.0)
    assert qd.msgs_per_round == 2 * (4 - 1)
    assert qd.round_cost > 0.0
    done = qd.start()
    rt.start()
    t = env.run(until=done)
    rt.stop()
    # An idle system needs three samples: the first primes `prev`, then
    # two consecutive unchanged drained rounds declare quiescence.
    assert qd.rounds == 3
    assert t == pytest.approx(qd.rounds * (qd.poll_interval + qd.round_cost))
    assert qd.protocol_msgs == qd.rounds * qd.msgs_per_round
    # Charges are mirrored into the runtime's ledger (qd.* counters).
    assert rt.qd_rounds == qd.rounds
    assert rt.qd_protocol_msgs == qd.protocol_msgs


def test_qd_single_pe_rounds_are_free():
    """P = 1 needs no reduction: zero messages, zero extra latency."""
    env, rt = build(nnodes=1, workers=1)
    qd = QuiescenceDetector(rt, poll_interval_us=1.0)
    assert qd.msgs_per_round == 0
    assert qd.round_cost == 0.0
    done = qd.start()
    rt.start()
    t = env.run(until=done)
    rt.stop()
    assert qd.protocol_msgs == 0
    assert rt.qd_protocol_msgs == 0
    assert t == pytest.approx(qd.rounds * qd.poll_interval)


# -- retransmit-pending packets are in flight (message-race regression) -----


def test_qd_waits_for_retransmit_pending_packets():
    """QD must not fire while a dropped send awaits retransmission.

    The send goes through the PAMI layer directly (the many-to-many
    pattern), so the Converse created/processed counters never see it;
    while the outage window holds, no FIFO or queue holds a packet for
    it either — the *only* evidence it is still in flight is the
    reliability layer's pending table.  A detector that ignores
    ``rel.in_flight`` declares quiescence during the outage, before the
    message ever arrives.
    """
    from repro.faults import FaultPlan, LinkDownWindow

    env = Environment()
    window_end = 320_000.0  # 200 us outage from t=0
    plan = FaultPlan(
        seed=0,
        down=(LinkDownWindow(None, None, 0.0, window_end),),
        retry_timeout_us=50.0,  # retransmits at 80k, 240k, 560k cycles
        retry_max=12,
    )
    rt = ConverseRuntime(
        env, RunConfig(nnodes=2, workers_per_process=1, fault_plan=plan)
    )
    ctx0 = rt.processes[0].contexts[0]
    ctx1 = rt.processes[1].contexts[0]
    arrivals = []
    ctx1.register_dispatch(0x51, lambda c, t, payload: arrivals.append(env.now))
    qd = QuiescenceDetector(rt, poll_interval_us=5.0)
    quiesced = qd.start()
    rt.start()
    ctx0._post(ctx1.endpoint, 0x51, 32, "retry me")
    env.run(until=env.any_of([quiesced, env.timeout(100_000_000.0)]))
    rt.stop()
    assert quiesced.triggered
    # Delivered exactly once, necessarily after the outage lifted...
    assert len(arrivals) == 1
    assert arrivals[0] > window_end
    # ...and quiescence was declared only after that delivery.
    assert env.now > arrivals[0]
    assert ctx0.reliability.retries > 0
    assert ctx0.reliability.in_flight == 0


def test_qd_credits_gave_up_sends_as_processed():
    """A permanently partitioned reliable send is eventually abandoned
    by the retransmit layer; the give-up must credit the `processed`
    axis, or created > processed forever and QD hangs."""
    from repro.faults import FaultPlan, LinkDownWindow

    env = Environment()
    plan = FaultPlan(
        seed=0,
        down=(LinkDownWindow(None, None, 0.0, 1.0e15),),  # never lifts
        retry_timeout_us=20.0,
        retry_max=2,
    )
    rt = ConverseRuntime(
        env, RunConfig(nnodes=2, workers_per_process=1, fault_plan=plan)
    )
    received = []
    hid = rt.register_handler(lambda pe, msg: received.append(msg.payload))

    def kick(pe, msg):
        yield from pe.send(rt.config.pes_per_node, hid, 64, "doomed")

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=10.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([quiesced, env.timeout(100_000_000.0)]))
    rt.stop()
    assert quiesced.triggered  # the give-up unblocked the detector
    assert received == []
    rels = [
        c.reliability
        for p in rt.processes
        for c in p.client.contexts
        if c.reliability is not None
    ]
    assert sum(r.gave_up for r in rels) == 1
    assert sum(r.in_flight for r in rels) == 0
    # created counted the send; processed was made whole by the give-up.
    assert rt.messages_sent == 1


def test_qd_ignores_best_effort_sends_on_created_axis():
    """Dropped best-effort traffic is invisible to QD: `created` never
    includes it, so a 100%-loss link cannot wedge the detector."""
    from repro.faults import FaultPlan, FaultRates, QOS_BEST_EFFORT

    env = Environment()
    plan = FaultPlan(
        seed=0, per_link={(0, 1): FaultRates(drop=1.0)}
    )
    rt = ConverseRuntime(
        env, RunConfig(nnodes=2, workers_per_process=1, fault_plan=plan)
    )
    received = []
    hid = rt.register_handler(lambda pe, msg: received.append(msg.payload))

    def kick(pe, msg):
        for i in range(6):
            yield from pe.send(
                rt.config.pes_per_node, hid, 64, i, qos=QOS_BEST_EFFORT
            )

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=10.0)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([quiesced, env.timeout(100_000_000.0)]))
    rt.stop()
    assert quiesced.triggered
    assert received == []  # every packet was dropped on the wire
    assert rt.messages_sent == 0  # created axis: only reliable sends
    assert rt.best_effort_sends == 6
    rels = [
        c.reliability
        for p in rt.processes
        for c in p.client.contexts
        if c.reliability is not None
    ]
    # No retransmit machinery ever engaged for the lost packets.
    assert sum(r.retries for r in rels) == 0
    assert sum(r.gave_up for r in rels) == 0
