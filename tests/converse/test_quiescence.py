"""Tests for quiescence detection."""

import pytest

from repro.converse import ConverseRuntime, RunConfig
from repro.converse.messages import ConverseMessage
from repro.converse.quiescence import QuiescenceDetector
from repro.sim import Environment


def build(nnodes=2, workers=2):
    env = Environment()
    rt = ConverseRuntime(env, RunConfig(nnodes=nnodes, workers_per_process=workers))
    return env, rt


def test_quiescence_after_message_storm():
    env, rt = build()
    received = []

    def sink(pe, msg):
        received.append(msg.payload)

    hid = rt.register_handler(sink)

    def kick(pe, msg):
        for r in range(rt.config.total_pes):
            for i in range(5):
                yield from pe.send(r, hid, 64, (r, i))

    kid = rt.register_handler(kick)
    rt.pes[0].local_q.append(ConverseMessage(kid, 0, None, 0, 0))
    qd = QuiescenceDetector(rt)
    done = qd.start()
    rt.start()
    t = env.run(until=done)
    rt.stop()
    # Quiescence fired only after everything was delivered.
    assert len(received) == rt.config.total_pes * 5
    assert t > 0
    assert qd.rounds >= 2


def test_quiescence_waits_for_chains():
    """A message chain keeps the system non-quiescent until it ends."""
    env, rt = build(nnodes=1, workers=2)
    chain_len = 10
    log = []

    def relay(pe, msg):
        hops = msg.payload
        log.append((env.now, hops))
        if hops > 0:
            yield from pe.send((pe.rank + 1) % 2, hid, 64, hops - 1)

    hid = rt.register_handler(relay)
    rt.pes[0].local_q.append(ConverseMessage(hid, 0, chain_len, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=2.0)
    done = qd.start()
    rt.start()
    t_q = env.run(until=done)
    rt.stop()
    t_last_hop = log[-1][0]
    assert len(log) == chain_len + 1
    assert t_q > t_last_hop  # declared only after the chain finished


def test_quiescence_on_idle_system_is_fast():
    env, rt = build(nnodes=1, workers=1)
    qd = QuiescenceDetector(rt, poll_interval_us=1.0)
    done = qd.start()
    rt.start()
    t = env.run(until=done)
    rt.stop()
    assert t < 10_000  # a few polls of an idle system


def test_start_is_idempotent_while_armed():
    env, rt = build(nnodes=1, workers=1)
    qd = QuiescenceDetector(rt)
    e1 = qd.start()
    e2 = qd.start()
    assert e1 is e2
