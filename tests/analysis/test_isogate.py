"""The concurrent-Environment isolation gate is itself a sound oracle.

Beyond "the shipped workloads pass", the gate must *fail* when
instances genuinely share mutable state — otherwise it proves nothing.
The leak test builds a workload pair coupled through one shared list
(exactly the module-global shape rules G1/G4 forbid) and asserts the
interleaved checksums diverge from solo.
"""

import json

import pytest

from repro.harness.isogate import (
    IsoInstance,
    STRIDES,
    gate_workloads,
    isolation_gate,
    main,
    run_interleaved,
    run_solo,
)
from repro.sim import Environment


def test_tiny_gate_is_bit_identical():
    report = isolation_gate(scale="tiny", verbose=False)
    assert len(report) == 4
    for name, rec in report.items():
        assert rec["ok"], f"{name}: {rec['solo']} != {rec['interleaved']}"


def test_workload_builders_are_fresh_each_call():
    name, build = gate_workloads("tiny")[0]
    a, b = build(), build()
    assert a.env is not b.env
    assert a.name == b.name == name


def test_solo_matches_plain_run_path():
    """run_solo goes through env.run(until=done) — the production path."""
    _, build = gate_workloads("tiny")[0]
    name, cs = run_solo(build)
    assert name and len(cs) == 12


def _leaky_builder(shared):
    """A workload whose trajectory depends on cross-instance state.

    Each step appends to ``shared`` and schedules its next event after
    a delay derived from ``len(shared)`` — solo, the list grows only by
    this instance's own steps; interleaved, the other instance's
    appends shift every delay.
    """

    def build():
        env = Environment()
        done = env.event()
        trace = []

        def proc():
            for _ in range(5):
                shared.append(1)
                trace.append(env.now)
                yield env.timeout(1.0 + len(shared))
            done.succeed()

        env.process(proc())
        return IsoInstance(
            name="leaky",
            env=env,
            start=lambda: None,
            stop=lambda: None,
            done=done,
            result=lambda: {"trace": [repr(t) for t in trace]},
        )

    return build


def test_gate_detects_shared_mutable_state():
    shared = []
    build_a = _leaky_builder(shared)
    shared_b = shared  # same object: the leak
    build_b = _leaky_builder(shared_b)

    solo = {}
    for build in (build_a, build_b):
        shared.clear()
        _, cs = run_solo(build)
        solo.setdefault("leaky", []).append(cs)

    shared.clear()
    inter = run_interleaved([build_a])  # alone: matches solo
    assert inter["leaky"] == solo["leaky"][0]

    shared.clear()
    # Two coupled instances interleaved: run_interleaved keys by name,
    # so give the second a distinguishable wrapper.
    insts = {}

    def build_b_named():
        inst = build_b()
        inst.name = "leaky-2"
        return inst

    inter = run_interleaved([build_a, build_b_named])
    assert inter["leaky"] != solo["leaky"][0], (
        "the gate failed to detect deliberately shared state"
    )


def test_interleaving_strides_vary():
    assert len(set(STRIDES)) > 1


def test_main_tiny_json_report(tmp_path, capsys):
    out = tmp_path / "iso.json"
    assert main(["--scale", "tiny", "--json-out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert len(report) == 4
    assert all(rec["ok"] for rec in report.values())
    assert "iso-gate: PASS" in capsys.readouterr().out


@pytest.mark.slow
def test_full_gate_includes_charm_layer():
    report = isolation_gate(scale="full", verbose=False)
    assert "namd/std-PME" in report and "namd/m2m-PME" in report
    assert all(rec["ok"] for rec in report.values())
