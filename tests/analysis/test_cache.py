"""Content-hash lint cache: hits, invalidation, cold starts, integrity."""

import json
from pathlib import Path

from repro.analysis import Analyzer, LintCache, default_rules
from repro.analysis.cache import ruleset_key
from repro.analysis.config import Config

BAD_SOURCE = "import random\n\n\ndef jitter():\n    return random.random()\n"
GLOBAL_SOURCE = "CACHE = {}\n"


def _analyzer(root, cache, with_project=False):
    cfg = Config(
        root=root,
        rules=["D2", "G1"],
        project_paths=(".",) if with_project else (),
        global_allow=(),
    )
    return Analyzer(
        root, default_rules(cfg), baseline=None, config=cfg, cache=cache
    )


def _fresh(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    (tmp_path / "glob.py").write_text(GLOBAL_SOURCE)
    return tmp_path / "cache.json"


def test_second_run_is_served_from_cache(tmp_path):
    cache_path = _fresh(tmp_path)
    rule_ids = ["D2", "G1"]
    first = _analyzer(tmp_path, LintCache(cache_path, rule_ids), True).run(["."])
    assert first.cache_hits == 0
    second = _analyzer(tmp_path, LintCache(cache_path, rule_ids), True).run(["."])
    # Two per-file entries plus the whole-program entry.
    assert second.cache_hits == 3
    assert [v.fingerprint for v in second.violations] == [
        v.fingerprint for v in first.violations
    ]


def test_file_edit_invalidates_only_that_file(tmp_path):
    cache_path = _fresh(tmp_path)
    rule_ids = ["D2", "G1"]
    _analyzer(tmp_path, LintCache(cache_path, rule_ids), False).run(["."])
    (tmp_path / "mod.py").write_text(BAD_SOURCE + "\nX = 1\n")
    result = _analyzer(tmp_path, LintCache(cache_path, rule_ids), False).run(["."])
    assert result.cache_hits == 1  # glob.py unchanged; mod.py re-analyzed
    assert [v.rule for v in result.violations] == ["D2"]


def test_project_entry_invalidated_by_any_project_file(tmp_path):
    cache_path = _fresh(tmp_path)
    rule_ids = ["D2", "G1"]
    _analyzer(tmp_path, LintCache(cache_path, rule_ids), True).run(["."])
    (tmp_path / "glob.py").write_text("CACHE = {}\nMORE = []\n")
    result = _analyzer(tmp_path, LintCache(cache_path, rule_ids), True).run(["."])
    g1 = [v for v in result.violations if v.rule == "G1"]
    assert {v.symbol for v in g1} == {"glob.CACHE", "glob.MORE"}


def test_ruleset_change_cold_starts(tmp_path):
    cache_path = _fresh(tmp_path)
    _analyzer(tmp_path, LintCache(cache_path, ["D2", "G1"]), False).run(["."])
    result = _analyzer(
        tmp_path, LintCache(cache_path, ["D2"]), False
    ).run(["."])
    assert result.cache_hits == 0


def test_ruleset_key_depends_on_analyzer_source():
    assert ruleset_key(["D2"]) != ruleset_key(["D2", "G1"])
    assert ruleset_key(["G1", "D2"]) == ruleset_key(["D2", "G1"])


def test_corrupt_cache_file_is_tolerated(tmp_path):
    cache_path = _fresh(tmp_path)
    cache_path.write_text("{not json")
    result = _analyzer(
        tmp_path, LintCache(cache_path, ["D2", "G1"]), False
    ).run(["."])
    assert result.cache_hits == 0
    assert [v.rule for v in result.violations] == ["D2"]
    # The flush rewrites a valid cache.
    assert json.loads(cache_path.read_text())["version"] == 1


def test_cached_pairs_preserve_pragma_suppression(tmp_path):
    (tmp_path / "mod.py").write_text(
        BAD_SOURCE.replace(
            "return random.random()",
            "return random.random()  # repro-lint: disable=D2",
        )
    )
    cache_path = tmp_path / "cache.json"
    _analyzer(tmp_path, LintCache(cache_path, ["D2", "G1"]), False).run(["."])
    result = _analyzer(
        tmp_path, LintCache(cache_path, ["D2", "G1"]), False
    ).run(["."])
    assert result.cache_hits == 1
    assert result.ok
    assert [v.rule for v in result.pragma_suppressed] == ["D2"]
