"""Regression tests for true positives repro-lint found in this repo.

Each fix keeps a test here so the original hazard cannot quietly return
in a refactor (the lint rule would also catch the literal pattern, but
only this test pins the *behaviour* the fix must preserve).
"""

from repro.converse.machine import _unique_by_identity


class _Alloc:
    """Value-equal allocations that must still be counted separately."""

    def __init__(self, tag):
        self.tag = tag

    def __eq__(self, other):
        return isinstance(other, _Alloc) and self.tag == other.tag

    def __hash__(self):
        return hash(self.tag)


def test_identity_dedup_preserves_first_seen_order():
    # The old code built {id(obj): obj}.values(): id() values are
    # allocator-dependent, so nothing guaranteed a stable order if the
    # dict was ever sorted or re-hashed downstream.  The replacement
    # must yield first-seen order, always.
    a, b, c = _Alloc("a"), _Alloc("b"), _Alloc("c")
    assert _unique_by_identity([c, a, b, a, c, b]) == [c, a, b]


def test_shared_instances_collapse_to_one():
    shared = _Alloc("pool")
    assert _unique_by_identity([shared, shared, shared]) == [shared]


def test_equal_but_distinct_objects_all_kept():
    # Identity semantics, not equality: two equal allocs from different
    # processes are distinct allocations and both must be flushed.
    x, y = _Alloc("same"), _Alloc("same")
    assert x == y
    result = _unique_by_identity([x, y])
    assert len(result) == 2
    assert result[0] is x and result[1] is y


def test_accepts_any_iterable():
    a, b = _Alloc("a"), _Alloc("b")
    assert _unique_by_identity(iter((a, b, a))) == [a, b]


def test_empty_input():
    assert _unique_by_identity([]) == []


# -- G-family freeze sweep (whole-program pass true positives) -------------
#
# The G1 pass found two dozen module-level mutable tables shared by every
# Environment in the process.  All were read-only in practice, but only
# by convention; these tests pin the fix (frozen types) so a refactor
# reintroducing a writable module global fails here, not in review.

import dataclasses
from types import MappingProxyType

import pytest


def test_default_params_is_frozen():
    from repro.bgq.params import DEFAULT_PARAMS

    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_PARAMS.base_ipc = 0.9


def test_shared_constant_tables_reject_writes():
    from repro.bgq.torus import PARTITION_SHAPES
    from repro.charm.reduction import REDUCERS
    from repro.faults.qos import QOS_NAMES
    from repro.harness.pingpong import FIG4_MODES

    for table in (PARTITION_SHAPES, REDUCERS, QOS_NAMES, FIG4_MODES):
        assert isinstance(table, MappingProxyType)
        with pytest.raises(TypeError):
            table["leak"] = object()


def test_gate_configs_is_immutable():
    from repro.harness.tracegate import GATE_CONFIGS

    assert isinstance(GATE_CONFIGS, tuple)


def test_two_environments_do_not_share_params():
    """dataclasses.replace gives a per-run copy; the default stays put."""
    from repro.bgq.params import DEFAULT_PARAMS

    mine = dataclasses.replace(DEFAULT_PARAMS, cores_per_node=8)
    assert mine.cores_per_node == 8
    assert DEFAULT_PARAMS.cores_per_node == 16
