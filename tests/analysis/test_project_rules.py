"""Whole-program (G/S family) fixture suite and ProjectContext coverage.

The project rules run through ``Analyzer.run`` with a config whose
``project_paths`` names the fixture files under test — the per-file
pass sees no paths, so only the whole-program pass fires.  S-family
scope is exercised both ways: s1/s3 fixtures import repro.sim.shard /
repro.bgq.shardnet (import-graph scoping), s2 fixtures are plain files
scoped via the ``spmd-paths`` config key.
"""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, Baseline, default_rules
from repro.analysis.config import Config

FIXTURES = Path(__file__).parent / "fixtures"

PROJECT_RULE_IDS = ["G1", "G2", "G3", "G4", "S1", "S2", "S3"]


def _run_project(
    files, rules=None, spmd_paths=("s2_bad.py", "s2_good.py"),
    global_allow=(), root=FIXTURES, baseline=None,
):
    cfg = Config(
        root=root,
        rules=rules,
        project_paths=tuple(files),
        spmd_paths=tuple(spmd_paths),
        global_allow=tuple(global_allow),
    )
    analyzer = Analyzer(root, default_rules(cfg), baseline=baseline, config=cfg)
    return analyzer.run([])


@pytest.mark.parametrize("rule_id", PROJECT_RULE_IDS)
def test_rule_fires_on_bad_fixture(rule_id):
    result = _run_project([f"{rule_id.lower()}_bad.py"])
    fired = {v.rule for v in result.violations}
    assert rule_id in fired, f"{rule_id} missed its bad fixture (fired: {fired})"


@pytest.mark.parametrize("rule_id", PROJECT_RULE_IDS)
def test_rule_silent_on_good_fixture(rule_id):
    result = _run_project([f"{rule_id.lower()}_good.py"])
    assert result.violations == [], [v.format() for v in result.violations]


@pytest.mark.parametrize("rule_id", PROJECT_RULE_IDS)
def test_bad_fixture_specific_when_run_alone(rule_id):
    """With only its own rule enabled, each bad fixture fires exactly it.

    (g4_bad also fires G1 under the full set — the registry binding and
    the method read are two defects of one snippet — so specificity is
    asserted per-rule rather than per-file.)
    """
    result = _run_project([f"{rule_id.lower()}_bad.py"], rules=[rule_id])
    assert {v.rule for v in result.violations} == {rule_id}


# -- G family details ------------------------------------------------------

def test_g1_reports_write_site_and_symbol():
    result = _run_project(["g1_bad.py"], rules=["G1"])
    by_symbol = {v.symbol: v for v in result.violations}
    assert set(by_symbol) == {"g1_bad.ROUTE_CACHE", "g1_bad.PENDING"}
    cache = by_symbol["g1_bad.ROUTE_CACHE"]
    assert "written after import time at g1_bad.py:" in cache.message
    assert cache.fingerprint == ("G1", "symbol", "g1_bad.ROUTE_CACHE")
    assert "unfrozen" in by_symbol["g1_bad.PENDING"].message


def test_g1_global_allow_exempts_symbol():
    result = _run_project(
        ["g1_bad.py"], rules=["G1"], global_allow=("g1_bad.ROUTE_CACHE",)
    )
    assert {v.symbol for v in result.violations} == {"g1_bad.PENDING"}


def test_g4_resolves_across_modules():
    """The registry and the method live in different files (one-hop import)."""
    result = _run_project(
        ["g4_cross_state.py", "g4_cross_reader.py"], rules=["G4"]
    )
    assert len(result.violations) == 1
    (v,) = result.violations
    assert v.path == "g4_cross_reader.py"
    assert v.symbol == "g4_cross_reader.Recorder.record->g4_cross_state.SHARED_LOG"


def test_g3_symbol_names_class_attribute():
    result = _run_project(["g3_bad.py"], rules=["G3"])
    assert {v.symbol for v in result.violations} == {
        "g3_bad.Dispatcher.handlers",
        "g3_bad.Dispatcher.defaults",
    }


# -- S family scope --------------------------------------------------------

def test_s_family_out_of_scope_without_spmd_marker():
    """The same seeding code is fine in a serial harness (no import, not
    in spmd-paths) — exactly why harness/pingpong.py stays clean."""
    result = _run_project(["s2_bad.py"], spmd_paths=())
    assert result.violations == []


def test_s2_counts_both_unguarded_shapes():
    result = _run_project(["s2_bad.py"], rules=["S2"])
    assert len(result.violations) == 2  # subscript receiver + unguarded name


def test_s3_counts_both_short_keys():
    result = _run_project(["s3_bad.py"], rules=["S3"])
    assert len(result.violations) == 2  # bare .t + 2-component tuple


# -- suppression at project scope ------------------------------------------

def test_project_violation_pragma_suppressed(tmp_path):
    (tmp_path / "mod.py").write_text(
        "CACHE = {}  # repro-lint: disable=G1\n"
    )
    result = _run_project(["mod.py"], rules=["G1"], root=tmp_path)
    assert result.ok
    assert [v.rule for v in result.pragma_suppressed] == ["G1"]


def test_project_baseline_survives_line_churn(tmp_path):
    """Symbol fingerprints keep matching when the binding moves lines."""
    (tmp_path / "mod.py").write_text("CACHE = {}\n")
    first = _run_project(["mod.py"], rules=["G1"], root=tmp_path)
    baseline = Baseline.from_violations(first.violations)
    (tmp_path / "mod.py").write_text(
        "import os  # pushes the binding down two lines\n\nCACHE = {}\n"
    )
    result = _run_project(["mod.py"], rules=["G1"], root=tmp_path, baseline=baseline)
    assert result.ok
    assert [v.rule for v in result.baseline_suppressed] == ["G1"]
    assert result.stale_baseline == []


def test_project_pass_needs_config():
    """Without a config the Analyzer runs file rules only (old call sites)."""
    analyzer = Analyzer(FIXTURES, default_rules(), baseline=None)
    result = analyzer.run([])
    assert result.violations == []


# -- the shipped tree is G/S clean -----------------------------------------

def test_src_repro_has_no_unbaselined_project_findings():
    """The acceptance bar: zero un-baselined G/S findings project-wide.

    Uses the real pyproject config (project-paths, global-allow), so a
    reintroduced module-level mutable breaks this test, not just CI.
    """
    from repro.analysis.config import load_config

    repo_root = Path(__file__).resolve().parents[2]
    cfg = load_config(repo_root)
    cfg.rules = ["G1", "G2", "G3", "G4", "S1", "S2", "S3"]
    analyzer = Analyzer(repo_root, default_rules(cfg), baseline=None, config=cfg)
    result = analyzer.run([], exclude=cfg.exclude)
    assert result.violations == [], [v.format() for v in result.violations]
