"""P1 bad: process generators yielding plain constants."""


def worker(env):
    yield 42


def chatty(env):
    yield env.timeout(5.0)
    yield "done"
