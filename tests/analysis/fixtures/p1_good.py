"""P1 good: processes yield Events; bare yield marks generator shape."""


def worker(env):
    yield env.timeout(5.0)


def maybe(env, ready):
    if ready:
        return
        yield  # pragma: no cover - generator shape (allowed idiom)
    yield env.event()


def transpose_blocks(grid, data):
    # A plain data generator (not a process): tuple yields are fine.
    for k in range(grid.pc):
        yield (0, k), data[:, k]
