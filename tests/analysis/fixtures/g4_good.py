"""G4 fixture (clean): routes threaded through the constructor."""


class Router:
    def __init__(self, routes):
        self._routes = dict(routes)

    def route(self, key):
        return self._routes[key]
