"""S2 fixture: unguarded PE seeding in a mirror builder.

No SPMD import here on purpose: the test harness scopes this file via
the ``spmd-paths`` config key (the other scoping mechanism).
"""


def build_mirror(rt, msg, rank):
    rt.pes[rank].local_q.append(msg)  # bad: direct subscript receiver


def seed_named(rt, msg, rank):
    pe = rt.pes[rank]
    pe.local_q.append(msg)  # bad: pe is None on non-owning shards
