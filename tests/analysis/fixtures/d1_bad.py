"""D1 bad: host wall clock read inside simulation code."""

import time
from datetime import datetime


def stamp_event(env, ev):
    ev.created_at = time.time()
    ev.also_bad = datetime.now()
    return env
