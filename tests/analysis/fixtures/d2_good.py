"""D2 good: every stream is explicitly seeded."""

import random

import numpy as np


def jitter(seed):
    return random.Random(seed).uniform(0.0, 1.0)


def noise(n, seed=1234):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)
