"""G4 fixture: instance method reaching a module-level registry.

The binding itself also fires G1; G4 is about the method read.
"""

_ROUTES = {}


class Router:
    def route(self, key):
        return _ROUTES[key]  # bad: behaviour tied to process-wide state
