"""G3 fixture: class-level mutable attributes shared by all instances."""


class Dispatcher:
    handlers = []  # bad: one list shared by every Dispatcher
    defaults = {"qos": 0}  # bad: one dict shared by every Dispatcher
