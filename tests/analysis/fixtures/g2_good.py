"""G2 fixture (clean): counter state owned by an instance."""


class UidSource:
    def __init__(self):
        self.n = 0

    def next_uid(self):
        self.n += 1
        return self.n
