"""D4 bad: object addresses used as order or keys."""

import heapq


def drain_in_address_order(pending):
    return sorted(pending, key=lambda msg: id(msg))


def dedup_by_address(procs):
    return {id(p): p for p in procs}.values()


def push(heap, msg):
    heapq.heappush(heap, (id(msg), msg))
