"""S3 fixture (clean): the canonical (t, node, n) tie-break key."""

import repro.bgq.shardnet  # noqa: F401


def merge(pending):
    return sorted(pending, key=lambda m: (m.t, m.node, m.n))
