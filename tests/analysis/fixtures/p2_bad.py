"""P2 bad: Event subclasses that re-grow an instance dict."""

from repro.sim.engine import Event, Timeout


class Signal(Event):
    """No __slots__: every instance gets a dict the fast path paid to avoid."""

    def trigger_with_tag(self, tag):
        self.tag = tag
        return self.succeed(tag)


class DelayedSignal(Timeout):
    pass
