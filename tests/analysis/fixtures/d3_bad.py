"""D3 bad: hash-ordered iteration drives event scheduling."""


def flush(env, waiters):
    for ev in set(waiters):
        ev.succeed()


def fanout(pe, targets, payload):
    for rank in {t for t in targets}:
        yield from pe.send(rank, 0, 64, payload)


def wait_any(env, events):
    return env.any_of(set(events))
