"""D3 good: deterministic order at every scheduling boundary.

``sorted(set(...))`` is fine — the set is ordered before anything is
scheduled from it; so is iterating a set for pure accounting.
"""


def flush(env, waiters):
    for ev in sorted(set(waiters), key=lambda e: e.seq):
        ev.succeed()


def fanout(pe, targets, payload):
    for rank in sorted(set(targets)):
        yield from pe.send(rank, 0, 64, payload)


def count_pending(events):
    total = 0
    for ev in set(events):  # no scheduling in the body: order-free
        total += not ev.triggered
    return total


def wait_any(env, events):
    return env.any_of(list(events))
