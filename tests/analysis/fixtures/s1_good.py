"""S1 fixture (clean): one fixed registration order on every shard."""

import repro.sim.shard  # noqa: F401


def build(charm, shard_id):
    charm.register_entry("patch.start")
    charm.register_entry("patch.step")
