"""S2 fixture (clean): both guarded-seeding idioms from shardbench."""


def build_mirror(rt, msg, rank):
    pe = rt.pes[rank]
    if pe is not None:
        pe.local_q.append(msg)


def seed_early_exit(rt, msg, rank):
    pe = rt.pes[rank]
    if pe is None:
        return
    pe.local_q.append(msg)
