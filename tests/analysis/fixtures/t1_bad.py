"""T1 fixture: unguarded tracer recording calls on the hot path."""


class Scheduler:
    def __init__(self, runtime):
        self.runtime = runtime
        self.tracer = None
        self.rank = 0

    def execute(self, msg):
        rec = self.runtime.tracer
        rec.begin(self.rank, "sched")  # bad: no `is not None` guard
        self.tracer.count("sched.polls")  # bad: attribute receiver, unguarded

    def deliver(self, msg, tracer):
        if tracer is not None:
            tracer.msg_recv(msg.msg_id, self.rank)
        else:
            tracer.begin(self.rank, "comm")  # bad: guarded branch is the OTHER one

    def notify(self, tr):
        tr.mark(self.rank, "fault")  # bad: no guard anywhere
