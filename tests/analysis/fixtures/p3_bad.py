"""P3 bad: reaching into the Environment's scheduling internals."""

import heapq


def sneak_in_front(env, ev):
    env._imm.appendleft((env._now, 0, ev))


def reschedule(runtime, ev, when):
    heapq.heappush(runtime.env._queue, (when, 0, ev))


def rewind(env):
    env._now = 0.0
