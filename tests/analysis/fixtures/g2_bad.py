"""G2 fixture: rebinding module state through a global statement."""

_counter = 0


def next_uid():
    global _counter  # bad: couples every caller in the process
    _counter += 1
    return _counter
