"""D4 good: explicit sequence numbers order; id() only for membership."""

import heapq


def drain_in_schedule_order(pending):
    return sorted(pending, key=lambda msg: msg.seq)


def dedup_keep_order(procs):
    seen = set()
    out = []
    for p in procs:
        if id(p) not in seen:  # identity *membership* is fine
            seen.add(id(p))
            out.append(p)
    return out


def push(heap, msg):
    heapq.heappush(heap, (msg.seq, msg))
