"""P3 good: the public Environment API schedules everything."""


def signal_now(env, ev):
    ev.succeed()


def reschedule(runtime, when, value):
    return runtime.env.timeout(when - runtime.env.now, value)


def current_time(env):
    return env.now
