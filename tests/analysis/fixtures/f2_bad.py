"""F2 bad: best-effort QoS branches that touch reliable-transport state.

A best-effort/FRESH send must leave zero transport footprint; every
branch below reintroduces one — a sequence stamp, a `pending` record,
or a `_next_seq` advance — under a best-effort guard.
"""

QOS_RELIABLE = 0
QOS_BEST_EFFORT = 1
QOS_BEST_EFFORT_FRESH = 2
_QOS_FRESH = QOS_BEST_EFFORT_FRESH


def post(self, payload, dest, qos):
    if qos == QOS_BEST_EFFORT:
        # Stamping creates a pending record and an ACK obligation.
        self.rel.stamp(payload, dest)
    if qos == _QOS_FRESH:
        payload.seq = self.rel._next_seq.get(dest, 0)
    if qos != QOS_RELIABLE:
        self.rel.pending[(dest, payload.seq)] = payload
