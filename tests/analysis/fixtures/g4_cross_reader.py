"""...and the method that reaches it lives in a different module."""

from g4_cross_state import SHARED_LOG


class Recorder:
    def record(self, entry):
        SHARED_LOG.append(entry)  # bad: resolved through a one-hop import
