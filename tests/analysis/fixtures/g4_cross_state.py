"""G4 cross-module fixture: the shared registry lives here..."""

SHARED_LOG = []
