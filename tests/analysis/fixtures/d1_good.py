"""D1 good: simulated time only."""


def stamp_event(env, ev):
    ev.created_at = env.now
    return env
