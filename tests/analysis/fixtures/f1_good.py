"""F1 good: all randomness flows through named seeded streams."""

from repro.sim.rng import StreamRegistry


class Injector:
    def __init__(self, plan_seed):
        self.streams = StreamRegistry(plan_seed)

    def link_drop(self, link):
        u = self.streams.stream(f"link.{link[0]}.{link[1]}").uniform()
        return u < 0.05

    def fifo_delay(self, node_id, fifo_id):
        return self.streams.stream(f"rfifo.{node_id}.{fifo_id}").exponential(4000.0)
