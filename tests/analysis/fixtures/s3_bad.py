"""S3 fixture: non-canonical same-timestamp sort keys.

In S-family scope through the import graph (imports repro.bgq.shardnet).
"""

import repro.bgq.shardnet  # noqa: F401


def merge(pending):
    pending.sort(key=lambda m: m.t)  # bad: timestamp alone
    return sorted(pending, key=lambda m: (m.t, m.node))  # bad: 2 components
