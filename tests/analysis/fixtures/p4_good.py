"""P4 good: peers are reached through entry-method delivery."""

from repro.charm.chare import Chare


class Cell(Chare):
    def __init__(self, idx):
        self.temperature = 0.0

    def equalize(self, neighbour):
        yield from self.send(neighbour, "take_heat", 16, self.temperature)

    def take_heat(self, peer_t):
        self.temperature = 0.5 * (self.temperature + peer_t)
        yield self.charge(1.0)
