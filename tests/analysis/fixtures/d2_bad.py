"""D2 bad: module-global and unseeded RNGs."""

import random

import numpy as np


def jitter():
    return random.uniform(0.0, 1.0)


def noise(n):
    rng = np.random.default_rng()
    return rng.normal(size=n)


def legacy(n):
    return np.random.rand(n)
