"""F2 good: QoS branching with a clean best-effort path.

The reliable branch may stamp (that is its job); the FRESH branch only
calls ``stamp_fresh`` (generation counters, no pending/seq state), and
the best-effort deadline branch arms a watcher without touching the
transport at all.
"""

QOS_RELIABLE = 0
QOS_BEST_EFFORT_FRESH = 2
_QOS_FRESH = QOS_BEST_EFFORT_FRESH
_QOS_RELIABLE = QOS_RELIABLE


def post(self, payload, dest, qos, fresh_key):
    if qos == _QOS_RELIABLE:
        self.rel.stamp(payload, dest)
    elif qos == _QOS_FRESH:
        self.rel.stamp_fresh(payload, dest, fresh_key)


def start(self, handle):
    if handle.qos != QOS_RELIABLE and handle.deadline_cycles is not None:
        self._arm_shortfall_watcher(handle)
