"""T1 fixture: properly guarded tracer calls (and non-tracer lookalikes)."""


class Scheduler:
    def __init__(self, runtime):
        self.runtime = runtime
        self.tracer = None
        self.rank = 0

    def execute(self, msg):
        rec = self.runtime.tracer
        if rec is not None:
            rec.begin(self.rank, "sched")
            rec.msg_exec(msg.msg_id, self.rank, 0, 1)

    def deliver(self, msg):
        if self.tracer is not None and msg.msg_id is not None:
            self.tracer.msg_recv(msg.msg_id, self.rank)

    def poll(self, tr):
        if tr is None:
            return
        tr.count("sched.polls")

    def flush(self, tracer):
        tracer is not None and tracer.end(self.rank)

    def finish(self, tracer):
        # Lifecycle methods run from setup/teardown code, not hot paths.
        tracer.register_track(99, "commthread")
        tracer.finish()

    def stop(self, recorder):
        # Not a tracer name: `end` on other receivers stays unflagged.
        recorder.end(self.rank)
