"""O1 fixture: properly guarded obs calls (and non-obs lookalikes)."""


class Dispatcher:
    def __init__(self, runtime):
        self.runtime = runtime
        self.profiler = None
        self.metrics = None

    def step(self, event):
        prof = self.runtime.profiler
        if prof is not None:
            prof.sample(event)
            prof.charge(event, 12)

    def account(self, event):
        if self.profiler is not None and event is not None:
            self.profiler.sample(event)

    def poll(self, profiler):
        if profiler is None:
            return
        profiler.next_gap()

    def record(self, metrics):
        metrics is not None and metrics.observe(1.5)

    def export(self, profiler, metrics):
        # Aggregation/export methods run once per session, off the hot
        # path, and stay unflagged.
        profiler.total_nanos()
        metrics.snapshot()

    def wake(self, queue):
        # Not an obs name: `set` on other receivers stays unflagged.
        queue.set(7)
