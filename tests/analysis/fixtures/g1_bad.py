"""G1 fixture: module-level mutable bindings shared across Environments."""

ROUTE_CACHE = {}  # bad: unfrozen dict, and written after import below
PENDING = []  # bad: unfrozen list


def remember(key, value):
    ROUTE_CACHE[key] = value
