"""P4 bad: a chare reaches into a peer's state directly."""

from repro.charm.chare import Chare


class Cell(Chare):
    def __init__(self, idx):
        self.temperature = 0.0

    def equalize(self, neighbour):
        # Zero-cost back channel: the runtime never sees this "message".
        peer_t = self._array.element(neighbour).temperature
        self._array.elements[neighbour].temperature = self.temperature
        yield self.charge((peer_t - self.temperature) * 0.0 + 1.0)
