"""P2 good: slots-complete Event subclasses."""

from repro.sim.engine import Event, Timeout


class Signal(Event):
    __slots__ = ("tag",)

    def trigger_with_tag(self, tag):
        self.tag = tag
        return self.succeed(tag)


class DelayedSignal(Timeout):
    __slots__ = ()
