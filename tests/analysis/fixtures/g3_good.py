"""G3 fixture (clean): immutable class constants, per-instance state."""


class Dispatcher:
    MODES = ("eager", "rendezvous")  # fine: immutable tuple

    def __init__(self):
        self.handlers = []

    def add(self, handler):
        self.handlers.append(handler)
