"""F1 bad: seeded-but-raw RNG inside the faults subsystem.

Every draw here is explicitly seeded, so D2 is satisfied — but none
derives from FaultPlan.seed through sim.rng stream spawning, so the
fault schedule is not a pure function of the plan (F1).
"""

import random

import numpy as np


def link_drop(seed):
    return random.Random(seed).uniform(0.0, 1.0) < 0.05


def fifo_delay(seed):
    rng = np.random.default_rng(seed)
    return rng.exponential(4000.0)
