# Deliberately-bad/good source snippets for the repro-lint rule tests.
# This directory is excluded from repo-wide lint runs (pyproject
# [tool.repro-lint] exclude); the test suite analyzes the files
# explicitly, which bypasses the exclusion.
