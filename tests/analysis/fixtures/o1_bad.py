"""O1 fixture: unguarded profiler/metrics recording on the hot path."""


class Dispatcher:
    def __init__(self, runtime):
        self.runtime = runtime
        self.profiler = None
        self.metrics = None

    def step(self, event):
        prof = self.runtime.profiler
        prof.sample(event)  # bad: no `is not None` guard
        self.profiler.charge(event, 12)  # bad: attribute receiver, unguarded

    def account(self, event, profiler):
        if profiler is not None:
            profiler.sample(event)
        else:
            profiler.flush()  # bad: guarded branch is the OTHER one

    def record(self, event):
        self.metrics.observe(1.5)  # bad: metric mutation, no guard

    def tally(self, metrics):
        metrics.inc()  # bad: no guard anywhere
