"""S1 fixture: registration conditioned on shard identity.

In S-family scope through the import graph (imports repro.sim.shard).
"""

import repro.sim.shard  # noqa: F401


def build(charm, shard_id):
    if shard_id == 0:
        charm.register_entry("patch.start")  # bad: ids diverge across shards
