"""G1 fixture (clean): frozen module-level constants."""

from types import MappingProxyType

ROUTE_TABLE = MappingProxyType({"east": 1, "west": 2})
SIZES = (16, 512, 8192)
MODES = frozenset({"smp", "non-smp"})


def lookup(key):
    return ROUTE_TABLE[key]
