"""Pragma and baseline suppression semantics."""

import json

import pytest

from repro.analysis import Analyzer, Baseline, default_rules

BAD_SOURCE = """\
import random


def jitter():
    return random.random()
"""


def _run(tmp_path, source, baseline=None, name="mod.py"):
    f = tmp_path / name
    f.write_text(source)
    analyzer = Analyzer(tmp_path, default_rules(), baseline=baseline)
    return analyzer.run([name])


def test_unsuppressed_violation_reported(tmp_path):
    result = _run(tmp_path, BAD_SOURCE)
    assert [v.rule for v in result.violations] == ["D2"]
    assert not result.ok


def test_line_pragma_suppresses(tmp_path):
    source = BAD_SOURCE.replace(
        "return random.random()",
        "return random.random()  # repro-lint: disable=D2",
    )
    result = _run(tmp_path, source)
    assert result.ok
    assert [v.rule for v in result.pragma_suppressed] == ["D2"]


def test_line_pragma_is_rule_specific(tmp_path):
    source = BAD_SOURCE.replace(
        "return random.random()",
        "return random.random()  # repro-lint: disable=D1",
    )
    result = _run(tmp_path, source)
    assert [v.rule for v in result.violations] == ["D2"]


def test_line_pragma_multiple_rules(tmp_path):
    source = BAD_SOURCE.replace(
        "return random.random()",
        "return random.random()  # repro-lint: disable=D1, D2",
    )
    assert _run(tmp_path, source).ok


def test_file_pragma_suppresses_whole_file(tmp_path):
    source = "# repro-lint: disable-file=D2\n" + BAD_SOURCE
    result = _run(tmp_path, source)
    assert result.ok
    assert [v.rule for v in result.pragma_suppressed] == ["D2"]


def test_disable_all_pragma(tmp_path):
    source = BAD_SOURCE.replace(
        "return random.random()",
        "return random.random()  # repro-lint: disable=all",
    )
    assert _run(tmp_path, source).ok


def test_baseline_suppresses_and_matches_by_line_text(tmp_path):
    first = _run(tmp_path, BAD_SOURCE)
    baseline = Baseline.from_violations(first.violations)
    result = _run(tmp_path, BAD_SOURCE, baseline=baseline)
    assert result.ok
    assert [v.rule for v in result.baseline_suppressed] == ["D2"]
    assert result.stale_baseline == []


def test_baseline_does_not_survive_line_edits(tmp_path):
    baseline = Baseline.from_violations(_run(tmp_path, BAD_SOURCE).violations)
    edited = BAD_SOURCE.replace(
        "return random.random()", "return random.random() * 2.0"
    )
    result = _run(tmp_path, edited, baseline=baseline)
    # The edited line no longer matches: fresh violation + stale entry.
    assert [v.rule for v in result.violations] == ["D2"]
    assert len(result.stale_baseline) == 1


def test_baseline_survives_unrelated_edits(tmp_path):
    baseline = Baseline.from_violations(_run(tmp_path, BAD_SOURCE).violations)
    shifted = "import os  # unrelated new first line\n" + BAD_SOURCE
    result = _run(tmp_path, shifted, baseline=baseline)
    assert result.ok, "line-number churn must not resurrect grandfathered entries"


def test_baseline_round_trip(tmp_path):
    baseline = Baseline.from_violations(_run(tmp_path, BAD_SOURCE).violations)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.fingerprints() == baseline.fingerprints()
    data = json.loads(path.read_text())
    assert data["version"] == 2
    assert data["entries"][0]["rule"] == "D2"


def test_baseline_loads_version_1_files(tmp_path):
    """Pre-symbol baselines (version 1) stay readable after the bump."""
    path = tmp_path / "baseline.json"
    path.write_text(
        '{"version": 1, "entries": '
        '[{"rule": "D2", "path": "mod.py", "text": "return random.random()"}]}'
    )
    loaded = Baseline.load(path)
    assert loaded.fingerprints() == [("D2", "mod.py", "return random.random()")]


def test_baseline_load_missing_file_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "nope.json")) == 0


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError):
        Baseline.load(path)
