"""Dynamic sanitizer (REPRO_SANITIZE=1) behaviour.

Two properties matter: every hazard class raises :class:`SanitizerError`
when the flag is on, and a *clean* workload's trajectory is bit-identical
with the flag on or off (the checked path must never change pop order).
"""

import pytest

from repro.analysis.sanitizer import SanitizerError, sanitize_enabled, sanitized
from repro.sim.engine import Environment


def _make_env():
    return Environment()


def test_sanitized_context_toggles_flag():
    assert not sanitize_enabled()
    with sanitized():
        assert sanitize_enabled()
        with sanitized(False):
            assert not sanitize_enabled()
        assert sanitize_enabled()
    assert not sanitize_enabled()


def test_flag_sampled_at_construction():
    with sanitized():
        env = _make_env()
    # Constructed inside the context: stays sanitized after exit.
    assert env._sanitize
    assert not _make_env()._sanitize


def test_reentrant_step_raises():
    with sanitized():
        env = _make_env()
    env.timeout(1.0)  # pending work for the reentrant call to grab

    def reenter(_event):
        env.step()

    ev = env.event()
    ev._add_callback(reenter)
    ev.succeed()
    with pytest.raises(SanitizerError, match="reentrant"):
        env.step()


def test_reentrant_run_from_callback_raises():
    with sanitized():
        env = _make_env()

    def reenter(_event):
        env.run()

    ev = env.event()
    ev._add_callback(reenter)
    ev.succeed()
    env.timeout(1.0)
    with pytest.raises(SanitizerError, match="reentrant"):
        env.run()


def test_lost_wakeup_registration_raises():
    with sanitized():
        env = _make_env()
    ev = env.event()
    ev.succeed()
    env.run()
    assert ev.processed
    with pytest.raises(SanitizerError, match="never fire"):
        ev._add_callback(lambda e: None)


def test_lost_wakeup_not_checked_when_disabled():
    env = _make_env()
    assert not env._sanitize
    ev = env.event()
    ev.succeed()
    env.run()
    # Silently accepted (the pre-sanitizer behaviour): documents exactly
    # what hazard the sanitizer exists to surface.
    ev._add_callback(lambda e: None)
    assert ev.callbacks is not None


def test_callback_list_repopulation_raises():
    with sanitized():
        env = _make_env()
    ev = env.event()

    def repopulate(event):
        # A stale-reference bug: handler writes back into the event it
        # is being called for.  _add_callback would catch the append
        # form; direct assignment only the checked step can see.
        event.callbacks = [lambda e: None]

    ev._add_callback(repopulate)
    ev.succeed()
    with pytest.raises(SanitizerError, match="repopulated"):
        env.step()


def test_set_input_to_any_of_raises():
    with sanitized():
        env = _make_env()
        t1, t2 = env.timeout(1.0), env.timeout(2.0)
        with pytest.raises(SanitizerError, match="hash seed"):
            # The hazard itself is the subject under test here.
            env.any_of({t1, t2})  # repro-lint: disable=D3


def test_frozenset_input_to_all_of_raises():
    with sanitized():
        env = _make_env()
        t1, t2 = env.timeout(1.0), env.timeout(2.0)
        with pytest.raises(SanitizerError, match="hash seed"):
            env.all_of(frozenset((t1, t2)))  # repro-lint: disable=D3


def test_ordered_inputs_accepted():
    with sanitized():
        env = _make_env()
        t1, t2 = env.timeout(1.0), env.timeout(2.0)
        cond = env.any_of([t1, t2])
        env.run(until=cond)
    assert env.now == 1.0


def _workload(env, log):
    """A mixed heap/deque workload exercising every scheduling shape."""

    def worker(wid):
        for i in range(5):
            yield env.timeout(0.5 * (wid + 1))
            log.append((env.now, wid, i))
            ev = env.event()
            ev.succeed(wid)
            got = yield ev
            assert got == wid

    def joiner():
        procs = [env.process(worker(w), name=f"w{w}") for w in range(3)]
        yield env.all_of(procs)
        log.append(("join", env.now))

    env.process(joiner())


def test_clean_run_trajectory_identical_with_sanitizer():
    plain_log, san_log = [], []
    env = _make_env()
    _workload(env, plain_log)
    env.run()

    with sanitized():
        env_s = _make_env()
    assert env_s._sanitize
    _workload(env_s, san_log)
    env_s.run()

    assert san_log == plain_log
    assert env_s.now == env.now
    assert env_s.events_executed == env.events_executed
