"""CLI surface: exit codes, formats, self-check, baseline writing."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = "import random\n\n\ndef jitter():\n    return random.random()\n"


def _project(tmp_path, sources, extra_toml=""):
    """A throwaway project root with its own [tool.repro-lint] table."""
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\npaths = ["."]\n' + extra_toml
    )
    for name, text in sources.items():
        (tmp_path / name).write_text(text)
    return tmp_path


def test_repo_lints_clean():
    assert main(["--root", str(REPO_ROOT)]) == 0


def test_violations_exit_1(tmp_path, capsys):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    assert main(["--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "mod.py:5" in out
    assert "D2" in out


def test_json_format(tmp_path, capsys):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    assert main(["--root", str(root), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["files_analyzed"] == 1
    (violation,) = data["violations"]
    assert violation["rule"] == "D2"
    assert violation["path"] == "mod.py"


def test_rules_filter_disables_other_rules(tmp_path):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    assert main(["--root", str(root), "--rules", "P2"]) == 0
    assert main(["--root", str(root), "--rules", "D2"]) == 1


def test_unknown_rule_is_usage_error(tmp_path):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    with pytest.raises(SystemExit) as exc:
        main(["--root", str(root), "--rules", "Z9"])
    assert exc.value.code == 2


def test_write_baseline_then_clean(tmp_path, capsys):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    assert main(["--root", str(root), "--write-baseline"]) == 0
    baseline = root / "lint-baseline.json"
    assert baseline.is_file()
    # Grandfathered: the same violation no longer fails the gate...
    assert main(["--root", str(root)]) == 0
    capsys.readouterr()
    # ...unless the baseline is explicitly ignored.
    assert main(["--root", str(root), "--no-baseline"]) == 1


def test_stale_baseline_reported(tmp_path, capsys):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    assert main(["--root", str(root), "--write-baseline"]) == 0
    (root / "mod.py").write_text("def jitter():\n    return 4\n")
    capsys.readouterr()
    assert main(["--root", str(root)]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_list_rules_prints_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D1", "D2", "D3", "D4", "P1", "P2", "P3", "P4"):
        assert rule_id in out


def test_self_check_passes(capsys):
    assert main(["--root", str(REPO_ROOT), "--self-check"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_explicit_path_argument(tmp_path):
    root = _project(tmp_path, {"good.py": "x = 1\n", "bad.py": BAD_SOURCE})
    assert main(["--root", str(root), "good.py"]) == 0
    assert main(["--root", str(root), "bad.py"]) == 1


def test_unknown_rule_in_config_table_is_usage_error(tmp_path):
    """A typo in [tool.repro-lint] rules must not silently disable a rule."""
    root = _project(tmp_path, {"mod.py": "x = 1\n"}, extra_toml='rules = ["D2", "Q7"]\n')
    with pytest.raises(SystemExit) as exc:
        main(["--root", str(root)])
    assert exc.value.code == 2


def test_json_out_writes_report_file(tmp_path):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    out = root / "reports" / "lint.json"
    assert main(["--root", str(root), "--json-out", str(out)]) == 1
    data = json.loads(out.read_text())
    assert data["files_analyzed"] == 1
    assert data["violations"][0]["rule"] == "D2"
    assert "cache_hits" in data


def test_cache_hits_on_second_run(tmp_path):
    root = _project(tmp_path, {"mod.py": BAD_SOURCE})
    out = root / "lint.json"
    main(["--root", str(root), "--json-out", str(out)])
    assert json.loads(out.read_text())["cache_hits"] == 0
    main(["--root", str(root), "--json-out", str(out)])
    assert json.loads(out.read_text())["cache_hits"] >= 1
    # --no-cache forces a cold run.
    main(["--root", str(root), "--json-out", str(out), "--no-cache"])
    assert json.loads(out.read_text())["cache_hits"] == 0


def test_write_baseline_prunes_deleted_files(tmp_path, capsys):
    root = _project(
        tmp_path, {"mod.py": BAD_SOURCE, "gone.py": BAD_SOURCE}
    )
    assert main(["--root", str(root), "--write-baseline"]) == 0
    (root / "gone.py").unlink()
    capsys.readouterr()
    assert main(["--root", str(root), "--write-baseline"]) == 0
    assert "pruned 1 for missing file(s): gone.py" in capsys.readouterr().out
    entries = json.loads((root / "lint-baseline.json").read_text())["entries"]
    assert {e["path"] for e in entries} == {"mod.py"}


def test_project_rules_report_through_cli(tmp_path, capsys):
    """G findings surface in the CLI with their dotted symbols."""
    root = _project(
        tmp_path,
        {"state.py": "CACHE = {}\n"},
        extra_toml='rules = ["G1"]\nproject-paths = ["."]\nglobal-allow = []\n',
    )
    assert main(["--root", str(root)]) == 1
    assert "state.CACHE" in capsys.readouterr().out
