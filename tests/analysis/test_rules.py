"""Per-rule fixture suite: each rule fires on its bad snippet and stays
silent on the good one.  This is the guarantee behind `make lint`: a
rule that silently stops matching fails here, not in production."""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, default_rules

FIXTURES = Path(__file__).parent / "fixtures"

RULE_IDS = ["D1", "D2", "D3", "D4", "P1", "P2", "P3", "P4"]


def _analyze(path: Path):
    analyzer = Analyzer(FIXTURES, default_rules(), baseline=None)
    return analyzer.analyze_file(path).violations


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fires_on_bad_fixture(rule_id):
    violations = _analyze(FIXTURES / f"{rule_id.lower()}_bad.py")
    fired = {v.rule for v in violations}
    assert rule_id in fired, f"{rule_id} missed its bad fixture (fired: {fired})"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_silent_on_good_fixture(rule_id):
    violations = _analyze(FIXTURES / f"{rule_id.lower()}_good.py")
    assert violations == [], [v.format() for v in violations]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_is_rule_specific(rule_id):
    """Bad fixtures demonstrate exactly their own rule family's defect."""
    violations = _analyze(FIXTURES / f"{rule_id.lower()}_bad.py")
    assert {v.rule for v in violations} == {rule_id}


def test_violation_carries_location_and_fingerprint():
    (v, *_) = _analyze(FIXTURES / "p2_bad.py")
    assert v.rule == "P2"
    assert v.path.endswith("p2_bad.py")
    assert v.line > 1
    assert "class Signal" in v.line_text
    assert v.fingerprint == (v.rule, v.path, v.line_text)


def test_d1_allowlist_exempts_harness_paths():
    """The same wall-clock source is clean under an allowlisted path."""
    from repro.analysis.config import Config

    rules = default_rules(Config(wallclock_allow=("src/repro/harness",)))
    d1 = next(r for r in rules if r.id == "D1")
    assert not d1.applies_to("src/repro/harness/pingpong.py")
    assert d1.applies_to("src/repro/sim/engine.py")


# -- F1: raw RNG forbidden inside src/repro/faults ------------------------
#
# F1 is path-scoped (it only applies inside the faults subsystem), so its
# fixture pair is analyzed with a config that maps the fixture files into
# scope rather than through the default-rules harness above.


def _analyze_f1(filename):
    from repro.analysis.config import Config

    cfg = Config(faults_paths=("f1_bad.py", "f1_good.py"))
    analyzer = Analyzer(FIXTURES, default_rules(cfg), baseline=None)
    return analyzer.analyze_file(FIXTURES / filename).violations


def test_f1_fires_on_seeded_raw_rng():
    """Seeded random.Random/default_rng are D2-clean but still F1 dirty."""
    violations = _analyze_f1("f1_bad.py")
    assert {v.rule for v in violations} == {"F1"}
    # import random + random.Random(...) + np.random.default_rng(...)
    assert len(violations) >= 3


def test_f1_silent_on_stream_registry_use():
    violations = _analyze_f1("f1_good.py")
    assert violations == [], [v.format() for v in violations]


def test_f1_scoped_to_faults_paths():
    """Outside src/repro/faults the rule does not apply at all."""
    rules = default_rules()
    f1 = next(r for r in rules if r.id == "F1")
    assert f1.applies_to("src/repro/faults/injector.py")
    assert f1.applies_to("src/repro/faults/sub/helper.py")
    assert not f1.applies_to("src/repro/sim/rng.py")
    assert not f1.applies_to("tests/faults/test_injector.py")


def test_f1_inert_on_fixture_dir_by_default():
    """The default config keeps F1 out of the shared fixture harness."""
    violations = _analyze(FIXTURES / "f1_bad.py")
    assert violations == [], [v.format() for v in violations]


# -- F2: best-effort QoS branches must not touch transport state -----------
#
# F2 is path-scoped to the transport/runtime trees (qos-paths), so its
# fixture pair is mapped into scope like F1's.


def _analyze_f2(filename):
    from repro.analysis.config import Config

    cfg = Config(qos_paths=("f2_bad.py", "f2_good.py"))
    analyzer = Analyzer(FIXTURES, default_rules(cfg), baseline=None)
    return analyzer.analyze_file(FIXTURES / filename).violations


def test_f2_fires_on_transport_state_in_best_effort_branch():
    violations = _analyze_f2("f2_bad.py")
    assert {v.rule for v in violations} == {"F2"}
    # stamp() call + .seq store + ._next_seq touch + .pending touch
    assert len(violations) >= 4


def test_f2_silent_on_clean_qos_branching():
    """Reliable-branch stamping and FRESH stamp_fresh are both legal."""
    violations = _analyze_f2("f2_good.py")
    assert violations == [], [v.format() for v in violations]


def test_f2_scoped_to_qos_paths():
    rules = default_rules()
    f2 = next(r for r in rules if r.id == "F2")
    assert f2.applies_to("src/repro/faults/recovery.py")
    assert f2.applies_to("src/repro/pami/context.py")
    assert f2.applies_to("src/repro/converse/machine.py")
    assert not f2.applies_to("src/repro/charm/chare.py")
    assert not f2.applies_to("tests/faults/test_qos.py")


def test_f2_inert_on_fixture_dir_by_default():
    violations = _analyze(FIXTURES / "f2_bad.py")
    assert violations == [], [v.format() for v in violations]


def test_f2_clean_on_the_transport_tree():
    """The shipped QoS branches satisfy their own contract (self-check)."""
    from repro.analysis.config import load_config

    root = Path(__file__).parents[2]
    cfg = load_config(root)
    analyzer = Analyzer(root, default_rules(cfg), baseline=None)
    result = analyzer.run(cfg.qos_paths, exclude=cfg.exclude)
    f2 = [v for v in result.violations if v.rule == "F2"]
    assert f2 == [], [v.format() for v in f2]


# -- T1: tracer calls in hot-path modules must be None-guarded -------------
#
# T1 is path-scoped like F1 (it applies inside the configured
# trace-hot-paths), so its fixture pair is mapped into scope explicitly.


def _analyze_t1(filename):
    from repro.analysis.config import Config

    cfg = Config(trace_hot_paths=("t1_bad.py", "t1_good.py"))
    analyzer = Analyzer(FIXTURES, default_rules(cfg), baseline=None)
    return analyzer.analyze_file(FIXTURES / filename).violations


def test_t1_fires_on_unguarded_tracer_calls():
    violations = _analyze_t1("t1_bad.py")
    assert {v.rule for v in violations} == {"T1"}
    # rec.begin + self.tracer.count + else-branch begin + tr.mark
    assert len(violations) == 4


def test_t1_silent_on_guarded_calls():
    violations = _analyze_t1("t1_good.py")
    assert violations == [], [v.format() for v in violations]


def test_t1_scoped_to_hot_paths():
    """T1 covers the runtime tree but not the trace package itself."""
    from repro.analysis.config import load_config

    rules = default_rules(load_config(Path(__file__).parents[2]))
    t1 = next(r for r in rules if r.id == "T1")
    assert t1.applies_to("src/repro/converse/machine.py")
    assert t1.applies_to("src/repro/pami/commthread.py")
    assert t1.applies_to("src/repro/bgq/mu.py")
    assert not t1.applies_to("src/repro/trace/core.py")
    assert not t1.applies_to("src/repro/harness/timelines.py")


def test_t1_clean_on_the_runtime_tree():
    """The shipped hot paths satisfy their own contract (self-check)."""
    from repro.analysis.config import load_config

    root = Path(__file__).parents[2]
    cfg = load_config(root)
    analyzer = Analyzer(root, default_rules(cfg), baseline=None)
    result = analyzer.run(cfg.trace_hot_paths, exclude=cfg.exclude)
    t1 = [v for v in result.violations if v.rule == "T1"]
    assert t1 == [], [v.format() for v in t1]


# -- O1: profiler/metrics calls in engine hot paths must be None-guarded ---
#
# O1 is path-scoped like T1 (it applies inside the configured
# obs-hot-paths), so its fixture pair is mapped into scope explicitly.


def _analyze_o1(filename):
    from repro.analysis.config import Config

    cfg = Config(obs_hot_paths=("o1_bad.py", "o1_good.py"))
    analyzer = Analyzer(FIXTURES, default_rules(cfg), baseline=None)
    return analyzer.analyze_file(FIXTURES / filename).violations


def test_o1_fires_on_unguarded_obs_calls():
    violations = _analyze_o1("o1_bad.py")
    assert {v.rule for v in violations} == {"O1"}
    # prof.sample + self.profiler.charge + else-branch flush +
    # self.metrics.observe + metrics.inc
    assert len(violations) == 5


def test_o1_silent_on_guarded_calls():
    violations = _analyze_o1("o1_good.py")
    assert violations == [], [v.format() for v in violations]


def test_o1_scoped_to_engine_hot_paths():
    """O1 covers the engine tree but not the obs/serve packages."""
    from repro.analysis.config import load_config

    rules = default_rules(load_config(Path(__file__).parents[2]))
    o1 = next(r for r in rules if r.id == "O1")
    assert o1.applies_to("src/repro/sim/engine.py")
    assert o1.applies_to("src/repro/bgq/mu.py")
    assert o1.applies_to("src/repro/converse/machine.py")
    assert not o1.applies_to("src/repro/obs/profiler.py")
    assert not o1.applies_to("src/repro/serve/manager.py")
    assert not o1.applies_to("src/repro/harness/obsgate.py")


def test_o1_clean_on_the_engine_tree():
    """The shipped hot paths satisfy their own contract (self-check)."""
    from repro.analysis.config import load_config

    root = Path(__file__).parents[2]
    cfg = load_config(root)
    analyzer = Analyzer(root, default_rules(cfg), baseline=None)
    result = analyzer.run(cfg.obs_hot_paths, exclude=cfg.exclude)
    o1 = [v for v in result.violations if v.rule == "O1"]
    assert o1 == [], [v.format() for v in o1]
