"""Smoke test: a traced mini-NAMD run exercises the whole subsystem.

Satellite requirement: a traced ``namd_mini``-style run must produce
non-empty utilization for all activity categories the application emits
(integrate / nonbonded / pme on the workers, comm+idle on the comm
threads), plus valid exported artifacts.
"""

import json

import pytest

pytestmark = pytest.mark.trace

from repro.harness import export_trace_artifacts, run_traced_namd
from repro.trace import USEFUL_CATEGORIES


@pytest.fixture(scope="module")
def traced_run():
    return run_traced_namd(
        "smoke", n_atoms=500, nnodes=2, workers=2, comm_threads=1,
        pme_every=2, n_steps=3,
    )


def test_all_activity_categories_have_time(traced_run):
    tr = traced_run.tracer
    cats = set(tr.categories())
    # The mini-NAMD app emits the paper's full Fig. 3 legend.
    assert {"integrate", "nonbonded", "pme", "comm", "idle"} <= cats
    for cat in cats:
        assert tr.time_in(cat) > 0, f"category {cat!r} recorded no time"


def test_utilization_nonempty_everywhere(traced_run):
    tr = traced_run.tracer
    busy, useful = tr.utilization()
    assert 0 < useful <= busy <= 1
    for track in tr.tracks():
        tbusy, _ = tr.utilization(track=track)
        assert tbusy > 0, f"track {track} recorded no busy time"


def test_worker_and_commthread_tracks_present(traced_run):
    from repro.converse.machine import ConverseRuntime

    tr = traced_run.tracer
    tracks = tr.tracks()
    workers = [t for t in tracks if t < ConverseRuntime.COMMTHREAD_TRACK_BASE]
    cts = [t for t in tracks if t >= ConverseRuntime.COMMTHREAD_TRACK_BASE]
    assert len(workers) == 4  # 2 nodes x 2 workers
    assert len(cts) == 2  # 2 nodes x 1 comm thread
    for ct in cts:
        assert tr.label_of(ct).startswith("commthread")
        # Comm threads do comm + idle, never application work.
        assert set(tr.category_times(ct)) <= {"comm", "idle"}
        assert not (set(tr.category_times(ct)) & USEFUL_CATEGORIES)


def test_cross_layer_counters_populated(traced_run):
    c = traced_run.counters
    for name in (
        "engine.events",
        "sched.polls",
        "converse.msgs_sent",
        "converse.bytes_sent",
        "converse.msgs_executed",
        "pami.advances",
        "mu.packets_injected",
        "commthread.items",
        "l2.atomic_ops",
        "charm.entries",
    ):
        assert c.get(name, 0) > 0, f"counter {name!r} never incremented"


def test_artifact_export_roundtrip(traced_run, tmp_path):
    paths = export_trace_artifacts(traced_run, tmp_path, "smoke", nnodes=2)
    with open(paths["chrome"]) as fh:
        chrome = json.load(fh)
    xs = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == len(traced_run.tracer.spans)
    assert chrome["otherData"]["label"] == "smoke"
    with open(paths["manifest"]) as fh:
        man = json.load(fh)
    assert man["label"] == "smoke"
    assert man["time_unit"] == "us"
    assert man["counters"]["converse.msgs_sent"] == traced_run.counters[
        "converse.msgs_sent"
    ]
    assert man["meta"]["nnodes"] == 2
    # Every track appears in the manifest's utilization rows.
    labels = {r["label"] for r in man["utilization"]}
    assert "pe0" in labels and "all" in labels


def test_timeline_and_table_render(traced_run):
    assert "legend:" in traced_run.timeline_ascii
    table = traced_run.utilization_table
    assert "busy%" in table and "pe0" in table
