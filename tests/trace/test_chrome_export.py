"""Exporter schema checks: Chrome trace_event JSON, manifests, tables."""

import json

import pytest

pytestmark = pytest.mark.trace

from repro.trace import (
    Tracer,
    format_utilization_table,
    run_manifest,
    to_chrome_trace,
    utilization_summary,
    write_chrome_trace,
    write_run_manifest,
)


class Clock:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def traced():
    """A small tracer with two tracks, labels and counters."""
    clk = Clock()
    tr = Tracer(clk)
    tr.register_track(0, "pe0")
    tr.register_track(10_000, "commthread-n0t2")
    tr.record(0, "integrate", 0.0, 100.0)
    tr.record(0, "pme", 100.0, 250.0)
    tr.record(0, "idle", 250.0, 400.0)
    tr.record(10_000, "comm", 0.0, 400.0)
    tr.count("converse.msgs_sent", 12)
    tr.count("l2.atomic_ops", 34)
    return tr


def test_chrome_trace_schema(traced):
    doc = to_chrome_trace(traced, scale=0.5, process_name="unit")
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    assert isinstance(events, list)
    by_ph = {}
    for ev in events:
        by_ph.setdefault(ev["ph"], []).append(ev)

    # Complete ("X") events: one per span, with required fields.
    assert len(by_ph["X"]) == len(traced.spans)
    for ev in by_ph["X"]:
        assert set(ev) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert ev["dur"] >= 0
    # scale applied: the 100-cycle integrate span becomes 50 time units.
    integ = next(e for e in by_ph["X"] if e["name"] == "integrate")
    assert integ["ts"] == 0.0 and integ["dur"] == 50.0

    # Metadata ("M"): process_name plus one thread_name per track.
    names = {(ev["name"], ev["tid"]): ev["args"]["name"] for ev in by_ph["M"]}
    assert names[("process_name", 0)] == "unit"
    assert names[("thread_name", 0)] == "pe0"
    assert names[("thread_name", 10_000)] == "commthread-n0t2"

    # Counter ("C") events: one per counter, cumulative value at trace end.
    counters = {ev["name"]: ev["args"]["value"] for ev in by_ph["C"]}
    assert counters == {"converse.msgs_sent": 12, "l2.atomic_ops": 34}


def test_chrome_trace_category_colors(traced):
    doc = to_chrome_trace(traced)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # Paper's legend mapping survives into the Chrome palette.
    assert next(e for e in xs if e["name"] == "integrate")["cname"] == "terrible"
    assert next(e for e in xs if e["name"] == "pme")["cname"] == "good"
    assert next(e for e in xs if e["name"] == "idle")["cname"] == "white"


def test_chrome_trace_json_roundtrip(traced, tmp_path):
    path = write_chrome_trace(
        traced, str(tmp_path / "t.trace.json"), metadata={"run": "unit"}
    )
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["otherData"] == {"run": "unit"}
    assert doc == to_chrome_trace(traced, metadata={"run": "unit"})


def test_utilization_summary_rows(traced):
    rows = utilization_summary(traced)
    assert [r["label"] for r in rows] == ["pe0", "commthread-n0t2", "all"]
    pe0 = rows[0]
    assert pe0["busy"] == pytest.approx(250.0 / 400.0)
    assert pe0["useful"] == pytest.approx(250.0 / 400.0)
    assert pe0["categories"] == {"integrate": 100.0, "pme": 150.0, "idle": 150.0}
    ct = rows[1]
    assert ct["busy"] == pytest.approx(1.0)
    assert ct["useful"] == 0.0
    allrow = rows[-1]
    assert allrow["track"] == -1
    assert allrow["busy"] == pytest.approx((250.0 + 400.0) / 800.0)


def test_utilization_table_renders(traced):
    table = format_utilization_table(traced, scale=0.01, unit="us")
    lines = table.splitlines()
    assert "busy%" in lines[0] and "pme (us)" in lines[0]
    assert lines[1].strip("- ") == ""  # separator row
    assert any(line.lstrip().startswith("pe0") for line in lines)
    assert any(line.lstrip().startswith("all") for line in lines)


def test_run_manifest_schema(traced):
    man = run_manifest(traced, label="unit", scale=0.5, time_unit="half-cycles",
                       nnodes=2, steps=3)
    assert set(man) == {
        "label", "time_unit", "span", "counters",
        "utilization", "useful_categories", "meta",
    }
    assert man["label"] == "unit"
    assert man["span"] == [0.0, 200.0]  # scaled
    assert man["counters"]["converse.msgs_sent"] == 12
    assert man["meta"] == {"nnodes": 2, "steps": 3}
    # scale applied to per-category times too.
    pe0 = next(r for r in man["utilization"] if r["label"] == "pe0")
    assert pe0["categories"]["integrate"] == 50.0
    assert "pme" in man["useful_categories"]


def test_run_manifest_json_roundtrip(traced, tmp_path):
    path = write_run_manifest(traced, str(tmp_path / "m.json"), label="unit")
    with open(path) as fh:
        man = json.load(fh)
    assert man["label"] == "unit"
    assert man["counters"] == {"converse.msgs_sent": 12, "l2.atomic_ops": 34}


def test_format_manifest_report(traced):
    from repro.harness.report import format_manifest

    text = format_manifest(run_manifest(traced, label="unit", time_unit="cyc"))
    assert "unit" in text
    assert "converse.msgs_sent" in text
    assert "pe0" in text


def test_empty_tracer_exports_cleanly(tmp_path):
    tr = Tracer(Clock())
    doc = to_chrome_trace(tr)
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]  # just process_name
    man = run_manifest(tr)
    assert man["span"] == [0.0, 0.0]
    assert man["counters"] == {}
    # utilization has only the aggregate row, and it is all-zero.
    assert [r["label"] for r in man["utilization"]] == ["all"]
    assert man["utilization"][0]["busy"] == 0.0
