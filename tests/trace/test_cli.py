"""The ``python -m repro.trace`` analysis CLI, end to end.

One small traced run per artifact kind (a Fig. 3-style m2m PME run and
a Fig. 9-style comm-thread run) is exported once per module; every
subcommand is then exercised in-process through ``__main__.main`` on
the resulting artifacts — the same entry points the documented CLI
sessions in docs/TRACING.md use.
"""

import json

import pytest

pytestmark = [pytest.mark.trace, pytest.mark.slow]

from repro.trace.__main__ import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    from repro.harness.timelines import export_trace_artifacts, run_traced_namd

    outdir = tmp_path_factory.mktemp("cli-artifacts")
    fig3 = run_traced_namd(
        "fig3-style m2m PME", n_atoms=256, nnodes=2, workers=2,
        comm_threads=1, pme_every=1, use_m2m_pme=True, n_steps=3, seed=5,
    )
    fig9 = run_traced_namd(
        "fig9-style comm threads", n_atoms=256, nnodes=2, workers=4,
        comm_threads=2, pme_every=2, n_steps=3, seed=5,
    )
    p3 = export_trace_artifacts(fig3, outdir, "fig3")
    p9 = export_trace_artifacts(fig9, outdir, "fig9")
    return {"fig3": p3, "fig9": p9}


def test_analyze_trace_reports_fig9_commthread_breakdown(artifacts, capsys):
    assert main(["analyze", artifacts["fig9"]["chrome"]]) == 0
    out = capsys.readouterr().out
    # The Fig. 9 point: per-track utilization including the comm threads.
    assert "-- utilization --" in out
    assert "commthread-n0t4" in out and "commthread-n1t4" in out
    assert "busy" in out and "useful" in out
    # HPM groups surface per node.
    assert "-- simulated HPM counters --" in out
    assert "mu.descriptors" in out and "commthread.interrupts" in out


def test_analyze_names_fig3_critical_path(artifacts, capsys):
    assert main(["critpath", artifacts["fig3"]["chrome"]]) == 0
    out = capsys.readouterr().out
    # The Fig. 3 claim: the CLI names which executions bound the run —
    # PME handler segments on named PEs, connected by stamped messages.
    assert "critical path: length=" in out
    assert "exec" in out
    assert "pme" in out  # PME executions dominate a PME-every-step run
    assert "pe0" in out
    assert "(0," in out  # msg ids are named


def test_analyze_json_format_is_machine_readable(artifacts, capsys):
    assert main(["analyze", artifacts["fig9"]["chrome"], "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "trace"
    assert {"utilization", "imbalance", "time_profile", "critical_path",
            "messages", "hpm"} <= set(doc)
    assert doc["critical_path"]["summary"]["nsegments"] > 0
    assert doc["messages"]["latency"]["count"] > 0


def test_analyze_manifest_artifact(artifacts, capsys):
    assert main(["analyze", artifacts["fig3"]["manifest"]]) == 0
    out = capsys.readouterr().out
    assert "(manifest" in out
    assert "critical path: length=" in out
    assert "messages:" in out


def test_timeprofile_needs_full_trace(artifacts, capsys):
    assert main(["timeprofile", artifacts["fig3"]["manifest"]]) == 2
    assert main(["timeprofile", artifacts["fig3"]["chrome"], "--bins", "6"]) == 0
    out = capsys.readouterr().out
    assert "interval" in out and "pme" in out


def test_utilization_subcommand(artifacts, capsys):
    assert main(["utilization", artifacts["fig9"]["chrome"]]) == 0
    out = capsys.readouterr().out
    assert "busy-fraction histogram" in out
    assert "load imbalance" in out


def test_messages_subcommand(artifacts, capsys):
    assert main(["messages", artifacts["fig3"]["chrome"]]) == 0
    out = capsys.readouterr().out
    assert "stamped" in out and "latency" in out and "histogram" in out


def test_idle_subcommand_blames_messages(artifacts, capsys):
    assert main(["idle", artifacts["fig3"]["chrome"], "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "idle gaps" in out
    assert "msg (" in out  # at least one gap blamed on an arrival


def test_hpm_subcommand(artifacts, capsys):
    assert main(["hpm", artifacts["fig9"]["chrome"]]) == 0
    out = capsys.readouterr().out
    assert "node0" in out and "node1" in out
    assert "mu.descriptors" in out


def test_diff_identical_passes_perturbed_fails(artifacts, tmp_path, capsys):
    man = artifacts["fig3"]["manifest"]
    assert main(["diff", man, man]) == 0
    capsys.readouterr()
    with open(man) as fh:
        doc = json.load(fh)
    # Perturb one HPM-backed counter well past tolerance: the gate must
    # fail — this is the regression the trace-diff gate exists to catch.
    doc["counters"]["hpm.mu.descriptors"] = (
        doc["counters"]["hpm.mu.descriptors"] * 2 + 100
    )
    bad = tmp_path / "perturbed.manifest.json"
    bad.write_text(json.dumps(doc))
    assert main(["diff", man, str(bad)]) == 1
    out = capsys.readouterr().out
    assert "FAIL counter:hpm.mu.descriptors" in out
