"""Span-protocol safety: flat begin()/end() preempting an active span().

The double-counting bug these tests pin down (fixed in PR 5): the
``span()`` context manager used to *unconditionally* resume the
suspended category on exit.  If the flat API had taken the track away
in the meantime — ``begin()`` called (once or twice) without a matching
``end()``, or an explicit ``end()`` — the exit fabricated a resumed
span covering time the track had already relinquished, inflating
``time_in()`` and busy utilization.  Post-fix the tracer raises
``TracerProtocolError`` under ``REPRO_SANITIZE=1`` and self-heals (no
fabricated resume) otherwise.
"""

import pytest

pytestmark = pytest.mark.trace

from repro.trace import Span, Tracer, TracerProtocolError
from repro.analysis.sanitizer import sanitized


class Clock:
    def __init__(self):
        self.now = 0.0


def test_double_begin_inside_span_no_fabricated_resume():
    """The pre-fix-failing case from the issue.

    begin() twice (no end) inside a span(), then end(): before the fix,
    the span() exit re-opened "sched" at t=8 and finish() closed it at
    t=20 — 12 cycles of *idle* time double-counted as busy, i.e.
    time_in("sched") reported 14.0 instead of 2.0.
    """
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(0, "sched")
    clk.now = 2.0
    with tr.span(0, "work"):
        clk.now = 4.0
        tr.begin(0, "comm")      # first flat preemption (no end)
        clk.now = 5.0
        tr.begin(0, "comm")      # second begin without end
        clk.now = 6.0
        tr.end(0)                # track explicitly relinquished
        clk.now = 8.0
    clk.now = 20.0
    tr.finish()
    assert tr.time_in("sched") == 2.0
    assert tr.time_in("work") == 2.0
    assert tr.time_in("comm") == 2.0
    # Nothing may cover the idle tail [6, 20].
    assert all(s.end <= 6.0 for s in tr.spans)


def test_flat_end_inside_span_leaves_track_closed():
    clk = Clock()
    tr = Tracer(clk)
    with tr.span(3, "pme"):
        clk.now = 5.0
        tr.end(3)
        clk.now = 9.0
    clk.now = 10.0
    tr.finish()
    assert tr.spans == [Span(3, "pme", 0.0, 5.0)]


def test_spans_never_overlap_after_mixed_use():
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(1, "sched")
    clk.now = 1.0
    with tr.span(1, "fft"):
        clk.now = 2.0
        tr.begin(1, "comm")
        clk.now = 3.0
    clk.now = 4.0
    tr.end(1)
    tr.finish()
    spans = sorted((s for s in tr.spans if s.track == 1),
                   key=lambda s: s.start)
    for a, b in zip(spans, spans[1:]):
        assert a.end <= b.start
    # The flat preemption keeps the track: comm runs [2, 4].
    assert tr.time_in("comm") == 2.0
    assert tr.time_in("fft") == 1.0


def test_nested_spans_still_resume_outer():
    """Well-nested span() usage keeps its documented semantics."""
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(0, "sched")
    clk.now = 1.0
    with tr.span(0, "pme"):
        clk.now = 2.0
        with tr.span(0, "fft"):
            clk.now = 3.0
        clk.now = 4.0
    clk.now = 5.0
    tr.end(0)
    assert tr.time_in("sched") == 2.0  # [0,1] + resumed tail [4,5]
    assert tr.time_in("pme") == 2.0    # [1,2] + resumed [3,4]
    assert tr.time_in("fft") == 1.0    # [2,3]


def test_strict_mode_raises_on_flat_preemption():
    clk = Clock()
    with sanitized():
        tr = Tracer(clk)
    with tr.span(0, "pme"):
        clk.now = 1.0
        with pytest.raises(TracerProtocolError):
            tr.begin(0, "comm")


def test_strict_mode_allows_pure_flat_api():
    """begin-closes-previous is the documented hot-path idiom."""
    clk = Clock()
    with sanitized():
        tr = Tracer(clk)
    tr.begin(0, "sched")
    clk.now = 2.0
    tr.begin(0, "comm")
    clk.now = 3.0
    tr.end(0)
    assert tr.time_in("sched") == 2.0
    assert tr.time_in("comm") == 1.0


def test_strict_mode_allows_nested_spans():
    clk = Clock()
    with sanitized():
        tr = Tracer(clk)
    with tr.span(0, "pme"):
        clk.now = 1.0
        with tr.span(0, "fft"):
            clk.now = 2.0
        clk.now = 3.0
    assert tr.time_in("fft") == 1.0
    assert tr.time_in("pme") == 2.0
