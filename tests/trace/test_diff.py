"""Trace-diff engine: tolerances, violation reporting, manifest loading."""

import json

import pytest

pytestmark = pytest.mark.trace

from repro.trace.diff import diff_manifests, format_diff, load_manifest


def _manifest(**over):
    doc = {
        "label": "base",
        "time_unit": "us",
        "counters": {
            "converse.msgs_sent": 100.0,
            "hpm.mu.descriptors": 40.0,
            "hpm.mu.rfifo_occupancy_hwm": 10.0,
        },
        "utilization": [
            {"track": 0, "label": "pe0", "busy": 0.80, "useful": 0.60},
            {"track": -1, "label": "all", "busy": 0.50, "useful": 0.30},
        ],
        "critical_path": {"length": 1000.0, "nsegments": 20,
                          "exec_time": 700.0, "xfer_time": 100.0},
    }
    doc.update(over)
    return doc


def test_identical_manifests_pass():
    result = diff_manifests(_manifest(), _manifest())
    assert result["ok"]
    assert result["violations"] == []
    assert result["checked"]["counters"] == 3
    assert "OK" in format_diff(result)


def test_counter_within_tolerance_passes():
    cand = _manifest()
    cand["counters"]["converse.msgs_sent"] = 105.0  # 5% < 10%
    assert diff_manifests(_manifest(), cand)["ok"]


def test_counter_outside_tolerance_fails():
    cand = _manifest()
    cand["counters"]["converse.msgs_sent"] = 150.0  # 33% > 10%
    result = diff_manifests(_manifest(), cand)
    assert not result["ok"]
    (v,) = result["violations"]
    assert v["check"] == "counter" and v["key"] == "converse.msgs_sent"
    assert "FAIL" in format_diff(result)


def test_missing_counter_is_a_violation():
    cand = _manifest()
    del cand["counters"]["hpm.mu.descriptors"]
    result = diff_manifests(_manifest(), cand)
    assert not result["ok"]
    assert result["violations"][0]["why"] == "present on only one side"


def test_hwm_counters_get_looser_default_tolerance():
    cand = _manifest()
    # 40% drift on a high-water mark: inside its 0.5 default tolerance.
    cand["counters"]["hpm.mu.rfifo_occupancy_hwm"] = 14.0
    assert diff_manifests(_manifest(), cand)["ok"]
    # The same drift on an ordinary counter fails.
    cand2 = _manifest()
    cand2["counters"]["hpm.mu.descriptors"] = 56.0
    assert not diff_manifests(_manifest(), cand2)["ok"]


def test_per_counter_tolerance_override():
    cand = _manifest()
    cand["counters"]["converse.msgs_sent"] = 150.0
    result = diff_manifests(
        _manifest(), cand, counter_tols={"converse.msgs_sent": 0.6}
    )
    assert result["ok"]


def test_utilization_delta_checked_absolutely():
    cand = _manifest()
    cand["utilization"][0]["busy"] = 0.84  # +0.04 < 0.05
    assert diff_manifests(_manifest(), cand)["ok"]
    cand["utilization"][0]["busy"] = 0.90  # +0.10 > 0.05
    result = diff_manifests(_manifest(), cand)
    assert not result["ok"]
    assert result["violations"][0]["key"] == "pe0.busy"


def test_critical_path_length_drift_fails():
    cand = _manifest()
    cand["critical_path"] = dict(cand["critical_path"], length=1300.0)
    result = diff_manifests(_manifest(), cand)
    assert not result["ok"]
    assert result["violations"][0]["check"] == "critical_path"


def test_segment_count_drift_is_informational():
    cand = _manifest()
    cand["critical_path"] = dict(cand["critical_path"], nsegments=25)
    result = diff_manifests(_manifest(), cand)
    assert result["ok"]
    assert result["info"][0]["key"] == "nsegments"


def test_load_manifest_rejects_chrome_traces(tmp_path):
    p = tmp_path / "x.trace.json"
    p.write_text(json.dumps({"traceEvents": []}))
    with pytest.raises(ValueError, match="Chrome trace"):
        load_manifest(str(p))
    m = tmp_path / "m.manifest.json"
    m.write_text(json.dumps(_manifest()))
    assert load_manifest(str(m))["label"] == "base"
