"""Span recording: flat begin/end, direct record, and nested spans."""

import pytest

pytestmark = pytest.mark.trace

from repro.sim import Environment
from repro.trace import Span, Tracer


class Clock:
    """Minimal duck-typed env: the tracer only reads ``.now``."""

    def __init__(self):
        self.now = 0.0


def test_begin_end_produces_one_span():
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(0, "compute")
    clk.now = 10.0
    tr.end(0)
    assert tr.spans == [Span(0, "compute", 0.0, 10.0)]
    assert tr.spans[0].duration == 10.0
    assert tr.spans[0].thread == 0  # legacy alias


def test_begin_closes_previous_activity():
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(2, "comm")
    clk.now = 4.0
    tr.begin(2, "idle")  # implicit end of "comm"
    clk.now = 9.0
    tr.end(2)
    assert tr.spans == [Span(2, "comm", 0.0, 4.0), Span(2, "idle", 4.0, 9.0)]


def test_zero_length_spans_dropped():
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(0, "compute")
    tr.end(0)  # no time elapsed
    tr.record(0, "comm", 5.0, 5.0)
    assert tr.spans == []


def test_record_rejects_backwards_interval():
    tr = Tracer(Clock())
    with pytest.raises(ValueError):
        tr.record(0, "comm", 10.0, 3.0)


def test_end_without_begin_is_noop():
    tr = Tracer(Clock())
    tr.end(5)
    assert tr.spans == []


def test_nested_span_resumes_outer_category():
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(0, "pme")
    clk.now = 3.0
    with tr.span(0, "fft"):
        clk.now = 7.0
    clk.now = 12.0
    tr.end(0)
    # Inner span splits the outer into before/after; spans stay flat.
    assert tr.spans == [
        Span(0, "pme", 0.0, 3.0),
        Span(0, "fft", 3.0, 7.0),
        Span(0, "pme", 7.0, 12.0),
    ]


def test_doubly_nested_spans():
    clk = Clock()
    tr = Tracer(clk)
    with tr.span(1, "compute"):
        clk.now = 2.0
        with tr.span(1, "pack"):
            clk.now = 3.0
            with tr.span(1, "alloc"):
                clk.now = 4.0
            clk.now = 5.0
        clk.now = 8.0
    cats = [s.category for s in sorted(tr.spans, key=lambda s: s.start)]
    assert cats == ["compute", "pack", "alloc", "pack", "compute"]
    # No overlaps, full coverage of [0, 8].
    ordered = sorted(tr.spans, key=lambda s: s.start)
    assert ordered[0].start == 0.0 and ordered[-1].end == 8.0
    for a, b in zip(ordered, ordered[1:]):
        assert a.end == b.start


def test_span_without_outer_closes_track():
    clk = Clock()
    tr = Tracer(clk)
    with tr.span(0, "fft"):
        clk.now = 6.0
    assert tr.spans == [Span(0, "fft", 0.0, 6.0)]
    assert 0 not in tr._open


def test_finish_closes_all_open_tracks():
    clk = Clock()
    tr = Tracer(clk)
    tr.begin(0, "compute")
    tr.begin(1, "comm")
    clk.now = 5.0
    tr.finish()
    assert {(s.track, s.category, s.end) for s in tr.spans} == {
        (0, "compute", 5.0),
        (1, "comm", 5.0),
    }


def test_queries_and_utilization():
    clk = Clock()
    tr = Tracer(clk)
    tr.record(0, "compute", 0.0, 6.0)
    tr.record(0, "idle", 6.0, 10.0)
    tr.record(1, "comm", 0.0, 10.0)
    assert tr.tracks() == [0, 1]
    assert tr.categories() == ["comm", "compute", "idle"]
    assert tr.time_span() == (0.0, 10.0)
    assert tr.time_in("compute") == 6.0
    assert tr.time_in("comm", track=0) == 0.0
    busy, useful = tr.utilization()
    assert busy == pytest.approx((6.0 + 10.0) / 20.0)
    assert useful == pytest.approx(6.0 / 20.0)
    busy0, useful0 = tr.utilization(track=0)
    assert busy0 == pytest.approx(0.6)
    assert useful0 == pytest.approx(0.6)
    assert tr.category_times(0) == {"compute": 6.0, "idle": 4.0}


def test_track_labels():
    tr = Tracer(Clock())
    tr.register_track(10_000, "commthread-n0t2")
    assert tr.label_of(10_000) == "commthread-n0t2"
    assert tr.label_of(3) == "pe3"


def test_timeline_recorder_is_a_tracer():
    """The legacy recorder API is a thin subclass of the new Tracer."""
    from repro.sim import TimelineRecorder

    env = Environment()
    rec = TimelineRecorder(env)
    assert isinstance(rec, Tracer)
    rec.record(0, "compute", 0.0, 5.0, )
    assert rec.segments == rec.spans
    assert rec.threads() == rec.tracks() == [0]
