"""Causal provenance: message records, critical path, idle attribution."""

import pytest

pytestmark = pytest.mark.trace

from repro.trace import Span, Tracer
from repro.trace.provenance import (
    build_messages,
    critical_path,
    critical_path_summary,
    idle_attribution,
    message_stats,
)


class Clock:
    def __init__(self):
        self.now = 0.0


def test_tracer_records_provenance_events():
    clk = Clock()
    tr = Tracer(clk)
    clk.now = 5.0
    tr.msg_send((0, 1), 0, 3, 128)
    clk.now = 9.0
    tr.msg_recv((0, 1), 3)
    tr.msg_exec((0, 1), 3, 9.0, 14.0)
    assert tr.provenance == [
        ("send", (0, 1), 0, 3, 128, 5.0),
        ("recv", (0, 1), 3, 9.0),
        ("exec", (0, 1), 3, 9.0, 14.0),
    ]


def test_disabled_tracer_records_nothing():
    tr = Tracer(Clock(), enabled=False)
    tr.msg_send((0, 1), 0, 1, 8)
    tr.msg_recv((0, 1), 1)
    tr.msg_exec((0, 1), 1, 0.0, 1.0)
    assert tr.provenance == []


def test_build_messages_folds_events():
    prov = [
        ("send", (0, 1), 0, 2, 64, 1.0),
        ("recv", (0, 1), 2, 4.0),
        ("exec", (0, 1), 2, 5.0, 9.0),
    ]
    msgs = build_messages(prov)
    m = msgs[(0, 1)]
    assert m.src_track == 0 and m.dst == 2 and m.nbytes == 64
    assert m.sent == 1.0 and m.recv == 4.0
    assert m.exec_track == 2 and (m.exec_start, m.exec_end) == (5.0, 9.0)
    assert m.latency == 3.0


def test_retransmit_keeps_first_recv():
    prov = [
        ("send", (1, 7), 1, 0, 32, 0.0),
        ("recv", (1, 7), 0, 3.0),
        ("recv", (1, 7), 0, 8.0),  # fault-layer retransmit, later arrival
    ]
    m = build_messages(prov)[(1, 7)]
    assert m.recv == 3.0


def test_json_roundtrip_ids_normalize():
    # JSON turns tuples into lists; analysis must still key correctly.
    prov = [
        ["send", [0, 1], 0, 1, 16, 0.0],
        ["recv", [0, 1], 1, 2.0],
        ["exec", [0, 1], 1, 2.0, 4.0],
    ]
    msgs = build_messages(prov)
    assert (0, 1) in msgs and msgs[(0, 1)].latency == 2.0


def _chain_provenance():
    """pe0 executes A, sends B to pe1 mid-A; pe1 executes B, sends C back."""
    return [
        ("recv", (9, 1), 0, 0.0),
        ("exec", (9, 1), 0, 0.0, 10.0),     # A on pe0
        ("send", (0, 1), 0, 1, 100, 5.0),   # B sent during A
        ("recv", (0, 1), 1, 12.0),
        ("exec", (0, 1), 1, 12.0, 20.0),    # B on pe1
        ("send", (1, 1), 1, 0, 50, 18.0),   # C sent during B
        ("recv", (1, 1), 0, 25.0),
        ("exec", (1, 1), 0, 25.0, 30.0),    # C on pe0
    ]


def test_critical_path_walks_message_chain():
    path = critical_path(_chain_provenance())
    kinds = [(s.kind, s.track) for s in path]
    # A(pe0) -> flight B -> B(pe1) -> flight C -> C(pe0), in time order.
    assert kinds == [
        ("exec", 0),
        ("xfer", 1),
        ("exec", 1),
        ("xfer", 0),
        ("exec", 0),
    ]
    assert path[0].msg_id == (9, 1)
    assert path[1].start == 5.0 and path[1].end == 12.0
    assert path[-1].end == 30.0
    summary = critical_path_summary(_chain_provenance())
    assert summary["length"] == 30.0
    assert summary["nsegments"] == 5
    assert summary["exec_time"] == 10.0 + 8.0 + 5.0
    assert summary["xfer_time"] == 7.0 + 7.0


def test_critical_path_prefers_late_local_predecessor():
    # Message arrives early; the real dependency is the previous
    # execution on the same track that kept the scheduler busy.
    prov = [
        ("recv", (9, 1), 0, 0.0),
        ("exec", (9, 1), 0, 0.0, 50.0),   # long local work
        ("send", (7, 1), 2, 0, 8, 1.0),   # early remote send
        ("recv", (7, 1), 0, 5.0),         # arrives long before exec
        ("exec", (7, 1), 0, 50.0, 60.0),  # runs only after local work
    ]
    path = critical_path(prov)
    assert [(s.kind, s.msg_id) for s in path] == [
        ("exec", (9, 1)),
        ("exec", (7, 1)),
    ]


def test_critical_path_sender_fallback_outside_exec():
    # Send issued outside any handler execution (m2m completion): the
    # predecessor is the last execution that finished before the send.
    prov = [
        ("recv", (9, 1), 0, 0.0),
        ("exec", (9, 1), 0, 0.0, 10.0),
        ("send", (0, 5), 0, 1, 0, 15.0),   # after A finished
        ("recv", (0, 5), 1, 16.0),
        ("exec", (0, 5), 1, 16.0, 20.0),
    ]
    path = critical_path(prov)
    assert [s.msg_id for s in path] == [(9, 1), (0, 5), (0, 5)]


def test_critical_path_labels_exec_segments_from_spans():
    spans = [
        Span(0, "nonbonded", 0.0, 9.0),
        Span(0, "sched", 9.0, 10.0),
        Span(1, "pme", 12.0, 20.0),
    ]
    path = critical_path(_chain_provenance(), spans)
    by_msg = {s.msg_id: s.category for s in path if s.kind == "exec"}
    assert by_msg[(9, 1)] == "nonbonded"  # dominant span within [0, 10]
    assert by_msg[(0, 1)] == "pme"


def test_critical_path_empty_without_execs():
    assert critical_path([("send", (0, 1), 0, 1, 8, 0.0)]) == []
    assert critical_path_summary([]) == {
        "length": 0.0, "nsegments": 0, "exec_time": 0.0, "xfer_time": 0.0,
    }


def test_idle_attribution_blames_ending_arrival():
    prov = [
        ("send", (1, 3), 1, 0, 64, 90.0),
        ("recv", (1, 3), 0, 100.0),
    ]
    spans = [
        Span(0, "compute", 0.0, 40.0),
        Span(0, "idle", 40.0, 100.0),
        Span(0, "compute", 100.0, 120.0),
        Span(0, "idle", 120.0, 130.0),  # wind-down: no arrival
    ]
    rows = idle_attribution(prov, spans)
    assert len(rows) == 2
    blamed, tail = rows
    assert blamed["msg_id"] == (1, 3)
    assert blamed["blamed_src"] == 1
    assert blamed["duration"] == 60.0
    assert tail["msg_id"] is None and tail["blamed_src"] is None


def test_message_stats_aggregates():
    stats = message_stats(_chain_provenance())
    assert stats["messages"] == 3  # seed (9,1) + B + C
    assert stats["executed"] == 3
    assert stats["bytes"] == 150
    assert stats["latency"]["count"] == 2
    assert stats["latency"]["min"] == 7.0 and stats["latency"]["max"] == 7.0
    assert stats["size"]["max"] == 100.0
