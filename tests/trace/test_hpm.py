"""Simulated HPM counter groups: collection, totals, end-to-end wiring."""

import pytest

pytestmark = pytest.mark.trace

from repro.trace import Tracer
from repro.trace.hpm import collect_hpm, install_hpm


class Clock:
    def __init__(self):
        self.now = 0.0


# -- duck-typed stand-ins matching the attributes hpm.py harvests ----------

class FakeL2:
    def __init__(self, ops, bounded_failed=0):
        self.op_counts = ops
        self.bounded_failed = bounded_failed


class FakeWakeup:
    def __init__(self, signals=0, wakeups=0, latched=0):
        self.signals = signals
        self.wakeups = wakeups
        self.latched_fires = latched


class FakeFifo:
    def __init__(self, hwm, wakeup=None):
        self.occupancy_hwm = hwm
        self.wakeup = wakeup or FakeWakeup()


class FakeMU:
    def __init__(self, descriptors, injected, received, ififos, rfifos):
        self.descriptors_processed = descriptors
        self.packets_injected = injected
        self.packets_received = received
        self._injection = ififos
        self._reception = rfifos


class FakeNode:
    def __init__(self, node_id, l2, mu):
        self.node_id = node_id
        self.l2 = l2
        self.mu = mu


class FakeCommThread:
    def __init__(self, wakeups, rounds):
        self.wakeup_count = wakeups
        self.advance_rounds = rounds


class FakeProcess:
    def __init__(self, node, comm_threads):
        self.node = node
        self.comm_threads = comm_threads


class FakeTorus:
    def __init__(self, routes, hops):
        self.routes_computed = routes
        self.hops_routed = hops


class FakeMachine:
    def __init__(self, nodes, torus):
        self.nodes = nodes
        self.torus = torus


class FakeRuntime:
    def __init__(self, machine, processes):
        self.machine = machine
        self.processes = processes


@pytest.fixture
def runtime():
    n0 = FakeNode(
        0,
        FakeL2({"load_increment_bounded": 40, "store_add": 10}, bounded_failed=3),
        FakeMU(
            descriptors=20, injected=25, received=30,
            ififos=[FakeFifo(4), FakeFifo(7)],
            rfifos=[FakeFifo(2, FakeWakeup(signals=9, wakeups=5, latched=1))],
        ),
    )
    n1 = FakeNode(
        1,
        FakeL2({"store_add": 6}),
        FakeMU(
            descriptors=8, injected=9, received=11,
            ififos=[FakeFifo(2)],
            rfifos=[FakeFifo(5, FakeWakeup(signals=3, wakeups=3))],
        ),
    )
    return FakeRuntime(
        FakeMachine([n0, n1], FakeTorus(routes=100, hops=250)),
        [
            FakeProcess(n0, [FakeCommThread(wakeups=12, rounds=40)]),
            FakeProcess(n1, [FakeCommThread(wakeups=7, rounds=22),
                             FakeCommThread(wakeups=1, rounds=5)]),
        ],
    )


def test_collect_hpm_groups_per_node(runtime):
    groups = collect_hpm(runtime)
    assert set(groups) == {0, 1}
    g0 = groups[0]
    assert g0["l2.load_increment_bounded"] == 40
    assert g0["l2.bounded_failed"] == 3
    assert g0["mu.descriptors"] == 20
    assert g0["mu.ififo_occupancy_hwm"] == 7  # max over the node's ififos
    assert g0["wu.signals"] == 9 and g0["wu.latched"] == 1
    assert g0["commthread.interrupts"] == 12
    assert g0["commthread.rounds"] == 40
    g1 = groups[1]
    # Two comm threads on node 1 sum into one group.
    assert g1["commthread.interrupts"] == 8
    assert g1["commthread.rounds"] == 27
    # Zero-valued counters are skipped, not reported as 0.
    assert "l2.bounded_failed" not in g1
    assert "wu.latched" not in g1


def test_install_hpm_totals_into_counters(runtime):
    tr = Tracer(Clock())
    install_hpm(tr, runtime)
    tr.finish()
    assert tr.hpm == collect_hpm(runtime)
    # Sums across nodes...
    assert tr.counters["hpm.mu.descriptors"] == 28
    assert tr.counters["hpm.l2.store_add"] == 16
    assert tr.counters["hpm.commthread.interrupts"] == 20
    # ...except high-water marks, which take the max.
    assert tr.counters["hpm.mu.ififo_occupancy_hwm"] == 7
    assert tr.counters["hpm.mu.rfifo_occupancy_hwm"] == 5
    # Machine-wide torus counters ride along.
    assert tr.counters["hpm.torus.routes"] == 100
    assert tr.counters["hpm.torus.hops"] == 250


def test_finish_is_idempotent(runtime):
    tr = Tracer(Clock())
    install_hpm(tr, runtime)
    tr.finish()
    first = dict(tr.counters)
    tr.finish()
    assert tr.counters == first  # assignment, not accumulation


def test_traced_run_harvests_hpm():
    """End-to-end: a real traced NAMD run yields per-node HPM groups."""
    from repro.harness.timelines import run_traced_namd

    result = run_traced_namd(
        "hpm-unit", n_atoms=128, nnodes=2, workers=2, comm_threads=1,
        n_steps=2, seed=3,
    )
    tr = result.tracer
    assert set(tr.hpm) == {0, 1}
    for group in tr.hpm.values():
        assert group.get("mu.descriptors", 0) > 0
        assert group.get("commthread.rounds", 0) > 0
    assert tr.counters["hpm.torus.routes"] > 0
    assert tr.counters["hpm.mu.descriptors"] == sum(
        g["mu.descriptors"] for g in tr.hpm.values()
    )
