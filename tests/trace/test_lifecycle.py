"""Tracer finish()/manifest lifecycle under mid-job cancellation.

The concurrency bugs these tests pin down: a cancelled serve job can
reach ``Tracer.finish()`` from two teardown paths (the worker's cancel
handler and the service's shutdown sweep), and late event callbacks can
fire *after* the manifest was exported.  Pre-fix, the second finish()
re-ran every finalizer (double-harvesting counters) and post-finish
recording silently mutated data the exported manifest claims is final.
Post-fix finish() is idempotent and seals the tracer:
``TracerProtocolError`` under ``REPRO_SANITIZE=1``, drop otherwise.
"""

import json

import pytest

pytestmark = pytest.mark.trace

from repro.analysis.sanitizer import sanitized
from repro.trace import Tracer, TracerProtocolError
from repro.trace.exporters import run_manifest, write_run_manifest


class Clock:
    def __init__(self):
        self.now = 0.0


def test_double_finish_runs_finalizers_once():
    """THE pre-fix-failing case: two teardown paths, one harvest."""
    tr = Tracer(Clock())
    calls = []
    tr.add_finalizer(lambda: calls.append("harvest"))
    tr.finish()
    tr.finish()  # cancel path + shutdown sweep both reach finish()
    assert calls == ["harvest"]
    assert tr.finished


def test_double_finish_does_not_double_count_additive_finalizer():
    """A finalizer that *adds* (against the assign-only advice) used to
    double its counter on the second finish()."""
    tr = Tracer(Clock())
    tr.add_finalizer(lambda: tr.counters.__setitem__(
        "l2.ops", tr.counters.get("l2.ops", 0) + 7))
    tr.finish()
    tr.finish()
    assert tr.counters["l2.ops"] == 7


def test_post_finish_recording_dropped_outside_sanitize():
    clk = Clock()
    with sanitized(False):  # force self-heal mode even under a sanitized suite
        tr = Tracer(clk)
    tr.begin(0, "sched")
    clk.now = 4.0
    tr.finish()
    spans = list(tr.spans)
    counters = dict(tr.counters)
    # Late callbacks from a cancelled job: every record call self-heals
    # to a no-op.
    clk.now = 9.0
    tr.begin(0, "comm")
    tr.end(0)
    tr.count("late.msgs", 3)
    tr.mark(0, "late.mark")
    tr.record(1, "pme", 5.0, 6.0)
    tr.msg_send((0, 1), 0, 1, 64)
    tr.msg_recv((0, 1), 1)
    tr.msg_exec((0, 1), 1, 5.0, 6.0)
    with tr.span(2, "fft"):
        clk.now = 11.0
    assert tr.spans == spans
    assert tr.counters == counters
    assert tr.marks == []
    assert tr.provenance == []
    assert tr._open == {}


def test_post_finish_recording_raises_under_sanitize():
    with sanitized():
        tr = Tracer(Clock())
        tr.finish()
        with pytest.raises(TracerProtocolError):
            tr.begin(0, "sched")
        with pytest.raises(TracerProtocolError):
            tr.count("x")
        with pytest.raises(TracerProtocolError):
            tr.mark(0, "m")
        with pytest.raises(TracerProtocolError):
            tr.msg_send((0, 0), 0, 1, 8)
        with pytest.raises(TracerProtocolError):
            with tr.span(0, "pme"):
                pass


def test_double_finish_is_not_an_error_under_sanitize():
    """The issue's contract: double-finish is idempotent, not a crash."""
    with sanitized():
        tr = Tracer(Clock())
        tr.begin(0, "sched")
        tr.finish()
        tr.finish()
    assert tr.finished


def test_snapshot_manifest_mid_run_is_wellformed_and_nonmutating():
    """Incremental streaming: a manifest taken with spans still open
    must be valid JSON and must not close them."""
    clk = Clock()
    tr = Tracer(clk)
    tr.count("msgs", 2)
    tr.begin(0, "compute")
    clk.now = 5.0
    doc = run_manifest(tr, label="snapshot")
    json.loads(json.dumps(doc))  # round-trips
    assert doc["counters"]["msgs"] == 2
    assert 0 in tr._open  # the open activity survived the snapshot
    assert not tr.finished
    clk.now = 8.0
    tr.end(0)
    tr.finish()
    assert tr.time_in("compute") == 8.0


def test_cancelled_job_manifest_identical_across_teardown_paths(tmp_path):
    """Cancel mid-span, finish twice, export twice: both manifests are
    well-formed and byte-identical (the second finish changed nothing)."""
    clk = Clock()
    tr = Tracer(clk)
    tr.count("msgs", 5)
    tr.begin(3, "comm")
    clk.now = 7.0
    tr.finish()  # worker cancel handler
    p1 = tmp_path / "a.manifest.json"
    write_run_manifest(tr, str(p1), label="cancelled")
    tr.finish()  # service shutdown sweep
    p2 = tmp_path / "b.manifest.json"
    write_run_manifest(tr, str(p2), label="cancelled")
    assert p1.read_text() == p2.read_text()
    doc = json.loads(p1.read_text())
    assert doc["span"] == [0.0, 7.0]
