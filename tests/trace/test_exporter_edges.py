"""Exporter edge cases: empty, zero-duration, counter-only, unused tracks."""

import json

import pytest

pytestmark = pytest.mark.trace

from repro.trace import (
    Tracer,
    format_utilization_table,
    run_manifest,
    to_chrome_trace,
    utilization_summary,
    write_chrome_trace,
    write_run_manifest,
)


class Clock:
    def __init__(self):
        self.now = 0.0


def _phases(doc):
    out = {}
    for ev in doc["traceEvents"]:
        out.setdefault(ev["ph"], []).append(ev)
    return out


def test_empty_trace_roundtrips_through_files(tmp_path):
    tr = Tracer(Clock())
    tr.finish()
    cpath = write_chrome_trace(tr, str(tmp_path / "e.trace.json"))
    mpath = write_run_manifest(tr, str(tmp_path / "e.manifest.json"))
    with open(cpath) as fh:
        cdoc = json.load(fh)
    with open(mpath) as fh:
        mdoc = json.load(fh)
    assert [e["ph"] for e in cdoc["traceEvents"]] == ["M"]
    assert "provenance" not in cdoc and "hpm" not in cdoc
    assert mdoc["span"] == [0.0, 0.0]
    assert "messages" not in mdoc and "critical_path" not in mdoc
    assert "hpm" not in mdoc


def test_zero_duration_activity_never_exports_spans():
    clk = Clock()
    tr = Tracer(clk)
    clk.now = 5.0
    tr.begin(0, "sched")
    tr.end(0)          # same timestamp: zero-duration, dropped
    tr.begin(0, "comm")
    tr.begin(0, "pme")  # flat preemption at the same instant
    tr.end(0)
    tr.record(1, "idle", 3.0, 3.0)  # explicit zero-duration record
    tr.finish()
    assert tr.spans == []
    doc = to_chrome_trace(tr)
    assert _phases(doc).get("X") is None
    man = run_manifest(tr)
    assert [r["label"] for r in man["utilization"]] == ["all"]


def test_counter_only_run_exports_counters_at_t0():
    tr = Tracer(Clock())
    tr.count("converse.msgs_sent", 7)
    tr.count("l2.atomic_ops", 99)
    tr.finish()
    doc = to_chrome_trace(tr, scale=0.5)
    phases = _phases(doc)
    assert "X" not in phases
    counters = {e["name"]: e["args"]["value"] for e in phases["C"]}
    assert counters == {"converse.msgs_sent": 7, "l2.atomic_ops": 99}
    # With no spans the time span collapses to 0; C samples land at 0.
    assert all(e["ts"] == 0.0 for e in phases["C"])
    man = run_manifest(tr)
    assert man["counters"]["l2.atomic_ops"] == 99
    assert man["span"] == [0.0, 0.0]


def test_registered_but_unused_tracks_keep_their_names():
    clk = Clock()
    tr = Tracer(clk)
    tr.register_track(0, "pe0")
    tr.register_track(10_000, "commthread-n0t2")  # never records anything
    tr.record(0, "compute", 0.0, 10.0)
    tr.finish()
    doc = to_chrome_trace(tr)
    names = {
        e["tid"]: e["args"]["name"]
        for e in _phases(doc)["M"]
        if e["name"] == "thread_name"
    }
    # The idle comm thread still shows up as a named (empty) row.
    assert names == {0: "pe0", 10_000: "commthread-n0t2"}
    assert {e["tid"] for e in _phases(doc).get("X", [])} == {0}


def test_mark_only_track_gets_thread_name():
    clk = Clock()
    tr = Tracer(clk)
    clk.now = 2.0
    tr.mark(77, "fault.injected")
    tr.finish()
    doc = to_chrome_trace(tr)
    phases = _phases(doc)
    named = {e["tid"] for e in phases["M"] if e["name"] == "thread_name"}
    assert 77 in named
    assert phases["i"][0]["name"] == "fault.injected"


def test_utilization_exporters_tolerate_empty_tracer():
    tr = Tracer(Clock())
    tr.finish()
    rows = utilization_summary(tr)
    assert [r["label"] for r in rows] == ["all"]
    table = format_utilization_table(tr)
    assert "busy%" in table  # renders headers + the all row, no crash


def test_provenance_without_spans_still_exports():
    clk = Clock()
    tr = Tracer(clk)
    tr.msg_send((0, 1), 0, 1, 64)
    clk.now = 4.0
    tr.msg_recv((0, 1), 1)
    tr.msg_exec((0, 1), 1, 4.0, 6.0)
    tr.finish()
    doc = to_chrome_trace(tr, scale=2.0)
    # Provenance rides along, scaled like ts/dur.
    send, recv, ex = doc["provenance"]
    assert send[0] == "send" and send[-1] == 0.0
    assert recv[-1] == 8.0
    assert ex[3] == 8.0 and ex[4] == 12.0
    # Flow arrows pair the send/recv edge.
    phases = _phases(doc)
    assert [e["ph"] for e in phases.get("s", [])] == ["s"]
    assert phases["f"][0]["bp"] == "e"
    man = run_manifest(tr, scale=2.0)
    assert man["messages"]["latency"]["max"] == 8.0
    # The path is the message flight plus its handler execution.
    assert man["critical_path"]["nsegments"] == 2
    assert man["critical_path"]["exec_time"] == 4.0
    assert man["critical_path"]["xfer_time"] == 8.0
