"""Counter accumulation in the unified tracer."""

import pytest

pytestmark = pytest.mark.trace

from repro.sim import Environment
from repro.trace import Tracer


def test_counter_accumulates():
    tr = Tracer(Environment())
    tr.count("msgs")
    tr.count("msgs")
    tr.count("msgs", 3)
    assert tr.get("msgs") == 5
    assert tr.counters == {"msgs": 5}


def test_counter_default_zero():
    tr = Tracer(Environment())
    assert tr.get("never") == 0
    assert tr.get("never", default=7) == 7


def test_counter_float_increments():
    tr = Tracer(Environment())
    tr.count("bytes", 0.5)
    tr.count("bytes", 1.25)
    assert tr.get("bytes") == pytest.approx(1.75)


def test_per_track_breakdown():
    tr = Tracer(Environment())
    tr.count("msgs", track=0)
    tr.count("msgs", 2, track=1)
    tr.count("msgs")  # global only
    assert tr.get("msgs") == 4
    assert tr.track_counters["msgs"] == {0: 1, 1: 2}


def test_disabled_tracer_records_nothing():
    env = Environment()
    tr = Tracer(env, enabled=False)
    tr.count("msgs", 10, track=3)
    tr.begin(0, "pme")
    tr.record(0, "comm", 0, 5)
    tr.end(0)
    with tr.span(1, "fft"):
        pass
    assert tr.counters == {}
    assert tr.track_counters == {}
    assert tr.spans == []


def test_runtime_counters_flow_end_to_end():
    """A tiny Converse run populates the cross-layer counter catalogue."""
    from repro.converse import ConverseRuntime, RunConfig
    from repro.converse.messages import ConverseMessage

    env = Environment()
    rt = ConverseRuntime(env, RunConfig(nnodes=2, workers_per_process=2, trace=True))
    done = env.event()

    def pong(pe, msg):
        done.succeed()
        return None

    def ping(pe, msg):
        yield from pe.send(rt.config.pes_per_node, hid_pong, 256, None)

    hid_pong = rt.register_handler(pong)
    hid_ping = rt.register_handler(ping)
    rt.pes[0].local_q.append(ConverseMessage(hid_ping, 0, None, 0, 0))
    rt.run_until(done)
    tr = rt.tracer
    tr.finish()  # harvests engine-maintained counters (engine.events)
    assert tr is rt.recorder  # legacy alias
    assert tr.get("converse.msgs_sent") == 1
    assert tr.get("converse.bytes_sent") == 256
    assert tr.get("converse.msgs_delivered") == 1
    assert tr.get("pami.msgs_sent") == 1
    assert tr.get("mu.packets_injected") >= 1
    assert 1 <= tr.get("mu.packets_received") <= tr.get("mu.packets_injected")
    assert tr.get("engine.events") > 0
    assert tr.get("sched.polls") > 0
    # Per-track attribution: the send was charged to PE 0.
    assert tr.track_counters["converse.msgs_sent"] == {0: 1}


def test_tracing_disabled_leaves_components_unwired():
    from repro.converse import ConverseRuntime, RunConfig

    env = Environment()
    rt = ConverseRuntime(env, RunConfig(nnodes=1, workers_per_process=2))
    assert rt.tracer is None
    assert env.tracer is None
    assert all(ct.tracer is None for p in rt.processes for ct in p.comm_threads)
    # Native component statistics exist regardless of tracing.
    assert all(pe.queue.enqueues == 0 for pe in rt.pes)
    assert all(node.mu.packets_received == 0 for node in rt.machine.nodes)
