"""Tests for force kernels, synthetic systems and patch decomposition."""

import numpy as np
import pytest

from repro.namd.forces import (
    PAIR_FLOPS,
    QPX_SPEEDUP,
    bonded_forces,
    nonbonded_instructions,
    nonbonded_instructions_tuned,
    pair_forces,
)
from repro.namd.patches import PatchGrid
from repro.namd.system import APOA1, STMV20M, STMV100M, build_system


# ---------- systems ----------------------------------------------------------

def test_paper_specs():
    assert APOA1.n_atoms == 92_224
    assert APOA1.pme_grid == (108, 108, 80)
    assert APOA1.cutoff == 12.0
    assert STMV20M.pme_grid == (216, 1080, 864)
    assert STMV100M.pme_grid == (1080, 1080, 864)
    assert STMV100M.n_atoms > 100e6


def test_build_system_density_matches_reference():
    s = build_system(1000)
    assert s.spec.density == pytest.approx(APOA1.density, rel=0.05)


def test_build_system_neutral_and_sized():
    for n in (100, 101):
        s = build_system(n)
        assert s.n_atoms == n
        assert s.charges.sum() == pytest.approx(0.0, abs=1e-12)
        assert np.all(s.positions >= 0) and np.all(s.positions <= s.box[None, :])


def test_build_system_bonds_reference_valid_atoms():
    s = build_system(200, bond_fraction=0.5)
    assert len(s.bonds) == 50
    for (i, j, r0, k) in s.bonds:
        assert 0 <= i < 200 and 0 <= j < 200 and r0 > 0 and k > 0


def test_build_system_validates():
    with pytest.raises(ValueError):
        build_system(1)


def test_build_system_temperature_gives_motion():
    s = build_system(100, temperature=0.05)
    assert np.any(s.velocities != 0)
    p = np.sum(s.masses[:, None] * s.velocities, axis=0)
    assert np.allclose(p, 0, atol=1e-10)


# ---------- pair forces -------------------------------------------------------

def test_pair_forces_newton_third_law():
    rng = np.random.default_rng(1)
    box = np.array([20.0, 20.0, 20.0])
    pa = rng.random((8, 3)) * box
    pb = rng.random((6, 3)) * box
    qa, qb = rng.standard_normal(8) * 0.3, rng.standard_normal(6) * 0.3
    e, fa, fb, n = pair_forces(pa, pb, qa, qb, box, cutoff=8.0, beta=0.35)
    assert np.allclose(fa.sum(axis=0) + fb.sum(axis=0), 0.0, atol=1e-10)


def test_pair_forces_same_block_counts_each_pair_once():
    box = np.array([50.0, 50.0, 50.0])
    pos = np.array([[10.0, 10, 10], [12.0, 10, 10], [40.0, 40, 40]])
    q = np.array([0.3, -0.3, 0.3])
    e, fa, fb, n = pair_forces(pos, pos, q, q, box, cutoff=5.0, beta=0.35, same_block=True)
    assert n == 1  # only the first two atoms are within cutoff
    assert np.allclose(fa[2], 0)


def test_pair_forces_empty_blocks():
    box = np.array([10.0, 10.0, 10.0])
    e, fa, fb, n = pair_forces(
        np.empty((0, 3)), np.empty((0, 3)), np.empty(0), np.empty(0), box, 5.0, 0.35
    )
    assert (e, n) == (0.0, 0)


def test_pair_forces_minimum_image():
    """Atoms across the periodic boundary interact."""
    box = np.array([20.0, 20.0, 20.0])
    pa = np.array([[0.5, 10.0, 10.0]])
    pb = np.array([[19.5, 10.0, 10.0]])  # 1.0 A apart through the wall
    q = np.array([0.3])
    e, fa, fb, n = pair_forces(pa, pb, q, -q, box, cutoff=5.0, beta=0.35)
    assert n == 1
    assert fa[0, 0] != 0


def test_bonded_forces_harmonic():
    box = np.array([100.0, 100.0, 100.0])
    pos = np.array([[0.0, 0, 0], [3.0, 0, 0]])
    bonds = [(0, 1, 2.0, 1.5)]
    e, f = bonded_forces(pos, bonds, box)
    assert e == pytest.approx(1.5 * 1.0)
    assert f[0, 0] == pytest.approx(2 * 1.5)  # pulled toward r0
    assert np.allclose(f.sum(axis=0), 0)


def test_bonded_forces_empty():
    e, f = bonded_forces(np.zeros((3, 3)), [], np.ones(3))
    assert e == 0 and np.all(f == 0)


def test_nonbonded_cost_model():
    assert nonbonded_instructions(100, qpx=False) == pytest.approx(100 * PAIR_FLOPS)
    assert nonbonded_instructions(100, qpx=True) == pytest.approx(
        100 * PAIR_FLOPS / (4 * QPX_SPEEDUP)
    )
    tuned = nonbonded_instructions_tuned(100, tuned=True)
    untuned = nonbonded_instructions_tuned(100, tuned=False)
    assert untuned / tuned == pytest.approx(QPX_SPEEDUP)
    with pytest.raises(ValueError):
        nonbonded_instructions(-1)


# ---------- patches -----------------------------------------------------------

def test_patch_grid_respects_cutoff():
    g = PatchGrid.for_cutoff((108.86, 108.86, 77.76), 12.0)
    assert g.dims == (9, 9, 6)
    for d in range(3):
        assert g.box[d] / g.dims[d] >= 12.0


def test_patch_grid_validates():
    with pytest.raises(ValueError):
        PatchGrid.for_cutoff((10, 10, 10), 0.0)


def test_patch_index_roundtrip():
    g = PatchGrid((30.0, 30.0, 30.0), (2, 3, 4))
    for i in range(g.n_patches):
        assert g.patch_index(g.patch_coords(i)) == i


def test_bin_atoms_complete_partition():
    g = PatchGrid.for_cutoff((24.0, 24.0, 24.0), 6.0)
    rng = np.random.default_rng(0)
    pos = rng.random((200, 3)) * 24.0
    bins = g.bin_atoms(pos)
    all_atoms = np.concatenate([bins[p] for p in range(g.n_patches)])
    assert sorted(all_atoms) == list(range(200))
    for p, idx in bins.items():
        cx, cy, cz = g.patch_coords(p)
        for a in idx:
            assert int(pos[a, 0] / 6.0) % 4 == cx


def test_neighbor_pairs_include_self_and_are_unique():
    g = PatchGrid((24.0, 24.0, 24.0), (2, 2, 2))
    pairs = g.neighbor_pairs()
    assert len(pairs) == len(set(pairs))
    for p in range(8):
        assert (p, p) in pairs
    # dims of 2: every patch neighbours every other (wrap).
    assert len(pairs) == 8 * 9 // 2


def test_neighbor_pairs_3x3x3():
    g = PatchGrid((36.0, 36.0, 36.0), (3, 3, 3))
    pairs = g.neighbor_pairs()
    # 27 self pairs + 27*26/2 cross pairs (every patch neighbours all
    # others in a 3-wide torus).
    assert len(pairs) == 27 + 27 * 26 // 2


def test_pme_footprint_covers_patch():
    g = PatchGrid((20.0, 20.0, 20.0), (2, 2, 2))
    (x0, x1), (y0, y1) = g.pme_footprint(0, (20, 20, 20), order=4)
    # Patch 0 covers x in [0, 10) -> grid [0, 10); with margin 2 and
    # order 4 the window must extend at least 4 below and 2 above.
    assert x0 <= -4 and x1 >= 12
    assert y0 <= -4 and y1 >= 12
