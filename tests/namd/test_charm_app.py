"""Integration tests: mini-NAMD on the Charm++ runtime (§IV-B)."""

import numpy as np
import pytest

from repro.charm import Charm
from repro.converse import RunConfig
from repro.namd.charm_app import NamdCharm, wrapped_overlap
from repro.namd.simulation import SequentialMD
from repro.namd.system import build_system


def small_system(n=96, temperature=0.003, bond_fraction=0.0, seed=5):
    return build_system(n, temperature=temperature, bond_fraction=bond_fraction, seed=seed)


def make_app(system, nnodes=2, workers=2, comm_threads=0, **kw):
    charm = Charm(
        RunConfig(
            nnodes=nnodes,
            workers_per_process=workers,
            comm_threads_per_process=comm_threads,
        )
    )
    return NamdCharm(charm, system, **kw)


# ---------- wrapped_overlap geometry -------------------------------------

def test_wrapped_overlap_no_wrap():
    assert wrapped_overlap(2, 6, 0, 8, 16) == [(2, 6, 2)]


def test_wrapped_overlap_negative_window():
    # Window [-3, 2) on K=16: [-3,0) wraps to [13,16).
    assert wrapped_overlap(-3, 2, 12, 16, 16) == [(-3, 0, 1)]
    assert wrapped_overlap(-3, 2, 0, 4, 16) == [(0, 2, 0)]


def test_wrapped_overlap_window_longer_than_K():
    # Window spanning more than one period hits the range twice.
    pieces = wrapped_overlap(0, 20, 0, 4, 16)
    assert pieces == [(0, 4, 0), (16, 20, 0)]


def test_wrapped_overlap_sums_cover_window():
    K = 16
    w0, w1 = -5, 13
    ranges = [(0, 4), (4, 9), (9, 16)]
    covered = []
    for (a, b) in ranges:
        for (u0, u1, _l) in wrapped_overlap(w0, w1, a, b, K):
            covered.extend(range(u0, u1))
    assert sorted(covered) == list(range(w0, w1))


# ---------- end-to-end ------------------------------------------------------

def test_charm_matches_sequential_no_pme():
    system = small_system()
    seq_sys = build_system(96, temperature=0.003, bond_fraction=0.0, seed=5)
    md = SequentialMD(seq_sys, pme_every=4, dt=0.005)
    # Disable reciprocal part for an exact cutoff-only comparison.
    md.compute_reciprocal = lambda: (0.0, np.zeros_like(seq_sys.positions))
    md.run(3)

    app = make_app(system, pme_enabled=False, n_steps=3, dt=0.005)
    app.run()
    got = app.gather_positions()
    want = seq_sys.positions
    assert np.allclose(got, want, atol=1e-8)
    assert np.allclose(app.gather_velocities(), seq_sys.velocities, atol=1e-8)


def test_charm_matches_sequential_with_pme():
    system = small_system()
    seq_sys = build_system(96, temperature=0.003, bond_fraction=0.0, seed=5)
    md = SequentialMD(seq_sys, pme_every=2, dt=0.005)
    md.run(3)

    app = make_app(system, pme_enabled=True, pme_every=2, n_steps=3, dt=0.005)
    app.run()
    got = app.gather_positions()
    assert np.allclose(got, seq_sys.positions % seq_sys.box, atol=1e-6)


def test_charm_pme_energy_matches_reference():
    system = small_system()
    ref_sys = build_system(96, temperature=0.003, bond_fraction=0.0, seed=5)
    from repro.namd.pme import pme_reciprocal

    e_ref, _ = pme_reciprocal(
        ref_sys.positions, ref_sys.charges, ref_sys.box,
        ref_sys.spec.pme_grid, 0.35, 4,
    )
    app = make_app(system, pme_enabled=True, pme_every=1, n_steps=1, dt=0.005)
    app.run()
    assert app.recip_energies
    assert app.recip_energies[0] == pytest.approx(e_ref, rel=1e-9)


def test_charm_m2m_pme_matches_p2p_numerically():
    s1 = small_system()
    s2 = small_system()
    a1 = make_app(s1, pme_enabled=True, pme_every=1, n_steps=2, dt=0.005,
                  use_m2m_pme=False)
    a1.run()
    a2 = make_app(s2, pme_enabled=True, pme_every=1, n_steps=2, dt=0.005,
                  use_m2m_pme=True, comm_threads=1, workers=2)
    a2.run()
    assert np.allclose(a1.gather_positions(), a2.gather_positions(), atol=1e-8)


def test_charm_intra_patch_bonds_applied():
    system = build_system(96, temperature=0.0, bond_fraction=0.5, seed=5)
    app = make_app(system, pme_enabled=False, n_steps=1, dt=0.005)
    total_bonds = sum(len(b) for b in app.patch_bonds.values())
    assert total_bonds + app.dropped_bonds == len(system.bonds)
    app.run()  # runs to completion with bonded forces active


def test_step_log_and_kinetic_energy_recorded():
    system = small_system()
    app = make_app(system, pme_enabled=False, n_steps=3, dt=0.005)
    app.run()
    assert len(app.step_log) == 3
    times = [t for t, _ in app.step_log]
    assert times == sorted(times)
    kes = [k for _, k in app.step_log]
    assert all(k > 0 for k in kes)


def test_timeline_recording_produces_categories():
    system = small_system()
    charm = Charm(
        RunConfig(nnodes=1, workers_per_process=4, record_timeline=True)
    )
    app = NamdCharm(charm, system, pme_enabled=True, pme_every=2, n_steps=2, dt=0.005)
    app.run()
    rec = charm.recorder
    cats = {s.category for s in rec.segments}
    assert "integrate" in cats
    assert "nonbonded" in cats
    assert "pme" in cats
    assert "idle" in cats


def test_validates_steps():
    system = small_system()
    charm = Charm(RunConfig(nnodes=1, workers_per_process=1))
    with pytest.raises(ValueError):
        NamdCharm(charm, system, n_steps=0)
