"""Tests for the sequential reference MD engine."""

import numpy as np
import pytest

from repro.namd.simulation import SequentialMD
from repro.namd.system import build_system


def make_md(n=150, pme_every=1, dt=0.005, temperature=0.005, **kw):
    system = build_system(n, temperature=temperature, seed=11)
    return SequentialMD(system, pme_every=pme_every, dt=dt, **kw)


def test_energy_conservation_pme_every_step():
    md = make_md(pme_every=1)
    es = md.run(40)
    totals = [e.total for e in es]
    drift = abs(totals[-1] - totals[0]) / abs(totals[0])
    assert drift < 2e-3


def test_energy_conservation_multiple_timestepping():
    """PME every 4 steps (the paper's setting) stays stable too."""
    md = make_md(pme_every=4)
    es = md.run(40)
    totals = [e.total for e in es]
    drift = abs(totals[-1] - totals[0]) / abs(totals[0])
    assert drift < 1e-2


def test_smaller_dt_conserves_better():
    d = {}
    for dt in (0.01, 0.0025):
        md = make_md(dt=dt)
        es = md.run(30)
        totals = [e.total for e in es]
        d[dt] = abs(totals[-1] - totals[0])
    assert d[0.0025] < d[0.01]


def test_pme_cache_reused_between_refreshes():
    md = make_md(pme_every=4)
    md.run(4)
    # Reciprocal energy is refreshed only on PME steps, so the value is
    # piecewise constant between refreshes.
    recips = [e.reciprocal for e in md.energies]
    assert recips[0] == recips[1] == recips[2]


def test_pair_count_meter():
    md = make_md()
    with pytest.raises(ValueError):
        md.mean_pairs_per_step()
    md.run(2)
    assert md.mean_pairs_per_step() > 0


def test_pme_every_validates():
    system = build_system(50)
    with pytest.raises(ValueError):
        SequentialMD(system, pme_every=0)


def test_momentum_nearly_conserved():
    md = make_md()
    md.run(20)
    sysm = md.system
    p = np.sum(sysm.masses[:, None] * sysm.velocities, axis=0)
    # PME interpolation leaves a tiny net force; drift must stay small
    # relative to thermal momentum scale.
    thermal = np.sqrt(np.sum(sysm.masses) * 0.005)
    assert np.linalg.norm(p) < 0.5 * thermal * np.sqrt(sysm.n_atoms)
