"""Tests for angles, exclusion corrections and the thermostat."""

import numpy as np
import pytest

from repro.namd.forces import angle_forces, exclusion_corrections
from repro.namd.integrator import temperature
from repro.namd.simulation import SequentialMD
from repro.namd.system import build_system


BOX = np.array([100.0, 100.0, 100.0])


# ---------- angle forces ------------------------------------------------------

def test_angle_energy_at_equilibrium_is_zero():
    pos = np.array([[1.0, 0, 0], [0.0, 0, 0], [0.0, 1.0, 0]])
    e, f = angle_forces(pos, [(0, 1, 2, np.pi / 2, 3.0)], BOX)
    assert e == pytest.approx(0.0, abs=1e-12)
    assert np.allclose(f, 0.0, atol=1e-10)


def test_angle_energy_quadratic_in_displacement():
    def energy(theta):
        pos = np.array(
            [[np.cos(theta), np.sin(theta), 0], [0.0, 0, 0], [1.0, 0, 0]]
        )
        e, _ = angle_forces(pos, [(0, 1, 2, np.pi / 3, 2.0)], BOX)
        return e

    d = 0.1
    assert energy(np.pi / 3 + d) == pytest.approx(2.0 * d**2, rel=1e-6)
    assert energy(np.pi / 3 - d) == pytest.approx(2.0 * d**2, rel=1e-6)


def test_angle_forces_match_numerical_gradient():
    rng = np.random.default_rng(4)
    pos = rng.random((3, 3)) * 5 + 10
    angles = [(0, 1, 2, 1.8, 2.5)]
    _, f = angle_forces(pos, angles, BOX)
    h = 1e-6
    for atom in range(3):
        for d in range(3):
            pp, pm = pos.copy(), pos.copy()
            pp[atom, d] += h
            pm[atom, d] -= h
            ep, _ = angle_forces(pp, angles, BOX)
            em, _ = angle_forces(pm, angles, BOX)
            assert f[atom, d] == pytest.approx(-(ep - em) / (2 * h), rel=1e-4, abs=1e-8)


def test_angle_forces_conserve_momentum():
    rng = np.random.default_rng(5)
    pos = rng.random((9, 3)) * 8 + 5
    angles = [(0, 1, 2, 1.9, 1.0), (3, 4, 5, 2.0, 2.0), (6, 7, 8, 1.5, 0.5)]
    _, f = angle_forces(pos, angles, BOX)
    assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)


def test_angle_forces_empty():
    e, f = angle_forces(np.zeros((2, 3)), [], BOX)
    assert e == 0.0 and np.all(f == 0)


# ---------- exclusions ---------------------------------------------------------

def test_exclusion_correction_cancels_pair_interaction():
    """Real-space + reciprocal + correction = no interaction for the
    excluded pair (checked as full qq/r + LJ removal)."""
    from repro.namd.forces import LJ_EPSILON, LJ_SIGMA, pair_forces

    pos = np.array([[10.0, 10, 10], [12.1, 10, 10]])
    q = np.array([0.4, -0.4])
    beta = 0.35
    e_corr, f_corr = exclusion_corrections(pos, [(0, 1)], q, BOX, beta)
    r = 2.1
    qq = -0.16
    s6 = (LJ_SIGMA**2 / r**2) ** 3
    e_lj = 4 * LJ_EPSILON * (s6**2 - s6)
    assert e_corr == pytest.approx(-(qq / r + e_lj), rel=1e-12)


def test_exclusion_forces_match_numerical_gradient():
    pos = np.array([[10.0, 10, 10], [11.9, 10.7, 9.6]])
    q = np.array([0.4, -0.4])
    pairs = [(0, 1)]
    _, f = exclusion_corrections(pos, pairs, q, BOX, 0.35)
    h = 1e-6
    for atom, d in ((0, 0), (1, 2)):
        pp, pm = pos.copy(), pos.copy()
        pp[atom, d] += h
        pm[atom, d] -= h
        ep, _ = exclusion_corrections(pp, pairs, q, BOX, 0.35)
        em, _ = exclusion_corrections(pm, pairs, q, BOX, 0.35)
        assert f[atom, d] == pytest.approx(-(ep - em) / (2 * h), rel=1e-5)


def test_exclusions_from_system_include_bonds_and_angles():
    s = build_system(90, bond_fraction=0.5, angle_fraction=0.3, seed=1)
    excl = set(s.exclusions())
    for (i, j, _r0, _k) in s.bonds:
        assert (min(i, j), max(i, j)) in excl
    for (i, _j, k, _t0, _ka) in s.angles:
        assert (min(i, k), max(i, k)) in excl
    assert len(s.angles) > 0


def test_energy_conservation_with_angles_and_exclusions():
    s = build_system(120, temperature=0.004, bond_fraction=0.4,
                     angle_fraction=0.3, seed=9)
    md = SequentialMD(s, pme_every=1, dt=0.004)
    assert md.exclusion_pairs
    es = md.run(30)
    totals = [e.total for e in es]
    drift = abs(totals[-1] - totals[0]) / abs(totals[0])
    assert drift < 5e-3


# ---------- thermostat -----------------------------------------------------------

def test_thermostat_drives_temperature_to_target():
    s = build_system(150, temperature=0.02, bond_fraction=0.0, seed=2)
    target = 0.005
    md = SequentialMD(s, pme_every=4, dt=0.004,
                      thermostat_every=2, target_temperature=target)
    md.run(20)
    t_final = temperature(s.velocities, s.masses)
    assert t_final == pytest.approx(target, rel=0.3)


def test_thermostat_validates():
    s = build_system(50)
    with pytest.raises(ValueError):
        SequentialMD(s, thermostat_every=2)  # no target temperature
    with pytest.raises(ValueError):
        SequentialMD(s, thermostat_every=0, target_temperature=1.0)
