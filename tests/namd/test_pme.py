"""Validation of the PME implementation against direct Ewald."""

import numpy as np
import pytest

from repro.namd.pme import (
    bspline_weights,
    direct_ewald_reciprocal,
    ewald_real_space,
    ewald_self_energy,
    greens_function,
    interpolate_forces,
    pme_reciprocal,
    spread_charges,
)


@pytest.fixture(scope="module")
def small_system():
    rng = np.random.default_rng(42)
    n = 12
    box = np.array([10.0, 11.0, 9.0])
    pos = rng.random((n, 3)) * box
    q = rng.standard_normal(n)
    q -= q.mean()  # neutral
    return pos, q, box


def test_bspline_partition_of_unity():
    rng = np.random.default_rng(0)
    frac = rng.random(50)
    for order in (2, 3, 4, 5, 6):
        w, dw = bspline_weights(frac, order)
        assert np.allclose(w.sum(axis=1), 1.0)
        assert np.allclose(dw.sum(axis=1), 0.0, atol=1e-12)
        assert np.all(w >= -1e-12)


def test_bspline_order_validates():
    with pytest.raises(ValueError):
        bspline_weights(np.array([0.5]), 1)


def test_spread_conserves_charge(small_system):
    pos, q, box = small_system
    grid = spread_charges(pos, q, (16, 16, 16), box, order=4)
    assert grid.sum() == pytest.approx(q.sum(), abs=1e-12)


def test_spread_window_matches_full_grid():
    rng = np.random.default_rng(3)
    box = np.array([10.0, 10.0, 10.0])
    K = (16, 16, 16)
    pos = box / 4 + rng.random((6, 3)) * box / 2.5  # interior atoms
    q = rng.standard_normal(6)
    full = spread_charges(pos, q, K, box, 4)
    u = pos / box * 16
    x0 = int(np.floor(u[:, 0].min())) - 4
    x1 = int(np.floor(u[:, 0].max())) + 2
    y0 = int(np.floor(u[:, 1].min())) - 4
    y1 = int(np.floor(u[:, 1].max())) + 2
    win = spread_charges(pos, q, K, box, 4, window=((x0, x1), (y0, y1)))
    assert np.allclose(win, full[x0:x1, y0:y1, :])


def test_spread_window_too_small_raises():
    box = np.array([10.0, 10.0, 10.0])
    pos = np.array([[5.0, 5.0, 5.0]])
    q = np.ones(1)
    with pytest.raises(ValueError):
        spread_charges(pos, q, (16, 16, 16), box, 4, window=((7, 9), (0, 16)))


def test_pme_energy_matches_direct_ewald(small_system):
    pos, q, box = small_system
    beta = 0.6
    e_direct, _ = direct_ewald_reciprocal(pos, q, box, beta, mmax=10)
    e_pme, _ = pme_reciprocal(pos, q, box, (32, 32, 32), beta, order=6)
    assert e_pme == pytest.approx(e_direct, rel=1e-5)


def test_pme_forces_match_direct_ewald(small_system):
    pos, q, box = small_system
    beta = 0.6
    _, f_direct = direct_ewald_reciprocal(pos, q, box, beta, mmax=10)
    _, f_pme = pme_reciprocal(pos, q, box, (32, 32, 32), beta, order=6)
    scale = np.max(np.abs(f_direct))
    assert np.max(np.abs(f_pme - f_direct)) < 1e-4 * max(scale, 1e-12) * 100


def test_pme_forces_are_energy_gradient(small_system):
    pos, q, box = small_system
    beta, K, order = 0.6, (24, 24, 24), 4
    _, forces = pme_reciprocal(pos, q, box, K, beta, order)
    h = 1e-5
    for (i, d) in [(0, 0), (5, 1), (11, 2)]:
        pp, pm = pos.copy(), pos.copy()
        pp[i, d] += h
        pm[i, d] -= h
        ep, _ = pme_reciprocal(pp, q, box, K, beta, order)
        em, _ = pme_reciprocal(pm, q, box, K, beta, order)
        num = -(ep - em) / (2 * h)
        assert forces[i, d] == pytest.approx(num, rel=1e-4, abs=1e-9)


def test_pme_converges_with_grid(small_system):
    pos, q, box = small_system
    beta = 0.6
    e_direct, _ = direct_ewald_reciprocal(pos, q, box, beta, mmax=10)
    errs = []
    for K in (16, 24, 32):
        e, _ = pme_reciprocal(pos, q, box, (K, K, K), beta, order=4)
        errs.append(abs(e - e_direct))
    assert errs[2] < errs[0]


def test_greens_function_zero_mode_and_symmetry():
    box = np.array([8.0, 8.0, 8.0])
    C = greens_function((16, 16, 16), box, beta=0.5)
    assert C[0, 0, 0] == 0.0
    assert np.all(C >= 0)
    # Grid-frequency symmetry C(m) = C(-m) (real potential grid).
    assert C[1, 0, 0] == pytest.approx(C[-1, 0, 0])
    assert C[2, 3, 1] == pytest.approx(C[-2, -3, -1])


def test_real_space_forces_are_gradient(small_system):
    pos, q, box = small_system
    beta, cutoff = 0.6, 4.5
    _, f = ewald_real_space(pos, q, box, beta, cutoff)
    h = 1e-6
    i, d = 2, 1
    pp, pm = pos.copy(), pos.copy()
    pp[i, d] += h
    pm[i, d] -= h
    ep, _ = ewald_real_space(pp, q, box, beta, cutoff)
    em, _ = ewald_real_space(pm, q, box, beta, cutoff)
    assert f[i, d] == pytest.approx(-(ep - em) / (2 * h), rel=1e-5)


def test_real_space_forces_conserve_momentum(small_system):
    pos, q, box = small_system
    _, f = ewald_real_space(pos, q, box, 0.6, 4.5)
    assert np.allclose(f.sum(axis=0), 0.0, atol=1e-12)


def test_self_energy_sign_and_value():
    q = np.array([1.0, -1.0, 0.5])
    e = ewald_self_energy(q, beta=0.5)
    assert e < 0
    assert e == pytest.approx(-0.5 / np.sqrt(np.pi) * 2.25)


def test_total_ewald_beta_independence(small_system):
    """Real + reciprocal + self must be (nearly) independent of beta —
    the classic Ewald consistency check."""
    pos, q, box = small_system
    totals = []
    for beta in (0.55, 0.65):
        e_r, _ = ewald_real_space(pos, q, box, beta, cutoff=4.4)
        e_k, _ = direct_ewald_reciprocal(pos, q, box, beta, mmax=12)
        e_s = ewald_self_energy(q, beta)
        totals.append(e_r + e_k + e_s)
    assert totals[0] == pytest.approx(totals[1], abs=5e-3)
