"""Tests for atom migration between patches."""

import dataclasses

import numpy as np
import pytest

from repro.charm import Charm
from repro.converse import RunConfig
from repro.namd.charm_app import NamdCharm
from repro.namd.simulation import SequentialMD
from repro.namd.system import APOA1, MolecularSystem, build_system


def multi_patch_system(n=700, cutoff=7.5, temperature=1.0, seed=21):
    """A system hot and small-celled enough that atoms actually migrate."""
    spec_like = dataclasses.replace(APOA1, cutoff=cutoff)
    return build_system(
        n, spec_like=spec_like, temperature=temperature,
        bond_fraction=0.0, seed=seed,
    )


def make_app(system, migrate_every, n_steps, pme=True, **kw):
    charm = Charm(RunConfig(nnodes=2, workers_per_process=2))
    return NamdCharm(
        charm, system, n_steps=n_steps, pme_every=2, pme_enabled=pme,
        dt=0.05, migrate_every=migrate_every, **kw
    )


def test_migration_conserves_atoms():
    system = multi_patch_system()
    app = make_app(system, migrate_every=2, n_steps=4)
    assert app.patch_grid.n_patches > 1
    app.run()
    owned = np.concatenate(
        [app.patches.element(p).atoms for p in range(app.patch_grid.n_patches)]
    )
    assert sorted(owned.tolist()) == list(range(system.n_atoms))


def test_migration_moves_atoms_to_owning_patch():
    system = multi_patch_system()
    app = make_app(system, migrate_every=2, n_steps=4)
    app.run()
    grid = app.patch_grid
    moved = 0
    misplaced = 0
    for p in range(grid.n_patches):
        ch = app.patches.element(p)
        for pos in ch.pos % app.box_arr:
            # Atoms were re-binned at the last migration; they may have
            # drifted across a boundary in the steps since.
            if grid.patch_of_position(pos) != p:
                misplaced += 1
        initial = set(grid.bin_atoms(system.positions)[p].tolist())
        moved += len(set(ch.atoms.tolist()) - initial)
    assert moved > 0  # the system is hot enough that migration happened
    assert misplaced <= moved  # re-binning kept ownership largely current


def test_migration_matches_sequential_trajectory():
    """With migration the distributed run still tracks the reference
    (forces are identical; only ownership changes)."""
    sys_a = multi_patch_system(n=500)
    sys_b = multi_patch_system(n=500)
    md = SequentialMD(sys_b, pme_every=2, dt=0.05)
    md.run(4)

    app = make_app(sys_a, migrate_every=2, n_steps=4)
    app.run()
    got = app.gather_positions()
    want = sys_b.positions % sys_b.box
    assert np.allclose(got, want, atol=1e-6)


def test_migration_rejects_bonded_systems():
    system = build_system(200, temperature=0.0, bond_fraction=0.5, seed=3)
    charm = Charm(RunConfig(nnodes=1, workers_per_process=2))
    with pytest.raises(ValueError, match="unbonded"):
        NamdCharm(charm, system, migrate_every=2)


def test_migrate_every_validates():
    system = multi_patch_system()
    charm = Charm(RunConfig(nnodes=1, workers_per_process=2))
    with pytest.raises(ValueError):
        NamdCharm(charm, system, migrate_every=0)


def test_no_migration_when_disabled():
    system = multi_patch_system()
    app = make_app(system, migrate_every=None, n_steps=2)
    app.run()
    for p in range(app.patch_grid.n_patches):
        ch = app.patches.element(p)
        initial = set(app.patch_grid.bin_atoms(system.positions)[p].tolist())
        assert set(ch.atoms.tolist()) == initial
