"""Message-race tests for the reduction tree.

The race this PR fixes: a partial can dispatch on a PE at a moment when
the manager's operator registry has no entry for its reduction — either
because no local contribute() has registered it yet, or because a
*late* copy (a duplicated message on an unreliable network) lands after
``_deliver`` already wiped the tag's entries.  The partial handler used
to look the operator up in that registry (``self._ops[key]`` —
reduction.py:125 pre-fix), so the stray partial raised KeyError; the op
now rides in the partial payload.
"""

import pytest

from repro.charm import Chare, Charm
from repro.converse import RunConfig
from repro.faults import FaultPlan, FaultRates


def make(nnodes=2, workers=2, **kw):
    return Charm(RunConfig(nnodes=nnodes, workers_per_process=workers, **kw))


# -- the race itself --------------------------------------------------------


def test_late_duplicate_partial_does_not_crash():
    """A duplicated partial dispatches after its reduction completed.

    Every link duplicates, and the reliable transport is forced off so
    the second copy of the child's partial really reaches the handler.
    The first copy completes the reduction and ``_deliver`` deletes the
    tag's registry entries; the late copy then dispatches against an
    empty registry.  Pre-fix: ``KeyError: ('r', 't')`` out of
    ``_partial_handler``.  Post-fix: the op travels in the payload and
    the stray copy parks harmlessly; the result is delivered once.
    """
    plan = FaultPlan(seed=0, name="dup-partials", link=FaultRates(duplicate=1.0))
    charm = Charm(
        RunConfig(nnodes=2, workers_per_process=1, fault_plan=plan, reliable=False)
    )
    seen = []

    class Re(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from self.contribute(
                self.thisIndex + 1, "sum", "t", lambda v: seen.append(v)
            )

    arr = charm.create_array("r", Re, range(2))
    assert arr.pe_of(0) == 0 and arr.pe_of(1) == 1
    charm.seed(arr, 0, "go")
    charm.seed(arr, 1, "go")
    charm.start()
    charm.env.run(until=30_000_000)
    charm.runtime.stop()
    assert seen == [3]
    assert charm.reductions.completed == 1


def test_partial_arriving_before_local_contribute():
    """A child's partial reaches the root PE before the root contributes.

    The partial must park in the tree state (learning the operator from
    the message, not from a local registration) and the reduction
    completes once the root's own contribution arrives.
    """
    charm = make(nnodes=1, workers=2)
    seen = []

    class Re(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from self.contribute(
                self.thisIndex + 1, "sum", "tag", lambda v: seen.append(v)
            )

    arr = charm.create_array("race", Re, range(2))
    # Blocked map: element 0 -> PE 0 (tree root), element 1 -> PE 1.
    assert arr.pe_of(0) == 0 and arr.pe_of(1) == 1
    # Only the child PE contributes; its partial crosses to PE 0 where
    # *nothing* has registered the reduction yet.
    charm.seed(arr, 1, "go")
    charm.start()
    charm.env.run(until=10_000_000)
    assert seen == []  # parked: root hasn't contributed
    # Now the root contributes; the reduction must complete.
    charm.seed(arr, 0, "go")
    arr.element(0)._pe.queue.wakeup.signal()
    charm.env.run(until=30_000_000)
    charm.runtime.stop()
    assert seen == [3]
    assert charm.reductions.completed == 1


def test_partial_first_leaves_no_stale_state():
    """After the racy reduction completes, the tag is clean for reuse."""
    charm = make(nnodes=1, workers=2)
    seen = []

    class Re(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from self.contribute(1, "sum", "t", lambda v: seen.append(v))

    arr = charm.create_array("r", Re, range(2))
    charm.seed(arr, 1, "go")
    charm.start()
    charm.env.run(until=10_000_000)
    charm.seed(arr, 0, "go")
    arr.element(0)._pe.queue.wakeup.signal()
    charm.env.run(until=30_000_000)
    mgr = charm.reductions
    assert seen == [2]
    assert ("r", "t") not in mgr._states
    assert ("r", "t") not in mgr._targets
    assert ("r", "t") not in mgr._ops
    # Same tag again, same race order: still works.
    charm.seed(arr, 1, "go")
    arr.element(1)._pe.queue.wakeup.signal()
    charm.env.run(until=40_000_000)
    charm.seed(arr, 0, "go")
    arr.element(0)._pe.queue.wakeup.signal()
    charm.env.run(until=60_000_000)
    charm.runtime.stop()
    assert seen == [2, 2]


def test_tag_reuse_across_consecutive_reductions_spanning_nodes():
    """Back-to-back same-tag reductions whose partials cross the torus."""
    charm = make(nnodes=2, workers=2)
    seen = []

    class Re(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from self.contribute(
                self.thisIndex, "sum", "iter", lambda v: seen.append(v)
            )

    arr = charm.create_array("re", Re, range(8))
    for i in range(8):
        charm.seed(arr, i, "go")
    charm.start()
    charm.env.run(until=30_000_000)
    for i in range(8):
        charm.seed(arr, i, "go")
        arr.element(i)._pe.queue.wakeup.signal()
    charm.env.run(until=80_000_000)
    charm.runtime.stop()
    assert seen == [sum(range(8))] * 2
    assert charm.reductions.completed == 2


# -- tree-shape properties --------------------------------------------------


def tree_of(charm, arr):
    mgr = charm.reductions
    parts = mgr._participants(arr)
    return mgr, parts, {pe: mgr._tree(arr, pe) for pe in parts}


class Leaf(Chare):
    def __init__(self, idx):
        pass


@pytest.mark.parametrize("n_parts", [1, 2, 3, 5, 6, 7, 8])
def test_tree_shape_over_participant_counts(n_parts):
    """Every non-root has a parent that counts it as a child; the child
    counts reported by _tree sum to exactly the non-root population."""
    charm = make(nnodes=2, workers=4)  # 8 PEs
    # Round-robin over n_parts elements puts one element on each of the
    # first n_parts PEs.
    arr = charm.create_array("t", Leaf, range(n_parts), map_fn="round_robin")
    mgr, parts, tree = tree_of(charm, arr)
    assert len(parts) == n_parts
    root = parts[0]
    assert tree[root][0] is None
    for pe in parts[1:]:
        parent, _ = tree[pe]
        assert parent in parts and parent != pe
    # n_children at each PE == number of PEs naming it as parent.
    for pe in parts:
        naming = sum(1 for q in parts if q != root and tree[q][0] == pe)
        assert tree[pe][1] == naming
    assert sum(tree[pe][1] for pe in parts) == n_parts - 1


def test_tree_shape_with_non_contiguous_participants():
    """Participant PEs need not be dense or start at rank 0."""
    charm = make(nnodes=2, workers=4)
    ranks = [1, 3, 6]
    arr = charm.create_array(
        "sparse", Leaf, range(3), map_fn=lambda idx, ordinal, npes: ranks[ordinal]
    )
    mgr, parts, tree = tree_of(charm, arr)
    assert parts == ranks
    assert tree[1] == (None, 2)  # root: children at positions 1 and 2
    assert tree[3] == (1, 0)
    assert tree[6] == (1, 0)


def test_tree_single_participant_is_trivial_root():
    charm = make(nnodes=1, workers=2)
    arr = charm.create_array("solo", Leaf, [0], map_fn=lambda i, o, n: 1)
    mgr, parts, tree = tree_of(charm, arr)
    assert parts == [1]
    assert tree[1] == (None, 0)
