"""Tests for chare groups, multicast sections and message priorities."""

import pytest

from repro.charm import Chare, Charm, Group, Section
from repro.converse import RunConfig
from repro.converse.messages import ConverseMessage


class Member(Chare):
    def __init__(self, idx):
        self.got = []

    def take(self, value):
        self.got.append(value)


def make(nnodes=2, workers=2, **kw):
    return Charm(RunConfig(nnodes=nnodes, workers_per_process=workers, **kw))


# ---------- groups -------------------------------------------------------------

def test_group_one_element_per_pe():
    charm = make()
    g = charm.create_group("mgr", Member)
    assert len(g) == charm.npes
    for pe in range(charm.npes):
        assert g.pe_of(pe) == pe
        assert g.local_element(pe) is g.element(pe)


def test_group_name_collision_rejected():
    charm = make()
    charm.create_group("mgr", Member)
    with pytest.raises(ValueError):
        charm.create_group("mgr", Member)


def test_group_entry_method_delivery():
    charm = make()
    g = charm.create_group("mgr", Member)

    class Driver(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            for pe in range(charm.npes):
                yield from self.send_to(g, pe, "take", 32, pe * 10)
            yield from self.charge(1)

    d = charm.create_array("drv", Driver, [0])
    charm.seed(d, 0, "go")
    charm.start()
    charm.env.run(until=30_000_000)
    charm.runtime.stop()
    for pe in range(charm.npes):
        assert g.element(pe).got == [pe * 10]


# ---------- sections ------------------------------------------------------------

def test_section_validates_members():
    charm = make()
    arr = charm.create_array("a", Member, range(8))
    with pytest.raises(ValueError):
        Section(charm, arr, [])
    with pytest.raises(KeyError):
        Section(charm, arr, [99])


def test_section_tree_covers_all_pes():
    charm = make(nnodes=2, workers=4)
    arr = charm.create_array("a", Member, range(16))
    sec = charm.create_section(arr, range(16))
    reached = set()
    frontier = [sec.root_pe]
    while frontier:
        pe = frontier.pop()
        assert pe not in reached  # no cycles / duplicates
        reached.add(pe)
        frontier.extend(sec.children_of(pe))
    assert reached == set(sec.pes)


def test_section_multicast_reaches_exactly_members():
    charm = make(nnodes=2, workers=2)
    arr = charm.create_array("a", Member, range(12))
    members = [1, 3, 5, 7, 9]
    sec = charm.create_section(arr, members)

    class Driver(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from sec.multicast_from(self._pe, "take", 64, "hello")

    d = charm.create_array("drv", Driver, [0])
    charm.seed(d, 0, "go")
    charm.start()
    charm.env.run(until=30_000_000)
    charm.runtime.stop()
    for i in range(12):
        expected = ["hello"] if i in members else []
        assert arr.element(i).got == expected, i


def test_array_broadcast_uses_section_tree():
    charm = make(nnodes=2, workers=2)
    arr = charm.create_array("a", Member, range(8))

    class Driver(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from arr.broadcast_from(self._pe, "take", 32, 5)
            yield from arr.broadcast_from(self._pe, "take", 32, 6)

    d = charm.create_array("drv", Driver, [0])
    charm.seed(d, 0, "go")
    charm.start()
    charm.env.run(until=60_000_000)
    charm.runtime.stop()
    for i in range(8):
        assert arr.element(i).got == [5, 6]
    # The cached section was reused.
    assert arr._bcast_section.multicasts == 2


# ---------- priorities -----------------------------------------------------------

def test_priority_orders_execution():
    """Messages parked behind a busy PE run urgent-first."""
    charm = make(nnodes=1, workers=2)
    order = []

    class Sink(Chare):
        def __init__(self, idx):
            pass

        def work(self, tag):
            order.append(tag)
            yield from self.charge(10_000)

    sink = charm.create_array("s", Sink, [0])

    class Driver(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            # Burst of messages with mixed priorities to a single PE;
            # they pile up while the first executes.
            yield from self.send_to(sink, 0, "work", 32, "first")
            for i in range(3):
                yield from self._array.charm.arrays["s"].send_from(
                    self._pe, 0, "work", 32, f"low{i}", priority=10
                )
            yield from self._array.charm.arrays["s"].send_from(
                self._pe, 0, "work", 32, "urgent", priority=-10
            )

    d = charm.create_array("drv", Driver, [1])
    charm.seed(d, 1, "go")
    charm.start()
    charm.env.run(until=60_000_000)
    charm.runtime.stop()
    assert set(order) == {"first", "low0", "low1", "low2", "urgent"}
    # The urgent message overtook the earlier low-priority ones.
    assert order.index("urgent") < order.index("low2")


def test_fifo_within_equal_priority():
    charm = make(nnodes=1, workers=2)
    order = []

    class Sink(Chare):
        def __init__(self, idx):
            pass

        def work(self, tag):
            order.append(tag)

    sink = charm.create_array("s", Sink, [0])

    class Driver(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            for i in range(6):
                yield from self.send_to(sink, 0, "work", 32, i)

    d = charm.create_array("drv", Driver, [1])
    charm.seed(d, 1, "go")
    charm.start()
    charm.env.run(until=30_000_000)
    charm.runtime.stop()
    assert order == list(range(6))
