"""Tests for the Charm++ layer: arrays, entry methods, reductions."""

import pytest

from repro.charm import Chare, Charm, blocked_map, greedy_rebalance, node_aware_map, round_robin_map
from repro.converse import RunConfig


class Counter(Chare):
    def __init__(self, idx):
        self.value = 0
        self.log = []

    def bump(self, amount):
        self.value += amount

    def ping(self, hops):
        yield from self.charge(1000)
        n = len(self._array)
        nxt = (self.thisIndex + 1) % n
        if hops > 0:
            yield from self.send(nxt, "ping", 64, hops - 1)
        else:
            self.charm.exit(("done", self.thisIndex, self.env.now))


def make(nnodes=2, workers=2, **kw):
    return Charm(RunConfig(nnodes=nnodes, workers_per_process=workers, **kw))


def test_array_creation_and_mapping():
    charm = make()
    arr = charm.create_array("c", Counter, range(8))
    assert len(arr) == 8
    # Blocked map: 8 elements over 4 PEs = 2 each.
    for pe in range(charm.npes):
        assert len(arr.local_indices(pe)) == 2


def test_round_robin_map():
    charm = make()
    arr = charm.create_array("c", Counter, range(8), map_fn="round_robin")
    assert [arr.pe_of(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_duplicate_array_name_rejected():
    charm = make()
    charm.create_array("c", Counter, range(2))
    with pytest.raises(ValueError):
        charm.create_array("c", Counter, range(2))


def test_empty_array_rejected():
    charm = make()
    with pytest.raises(ValueError):
        charm.create_array("e", Counter, [])


def test_unknown_map_rejected():
    charm = make()
    with pytest.raises(ValueError):
        charm.create_array("c", Counter, range(4), map_fn="fancy")


def test_entry_method_ring():
    """Messages hop around a ring spanning nodes and processes."""
    charm = make(nnodes=2, workers=2)
    arr = charm.create_array("c", Counter, range(8))
    charm.seed(arr, 0, "ping", 16)
    tag, idx, t = charm.run()
    assert tag == "done"
    assert t > 0


def test_send_to_unknown_element_raises():
    charm = make()
    arr = charm.create_array("c", Counter, range(4))

    class Bad(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            try:
                yield from self.send_to(arr, 99, "bump", 8, 1)
            except KeyError:
                self.charm.exit("caught")

    bad = charm.create_array("bad", Bad, [0])
    charm.seed(bad, 0, "go")
    assert charm.run() == "caught"


def test_broadcast_reaches_every_element():
    charm = make(nnodes=2, workers=2)

    class Root(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from arr.broadcast_from(self._pe, "bump", 32, 5)
            # Exit after enough time for delivery via a second broadcast
            # barrier: use a reduction instead.
            yield from self.charge(1)

    arr = charm.create_array("c", Counter, range(8))
    root = charm.create_array("root", Root, [0])
    charm.seed(root, 0, "go")
    charm.start()
    charm.env.run(until=50_000_000)
    charm.runtime.stop()
    assert all(arr.element(i).value == 5 for i in range(8))


class Reducer(Chare):
    def __init__(self, idx):
        pass

    def go(self):
        yield from self.contribute(self.thisIndex + 1, "sum", "r1", self.charm._test_target)


def test_reduction_sum_across_pes():
    charm = make(nnodes=2, workers=2)
    arr = charm.create_array("r", Reducer, range(12))

    def at_root(value):
        charm.exit(value)

    charm._test_target = at_root
    for i in range(12):
        charm.seed(arr, i, "go")
    total = charm.run()
    assert total == sum(range(1, 13))
    assert charm.reductions.completed == 1


def test_reduction_to_entry_method():
    charm = make(nnodes=1, workers=2)

    class Sink(Chare):
        def __init__(self, idx):
            pass

        def result(self, value):
            charm.exit(("sink", value))

    arr = charm.create_array("r", Reducer, range(6))
    sink = charm.create_array("sink", Sink, [0])
    charm._test_target = (sink, 0, "result")
    for i in range(6):
        charm.seed(arr, i, "go")
    assert charm.run() == ("sink", 21)


def test_reduction_max_and_concat():
    charm = make(nnodes=1, workers=2)
    results = {}

    class Multi(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from self.contribute(self.thisIndex, "max", "m", lambda v: results.__setitem__("max", v))
            yield from self.contribute([self.thisIndex], "concat", "c", lambda v: results.__setitem__("cat", v))

    arr = charm.create_array("m", Multi, range(5))
    for i in range(5):
        charm.seed(arr, i, "go")
    charm.start()
    charm.env.run(until=20_000_000)
    charm.runtime.stop()
    assert results["max"] == 4
    assert sorted(results["cat"]) == list(range(5))


def test_reduction_unknown_op_rejected():
    charm = make(nnodes=1, workers=1)

    class BadOp(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            try:
                yield from self.contribute(1, "median", "t", lambda v: None)
            except ValueError:
                charm.exit("rejected")

    arr = charm.create_array("b", BadOp, [0])
    charm.seed(arr, 0, "go")
    assert charm.run() == "rejected"


def test_reduction_tag_reusable_after_completion():
    charm = make(nnodes=1, workers=2)
    seen = []

    class Re(Chare):
        def __init__(self, idx):
            pass

        def go(self):
            yield from self.contribute(1, "sum", "same-tag", lambda v: seen.append(v))

    arr = charm.create_array("re", Re, range(4))
    for i in range(4):
        charm.seed(arr, i, "go")
    charm.start()
    charm.env.run(until=10_000_000)
    for i in range(4):
        charm.seed(arr, i, "go")
        arr.element(i)._pe.queue.wakeup.signal()
    charm.env.run(until=30_000_000)
    charm.runtime.stop()
    assert seen == [4, 4]


def test_node_aware_map_keeps_blocks_on_node():
    fn = node_aware_map(pes_per_node=4, n_elements=8)
    pes = [fn(i, i, 8) for i in range(8)]  # 2 nodes x 4 PEs
    assert all(p < 4 for p in pes[:4])
    assert all(p >= 4 for p in pes[4:])


def test_greedy_rebalance_balances_loads():
    loads = [(i, float(i + 1)) for i in range(10)]
    assignment = greedy_rebalance(loads, npes=2)
    pe_load = [0.0, 0.0]
    for idx, load in loads:
        pe_load[assignment[idx]] += load
    assert abs(pe_load[0] - pe_load[1]) <= 10 * 0.2


def test_greedy_rebalance_validates():
    with pytest.raises(ValueError):
        greedy_rebalance([], npes=0)


def test_set_entry_category_before_use():
    charm = make()
    charm.set_entry_category("ping", "pme")
    hid = charm.entry_handler_id("ping")
    assert charm.runtime.handler_categories[hid] == "pme"
    with pytest.raises(RuntimeError):
        charm.set_entry_category("ping", "nonbonded")
