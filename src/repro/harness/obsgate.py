"""Obs-gate: the observability layer must be free when off, cheap when on.

Three claims, all about the exact workloads the BENCH trajectory gates
(:func:`repro.harness.benchgate.gate_runners` is shared, not mimicked):

1. **Cycle-neutral when disabled.**  With no
   :class:`~repro.obs.ProfileSession` active, every gated benchmark's
   simulated-time checksum must equal the latest committed
   ``BENCH_NNNN.json`` record (full scale) — the profiler hook in
   ``Environment.__init__``/``step()`` changed the engine source, and
   this proves it changed nothing observable.
2. **Deterministic when enabled.**  The *profiled* runs must produce
   bit-identical checksums too: profiling measures host wall time, it
   never perturbs event order.
3. **Within budget when enabled.**  Profiled wall time / unprofiled
   wall time, run interleaved (off, on, off, on ... — the
   tracer-overhead methodology, so machine drift hits both sides
   equally).  Each benchmark's statistic is its *best* per-pair ratio:
   on busy hosts, scheduler bursts land mid-pair and inflate the 'on'
   half one-sidedly (observed per-pair swings of ±16% around a calm
   cluster at ~1.00), so the least-disturbed pair is the honest
   estimate — and a real regression inflates every pair, the best one
   included.  The gate takes the median of those best ratios across
   benchmarks and requires it ≤ 1 + budget (default 5%).

On top of the gate, the run *produces* the measurement artifact the
ROADMAP's compiled-core item needs: a merged hotspot profile per
benchmark (written under ``--profile-dir``) and a committed baseline
summary (``benchmarks/baselines/hotspots.json``) whose top dispatch
sites must cover ≥80% of total engine wall time — so "which dispatch
sites dominate" is a diffable, regression-checked fact, not folklore.

Entry points: ``make obs-gate`` / ``python -m repro.harness.obsgate``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import statistics
import sys
import time
from types import MappingProxyType
from typing import Any, Dict, List, Optional, Tuple

from ..ioutil import atomic_write_json
from ..obs import Profile, ProfileSession, write_profile_json
from .benchgate import find_bench_files, gate_runners, load_record

__all__ = [
    "OVERHEAD_BUDGET",
    "COVERAGE_MIN",
    "COVERAGE_TOP",
    "BASELINE_TOP",
    "obs_gate",
    "baseline_summary",
    "main",
]

#: Allowed profiled/unprofiled median wall-time ratio excess (5%).
OVERHEAD_BUDGET = 0.05
#: The top-N sites of each benchmark's profile must cover this share of
#: total engine wall time — an attribution-completeness check: a
#: profiler that dumps most time into a long tail of unmergeable
#: one-off names is useless for choosing an extraction boundary.
COVERAGE_MIN = 0.80
COVERAGE_TOP = 10
#: Sites kept per benchmark in the committed baseline summary.
BASELINE_TOP = 5

#: Interleaved off/on repetitions per benchmark.  The budget check
#: keeps each benchmark's *best* pair, so more pairs buy robustness
#: against scheduler noise: short benchmarks (pingpong, ~1s/run) see
#: per-pair swings of ±30% on busy hosts and get the most reps; the
#: long NAMD windows average the noise out within a single run.
_REPS = MappingProxyType({
    "full": MappingProxyType({"pingpong": 5, "fig3_m2m": 3, "fig10_window": 2}),
    "tiny": MappingProxyType({"pingpong": 3, "fig3_m2m": 2, "fig10_window": 2}),
})


def _latest_bench_checksums(root: pathlib.Path) -> Tuple[str, Dict[str, str]]:
    """(record id, benchmark -> checksum) from the newest BENCH_*.json.

    Only full-scale records carry gate-comparable checksums; returns an
    empty map when none exists (fresh clone with the trajectory pruned).
    """
    files = find_bench_files(root)
    if not files:
        return "", {}
    record = load_record(files[-1])
    if record.get("scale") != "full":
        return "", {}
    return record.get("id", files[-1].stem), {
        name: rec["checksum"]
        for name, rec in record.get("benchmarks", {}).items()
    }


def baseline_summary(
    profiles: Dict[str, Profile], label: str = ""
) -> Dict[str, Any]:
    """The committed-baseline shape: top sites + shares per benchmark."""
    out: Dict[str, Any] = {"schema": 1, "label": label, "benchmarks": {}}
    for name in sorted(profiles):
        profile = profiles[name]
        out["benchmarks"][name] = {
            "total_nanos": profile.total_nanos,
            "total_events": profile.total_count,
            "coverage_top10": round(profile.coverage(COVERAGE_TOP), 4),
            "top": [
                {
                    "event_type": node["event_type"],
                    "owner": node["owner"],
                    "share": round(node["share"], 4),
                    "count": node["count"],
                }
                for node in profile.top(BASELINE_TOP)
            ],
        }
    return out


def _check_baseline(
    baseline: Dict[str, Any],
    profiles: Dict[str, Profile],
    failures: List[str],
    notes: List[str],
) -> None:
    """Diff current profiles against the committed hotspot baseline.

    The *identity* of the dominant dispatch site is gated (its
    disappearance means either a real engine restructuring — update the
    baseline deliberately — or broken attribution); share drift is
    informational, since absolute shares move with machine and scale.
    """
    for name, entry in sorted(baseline.get("benchmarks", {}).items()):
        profile = profiles.get(name)
        if profile is None:
            notes.append(f"{name}: in baseline but not in this run")
            continue
        current = {(n["event_type"], n["owner"]): n for n in profile.nodes}
        top = entry.get("top", [])
        if not top:
            continue
        lead = top[0]
        key = (lead["event_type"], lead["owner"])
        node = current.get(key)
        if node is None:
            failures.append(
                f"{name}: baseline top dispatch site "
                f"{key[0]}/{key[1]} absent from the current profile — "
                "attribution broke or the engine was restructured "
                "(re-run with --write-baseline if deliberate)"
            )
            continue
        notes.append(
            f"{name}: top site {key[0]}/{key[1]} share "
            f"{node['share'] * 100:.1f}% (baseline {lead['share'] * 100:.1f}%)"
        )


def obs_gate(
    scale: str = "full",
    budget: float = OVERHEAD_BUDGET,
    bench_root: Optional[pathlib.Path] = None,
    baseline: Optional[Dict[str, Any]] = None,
    verbose: bool = True,
) -> Tuple[List[str], List[str], Dict[str, Any], Dict[str, Profile]]:
    """Run the gate; returns (failures, notes, report, merged profiles)."""
    failures: List[str] = []
    notes: List[str] = []
    runners = gate_runners(scale)
    reps = _REPS[scale]

    bench_id = ""
    committed: Dict[str, str] = {}
    if scale == "full":
        root = bench_root if bench_root is not None else pathlib.Path(
            os.environ.get("REPRO_BENCH_ROOT", ".")
        )
        bench_id, committed = _latest_bench_checksums(root.resolve())

    ratios: List[float] = []
    per_bench: Dict[str, Any] = {}
    profiles: Dict[str, Profile] = {}
    for name, run in runners.items():
        bench_ratios: List[float] = []
        checksums: List[str] = []
        rep_profiles: List[Profile] = []
        for rep in range(reps[name]):
            off = run()
            with ProfileSession(f"{name}#{rep}") as session:
                on = run()
            rep_profiles.append(session.profile())
            checksums.append(off["checksum"])
            checksums.append(on["checksum"])
            if off["wall_s"] > 0:
                bench_ratios.append(on["wall_s"] / off["wall_s"])
        profile = Profile.merge(name, rep_profiles)
        profiles[name] = profile

        if len(set(checksums)) != 1:
            failures.append(
                f"{name}: profiled/unprofiled checksums diverge (HARD FAIL) "
                f"— profiling must not perturb event order: "
                f"{sorted(set(checksums))}"
            )
        elif committed:
            want = committed.get(name)
            if want is None:
                notes.append(f"{name}: no entry in {bench_id} to compare")
            elif checksums[0] != want:
                failures.append(
                    f"{name}: checksum {checksums[0][:12]} != committed "
                    f"{bench_id} {want[:12]} (HARD FAIL) — the obs layer "
                    "must be cycle-neutral against the BENCH trajectory"
                )
            else:
                notes.append(f"{name}: checksum matches {bench_id}")

        coverage = profile.coverage(COVERAGE_TOP)
        if coverage < COVERAGE_MIN:
            failures.append(
                f"{name}: top-{COVERAGE_TOP} sites cover only "
                f"{coverage * 100:.1f}% of engine wall time "
                f"(< {COVERAGE_MIN * 100:.0f}%) — attribution too shattered"
            )
        best = min(bench_ratios) if bench_ratios else 0.0
        if bench_ratios:
            ratios.append(best)
        per_bench[name] = {
            "reps": reps[name],
            "checksum": checksums[0] if checksums else "",
            "ratios": [round(r, 4) for r in bench_ratios],
            "best_ratio": round(best, 4),
            "coverage_top10": round(coverage, 4),
            "profiled_events": profile.total_count,
            "profiled_wall_ms": round(profile.total_nanos / 1e6, 2),
        }
        if verbose:
            print(
                f"obs-gate: {name:13s} overhead x{best:.3f} "
                f"(best of {reps[name]} pairs)  coverage "
                f"{coverage * 100:.1f}%  checksum {checksums[0][:12]}"
            )

    median_ratio = statistics.median(ratios) if ratios else 0.0
    if median_ratio > 1.0 + budget:
        failures.append(
            f"profiler overhead x{median_ratio:.3f} exceeds budget "
            f"x{1.0 + budget:.2f} (median of per-benchmark best "
            f"interleaved pairs, {len(ratios)} benchmarks)"
        )
    else:
        notes.append(
            f"profiler overhead x{median_ratio:.3f} "
            f"(budget x{1.0 + budget:.2f}, best pair per benchmark)"
        )

    if baseline is not None:
        _check_baseline(baseline, profiles, failures, notes)

    report = {
        "schema": 1,
        "scale": scale,
        "budget": budget,
        "bench_record": bench_id,
        "median_overhead": round(median_ratio, 4),
        "benchmarks": per_bench,
        "failures": failures,
        "notes": notes,
        "pass": not failures,
    }
    return failures, notes, report, profiles


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.obsgate", description=__doc__
    )
    parser.add_argument(
        "--scale", choices=("full", "tiny"), default="full",
        help="benchmark sizes ('tiny' is for self-tests only; the "
        "committed-BENCH checksum comparison runs at full scale)",
    )
    parser.add_argument(
        "--budget", type=float, default=OVERHEAD_BUDGET,
        help=f"allowed fractional profiling overhead (default "
        f"{OVERHEAD_BUDGET}; CI uses a looser value — foreign hardware, "
        "same rationale as bench-gate --checksum-only)",
    )
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(os.environ.get("REPRO_BENCH_ROOT", ".")),
        help="directory holding BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path,
        default=pathlib.Path("benchmarks/baselines/hotspots.json"),
        help="committed hotspot-baseline summary to check against",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite --baseline from this run instead of checking it "
        "(use after a deliberate engine restructuring)",
    )
    parser.add_argument(
        "--profile-dir", type=pathlib.Path,
        default=pathlib.Path("benchmarks/output"),
        help="where the per-benchmark merged profiles land "
        "(hotspots_<name>.json)",
    )
    parser.add_argument(
        "--json-out", type=pathlib.Path, default=None,
        help="write the gate report JSON here",
    )
    args = parser.parse_args(argv)

    baseline: Optional[Dict[str, Any]] = None
    if not args.write_baseline and args.baseline.exists():
        import json

        with open(args.baseline) as fh:
            baseline = json.load(fh)
    elif not args.write_baseline:
        print(
            f"obs-gate: no baseline at {args.baseline} "
            "(run --write-baseline to record one)"
        )

    t0 = time.perf_counter()
    failures, notes, report, profiles = obs_gate(
        scale=args.scale,
        budget=args.budget,
        bench_root=args.root,
        baseline=baseline,
    )
    wall = time.perf_counter() - t0

    args.profile_dir.mkdir(parents=True, exist_ok=True)
    for name, profile in sorted(profiles.items()):
        out = args.profile_dir / f"hotspots_{name}.json"
        write_profile_json(profile, out)
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            args.json_out, report, indent=2, sort_keys=True,
            trailing_newline=True,
        )
    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            args.baseline,
            baseline_summary(profiles, label=f"obs-gate {args.scale}"),
            indent=2,
            sort_keys=True,
            trailing_newline=True,
        )
        print(f"obs-gate: wrote baseline {args.baseline}")

    for note in notes:
        print(f"  {note}")
    if failures:
        for failure in failures:
            print(f"obs-gate: FAIL — {failure}", file=sys.stderr)
        return 1
    print(
        f"obs-gate: PASS ({wall:.1f}s total — cycle-neutral off, "
        f"x{report['median_overhead']:.3f} overhead on)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
