"""Serve-gate: synthetic many-client load over the job service.

``make iso-gate`` proves the engine-level property (interleaved
Environments checksum bit-identically to solo runs); this harness
proves the *service-level* consequence end to end: N clients submit
simulation jobs to one :class:`~repro.serve.JobService` process —
mixed workloads, mixed priorities, mixed pacing — and **every job's
result checksum must equal the same workload run solo** through the
normal ``run(until=event)`` path.  On top of the correctness gate it
records the service-shaped load numbers (jobs/sec, p50/p99
submit-to-done latency, calibration-cache hit rate) that
``BENCH_NNNN.json`` archives as the ``serve_load`` benchmark.

Workload mix (full scale, 9 distinct jobs x ``repeats`` copies):

* the six iso-gate workloads (Converse ping-pongs in four run modes +
  two Charm mini-NAMD runs) as :class:`~repro.serve.EnvTask` jobs;
* one sharded conservative-PDES ping-pong as a
  :class:`~repro.serve.ShardedTask` job (windowed advancement
  interleaves with single-Environment jobs on the same pool);
* two analytic perfmodel evaluations as
  :class:`~repro.serve.ModelTask` jobs — the repeated copies exercise
  the calibration cache, whose hit-path checksums must equal the
  miss-path ones.

Interleaving diversity: copies cycle ``slice_events`` through
``(32, 96, 256)`` and priorities through ``(0, 1, 2)``, so the worker
pool keeps reshuffling which job advances when — the served schedule
never degenerates into solo-equivalent back-to-back execution.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import percentile
from ..serve import DONE, EnvTask, JobService, JobSpec, ModelTask, ShardedTask
from .isogate import IsoInstance, gate_workloads
from .report import format_serve_metrics

__all__ = [
    "SLICE_CYCLE",
    "PRIORITY_CYCLE",
    "serve_workloads",
    "run_task_solo",
    "solo_checksums",
    "run_serve_load",
    "serve_gate",
    "bench_serve_load",
    "main",
]

#: Per-copy pacing values — distinct slice sizes shift which jobs share
#: the loop at any instant, the serve-level analogue of the iso-gate's
#: stride rotation.
SLICE_CYCLE: Tuple[int, ...] = (32, 96, 256)
#: Per-copy priorities: copies land in different priority bands, so the
#: heap reorders execution relative to submission order.
PRIORITY_CYCLE: Tuple[int, ...] = (0, 1, 2)


def _env_task_build(name: str, build_iso: Callable[[], IsoInstance]):
    """JobSpec.build adapter: isogate workload -> EnvTask."""

    def build(spec: JobSpec) -> EnvTask:
        inst = build_iso()
        return EnvTask(
            inst.env,
            inst.done,
            on_start=inst.start,
            on_stop=inst.stop,
            result_fn=inst.result,
            label=name,
        )

    return build


def _sharded_task_build(nnodes: int, nshards: int, nbytes: int, trips: int):
    """JobSpec.build adapter: sharded ping-pong -> ShardedTask.

    Reuses the shardbench mirror builder (same construction as
    ``make shard-gate``); the task's windowed ``advance()`` replays the
    ShardCoordinator loop one window per slice.
    """
    from ..bgq.shardnet import ReservationFabric
    from ..converse import RunConfig
    from .shardbench import _build_pingpong_shard

    def build(spec: JobSpec) -> ShardedTask:
        config = RunConfig(nnodes=nnodes, workers_per_process=2)
        dst_rank = (nnodes - 1) * config.pes_per_node
        fabric = ReservationFabric(nnodes, nshards)
        shards = [
            _build_pingpong_shard(
                sid, nshards, config, nbytes, trips, 0, dst_rank, fabric
            )
            for sid in range(nshards)
        ]
        root = shards[0]

        def result() -> Dict[str, Any]:
            # Shard 0's result_fn stops its runtime as a side effect, so
            # route teardown through on_stop and keep result() pure.
            raw = root.result_fn()
            return {"rtts": [repr(t) for t in raw["rtts"]]}

        return ShardedTask(
            [s.env for s in shards],
            root.done,
            fabric.window,
            fabric,
            on_stop=lambda: [s.runtime.stop() for s in shards[1:]],
            result_fn=result,
            label=spec.name,
        )

    return build


def _model_task_build(nodes: int, service: Optional[JobService] = None):
    """JobSpec.build adapter: perfmodel step-time evaluation -> ModelTask.

    When a service is provided the evaluation goes through its shared
    calibration cache; repeats of the same node count are cache hits.
    """

    def build(spec: JobSpec) -> ModelTask:
        from ..namd.system import APOA1
        from ..perfmodel.namdmodel import NamdRunConfig, namd_step_time

        cache = service.cache if service is not None else None
        return ModelTask(
            namd_step_time,
            APOA1,
            nodes,
            NamdRunConfig(),
            cache=cache,
            label=spec.name,
        )

    return build


def serve_workloads(
    scale: str = "full", service: Optional[JobService] = None
) -> List[Tuple[str, Callable[[JobSpec], Any]]]:
    """(name, JobSpec.build) pairs for the serve load at ``scale``."""
    workloads: List[Tuple[str, Callable[[JobSpec], Any]]] = [
        (name, _env_task_build(name, build_iso))
        for name, build_iso in gate_workloads(scale)
    ]
    if scale == "full":
        workloads.append(
            (
                "sharded/pingpong-4n-2s",
                _sharded_task_build(nnodes=4, nshards=2, nbytes=512, trips=6),
            )
        )
        model_nodes = (256, 512)
    else:
        model_nodes = (256,)
    for nodes in model_nodes:
        workloads.append(
            (f"model/apoa1-{nodes}n", _model_task_build(nodes, service))
        )
    return workloads


def run_task_solo(task: Any) -> str:
    """Run one task to completion alone; return its checksum.

    Single-Environment tasks go through the engine's normal
    ``run(until=done)`` path — the independent oracle — while
    sharded/model tasks drive ``advance()`` back to back (their solo
    schedule), so a served checksum can only differ through
    cross-job interference inside the service.
    """
    task.start()
    if isinstance(task, EnvTask):
        task.env.run(until=task.done)
    else:
        while not task.advance(1 << 30):
            pass
    task.stop()
    return task.checksum()


def solo_checksums(
    workloads: Sequence[Tuple[str, Callable[[JobSpec], Any]]]
) -> Dict[str, str]:
    """Solo-run checksum per workload name (fresh build per run)."""
    out: Dict[str, str] = {}
    for name, build in workloads:
        spec = JobSpec(name=name, build=build)
        out[name] = run_task_solo(build(spec))
    return out


# Back-compat alias: the nearest-rank formula moved to
# repro.obs.metrics.percentile so the serve latency Histogram and this
# gate literally share it (gate numbers and live metrics cannot
# disagree; tests/serve/test_metrics.py asserts the equality).
_percentile = percentile


async def _drive_load(
    scale: str,
    workers: int,
    repeats: int,
) -> Tuple[List[Any], float, JobService]:
    """Submit repeats x workloads to a fresh service.

    Returns (jobs, wall seconds, the closed service) — the service
    comes back so callers can read its metrics registry: the latency
    histogram *is* the source of the gate's p50/p99.
    """
    service = JobService(workers=workers)
    # Built against the live service so model jobs share its
    # calibration cache (the solo oracle pass builds uncached).
    bound = serve_workloads(scale, service)
    service.start()
    t0 = time.perf_counter()
    jobs = []
    for copy in range(repeats):
        for i, (name, build) in enumerate(bound):
            k = copy * len(bound) + i
            spec = JobSpec(
                name=name,
                build=build,
                priority=PRIORITY_CYCLE[k % len(PRIORITY_CYCLE)],
                slice_events=SLICE_CYCLE[k % len(SLICE_CYCLE)],
                stream_every=2,
            )
            jobs.append(service.submit(spec))
    await service.join()
    wall_s = time.perf_counter() - t0
    await service.close()
    return jobs, wall_s, service


def run_serve_load(
    scale: str = "full",
    workers: int = 4,
    repeats: int = 2,
    metrics_out: Optional[Path] = None,
    prom_out: Optional[Path] = None,
) -> Dict[str, Any]:
    """The benchmark body: solo oracle pass, then the served load.

    Returns a JSON-friendly report::

        {"njobs", "workers", "wall_s", "jobs_per_sec",
         "latency_p50_s", "latency_p99_s", "cache": {...},
         "events": total engine events across jobs,
         "serve_metrics": live-metrics snapshot (JobService.metrics),
         "jobs": {job_id: {"name", "state", "checksum", "solo",
                           "ok", "latency_s"}}}

    ``latency_p50_s``/``latency_p99_s`` are read from the service's
    ``serve.latency_s`` Histogram, not recomputed from the job list —
    the gate number and the live metric are one code path.
    ``metrics_out``/``prom_out`` additionally write the snapshot as
    JSON / Prometheus text exposition (atomic).
    """
    # The oracle pass builds model tasks uncached (service=None): served
    # cache hits must still match the uncached solo evaluation.
    solo = solo_checksums(serve_workloads(scale))

    jobs, wall_s, service = asyncio.run(
        _drive_load(scale, workers, repeats)
    )
    cache_stats = service.cache.stats()
    latency_hist = service.metrics.get("serve.latency_s")
    serve_metrics = service.metrics_snapshot()
    if metrics_out is not None:
        service.metrics.write_json(metrics_out)
    if prom_out is not None:
        service.metrics.write_prometheus(prom_out)

    report_jobs: Dict[str, Any] = {}
    events = 0
    for job in jobs:
        ok = job.state == DONE and job.checksum == solo[job.spec.name]
        if job.result:
            events += int(job.result.get("events", 0))
        report_jobs[job.id] = {
            "name": job.spec.name,
            "state": job.state,
            "checksum": job.checksum,
            "solo": solo[job.spec.name],
            "ok": ok,
            "latency_s": round(job.latency_s() or 0.0, 4),
            "error": job.error,
        }
    return {
        "scale": scale,
        "njobs": len(jobs),
        "workers": workers,
        "wall_s": round(wall_s, 4),
        "jobs_per_sec": round(len(jobs) / wall_s, 2) if wall_s > 0 else 0.0,
        "latency_p50_s": round(latency_hist.percentile(0.50), 4),
        "latency_p99_s": round(latency_hist.percentile(0.99), 4),
        "cache": cache_stats,
        "events": events,
        "serve_metrics": serve_metrics,
        "jobs": report_jobs,
    }


def serve_gate(
    scale: str = "full",
    workers: int = 4,
    repeats: int = 2,
    verbose: bool = True,
    metrics_out: Optional[Path] = None,
    prom_out: Optional[Path] = None,
) -> Tuple[List[str], Dict[str, Any]]:
    """Run the load and gate it; returns (failures, report)."""
    report = run_serve_load(
        scale=scale,
        workers=workers,
        repeats=repeats,
        metrics_out=metrics_out,
        prom_out=prom_out,
    )
    failures: List[str] = []
    if report["njobs"] < 8:
        failures.append(
            f"load too small: {report['njobs']} jobs (< 8 concurrent jobs)"
        )
    for job_id, rec in sorted(report["jobs"].items()):
        if rec["ok"]:
            if verbose:
                print(
                    f"serve-gate: {job_id:28s} {rec['checksum']}  "
                    f"== solo  ({rec['latency_s']:.3f}s)"
                )
            continue
        if rec["state"] != DONE:
            failures.append(
                f"{job_id}: terminal state {rec['state']!r}"
                + (f" — {rec['error']}" if rec["error"] else "")
            )
        else:
            failures.append(
                f"{job_id}: served checksum {rec['checksum']} != solo "
                f"{rec['solo']} (workload {rec['name']})"
            )
    if verbose:
        cache = report["cache"]
        print(
            f"serve-gate: {report['njobs']} jobs / {report['workers']} workers  "
            f"{report['jobs_per_sec']:.1f} jobs/s  "
            f"p50 {report['latency_p50_s']:.3f}s  "
            f"p99 {report['latency_p99_s']:.3f}s  "
            f"cache {cache['hits']}h/{cache['misses']}m"
        )
        summary = format_serve_metrics(report.get("serve_metrics"))
        if summary:
            print(summary)
    return failures, report


def bench_serve_load(scale: str = "full") -> Dict[str, Any]:
    """BENCH_NNNN entry: the served load as a gated benchmark.

    ``sim_times`` is the per-job checksum map — machine-portable and
    deterministic, so future records gate on it like any simulated-time
    observable; jobs/sec and latency land in ``metrics`` (reported, not
    gated — they are host-load-dependent).
    """
    failures, report = serve_gate(scale=scale, verbose=False)
    if failures:
        raise RuntimeError("serve load diverged: " + "; ".join(failures))
    sim_times = {
        job_id: rec["checksum"] for job_id, rec in sorted(report["jobs"].items())
    }
    return {
        "wall_s": report["wall_s"],
        "events": report["events"],
        "sim_times": sim_times,
        "metrics": {
            "njobs": report["njobs"],
            "workers": report["workers"],
            "jobs_per_sec": report["jobs_per_sec"],
            "latency_p50_s": report["latency_p50_s"],
            "latency_p99_s": report["latency_p99_s"],
            "cache_hits": report["cache"]["hits"],
            "cache_misses": report["cache"]["misses"],
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.servebench",
        description="serve-gate: N concurrent service jobs must checksum "
        "bit-identically to solo runs",
    )
    parser.add_argument(
        "--scale", choices=("tiny", "full"), default="full",
        help="tiny = ping-pongs + one model job; full adds mini-NAMD, "
        "a sharded job and a second model job",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="copies of each workload (copies vary priority and pacing)",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="write the full load report to this file",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="write the live-metrics snapshot (JSON) to this file",
    )
    parser.add_argument(
        "--prom-out", type=Path, default=None,
        help="write the metrics as Prometheus text exposition",
    )
    args = parser.parse_args(argv)

    for path in (args.metrics_out, args.prom_out):
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
    failures, report = serve_gate(
        scale=args.scale,
        workers=args.workers,
        repeats=args.repeats,
        metrics_out=args.metrics_out,
        prom_out=args.prom_out,
    )
    if args.json_out is not None:
        from ..ioutil import atomic_write_text

        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.json_out, json.dumps(report, indent=2) + "\n")
    if failures:
        for failure in failures:
            print(f"serve-gate: FAIL — {failure}", file=sys.stderr)
        return 1
    print(
        f"serve-gate: PASS ({report['njobs']} concurrent jobs, served "
        "checksums bit-identical to solo)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
