"""Concurrent-Environment isolation gate (``make iso-gate``).

The whole-program lint families prove *statically* that no module-level
mutable state can leak between simulator instances (rules G1-G4, see
docs/ANALYSIS.md).  This harness proves it *dynamically*: N independent
:class:`~repro.sim.Environment` instances are built in one process and
stepped in an adversarial round-robin interleaving (varying stride per
instance per turn), and every instance must produce a **bit-identical**
simulated-time checksum to the same workload run solo through the
normal ``run(until=event)`` path.

Why this is a sound oracle: ``Environment.run(until=event)`` is exactly
"``step()`` until the event is processed", so a manual step loop over
instance A interleaved with steps of instances B..N can only diverge
from A's solo run if stepping B..N mutates state A reads — i.e. if some
shared mutable module global exists that the static pass missed.

Only the public Environment surface is used — ``peek()``, ``step()``,
``Event.processed`` — never ``_queue``/``_imm`` (lint rule P3).

Workloads (N=4 tiny, N=6 full): Converse-level ping-pongs in distinct
run modes plus, at full scale, two Charm-level mini-NAMD runs (std and
many-to-many PME), so both runtime layers are exercised concurrently.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..converse import ConverseRuntime, RunConfig
from ..converse.messages import ConverseMessage
from ..sim import Environment

__all__ = [
    "IsoInstance",
    "build_pingpong_instance",
    "build_namd_instance",
    "gate_workloads",
    "run_solo",
    "run_interleaved",
    "isolation_gate",
    "main",
]

#: Per-turn step strides; instance ``i`` advances ``STRIDES[(turn + i) %
#: len(STRIDES)]`` events on its turn, so the interleaving pattern keeps
#: shifting instead of degenerating into a fixed 1:1:...:1 rotation.
STRIDES: Tuple[int, ...] = (1, 2, 3, 5)


@dataclass
class IsoInstance:
    """One deferred-run workload: built and seeded, but not yet stepped."""

    name: str
    env: Environment
    start: Callable[[], None]  # bring up scheduler loops (before stepping)
    stop: Callable[[], None]  # tear down scheduler loops (after done)
    done: object  # Event whose processing ends the run
    result: Callable[[], Dict[str, object]]  # repr'd workload observables

    def checksum(self) -> str:
        """Bit-exact digest of final sim time, event count and results."""
        payload = {
            "now": repr(self.env.now),
            "events": self.env.events_executed,
        }
        payload.update(self.result())
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]


def build_pingpong_instance(
    name: str,
    config: RunConfig,
    nbytes: int,
    dst_rank: Optional[int] = None,
    trips: int = 8,
) -> IsoInstance:
    """A deferred ping-pong run (same protocol as ``pingpong_run``)."""
    env = Environment()
    rt = ConverseRuntime(env, config)
    src_rank = 0
    if dst_rank is None:
        dst_rank = config.pes_per_node  # first PE of node 1
    rtts: List[float] = []
    done = env.event()
    state = {"t0": 0.0, "trip": 0}

    def pong(pe, msg):
        yield from pe.send(src_rank, hid_ping, nbytes, None)

    def ping(pe, msg):
        now = env.now
        if state["trip"] > 0:
            rtts.append(now - state["t0"])
        if state["trip"] >= trips:
            done.succeed()
            return
        state["t0"] = now
        state["trip"] += 1
        yield from pe.send(dst_rank, hid_pong, nbytes, None)

    hid_pong = rt.register_handler(pong)
    hid_ping = rt.register_handler(ping)
    rt.pes[src_rank].local_q.append(
        ConverseMessage(hid_ping, 0, None, src_rank, src_rank)
    )

    def result() -> Dict[str, object]:
        return {"rtts": [repr(t) for t in rtts]}

    return IsoInstance(name, env, rt.start, rt.stop, done, result)


def build_namd_instance(
    name: str,
    use_m2m_pme: bool,
    n_atoms: int = 216,
    n_steps: int = 2,
    seed: int = 7,
) -> IsoInstance:
    """A deferred tiny mini-NAMD run (Charm layer over Converse)."""
    from ..charm import Charm
    from ..namd.charm_app import NamdCharm
    from ..namd.system import build_system

    charm = Charm(
        RunConfig(nnodes=2, workers_per_process=2, comm_threads_per_process=1)
    )
    system = build_system(
        n_atoms, temperature=0.003, bond_fraction=0.0, seed=seed
    )
    app = NamdCharm(
        charm, system, n_steps=n_steps, pme_every=1, use_m2m_pme=use_m2m_pme,
        dt=0.004,
    )
    for p in app.patches.indices:
        charm.seed(app.patches, p, "start")

    def result() -> Dict[str, object]:
        return {
            "steps": [repr(t) for t, _ in app.step_log],
            "kinetic": [repr(ke) for _, ke in app.step_log],
        }

    return IsoInstance(name, charm.env, charm.start, charm.runtime.stop,
                       charm.done, result)


def gate_workloads(scale: str = "full") -> List[Tuple[str, Callable[[], IsoInstance]]]:
    """(name, builder) pairs; each call to a builder is a fresh instance."""
    trips = 6 if scale == "tiny" else 8
    workloads: List[Tuple[str, Callable[[], IsoInstance]]] = [
        (
            "pingpong/non-SMP/512B",
            lambda: build_pingpong_instance(
                "pingpong/non-SMP/512B",
                RunConfig(nnodes=2, processes_per_node=1, workers_per_process=1),
                512, trips=trips,
            ),
        ),
        (
            "pingpong/SMP/2048B",
            lambda: build_pingpong_instance(
                "pingpong/SMP/2048B",
                RunConfig(nnodes=2, workers_per_process=4),
                2048, trips=trips,
            ),
        ),
        (
            "pingpong/SMP+ct/16B",
            lambda: build_pingpong_instance(
                "pingpong/SMP+ct/16B",
                RunConfig(
                    nnodes=2, workers_per_process=4, comm_threads_per_process=1
                ),
                16, trips=trips,
            ),
        ),
        (
            "pingpong/intranode-SMP/128B",
            lambda: build_pingpong_instance(
                "pingpong/intranode-SMP/128B",
                RunConfig(nnodes=1, workers_per_process=4),
                128, dst_rank=3, trips=trips,
            ),
        ),
    ]
    if scale == "full":
        workloads += [
            (
                "namd/std-PME",
                lambda: build_namd_instance("namd/std-PME", use_m2m_pme=False),
            ),
            (
                "namd/m2m-PME",
                lambda: build_namd_instance("namd/m2m-PME", use_m2m_pme=True),
            ),
        ]
    return workloads


def run_solo(build: Callable[[], IsoInstance]) -> Tuple[str, str]:
    """Run one workload alone via the normal run path; return (name, checksum)."""
    inst = build()
    inst.start()
    inst.env.run(until=inst.done)
    inst.stop()
    return inst.name, inst.checksum()


def run_interleaved(
    builders: Sequence[Callable[[], IsoInstance]],
    strides: Sequence[int] = STRIDES,
) -> Dict[str, str]:
    """Build every workload fresh, step them round-robin, return checksums.

    Each instance stops exactly when its done event is processed — the
    same stopping point as ``env.run(until=done)`` — so a checksum can
    differ from the solo run only through cross-instance interference.
    """
    instances = [build() for build in builders]
    for inst in instances:
        inst.start()
    active = list(range(len(instances)))
    turn = 0
    while active:
        still: List[int] = []
        for i in active:
            inst = instances[i]
            for _ in range(strides[(turn + i) % len(strides)]):
                if inst.done.processed:
                    break
                if inst.env.peek() == float("inf"):
                    raise RuntimeError(
                        f"{inst.name}: event queue drained before the done "
                        "event was processed"
                    )
                inst.env.step()
            if not inst.done.processed:
                still.append(i)
        active = still
        turn += 1
    for inst in instances:
        inst.stop()
    return {inst.name: inst.checksum() for inst in instances}


def isolation_gate(scale: str = "full", verbose: bool = True) -> Dict[str, dict]:
    """Solo pass, then fresh interleaved pass; compare checksums.

    Returns ``{name: {"solo": cs, "interleaved": cs, "ok": bool}}``.
    """
    workloads = gate_workloads(scale)
    solo: Dict[str, str] = {}
    for name, build in workloads:
        _, cs = run_solo(build)
        solo[name] = cs
        if verbose:
            print(f"iso-gate: solo        {name:32s} {cs}")
    inter = run_interleaved([build for _, build in workloads])
    report: Dict[str, dict] = {}
    for name, _ in workloads:
        ok = solo[name] == inter[name]
        report[name] = {
            "solo": solo[name], "interleaved": inter[name], "ok": ok,
        }
        if verbose:
            verdict = "identical" if ok else "DIVERGED"
            print(
                f"iso-gate: interleaved {name:32s} {inter[name]}  {verdict}"
            )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.isogate",
        description="concurrent-Environment isolation gate: N interleaved "
        "instances must checksum bit-identically to solo runs",
    )
    parser.add_argument(
        "--scale", choices=("tiny", "full"), default="full",
        help="tiny = 4 ping-pong instances; full adds 2 mini-NAMD runs",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="write the per-instance checksum report to this file",
    )
    args = parser.parse_args(argv)

    report = isolation_gate(scale=args.scale)
    if args.json_out is not None:
        from ..ioutil import atomic_write_text

        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.json_out, json.dumps(report, indent=2) + "\n")
    bad = sorted(name for name, rec in report.items() if not rec["ok"])
    if bad:
        print(
            f"iso-gate: FAIL — {len(bad)} instance(s) diverged under "
            f"interleaving: {', '.join(bad)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"iso-gate: PASS ({len(report)} concurrent Environments, "
        "interleaved checksums bit-identical to solo)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
