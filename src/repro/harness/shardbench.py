"""Sharded-engine benchmark builders and the equivalence gate core.

This module turns the gated single-process benchmarks (pingpong,
fig3_m2m, fig10_window — see :mod:`repro.harness.benchgate`) into
SPMD sharded runs: every shard constructs an identical mirror of the
application (same seeds, same construction order, same handler ids)
over a :class:`~repro.bgq.shardnet.ShardedBGQMachine` that builds only
its own block of nodes, and a :class:`~repro.sim.shard.ShardCoordinator`
advances the shard environments in conservative lockstep windows.

The point of the exercise is **bit-identical simulated time**: a
sharded run must produce exactly the ``sim_times`` observables of the
serial engine — same final clock ``repr``, same per-step boundaries —
for shards ∈ {1, 2, 4}.  :func:`shard_equivalence_gate` checks exactly
that; ``make shard-gate`` is the entry point and docs/SCALING.md the
handbook.

SPMD mirror rules (violating any of these diverges the trajectory —
see docs/SCALING.md, "Determinism"):

* construct the application identically on every shard (same RNG
  seeds, same array/construction order);
* pre-register every entry method in one fixed order right after
  construction (:meth:`repro.charm.runtime.Charm.register_entries`) —
  handler ids ride inside payloads across shards;
* seed through :meth:`Charm.seed` (it skips remote PEs but still
  allocates handler ids);
* never read another shard's state outside the window barrier.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..bgq.shardnet import ReservationFabric, ShardClient, ShardedBGQMachine
from ..converse import ConverseRuntime, RunConfig
from ..converse.messages import ConverseMessage
from ..sim.shard import ShardCoordinator, ShardEnvironment, run_sharded_subprocesses

__all__ = [
    "NAMD_ENTRY_METHODS",
    "run_sharded_pingpong",
    "run_sharded_namd",
    "sharded_bench_pingpong",
    "sharded_bench_fig3_m2m",
    "sharded_bench_fig10_window",
    "shard_equivalence_gate",
    "SHARD_GATE_SHARD_COUNTS",
]

#: Every entry method mini-NAMD (incl. its embedded FFT service) sends;
#: pre-registered in this order on every shard mirror so the lazily
#: allocated handler ids agree across shards.
NAMD_ENTRY_METHODS: Tuple[str, ...] = (
    "start",
    "take_positions",
    "add_force",
    "deposit",
    "pme_slab",
    "begin",
    "recv_block",
    "phase_done",
)

#: Shard counts the equivalence gate compares against the serial engine.
SHARD_GATE_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4)


class _Shard:
    """One shard mirror of a benchmark (env + runtime + result hooks)."""

    def __init__(self, env, runtime, done, result_fn) -> None:
        self.env = env
        self.runtime = runtime
        self.done = done
        self.result_fn = result_fn


# ---------------------------------------------------------------------------
# pingpong
# ---------------------------------------------------------------------------

def _build_pingpong_shard(
    shard_id: int,
    nshards: int,
    config: RunConfig,
    nbytes: int,
    trips: int,
    src_rank: int,
    dst_rank: int,
    fabric: Optional[ReservationFabric],
) -> _Shard:
    """One shard mirror of :func:`repro.harness.pingpong.pingpong_run`.

    Mirrors the serial builder exactly: same handler registration order
    (pong, then ping), same seed message.  Only the shard owning
    ``src_rank`` seeds and owns the ``done`` event; the handlers only
    ever execute on the shards owning their PEs.
    """
    env = ShardEnvironment(shard_id)
    machine = ShardedBGQMachine(env, config.nnodes, shard_id, nshards, fabric=fabric)
    rt = ConverseRuntime(env, config, machine=machine)
    rtts: List[float] = []
    done = env.event()
    state = {"t0": 0.0, "trip": 0}

    def pong(pe, msg):
        yield from pe.send(src_rank, hid_ping, nbytes, None)

    def ping(pe, msg):
        now = env.now
        if state["trip"] > 0:
            rtts.append(now - state["t0"])
        if state["trip"] >= trips:
            done.succeed()
            return
        state["t0"] = now
        state["trip"] += 1
        yield from pe.send(dst_rank, hid_pong, nbytes, None)

    hid_pong = rt.register_handler(pong)
    hid_ping = rt.register_handler(ping)
    src_pe = rt.pes[src_rank]
    if src_pe is not None:
        src_pe.local_q.append(
            ConverseMessage(hid_ping, 0, None, src_rank, src_rank)
        )
    rt.start()

    def result() -> Dict[str, Any]:
        rt.stop()
        return {
            "sim_time": env.now,
            "rtts": list(rtts),
            "events": env.events_executed,
        }

    return _Shard(env, rt, done, result)


def run_sharded_pingpong(
    config: RunConfig,
    nbytes: int,
    nshards: int,
    trips: int = 8,
    src_rank: int = 0,
    dst_rank: Optional[int] = None,
    transport: str = "inproc",
) -> Dict[str, Any]:
    """Sharded ping-pong; returns serial-compatible run statistics.

    ``transport="inproc"`` runs all shards in this process under a
    :class:`ShardCoordinator`; ``"mp"`` forks one OS process per shard
    (eager/MEMFIFO traffic only — which ping-pong is).
    """
    if dst_rank is None:
        dst_rank = (config.nnodes - 1) * config.pes_per_node  # first PE, last node
    if transport == "inproc":
        fabric = ReservationFabric(config.nnodes, nshards)
        shards = [
            _build_pingpong_shard(
                sid, nshards, config, nbytes, trips, src_rank, dst_rank, fabric
            )
            for sid in range(nshards)
        ]
        coordinator = ShardCoordinator(
            [s.env for s in shards], fabric.window, fabric
        )
        t0 = time.perf_counter()
        coordinator.run(shards[0].done)
        wall_s = time.perf_counter() - t0
        per_shard = {s.env.shard_id: s.result_fn() for s in shards}
    elif transport == "mp":
        fabric = ReservationFabric(config.nnodes, nshards)

        def build_client(shard_id: int, nshards_: int) -> ShardClient:
            shard = _build_pingpong_shard(
                shard_id, nshards_, config, nbytes, trips, src_rank, dst_rank,
                fabric=None,
            )
            return ShardClient(
                shard.env,
                shard.runtime.machine,
                done=shard.done if shard_id == 0 else None,
                result_fn=shard.result_fn,
            )

        t0 = time.perf_counter()
        per_shard = run_sharded_subprocesses(
            nshards, fabric.window, build_client, fabric
        )
        wall_s = time.perf_counter() - t0
    else:
        raise ValueError(f"unknown transport {transport!r}")

    root = per_shard[0]
    return {
        "sim_time": root["sim_time"],
        "rtts": root["rtts"],
        "events": sum(r["events"] for r in per_shard.values()),
        "wall_s": wall_s,
        "nshards": nshards,
        "transport": transport,
    }


# ---------------------------------------------------------------------------
# mini-NAMD (fig3_m2m / fig10_window)
# ---------------------------------------------------------------------------

def _build_namd_shard(
    shard_id: int,
    nshards: int,
    fabric: Optional[ReservationFabric],
    use_m2m_pme: bool,
    n_steps: int,
    n_atoms: int,
    nnodes: int,
    workers: int,
    comm_threads: int,
    seed: int,
) -> _Shard:
    """One SPMD mirror of :func:`repro.harness.benchgate._namd_run`.

    Every shard builds the identical system (same ``seed``) and Charm
    application; entry methods are pre-registered in fixed order; seeds
    land only on owning shards.  Requires the in-process transport:
    the m2m slot back-channel and PME rendezvous flows carry object
    references across shards.
    """
    from ..charm import Charm
    from ..namd.charm_app import NamdCharm
    from ..namd.system import APOA1, build_system

    spec = dataclasses.replace(APOA1, cutoff=7.5)
    system = build_system(
        n_atoms, spec_like=spec, temperature=0.003, bond_fraction=0.0, seed=seed
    )
    config = RunConfig(
        nnodes=nnodes,
        workers_per_process=workers,
        comm_threads_per_process=comm_threads,
    )
    env = ShardEnvironment(shard_id)
    machine = ShardedBGQMachine(env, nnodes, shard_id, nshards, fabric=fabric)
    charm = Charm(config, env=env, machine=machine)
    app = NamdCharm(
        charm, system, n_steps=n_steps, pme_every=1, use_m2m_pme=use_m2m_pme,
        dt=0.004,
    )
    charm.register_entries(NAMD_ENTRY_METHODS)
    for p in range(app.patch_grid.n_patches):
        charm.seed(app.patches, p, "start")
    charm.start()

    def result() -> Dict[str, Any]:
        charm.runtime.stop()
        return {
            "sim_time": env.now,
            "events": env.events_executed,
            "step_times": tuple(t for t, _ in app.step_log),
        }

    return _Shard(env, charm.runtime, charm.done, result)


def run_sharded_namd(
    use_m2m_pme: bool,
    n_steps: int,
    n_atoms: int,
    nnodes: int,
    workers: int,
    comm_threads: int,
    nshards: int,
    seed: int = 17,
) -> Dict[str, Any]:
    """Sharded mini-NAMD run (in-process transport); serial-compatible
    statistics from the root shard (rank 0 hosts both reduction roots)."""
    fabric = ReservationFabric(nnodes, nshards)
    shards = [
        _build_namd_shard(
            sid, nshards, fabric, use_m2m_pme, n_steps, n_atoms, nnodes,
            workers, comm_threads, seed,
        )
        for sid in range(nshards)
    ]
    coordinator = ShardCoordinator([s.env for s in shards], fabric.window, fabric)
    t0 = time.perf_counter()
    coordinator.run(shards[0].done)
    wall_s = time.perf_counter() - t0
    per_shard = {s.env.shard_id: s.result_fn() for s in shards}
    root = per_shard[0]
    return {
        "sim_time": root["sim_time"],
        "step_times": root["step_times"],
        "events": sum(r["events"] for r in per_shard.values()),
        "wall_s": wall_s,
        "nshards": nshards,
        "windows": coordinator.windows_run,
    }


# ---------------------------------------------------------------------------
# benchmark records (benchgate-compatible sim_times dicts)
# ---------------------------------------------------------------------------

def sharded_bench_pingpong(
    nnodes: int, nshards: int, nbytes: int = 512, trips: int = 8,
    transport: str = "inproc",
) -> Dict[str, Any]:
    """Benchgate-style record for a sharded ping-pong across the torus."""
    run = run_sharded_pingpong(
        RunConfig(nnodes=nnodes, workers_per_process=4), nbytes,
        nshards, trips=trips, transport=transport,
    )
    return {
        "wall_s": run["wall_s"],
        "events": run["events"],
        "sim_times": {
            "final": repr(run["sim_time"]),
            "rtt_sum": repr(float(sum(run["rtts"]))),
        },
        "nshards": nshards,
    }


def sharded_bench_fig3_m2m(
    nnodes: int, nshards: int, n_steps: int = 3, n_atoms: int = 1372,
    workers: int = 2, comm_threads: int = 2,
) -> Dict[str, Any]:
    """Benchgate-style record for the sharded Fig. 3 m2m PME run."""
    run = run_sharded_namd(
        True, n_steps, n_atoms, nnodes, workers, comm_threads, nshards
    )
    sim_times = {"final": repr(run["sim_time"])}
    for i, t in enumerate(run["step_times"]):
        sim_times[f"step{i}"] = repr(t)
    return {
        "wall_s": run["wall_s"],
        "events": run["events"],
        "sim_times": sim_times,
        "nshards": nshards,
    }


def sharded_bench_fig10_window(
    nnodes: int, nshards: int, n_steps: int = 4, n_atoms: int = 1372,
    workers: int = 2, comm_threads: int = 1,
) -> Dict[str, Any]:
    """Benchgate-style record for the sharded Fig. 10 window experiment."""
    std = run_sharded_namd(
        False, n_steps, n_atoms, nnodes, workers, comm_threads, nshards
    )
    m2m = run_sharded_namd(
        True, n_steps, n_atoms, nnodes, workers, comm_threads, nshards
    )
    window = std["sim_time"] * 0.75
    sim_times = {
        "final_std": repr(std["sim_time"]),
        "final_m2m": repr(m2m["sim_time"]),
        "steps_in_window_std": repr(
            sum(1 for t in std["step_times"] if t <= window)
        ),
        "steps_in_window_m2m": repr(
            sum(1 for t in m2m["step_times"] if t <= window)
        ),
    }
    return {
        "wall_s": std["wall_s"] + m2m["wall_s"],
        "events": std["events"] + m2m["events"],
        "sim_times": sim_times,
        "nshards": nshards,
    }


# ---------------------------------------------------------------------------
# the equivalence gate
# ---------------------------------------------------------------------------

def _serial_pingpong_sim_times(nnodes: int, nbytes: int, trips: int) -> Dict[str, str]:
    from .pingpong import pingpong_run

    config = RunConfig(nnodes=nnodes, workers_per_process=4)
    run = pingpong_run(
        config, nbytes, dst_rank=(nnodes - 1) * config.pes_per_node,
        trips=trips,
    )
    return {
        "final": repr(run["sim_time"]),
        "rtt_sum": repr(float(sum(run["rtts"]))),
    }


def _serial_fig3_sim_times(
    nnodes: int, n_steps: int, n_atoms: int, workers: int, comm_threads: int
) -> Dict[str, str]:
    from .benchgate import _namd_run

    run = _namd_run(True, n_steps, n_atoms, nnodes, workers, comm_threads)
    sim_times = {"final": repr(run["sim_time"])}
    for i, t in enumerate(run["step_times"]):
        sim_times[f"step{i}"] = repr(t)
    return sim_times


def _serial_fig10_sim_times(
    nnodes: int, n_steps: int, n_atoms: int, workers: int, comm_threads: int
) -> Dict[str, str]:
    from .benchgate import _namd_run

    std = _namd_run(False, n_steps, n_atoms, nnodes, workers, comm_threads)
    m2m = _namd_run(True, n_steps, n_atoms, nnodes, workers, comm_threads)
    window = std["sim_time"] * 0.75
    return {
        "final_std": repr(std["sim_time"]),
        "final_m2m": repr(m2m["sim_time"]),
        "steps_in_window_std": repr(
            sum(1 for t in std["step_times"] if t <= window)
        ),
        "steps_in_window_m2m": repr(
            sum(1 for t in m2m["step_times"] if t <= window)
        ),
    }


def shard_equivalence_gate(
    scale: str = "full", shard_counts: Tuple[int, ...] = SHARD_GATE_SHARD_COUNTS
) -> Tuple[List[str], List[str]]:
    """Serial-vs-sharded bit-identity over the three gated benchmarks.

    For each benchmark, runs the serial engine once, then the sharded
    engine at every shard count (shards=1 exercises the full sharded
    machinery — buffered reservations, window barriers — and must
    still match).  Any differing ``repr`` of any simulated-time
    observable is a failure.  Returns ``(failures, notes)``.
    """
    if scale == "tiny":
        pp = dict(nnodes=4, nbytes=512, trips=4)
        f3 = dict(nnodes=4, n_steps=1, n_atoms=256, workers=1, comm_threads=1)
        f10 = dict(nnodes=4, n_steps=1, n_atoms=256, workers=1, comm_threads=1)
    else:
        pp = dict(nnodes=4, nbytes=512, trips=200)
        f3 = dict(nnodes=4, n_steps=2, n_atoms=512, workers=2, comm_threads=2)
        f10 = dict(nnodes=4, n_steps=2, n_atoms=512, workers=2, comm_threads=1)

    failures: List[str] = []
    notes: List[str] = []

    def check(name: str, serial: Dict[str, str], sharded_fn: Callable[[int], dict]) -> None:
        for nshards in shard_counts:
            rec = sharded_fn(nshards)
            got = rec["sim_times"]
            if got == serial:
                notes.append(
                    f"{name} shards={nshards}: identical "
                    f"({len(serial)} observables, final={serial['final' if 'final' in serial else sorted(serial)[0]]})"
                )
            else:
                drift = [
                    k
                    for k in sorted(set(serial) | set(got))
                    if serial.get(k) != got.get(k)
                ]
                failures.append(
                    f"{name} shards={nshards}: simulated-time drift vs serial "
                    f"— diverging observables: {', '.join(drift)} "
                    f"(e.g. {drift[0]}: serial={serial.get(drift[0])!r} "
                    f"sharded={got.get(drift[0])!r})"
                )

    check(
        "pingpong",
        _serial_pingpong_sim_times(pp["nnodes"], pp["nbytes"], pp["trips"]),
        lambda n: sharded_bench_pingpong(
            pp["nnodes"], n, nbytes=pp["nbytes"], trips=pp["trips"]
        ),
    )
    check(
        "fig3_m2m",
        _serial_fig3_sim_times(**f3),
        lambda n: sharded_bench_fig3_m2m(
            f3["nnodes"], n, n_steps=f3["n_steps"], n_atoms=f3["n_atoms"],
            workers=f3["workers"], comm_threads=f3["comm_threads"],
        ),
    )
    check(
        "fig10_window",
        _serial_fig10_sim_times(**f10),
        lambda n: sharded_bench_fig10_window(
            f10["nnodes"], n, n_steps=f10["n_steps"], n_atoms=f10["n_atoms"],
            workers=f10["workers"], comm_threads=f10["comm_threads"],
        ),
    )
    # The subprocess transport must agree too; one representative
    # config (pingpong is the MEMFIFO-only benchmark it supports).
    serial = _serial_pingpong_sim_times(pp["nnodes"], pp["nbytes"], pp["trips"])
    try:
        rec = sharded_bench_pingpong(
            pp["nnodes"], 2, nbytes=pp["nbytes"], trips=pp["trips"],
            transport="mp",
        )
    except (ImportError, OSError, PermissionError) as exc:
        notes.append(f"pingpong mp-transport: skipped ({exc})")
    else:
        if rec["sim_times"] == serial:
            notes.append("pingpong mp-transport shards=2: identical")
        else:
            failures.append(
                "pingpong mp-transport shards=2: simulated-time drift vs serial"
            )
    return failures, notes
