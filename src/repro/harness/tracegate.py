"""The trace-diff regression gate: ``python -m repro.harness.tracegate``.

Runs the small traced configurations behind the paper's trace figures
(Fig. 3 standard-vs-m2m PME, Fig. 9 comm-thread profile), exports
their artifacts to ``benchmarks/output/`` and diffs each fresh
manifest against the committed baseline in ``benchmarks/baselines/``
with :func:`repro.trace.diff.diff_manifests`.

This is to trace-shaped behavior what ``benchgate`` is to throughput:
the DES is deterministic, so a counter, a utilization fraction or the
critical-path length moving outside tolerance means a code change
altered the simulated machine's behavior — either intentionally
(re-run with ``--write-baselines`` and commit the new baselines) or as
a regression the gate just caught.

Exit status: 0 when every configuration is within tolerance, 1 on any
violation, 2 when baselines are missing (first run).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List

from ..trace.diff import diff_manifests, format_diff, load_manifest

__all__ = ["GATE_CONFIGS", "run_gate_config", "main"]

#: The gate's traced configurations — miniature versions of the runs
#: behind the trace figures, sized to keep the whole gate under ~1 min.
GATE_CONFIGS = tuple([
    {
        "name": "gate_fig3_std",
        "label": "gate fig3 standard PME",
        "kwargs": dict(n_atoms=256, nnodes=2, workers=2, comm_threads=1,
                       pme_every=1, use_m2m_pme=False, n_steps=3, seed=11),
    },
    {
        "name": "gate_fig3_m2m",
        "label": "gate fig3 m2m PME",
        "kwargs": dict(n_atoms=256, nnodes=2, workers=2, comm_threads=1,
                       pme_every=1, use_m2m_pme=True, n_steps=3, seed=11),
    },
    {
        "name": "gate_fig9_ct",
        "label": "gate fig9 comm threads",
        "kwargs": dict(n_atoms=256, nnodes=2, workers=4, comm_threads=2,
                       pme_every=2, use_m2m_pme=False, n_steps=3, seed=11),
    },
])


def run_gate_config(cfg: Dict, outdir: pathlib.Path) -> str:
    """Run one gate configuration; returns the fresh manifest path."""
    from .timelines import export_trace_artifacts, run_traced_namd

    result = run_traced_namd(cfg["label"], **cfg["kwargs"])
    paths = export_trace_artifacts(result, outdir, cfg["name"])
    return paths["manifest"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.tracegate",
        description="Trace-diff regression gate over the figure configurations.",
    )
    parser.add_argument(
        "--baselines", default="benchmarks/baselines",
        help="directory of committed baseline manifests",
    )
    parser.add_argument(
        "--output", default="benchmarks/output",
        help="directory for fresh artifacts",
    )
    parser.add_argument(
        "--write-baselines", action="store_true",
        help="record the fresh manifests as the new baselines and exit",
    )
    parser.add_argument("--rel-tol", type=float, default=0.10)
    parser.add_argument("--util-tol", type=float, default=0.05)
    parser.add_argument("--critpath-tol", type=float, default=0.10)
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    basedir = pathlib.Path(args.baselines)
    outdir = pathlib.Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)

    results: List[Dict] = []
    missing: List[str] = []
    failed = False
    for cfg in GATE_CONFIGS:
        fresh_path = run_gate_config(cfg, outdir)
        base_path = basedir / f"{cfg['name']}.manifest.json"
        if args.write_baselines:
            from ..ioutil import atomic_write_text

            basedir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(base_path, pathlib.Path(fresh_path).read_text())
            print(f"wrote baseline {base_path}")
            continue
        if not base_path.is_file():
            missing.append(str(base_path))
            continue
        result = diff_manifests(
            load_manifest(str(base_path)),
            load_manifest(fresh_path),
            rel_tol=args.rel_tol,
            util_tol=args.util_tol,
            critpath_tol=args.critpath_tol,
        )
        result["config"] = cfg["name"]
        results.append(result)
        if not result["ok"]:
            failed = True
        if args.format == "text":
            print(f"[{cfg['name']}]")
            print(format_diff(result))
            print()

    if args.write_baselines:
        return 0
    if missing:
        print("missing baselines (run with --write-baselines and commit):",
              file=sys.stderr)
        for p in missing:
            print(f"  {p}", file=sys.stderr)
        return 2
    if args.format == "json":
        json.dump({"ok": not failed, "results": results}, sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        print("trace-gate: FAILED" if failed else "trace-gate: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
