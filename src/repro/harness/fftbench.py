"""3D FFT benchmark harness (Table I).

Two engines, cross-validated where they overlap:

* **DES** — the full runtime stack executing the pencil FFT with real
  numpy transforms on up to a few dozen simulated nodes;
* **analytic model** — the same mechanisms extended to the paper's
  64-1024-node cells (:mod:`repro.perfmodel.fftmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bgq.params import CYCLES_PER_US
from ..charm import Charm
from ..converse import RunConfig
from ..fft import FFT3D
from ..perfmodel import PAPER_TABLE1, fft_step_time
from .report import format_table

__all__ = ["des_fft_step_us", "table1_model", "table1_report", "des_vs_model"]


def des_fft_step_us(
    n: int,
    nnodes: int,
    use_m2m: bool,
    workers: int = 2,
    comm_threads: int = 1,
    iterations: int = 3,
) -> float:
    """Measure one fwd+bwd FFT step on the DES (microseconds)."""
    charm = Charm(
        RunConfig(
            nnodes=nnodes,
            workers_per_process=workers,
            comm_threads_per_process=comm_threads,
        )
    )
    driver = FFT3D(
        charm, n, nchares=nnodes * workers, use_m2m=use_m2m, iterations=iterations
    )
    result = driver.run()
    return result.mean_step_time / CYCLES_PER_US


def table1_model() -> Dict[int, Dict[int, Tuple[float, float]]]:
    """Model predictions for every Table I cell (microseconds)."""
    out: Dict[int, Dict[int, Tuple[float, float]]] = {}
    for n, rows in PAPER_TABLE1.items():
        out[n] = {}
        for nodes in rows:
            out[n][nodes] = (
                fft_step_time(n, nodes, "p2p") * 1e6,
                fft_step_time(n, nodes, "m2m") * 1e6,
            )
    return out


def table1_report() -> str:
    """Paper-vs-model table for every Table I cell."""
    model = table1_model()
    rows: List[List] = []
    for n in sorted(PAPER_TABLE1, reverse=True):
        for nodes in sorted(PAPER_TABLE1[n]):
            pp, pm = PAPER_TABLE1[n][nodes]
            mp, mm = model[n][nodes]
            rows.append(
                [
                    f"{n}^3",
                    nodes,
                    pp,
                    round(mp),
                    f"{mp / pp:.2f}x",
                    pm,
                    round(mm),
                    f"{mm / pm:.2f}x",
                    f"{pp / pm:.2f}",
                    f"{mp / mm:.2f}",
                ]
            )
    return format_table(
        [
            "grid",
            "nodes",
            "p2p paper",
            "p2p model",
            "p2p m/p",
            "m2m paper",
            "m2m model",
            "m2m m/p",
            "speedup paper",
            "speedup model",
        ],
        rows,
        title="Table I: fwd+bwd 3D FFT step (us)",
    )


def des_vs_model(
    n: int = 16, nnodes: int = 8, iterations: int = 3
) -> Dict[str, Dict[str, float]]:
    """Cross-validation: DES vs analytic model on an overlapping cell.

    Absolute agreement is not expected (the model's constants target the
    paper's scale); the *m2m speedup ratio* is the validated quantity.
    """
    out: Dict[str, Dict[str, float]] = {"des": {}, "model": {}}
    for mode in ("p2p", "m2m"):
        out["des"][mode] = des_fft_step_us(
            n, nnodes, use_m2m=(mode == "m2m"), workers=1, comm_threads=1,
            iterations=iterations,
        )
        out["model"][mode] = fft_step_time(n, nnodes, mode) * 1e6
    out["des"]["speedup"] = out["des"]["p2p"] / out["des"]["m2m"]
    out["model"]["speedup"] = out["model"]["p2p"] / out["model"]["m2m"]
    return out
