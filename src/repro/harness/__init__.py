"""Benchmark harness: one driver per table/figure of the paper."""

from .allocbench import AllocBenchResult, fig6_allocator, run_alloc_bench
from .benchgate import (
    GATE_BENCHMARKS,
    bench_fig3_m2m,
    bench_fig10_window,
    bench_pingpong,
    compare_records,
    run_gate,
)
from .fftbench import des_fft_step_us, des_vs_model, table1_model, table1_report
from .isogate import IsoInstance, isolation_gate, run_interleaved, run_solo
from .namdbench import (
    PAPER_TABLE2,
    apoa1_pme_every_step,
    fig7_configurations,
    fig8_l2_atomics,
    fig11_bgp_vs_bgq,
    fig12_stmv20m,
    qpx_serial_speedup,
    smt_thread_speedup_des,
    table2_stmv100m,
)
from .pingpong import (
    FIG4_MODES,
    FIG4_SIZES,
    fig4_internode,
    fig5_intranode,
    pingpong_oneway_us,
    pingpong_run,
)
from .report import banner, format_comparison, format_manifest, format_table
from .timelines import (
    TraceResult,
    export_trace_artifacts,
    fig3_pme_timeline,
    fig9_commthread_profile,
    fig10_pme_window,
    run_traced_namd,
)

__all__ = [
    "AllocBenchResult",
    "FIG4_MODES",
    "FIG4_SIZES",
    "GATE_BENCHMARKS",
    "IsoInstance",
    "PAPER_TABLE2",
    "TraceResult",
    "bench_fig3_m2m",
    "bench_fig10_window",
    "bench_pingpong",
    "compare_records",
    "run_gate",
    "apoa1_pme_every_step",
    "banner",
    "des_fft_step_us",
    "des_vs_model",
    "export_trace_artifacts",
    "fig10_pme_window",
    "fig11_bgp_vs_bgq",
    "fig12_stmv20m",
    "fig3_pme_timeline",
    "fig4_internode",
    "fig5_intranode",
    "fig6_allocator",
    "fig7_configurations",
    "fig8_l2_atomics",
    "fig9_commthread_profile",
    "format_comparison",
    "format_manifest",
    "format_table",
    "pingpong_oneway_us",
    "pingpong_run",
    "isolation_gate",
    "run_interleaved",
    "run_solo",
    "qpx_serial_speedup",
    "run_alloc_bench",
    "run_traced_namd",
    "smt_thread_speedup_des",
    "table1_model",
    "table1_report",
    "table2_stmv100m",
]
