"""NAMD benchmark harness (Figs. 7, 8, 11, 12; Table II; §IV-B claims).

Large-scale step times come from the analytic model; the QPX/SMT
single-node claims are measured on the DES core model; the per-figure
functions return the exact series the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..bgq import Core
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..namd.forces import nonbonded_instructions_tuned
from ..namd.system import APOA1, STMV100M, STMV20M
from ..perfmodel import (
    FIG7_CONFIGS,
    NamdRunConfig,
    best_config,
    bgp_step_time,
    namd_step_time,
)
from ..sim import Environment
from .report import format_table
from types import MappingProxyType

__all__ = [
    "fig7_configurations",
    "fig8_l2_atomics",
    "fig11_bgp_vs_bgq",
    "fig12_stmv20m",
    "table2_stmv100m",
    "qpx_serial_speedup",
    "smt_thread_speedup_des",
    "PAPER_TABLE2",
]

#: Table II from the paper: nodes -> (cores, ppn, threads, ms/step, speedup).
PAPER_TABLE2 = MappingProxyType({
    2048: (32768, 1, 48, 98.8, 32768),
    4096: (65536, 1, 48, 55.4, 58438),
    8192: (131072, 1, 48, 30.3, 106847),
    16384: (262144, 1, 32, 17.9, 180864),
})

FIG11_NODES = (64, 128, 256, 512, 1024, 2048, 4096)


def fig7_configurations(
    nodes_list: Tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
) -> Dict[str, Dict[int, float]]:
    """ApoA1 step time (us) for the three thread configurations."""
    out: Dict[str, Dict[int, float]] = {}
    for cfg in FIG7_CONFIGS:
        series = {}
        for nodes in nodes_list:
            series[nodes] = namd_step_time(APOA1, nodes, cfg) * 1e6
        out[cfg.label()] = series
    return out


def fig8_l2_atomics(nodes: int = 512) -> Dict[str, Dict[str, float]]:
    """ApoA1 step time (us) with and without L2 atomics, 1 and 2 ppn."""
    out: Dict[str, Dict[str, float]] = {}
    for ppn in (1, 2):
        base = NamdRunConfig(workers=56, comm_threads=8, processes_per_node=ppn)
        ablt = NamdRunConfig(
            workers=56, comm_threads=8, processes_per_node=ppn, l2_atomics=False
        )
        t1 = namd_step_time(APOA1, nodes, base) * 1e6
        t2 = namd_step_time(APOA1, nodes, ablt) * 1e6
        out[f"{ppn}ppn"] = {"l2": t1, "mutex": t2, "speedup": t2 / t1}
    return out


def fig11_bgp_vs_bgq(
    nodes_list: Tuple[int, ...] = FIG11_NODES,
) -> Dict[str, Dict[int, float]]:
    """ApoA1 (PME every 4 steps) scaling: BG/Q best config vs BG/P (us)."""
    bgq, bgq_cfg, bgp = {}, {}, {}
    for nodes in nodes_list:
        cfg, t = best_config(APOA1, nodes)
        bgq[nodes] = t * 1e6
        bgq_cfg[nodes] = cfg.label()
        bgp[nodes] = bgp_step_time(APOA1, nodes) * 1e6
    return {"bgq": bgq, "bgp": bgp, "bgq_config": bgq_cfg}


def apoa1_pme_every_step(nodes: int = 4096) -> float:
    """The paper's second headline: 782 us/step with PME every step."""
    best = None
    for cfg in FIG7_CONFIGS:
        t = namd_step_time(APOA1, nodes, NamdRunConfig(
            workers=cfg.workers, comm_threads=cfg.comm_threads, pme_every=1
        ))
        best = t if best is None else min(best, t)
    return best * 1e6


def fig12_stmv20m(
    nodes_list: Tuple[int, ...] = (1024, 2048, 4096, 8192, 16384),
) -> Dict[int, float]:
    """STMV 20M step time (ms) with m2m PME, PME every 4 steps."""
    out = {}
    for nodes in nodes_list:
        t = namd_step_time(
            STMV20M,
            nodes,
            NamdRunConfig(workers=32, comm_threads=8, nonbonded_every=2),
        )
        out[nodes] = t * 1e3
    return out


def table2_stmv100m() -> str:
    """Paper-vs-model Table II."""
    rows: List[List] = []
    base_t = None
    for nodes, (cores, ppn, threads, paper_ms, paper_speedup) in PAPER_TABLE2.items():
        workers = threads - 8 if threads > 8 else threads
        t = namd_step_time(
            STMV100M,
            nodes,
            NamdRunConfig(workers=workers, comm_threads=8, nonbonded_every=2),
        )
        if base_t is None:
            base_t = t * nodes  # efficiency-1 anchor at 2048 nodes
        model_ms = t * 1e3
        model_speedup = base_t / t / 2048 * 32768
        rows.append(
            [
                nodes,
                cores,
                f"{ppn}x{threads}",
                paper_ms,
                round(model_ms, 1),
                f"{model_ms / paper_ms:.2f}x",
                paper_speedup,
                round(model_speedup),
            ]
        )
    return format_table(
        [
            "nodes",
            "cores",
            "cfg",
            "paper ms",
            "model ms",
            "m/p",
            "paper speedup",
            "model speedup",
        ],
        rows,
        title="Table II: 100M STMV, PME every 4 steps",
    )


# ---------------- single-node DES measurements (§IV-B1) -----------------------

def qpx_serial_speedup() -> float:
    """Serial speedup from QPX + L1P tuning (paper: 15.8%)."""
    return nonbonded_instructions_tuned(10_000, tuned=False) / nonbonded_instructions_tuned(
        10_000, tuned=True
    )


def smt_thread_speedup_des(params: BGQParams = DEFAULT_PARAMS) -> float:
    """4 threads vs 1 on one core, measured on the DES core model
    (paper: 2.3x)."""
    work = 100_000.0

    def run(nthreads: int) -> float:
        env = Environment()
        core = Core(env, params=params)
        for _ in range(nthreads):
            def worker():
                yield from core.compute(work)

            env.process(worker())
        env.run()
        return env.now

    t1 = run(1)
    t4 = run(4)
    return 4 * t1 / t4
