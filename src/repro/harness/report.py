"""Table formatting for paper-vs-reproduced reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_comparison", "banner"]


def banner(title: str, width: int = 72) -> str:
    pad = max(0, width - len(title) - 2)
    return f"{'=' * (pad // 2)} {title} {'=' * (pad - pad // 2)}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Plain aligned text table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(banner(title))
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    ratio_of: Optional[tuple] = None,
) -> str:
    """Table with an extra reproduced/paper ratio column.

    ``ratio_of=(i_paper, i_model)`` appends model/paper for those
    column indices.
    """
    out_rows: List[List] = []
    hdrs = list(headers)
    if ratio_of is not None:
        hdrs.append("model/paper")
    for row in rows:
        row = list(row)
        if ratio_of is not None:
            ip, im = ratio_of
            paper, model = float(row[ip]), float(row[im])
            row.append(f"{model / paper:.2f}x" if paper else "-")
        out_rows.append(row)
    return format_table(hdrs, out_rows, title=title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3g}"
    return str(cell)
