"""Chaos fuzz harness: workloads under seeded fault injection.

Runs the DES workloads — Converse ping-pong, a PAMI many-to-many burst
pattern (the communication shape behind Fig. 3's FFT transposes), an
asynchronous Jacobi / chaotic-relaxation solver, and a JLQCD-style 4D
lattice halo exchange — on a torus that drops, duplicates, delays,
reorders and corrupts packets per a named
:class:`~repro.faults.plan.FaultPlan` profile.

Two gate families, selected by the cell's QoS mode (the matrix's
second axis, :mod:`repro.faults.qos`):

* **exactly-once** (reliable) — every application-level message
  arrives exactly once, bit-identical to what was sent, and the
  quiescence detector fires within a generous horizon;
* **degraded-but-correct** (best_effort / fresh) — messages may be
  lost, but everything that does arrive is bit-exact and causally
  valid (echo prefixes, payload subsets, converged residuals, bounded
  staleness), and the run still quiesces — nothing is ever invented,
  corrupted, or wedged.

The ``partition`` profile (100% loss) is the degradation limit: the
gate there is that the run *quiesces anyway* — reliable senders give
up after the backoff ladder (``gave_up > 0``), best-effort senders
just lose the traffic — instead of hanging the detector forever.

The matrix is ``profiles x seeds x workloads x qos``; one failure
fails the run.  Used by ``make chaos`` (CI runs a small matrix under
``REPRO_SANITIZE=1``) and directly::

    python -m repro.harness.chaosbench --profiles drop5 chaos \
        --qos reliable best_effort --json-out chaos.json

Determinism: a (profile, seed, workload, qos) cell is a bit-exact
trajectory; failures reproduce by rerunning the same cell.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List

from ..bgq.params import CYCLES_PER_US
from ..charm import Charm
from ..converse import CmiDirectManytomany
from ..converse.machine import ConverseRuntime, RunConfig
from ..converse.messages import ConverseMessage
from ..converse.quiescence import QuiescenceDetector
from ..faults import FaultPlan, QOS_BEST_EFFORT, QOS_RELIABLE, parse_qos, qos_name
from ..sim import Environment
from ..workloads import LatticeHalo, build_jacobi
from types import MappingProxyType

__all__ = [
    "run_pingpong_chaos",
    "run_m2m_chaos",
    "run_jacobi_chaos",
    "run_lattice_chaos",
    "run_matrix",
    "main",
]

#: Give-up horizon (cycles): covers a full exponential-backoff ladder
#: (25 us base x 2^12) plus the workload itself.
HORIZON_CYCLES = 600_000_000.0

#: Chaos quiescence polling is coarse (the workloads are long).
QD_POLL_US = 20.0

#: Profiles where loss is total by construction: the gate degrades to
#: "the run still quiesces" (plus give-up accounting for reliable
#: traffic) — payload delivery is impossible, not merely lossy.
DEGRADED_PROFILES = frozenset({"partition"})


def _finish(env, rt, qd, quiesced, workload, plan, qos) -> Dict[str, object]:
    """Drive the run to quiescence (bounded) and collect the verdict."""
    horizon = env.timeout(HORIZON_CYCLES)
    env.run(until=env.any_of([quiesced, horizon]))
    rt.stop()
    rels = [c.reliability for p in rt.processes for c in p.client.contexts]
    rels = [r for r in rels if r is not None]
    return {
        "workload": workload,
        "profile": plan.name,
        "seed": plan.seed,
        "qos": qos_name(qos),
        "quiesced": quiesced.triggered,
        "sim_time": env.now,
        "qd_rounds": qd.rounds,
        "qd_protocol_msgs": qd.protocol_msgs,
        "faults": rt.fault_injector.stats.as_dict() if rt.fault_injector else {},
        "messages_sent": rt.messages_sent,
        "best_effort_sends": rt.best_effort_sends,
        "acks_sent": sum(r.acks_sent for r in rels),
        "retries": sum(r.retries for r in rels),
        "gave_up": sum(r.gave_up for r in rels),
        "dup_suppressed": sum(r.dup_suppressed for r in rels),
        "reordered_accepted": sum(r.reordered_accepted for r in rels),
        "corrupt_dropped": sum(r.corrupt_dropped for r in rels),
        "stale_dropped": sum(r.stale_dropped for r in rels),
        "holes_skipped": sum(r.holes_skipped for r in rels),
        "timers_cancelled": sum(r.timers_cancelled for r in rels),
        "in_flight_left": sum(r.in_flight for r in rels),
    }


def run_pingpong_chaos(
    profile: str,
    seed: int,
    trips: int = 20,
    nbytes: int = 64,
    qos="reliable",
) -> Dict[str, object]:
    """Converse ping-pong across two nodes under a fault profile.

    Each trip carries a payload derived from the trip index.  Reliable:
    the echo must return every payload, in order.  Best-effort: a
    single dropped leg stalls the chain (each trip waits for the prior
    echo), so the gate is *prefix* correctness — whatever echoed back
    is exactly the expected sequence up to the stall — plus quiescence.
    """
    q = parse_qos(qos)
    plan = FaultPlan.profile(profile, seed=seed)
    env = Environment()
    cfg = RunConfig(nnodes=2, workers_per_process=2, fault_plan=plan)
    rt = ConverseRuntime(env, cfg)
    dst_rank = cfg.pes_per_node  # first PE of node 1
    echoes: List[object] = []
    done = env.event()

    def expected_payload(trip: int):
        return ("pingpong", trip, bytes([trip % 251, (trip * 7) % 251]))

    def pong(pe, msg):
        yield from pe.send(0, hid_ping, nbytes, msg.payload, qos=q)

    def ping(pe, msg):
        if msg.payload is not None:
            echoes.append(msg.payload)
        trip = len(echoes)
        if trip >= trips:
            if not done.triggered:
                done.succeed()
            return
        yield from pe.send(dst_rank, hid_pong, nbytes, expected_payload(trip), qos=q)

    hid_pong = rt.register_handler(pong)
    hid_ping = rt.register_handler(ping)
    rt.pes[0].local_q.append(ConverseMessage(hid_ping, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=QD_POLL_US)
    quiesced = qd.start()
    rt.start()
    # A stalled best-effort chain never fires `done`; quiescence is the
    # productive exit (the horizon only backstops a wedged detector).
    env.run(until=env.any_of([done, quiesced, env.timeout(HORIZON_CYCLES)]))
    result = _finish(env, rt, qd, quiesced, "pingpong", plan, q)
    want = [expected_payload(i) for i in range(trips)]
    result["trips_completed"] = len(echoes)
    degraded = profile in DEGRADED_PROFILES
    if q == QOS_RELIABLE and not degraded:
        result["payload_ok"] = done.triggered and echoes == want
        result["ok"] = bool(result["payload_ok"] and result["quiesced"])
    elif q == QOS_BEST_EFFORT:
        # Plain best-effort has no dedup: a duplicated leg forks the
        # chain, so ordering is unspecified — the correctness claim is
        # only that every echo is bit-exact (nothing invented).
        result["payload_ok"] = set(echoes) <= set(want)
        result["ok"] = bool(result["payload_ok"] and result["quiesced"])
    else:
        # FRESH (generation filtering restores exactly-once per trip)
        # and partitioned reliable: every echo that made it is the
        # right one, in order, with no gaps before the stall.
        result["payload_ok"] = echoes == want[: len(echoes)]
        ok = result["payload_ok"] and result["quiesced"]
        if q == QOS_RELIABLE:  # partition: the transport must give up
            ok = ok and result["gave_up"] > 0
        result["ok"] = bool(ok)
    return result


def run_m2m_chaos(
    profile: str,
    seed: int,
    rounds: int = 3,
    fanout: int = 12,
    nbytes: int = 96,
    qos="reliable",
    deadline_us: float = 400.0,
) -> Dict[str, object]:
    """Fig. 3-style many-to-many bursts under a fault profile.

    Two SMP processes (one per node, each with a communication thread)
    exchange ``fanout`` short messages per round through the persistent
    ManyToMany interface — traffic that bypasses the Converse send
    counters entirely, which is exactly the path where a quiescence
    detector ignoring retransmit-pending packets declares victory too
    early.  One handle per (process, round) keeps rounds race-free.

    Reliable: the transport's dedup makes per-round arrival counting
    exact — the full payload multiset must arrive.  Best-effort: each
    round completes at ``deadline_us`` with whatever arrived
    (shortfall accounted); the gate is that every arrival is a
    bit-exact expected payload and the run quiesces.
    """
    q = parse_qos(qos)
    plan = FaultPlan.profile(profile, seed=seed)
    env = Environment()
    cfg = RunConfig(
        nnodes=2,
        workers_per_process=2,
        comm_threads_per_process=1,
        fault_plan=plan,
    )
    rt = ConverseRuntime(env, cfg)
    procs = rt.processes
    received: Dict[int, List[object]] = {0: [], 1: []}
    deadline = None if q == QOS_RELIABLE else deadline_us * CYCLES_PER_US

    def payload_for(src_proc: int, rnd: int, i: int):
        return ("m2m", src_proc, rnd, i, bytes([(src_proc + rnd + i) % 251]))

    handles = {}
    for pi, proc in enumerate(procs):
        peer = procs[1 - pi]
        peer_eps = [c.endpoint for c in peer.contexts]
        for rnd in range(rounds):
            sends = [
                (peer_eps[i % len(peer_eps)], nbytes, payload_for(pi, rnd, i), rnd)
                for i in range(fanout)
            ]
            handles[(pi, rnd)] = proc.m2m.register(
                rnd, sends, expected_recvs=fanout, qos=q, deadline_cycles=deadline
            )

    def make_sink(pi: int):
        def sink(src_endpoint, data):
            received[pi].append(data)

        return sink

    for pi in range(2):
        for rnd in range(rounds):
            handles[(pi, rnd)].on_message = make_sink(pi)

    finished = {"n": 0}
    all_done = env.event()

    def kick(pe, msg):
        proc = pe.process
        pi = procs.index(proc)
        for rnd in range(rounds):
            h = handles[(pi, rnd)]
            yield from proc.m2m.start(pe.thread, h)
            yield h.send_done
            yield h.recv_done
        finished["n"] += 1
        if finished["n"] == 2 and not all_done.triggered:
            all_done.succeed()

    hid_kick = rt.register_handler(kick)
    for pe_rank in (0, cfg.pes_per_node):
        rt.pes[pe_rank].local_q.append(
            ConverseMessage(hid_kick, 0, None, pe_rank, pe_rank)
        )
    qd = QuiescenceDetector(rt, poll_interval_us=QD_POLL_US)
    quiesced = qd.start()
    rt.start()
    # Best-effort rounds are deadline-bounded, so all_done always
    # fires — and quiescence legitimately fires *during* a deadline
    # wait (best-effort traffic is invisible to the detector), so it
    # only belongs in the wait set when reliable rounds can wedge.
    waiters = [all_done, env.timeout(HORIZON_CYCLES)]
    if q == QOS_RELIABLE:
        waiters.append(quiesced)
    env.run(until=env.any_of(waiters))
    result = _finish(env, rt, qd, quiesced, "m2m", plan, q)
    result["shortfall"] = sum(h.shortfall for h in handles.values())
    result["delivered"] = sum(len(v) for v in received.values())
    degraded = profile in DEGRADED_PROFILES
    if q == QOS_RELIABLE and not degraded:
        ok = all_done.triggered
        for pi in range(2):
            want = sorted(
                payload_for(1 - pi, rnd, i)
                for rnd in range(rounds)
                for i in range(fanout)
            )
            ok = ok and sorted(received[pi]) == want
        result["payload_ok"] = ok
        result["ok"] = bool(ok and result["quiesced"])
    elif q == QOS_RELIABLE:
        # Partitioned reliable bursts: rounds can never complete; the
        # gate is give-up-and-quiesce, with nothing delivered invented.
        result["payload_ok"] = not received[0] and not received[1]
        result["ok"] = bool(
            result["payload_ok"] and result["quiesced"] and result["gave_up"] > 0
        )
    else:
        # Best-effort: deadlines bound every round, so the barriers
        # complete even at 100% loss; arrivals must be a subset of the
        # expected payload set (duplicates legal — there is no dedup).
        ok = all_done.triggered
        for pi in range(2):
            want = {
                payload_for(1 - pi, rnd, i)
                for rnd in range(rounds)
                for i in range(fanout)
            }
            ok = ok and set(received[pi]) <= want
        result["payload_ok"] = ok
        result["ok"] = bool(ok and result["quiesced"])
    return result


def run_jacobi_chaos(
    profile: str,
    seed: int,
    ncells: int = 8,
    sweeps: int = 60,
    tol: float = 1.0e-3,
    qos="reliable",
) -> Dict[str, object]:
    """Asynchronous Jacobi under a fault profile (degraded-but-correct).

    Chaotic relaxation converges as long as every cell keeps sweeping
    and halos are eventually refreshed, so under every lossy profile —
    any QoS mode — the gate is the converged residual against the
    manufactured exact solution.  Under ``partition`` the cross-node
    halo flow (and the reduction's cross-node leg) is severed: the gate
    degrades to "the run still quiesces, with give-ups accounted" (the
    reduction is always reliable, so ``gave_up > 0`` holds in every
    QoS mode).
    """
    q = parse_qos(qos)
    plan = FaultPlan.profile(profile, seed=seed)
    env = Environment()
    # Comm threads are load-bearing: busy worker PEs advance their own
    # PAMI context only when idle, and the self-driven sweep engine is
    # never idle — without comm threads cross-node halos arrive in
    # stale bursts and the async iteration stalls far from the fixed
    # point (the §III SMP-mode point, in miniature).
    cfg = RunConfig(
        nnodes=2,
        workers_per_process=2,
        comm_threads_per_process=1,
        fault_plan=plan,
    )
    charm = Charm(cfg, env=env)
    box = build_jacobi(charm, ncells=ncells, sweeps=sweeps, qos=q)
    qd = QuiescenceDetector(charm.runtime, poll_interval_us=QD_POLL_US)
    quiesced = qd.start()
    charm.start()
    env.run(until=env.any_of([charm.done, quiesced, env.timeout(HORIZON_CYCLES)]))
    result = _finish(env, charm.runtime, qd, quiesced, "jacobi", plan, q)
    result["residual"] = box["residual"]
    result["converged"] = box["residual"] is not None and box["residual"] <= tol
    if profile in DEGRADED_PROFILES:
        result["payload_ok"] = True
        result["ok"] = bool(result["quiesced"] and result["gave_up"] > 0)
    else:
        result["payload_ok"] = result["converged"]
        result["ok"] = bool(result["converged"] and result["quiesced"])
    return result


def run_lattice_chaos(
    profile: str,
    seed: int,
    rounds: int = 4,
    qos="reliable",
    deadline_us: float = 400.0,
) -> Dict[str, object]:
    """4D lattice halo exchange under a fault profile.

    Reliable: every (site, round) update arrives exactly once and the
    round barriers all complete.  Best-effort: rounds complete at the
    deadline; the gate is bit-exact arrivals (nothing invented or
    corrupted), bounded staleness — every peer site heard from at
    least once — and quiescence.  Under ``partition`` staleness is
    total by construction and only the quiesce/give-up gate remains.
    """
    q = parse_qos(qos)
    plan = FaultPlan.profile(profile, seed=seed)
    env = Environment()
    cfg = RunConfig(
        nnodes=2,
        workers_per_process=2,
        comm_threads_per_process=1,
        fault_plan=plan,
    )
    rt = ConverseRuntime(env, cfg)
    cmidirect = CmiDirectManytomany(rt)
    lat = LatticeHalo(
        rt,
        cmidirect,
        rounds=rounds,
        qos=q,
        deadline_cycles=deadline_us * CYCLES_PER_US,
    ).install()
    qd = QuiescenceDetector(rt, poll_interval_us=QD_POLL_US)
    quiesced = qd.start()
    rt.start()
    # Same wait-set rule as run_m2m_chaos: deadline-bounded best-effort
    # rounds always reach all_done; quiesced covers wedged reliable ones.
    waiters = [lat.all_done, env.timeout(HORIZON_CYCLES)]
    if q == QOS_RELIABLE:
        waiters.append(quiesced)
    env.run(until=env.any_of(waiters))
    result = _finish(env, rt, qd, quiesced, "lattice", plan, q)
    staleness = lat.staleness()
    result["shortfall"] = lat.shortfall
    result["distinct_updates"] = lat.distinct_updates()
    result["expected_updates"] = lat.expected_updates
    result["max_staleness"] = max(staleness.values())
    integrity = lat.integrity_ok()
    degraded = profile in DEGRADED_PROFILES
    if q == QOS_RELIABLE and not degraded:
        result["payload_ok"] = (
            integrity and lat.distinct_updates() == lat.expected_updates
        )
        result["ok"] = bool(
            lat.all_done.triggered and result["payload_ok"] and result["quiesced"]
        )
    elif q == QOS_RELIABLE:
        # Partitioned reliable rounds never complete: give up, quiesce.
        result["payload_ok"] = integrity
        result["ok"] = bool(
            integrity and result["quiesced"] and result["gave_up"] > 0
        )
    else:
        result["payload_ok"] = integrity
        ok = lat.all_done.triggered and integrity and result["quiesced"]
        if not degraded:
            # Lossy-but-connected: every peer site must have been heard
            # from at least once across the run.
            ok = ok and result["max_staleness"] < rounds
        result["ok"] = bool(ok)
    return result


_WORKLOADS = MappingProxyType({
    "pingpong": run_pingpong_chaos,
    "m2m": run_m2m_chaos,
    "jacobi": run_jacobi_chaos,
    "lattice": run_lattice_chaos,
})


def run_matrix(
    profiles: List[str],
    seeds: List[int],
    workloads: List[str],
    qos_modes: List[str] = ("reliable",),
    **kwargs,
) -> List[Dict[str, object]]:
    """Run the full chaos matrix; returns one result dict per cell."""
    results = []
    for profile in profiles:
        for seed in seeds:
            for workload in workloads:
                for qos in qos_modes:
                    fn = _WORKLOADS[workload]
                    results.append(
                        fn(profile, seed, qos=qos, **kwargs.get(workload, {}))
                    )
    return results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--profiles", nargs="+", default=["drop5"],
        help="fault profile names (repro.faults.plan.PROFILES)",
    )
    ap.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2])
    ap.add_argument(
        "--workloads", nargs="+", default=["pingpong", "m2m"],
        choices=sorted(_WORKLOADS),
    )
    ap.add_argument(
        "--qos", nargs="+", default=["reliable"],
        metavar="MODE",
        help="delivery modes per cell: reliable / best_effort / fresh",
    )
    ap.add_argument("--trips", type=int, default=20, help="ping-pong trips")
    ap.add_argument("--rounds", type=int, default=3, help="m2m rounds")
    ap.add_argument("--sweeps", type=int, default=60, help="jacobi sweeps")
    ap.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the full result matrix as JSON (CI artifact)",
    )
    args = ap.parse_args(argv)

    kwargs = {
        "pingpong": {"trips": args.trips},
        "m2m": {"rounds": args.rounds},
        "jacobi": {"sweeps": args.sweeps},
    }
    results = run_matrix(
        args.profiles, args.seeds, args.workloads, qos_modes=args.qos, **kwargs
    )
    failures = 0
    for r in results:
        status = "ok" if r["ok"] else "FAIL"
        if not r["ok"]:
            failures += 1
        faults = r["faults"]
        injected = sum(faults.values()) if faults else 0
        print(
            f"[{status}] {r['workload']:<8} profile={r['profile']:<9} "
            f"seed={r['seed']} qos={r['qos']:<11} faults={injected} "
            f"retries={r['retries']} gave_up={r['gave_up']} "
            f"acks={r['acks_sent']} stale={r['stale_dropped']} "
            f"quiesced={r['quiesced']} sim_cycles={r['sim_time']:.0f}"
        )
    total = len(results)
    print(f"chaos: {total - failures}/{total} cells passed")
    if args.json_out:
        summary = {
            "cells": total,
            "passed": total - failures,
            "profiles": args.profiles,
            "seeds": args.seeds,
            "workloads": args.workloads,
            "qos": args.qos,
            "results": [
                {k: v for k, v in r.items() if not isinstance(v, bytes)}
                for r in results
            ],
        }
        from ..ioutil import atomic_write_json

        atomic_write_json(args.json_out, summary, indent=2, default=repr)
        print(f"chaos: matrix summary written to {args.json_out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
