"""Chaos fuzz harness: workloads under seeded fault injection.

Runs the stock DES workloads — Converse ping-pong and a PAMI
many-to-many burst pattern (the communication shape behind Fig. 3's
FFT transposes) — on a torus that drops, duplicates, delays, reorders
and corrupts packets per a named :class:`~repro.faults.plan.FaultPlan`
profile, and asserts the two properties the recovery layer owes the
runtime:

* **payload correctness** — every application-level message arrives
  exactly once, bit-identical to what was sent (checked by comparing
  full sent/received payload multisets);
* **eventual quiescence** — the quiescence detector fires within a
  generous horizon, i.e. the transport drains every retransmit.

The matrix is ``profiles x seeds x workloads``; one failure fails the
run.  Used by ``make chaos`` (CI runs a small matrix under
``REPRO_SANITIZE=1``) and directly::

    python -m repro.harness.chaosbench --profiles drop5 chaos --seeds 0 1 2

Determinism: a (profile, seed, workload) triple is a bit-exact
trajectory; failures reproduce by rerunning the same triple.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from ..converse.machine import ConverseRuntime, RunConfig
from ..converse.messages import ConverseMessage
from ..converse.quiescence import QuiescenceDetector
from ..faults import FaultPlan
from ..sim import Environment

__all__ = ["run_pingpong_chaos", "run_m2m_chaos", "run_matrix", "main"]

#: Give-up horizon (cycles): covers a full exponential-backoff ladder
#: (25 us base x 2^12) plus the workload itself.
HORIZON_CYCLES = 600_000_000.0

#: Chaos quiescence polling is coarse (the workloads are long).
QD_POLL_US = 20.0


def _finish(env, rt, qd, quiesced, workload, plan) -> Dict[str, object]:
    """Drive the run to quiescence (bounded) and collect the verdict."""
    horizon = env.timeout(HORIZON_CYCLES)
    env.run(until=env.any_of([quiesced, horizon]))
    rt.stop()
    rels = [c.reliability for p in rt.processes for c in p.client.contexts]
    rels = [r for r in rels if r is not None]
    return {
        "workload": workload,
        "profile": plan.name,
        "seed": plan.seed,
        "quiesced": quiesced.triggered,
        "sim_time": env.now,
        "qd_rounds": qd.rounds,
        "qd_protocol_msgs": qd.protocol_msgs,
        "faults": rt.fault_injector.stats.as_dict() if rt.fault_injector else {},
        "retries": sum(r.retries for r in rels),
        "gave_up": sum(r.gave_up for r in rels),
        "dup_suppressed": sum(r.dup_suppressed for r in rels),
        "reordered_accepted": sum(r.reordered_accepted for r in rels),
        "corrupt_dropped": sum(r.corrupt_dropped for r in rels),
        "in_flight_left": sum(r.in_flight for r in rels),
    }


def run_pingpong_chaos(
    profile: str,
    seed: int,
    trips: int = 20,
    nbytes: int = 64,
) -> Dict[str, object]:
    """Converse ping-pong across two nodes under a fault profile.

    Each trip carries a payload derived from the trip index; the echo
    must return every payload in order (the Converse level sees
    exactly-once in-order trips because each trip waits for the prior
    echo).  Raises AssertionError on any corruption or lost trip.
    """
    plan = FaultPlan.profile(profile, seed=seed)
    env = Environment()
    cfg = RunConfig(nnodes=2, workers_per_process=2, fault_plan=plan)
    rt = ConverseRuntime(env, cfg)
    dst_rank = cfg.pes_per_node  # first PE of node 1
    echoes: List[object] = []
    done = env.event()

    def expected_payload(trip: int):
        return ("pingpong", trip, bytes([trip % 251, (trip * 7) % 251]))

    def pong(pe, msg):
        yield from pe.send(0, hid_ping, nbytes, msg.payload)

    def ping(pe, msg):
        if msg.payload is not None:
            echoes.append(msg.payload)
        trip = len(echoes)
        if trip >= trips:
            if not done.triggered:
                done.succeed()
            return
        yield from pe.send(dst_rank, hid_pong, nbytes, expected_payload(trip))

    hid_pong = rt.register_handler(pong)
    hid_ping = rt.register_handler(ping)
    rt.pes[0].local_q.append(ConverseMessage(hid_ping, 0, None, 0, 0))
    qd = QuiescenceDetector(rt, poll_interval_us=QD_POLL_US)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([done, env.timeout(HORIZON_CYCLES)]))
    result = _finish(env, rt, qd, quiesced, "pingpong", plan)
    want = [expected_payload(i) for i in range(trips)]
    result["payload_ok"] = done.triggered and echoes == want
    result["ok"] = bool(result["payload_ok"] and result["quiesced"])
    return result


def run_m2m_chaos(
    profile: str,
    seed: int,
    rounds: int = 3,
    fanout: int = 12,
    nbytes: int = 96,
) -> Dict[str, object]:
    """Fig. 3-style many-to-many bursts under a fault profile.

    Two SMP processes (one per node, each with a communication thread)
    exchange ``fanout`` short messages per round through the persistent
    ManyToMany interface — traffic that bypasses the Converse send
    counters entirely, which is exactly the path where a quiescence
    detector ignoring retransmit-pending packets declares victory too
    early.  One handle per (process, round) keeps rounds race-free; the
    transport's dedup makes per-round arrival counting exact.
    """
    plan = FaultPlan.profile(profile, seed=seed)
    env = Environment()
    cfg = RunConfig(
        nnodes=2,
        workers_per_process=2,
        comm_threads_per_process=1,
        fault_plan=plan,
    )
    rt = ConverseRuntime(env, cfg)
    procs = rt.processes
    received: Dict[int, List[object]] = {0: [], 1: []}

    def payload_for(src_proc: int, rnd: int, i: int):
        return ("m2m", src_proc, rnd, i, bytes([(src_proc + rnd + i) % 251]))

    handles = {}
    for pi, proc in enumerate(procs):
        peer = procs[1 - pi]
        peer_eps = [c.endpoint for c in peer.contexts]
        for rnd in range(rounds):
            sends = [
                (peer_eps[i % len(peer_eps)], nbytes, payload_for(pi, rnd, i), rnd)
                for i in range(fanout)
            ]
            handles[(pi, rnd)] = proc.m2m.register(rnd, sends, expected_recvs=fanout)

    def make_sink(pi: int):
        def sink(src_endpoint, data):
            received[pi].append(data)

        return sink

    for pi in range(2):
        for rnd in range(rounds):
            handles[(pi, rnd)].on_message = make_sink(pi)

    finished = {"n": 0}
    all_done = env.event()

    def kick(pe, msg):
        proc = pe.process
        pi = procs.index(proc)
        for rnd in range(rounds):
            h = handles[(pi, rnd)]
            yield from proc.m2m.start(pe.thread, h)
            yield h.send_done
            yield h.recv_done
        finished["n"] += 1
        if finished["n"] == 2 and not all_done.triggered:
            all_done.succeed()

    hid_kick = rt.register_handler(kick)
    for pe_rank in (0, cfg.pes_per_node):
        rt.pes[pe_rank].local_q.append(
            ConverseMessage(hid_kick, 0, None, pe_rank, pe_rank)
        )
    qd = QuiescenceDetector(rt, poll_interval_us=QD_POLL_US)
    quiesced = qd.start()
    rt.start()
    env.run(until=env.any_of([all_done, env.timeout(HORIZON_CYCLES)]))
    result = _finish(env, rt, qd, quiesced, "m2m", plan)
    ok = all_done.triggered
    for pi in range(2):
        want = sorted(
            payload_for(1 - pi, rnd, i) for rnd in range(rounds) for i in range(fanout)
        )
        ok = ok and sorted(received[pi]) == want
    result["payload_ok"] = ok
    result["ok"] = bool(ok and result["quiesced"])
    return result


_WORKLOADS = {
    "pingpong": run_pingpong_chaos,
    "m2m": run_m2m_chaos,
}


def run_matrix(
    profiles: List[str],
    seeds: List[int],
    workloads: List[str],
    **kwargs,
) -> List[Dict[str, object]]:
    """Run the full chaos matrix; returns one result dict per cell."""
    results = []
    for profile in profiles:
        for seed in seeds:
            for workload in workloads:
                fn = _WORKLOADS[workload]
                results.append(fn(profile, seed, **kwargs.get(workload, {})))
    return results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--profiles", nargs="+", default=["drop5"],
        help="fault profile names (repro.faults.plan.PROFILES)",
    )
    ap.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2])
    ap.add_argument(
        "--workloads", nargs="+", default=["pingpong", "m2m"],
        choices=sorted(_WORKLOADS),
    )
    ap.add_argument("--trips", type=int, default=20, help="ping-pong trips")
    ap.add_argument("--rounds", type=int, default=3, help="m2m rounds")
    args = ap.parse_args(argv)

    kwargs = {"pingpong": {"trips": args.trips}, "m2m": {"rounds": args.rounds}}
    results = run_matrix(args.profiles, args.seeds, args.workloads, **kwargs)
    failures = 0
    for r in results:
        status = "ok" if r["ok"] else "FAIL"
        if not r["ok"]:
            failures += 1
        faults = r["faults"]
        injected = sum(faults.values()) if faults else 0
        print(
            f"[{status}] {r['workload']:<8} profile={r['profile']:<9} "
            f"seed={r['seed']} faults={injected} retries={r['retries']} "
            f"dup_suppressed={r['dup_suppressed']} "
            f"reordered={r['reordered_accepted']} gave_up={r['gave_up']} "
            f"quiesced={r['quiesced']} sim_cycles={r['sim_time']:.0f}"
        )
    total = len(results)
    print(f"chaos: {total - failures}/{total} cells passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
