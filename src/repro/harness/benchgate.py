"""Benchmark-regression gate: the repo's persistent hot-path trajectory.

The paper's contribution is shaving fixed per-message overhead off the
runtime's hot path; this module measures *our* hot path — the
discrete-event engine that every figure reproduction runs on — the way
Task Bench-style studies quantify AMT runtime overheads: wall-clock and
engine events/second on a fixed set of workloads, every PR.

Three gated benchmarks (chosen to cover the paths the paper cares
about):

* ``pingpong``     — Converse-level SMP ping-pong (Fig. 4 machinery:
  lockless queues, PAMI eager path, torus links);
* ``fig3_m2m``     — the Fig. 3 many-to-many PME mini-NAMD run (the
  densest message-rate workload in the suite; the events/sec on this
  benchmark is the gate's headline metric);
* ``fig10_window`` — the Fig. 10 std-vs-m2m PME window experiment
  (windowed steps-completed comparison, both PME paths).

Each run records:

* ``wall_s`` / ``events`` / ``events_per_sec`` — host-side engine
  throughput (the regression metric, threshold ±10%);
* ``sim_times`` — exact ``repr`` of every simulated-time observable
  (final clock, per-step boundaries, window step counts), folded into a
  ``checksum`` (sha256).  Engine work must be **cycle-for-cycle
  neutral**: any checksum drift is a hard failure regardless of speed.

Results are written to ``BENCH_NNNN.json`` at the repo root and
compared against the highest-numbered prior ``BENCH_*.json``.  See
EXPERIMENTS.md ("Benchmark gate") for the schema and workflow, and
``make bench-gate`` for the entry point.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import pathlib
import re
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..converse import RunConfig
from ..ioutil import atomic_write_json

__all__ = [
    "GATE_BENCHMARKS",
    "SHARDED_BENCHMARKS",
    "bench_pingpong",
    "bench_fig3_m2m",
    "bench_fig10_window",
    "bench_pingpong_512n_sharded",
    "bench_fig3_m2m_128n_sharded",
    "bench_serve_load",
    "gate_runners",
    "run_gate",
    "machine_calibration",
    "compare_records",
    "find_bench_files",
    "next_bench_path",
    "load_record",
    "main",
]

#: Benchmarks the gate runs, in order.
GATE_BENCHMARKS: Tuple[str, ...] = ("pingpong", "fig3_m2m", "fig10_window")

#: Large sharded-engine runs recorded at full scale only (the paper's
#: 128-512 node regime, simulated for real on the sharded PDES engine
#: rather than the analytic model — see docs/SCALING.md).
SHARDED_BENCHMARKS: Tuple[str, ...] = (
    "pingpong_512n_sharded",
    "fig3_m2m_128n_sharded",
)

#: Allowed events/sec drop before the gate fails (10% per ISSUE/EXPERIMENTS).
REGRESSION_TOLERANCE = 0.10

_BENCH_RE = re.compile(r"^BENCH_(\d{4})\.json$")


def machine_calibration(reps: int = 3) -> float:
    """Wall seconds for a fixed pure-Python spin workload (best of reps).

    Recorded alongside every gate run so events/sec is comparable
    across machines and across load states of one machine: the same
    commit has measured 23% apart on this repo's dev box depending on
    co-tenant load, which swamps the 10% regression tolerance.  The
    spin loop exercises the same interpreter dispatch the simulator
    spends its time in, so its wall time tracks simulator throughput.
    """
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        x = 0
        for i in range(2_000_000):
            x = (x * 1103515245 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - t0)
    return best


def _checksum(sim_times: Dict[str, str]) -> str:
    """sha256 over the sorted (name, repr) simulated-time observables."""
    blob = "\n".join(f"{k}={v}" for k, v in sorted(sim_times.items()))
    return hashlib.sha256(blob.encode()).hexdigest()


def _record(wall_s: float, events: int, sim_times: Dict[str, str], **metrics) -> dict:
    return {
        "wall_s": round(wall_s, 4),
        "events": events,
        "events_per_sec": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "sim_times": sim_times,
        "checksum": _checksum(sim_times),
        "metrics": metrics,
    }


# -- benchmark runners -----------------------------------------------------

def bench_pingpong(nbytes: int = 512, trips: int = 1500) -> dict:
    """Converse SMP ping-pong between two nodes (Fig. 4 machinery)."""
    from .pingpong import pingpong_run

    config = RunConfig(nnodes=2, workers_per_process=4)
    run = pingpong_run(config, nbytes, trips=trips)
    sim_times = {
        "final": repr(run["sim_time"]),
        "rtt_sum": repr(float(sum(run["rtts"]))),
    }
    return _record(
        run["wall_s"], run["events"], sim_times, oneway_us=round(run["oneway_us"], 4)
    )


def _namd_run(
    use_m2m_pme: bool,
    n_steps: int,
    n_atoms: int,
    nnodes: int,
    workers: int,
    comm_threads: int,
    seed: int = 17,
) -> dict:
    """One untraced mini-NAMD run; returns raw engine statistics.

    Mirrors :func:`repro.harness.timelines.run_traced_namd`'s workload
    (short 7.5 A cutoff — the paper's fine-grained regime) but with the
    tracer off, so the gate measures the engine, not the tracer.
    """
    from ..charm import Charm
    from ..namd.charm_app import NamdCharm
    from ..namd.system import APOA1, build_system

    spec = dataclasses.replace(APOA1, cutoff=7.5)
    system = build_system(
        n_atoms, spec_like=spec, temperature=0.003, bond_fraction=0.0, seed=seed
    )
    charm = Charm(
        RunConfig(
            nnodes=nnodes,
            workers_per_process=workers,
            comm_threads_per_process=comm_threads,
        )
    )
    app = NamdCharm(
        charm, system, n_steps=n_steps, pme_every=1, use_m2m_pme=use_m2m_pme, dt=0.004
    )
    t0 = time.perf_counter()
    app.run()
    wall_s = time.perf_counter() - t0
    env = charm.env
    return {
        "wall_s": wall_s,
        "events": env.events_executed,
        "sim_time": env.now,
        "step_times": tuple(t for t, _ in app.step_log),
    }


def bench_fig3_m2m(
    n_steps: int = 3, n_atoms: int = 1372, nnodes: int = 4, workers: int = 2,
    comm_threads: int = 2,
) -> dict:
    """The Fig. 3 many-to-many PME run — the gate's headline benchmark."""
    run = _namd_run(
        True, n_steps, n_atoms, nnodes, workers, comm_threads
    )
    sim_times = {"final": repr(run["sim_time"])}
    for i, t in enumerate(run["step_times"]):
        sim_times[f"step{i}"] = repr(t)
    return _record(run["wall_s"], run["events"], sim_times)


def bench_fig10_window(
    n_steps: int = 4, n_atoms: int = 1372, nnodes: int = 2, workers: int = 2,
    comm_threads: int = 1,
) -> dict:
    """Fig. 10: steps completed in a fixed window, std vs m2m PME."""
    std = _namd_run(False, n_steps, n_atoms, nnodes, workers, comm_threads)
    m2m = _namd_run(True, n_steps, n_atoms, nnodes, workers, comm_threads)
    window = std["sim_time"] * 0.75
    steps_std = sum(1 for t in std["step_times"] if t <= window)
    steps_m2m = sum(1 for t in m2m["step_times"] if t <= window)
    sim_times = {
        "final_std": repr(std["sim_time"]),
        "final_m2m": repr(m2m["sim_time"]),
        "steps_in_window_std": repr(steps_std),
        "steps_in_window_m2m": repr(steps_m2m),
    }
    return _record(
        std["wall_s"] + m2m["wall_s"],
        std["events"] + m2m["events"],
        sim_times,
    )


def bench_pingpong_512n_sharded(trips: int = 50) -> dict:
    """Cross-machine ping-pong over a really-simulated 512-node torus.

    Runs on the sharded conservative-PDES engine (4 shards), corner to
    corner across the 4x4x4x4x2 torus — a node count the repo
    previously only reached through the analytic performance model
    (EXPERIMENTS.md, figure->artifact table).
    """
    from .shardbench import sharded_bench_pingpong

    rec = sharded_bench_pingpong(512, 4, nbytes=512, trips=trips)
    return _record(
        rec["wall_s"], rec["events"], rec["sim_times"], nshards=rec["nshards"],
        nnodes=512,
    )


def bench_fig3_m2m_128n_sharded(n_steps: int = 2) -> dict:
    """The Fig. 3 m2m PME mini-NAMD run on 128 really-simulated nodes.

    Same workload as ``fig3_m2m`` but at the paper's scale regime
    (128 nodes / 512 worker threads), executed by 4 PDES shards.
    """
    from .shardbench import sharded_bench_fig3_m2m

    rec = sharded_bench_fig3_m2m(
        128, 4, n_steps=n_steps, n_atoms=1372, workers=2, comm_threads=2
    )
    return _record(
        rec["wall_s"], rec["events"], rec["sim_times"], nshards=rec["nshards"],
        nnodes=128,
    )


def bench_serve_load() -> dict:
    """The simulation-as-a-service load (``make serve-gate``'s workload).

    ``sim_times`` holds the per-job result checksums — deterministic
    and machine-portable, so the record gates on them like any
    simulated-time observable once a baseline containing this benchmark
    exists.  Jobs/sec and p50/p99 latency are host-load-dependent and
    land in ``metrics`` (reported, never gated).
    """
    from .servebench import bench_serve_load as _serve

    rec = _serve(scale="full")
    return _record(rec["wall_s"], rec["events"], rec["sim_times"], **rec["metrics"])


# -- gate orchestration ----------------------------------------------------

def gate_runners(scale: str = "full") -> Dict[str, "Callable[[], dict]"]:
    """Zero-arg runners for the three :data:`GATE_BENCHMARKS`, by name.

    The single source of truth for what "run ``pingpong`` at ``scale``"
    means: :func:`run_gate` composes these into the regression record,
    and ``repro.harness.obsgate`` replays the *same* runners off/on
    under profiling — so the obs-gate's cycle-neutrality claim is about
    exactly the workloads the BENCH trajectory gates, not lookalikes.
    """
    if scale == "tiny":
        return {
            "pingpong": lambda: bench_pingpong(trips=6),
            "fig3_m2m": lambda: bench_fig3_m2m(
                n_steps=1, n_atoms=256, nnodes=2, workers=1, comm_threads=1
            ),
            "fig10_window": lambda: bench_fig10_window(
                n_steps=1, n_atoms=256, nnodes=1, workers=2, comm_threads=1
            ),
        }
    return {
        "pingpong": bench_pingpong,
        "fig3_m2m": bench_fig3_m2m,
        "fig10_window": bench_fig10_window,
    }


def run_gate(scale: str = "full") -> Dict[str, dict]:
    """Run every gated benchmark; ``scale="tiny"`` for fast self-tests.

    Full scale additionally records the :data:`SHARDED_BENCHMARKS`
    large-node sharded-engine runs (they are recorded and compared like
    any other benchmark once a baseline containing them exists).
    """
    out = {name: run() for name, run in gate_runners(scale).items()}
    if scale != "tiny":
        out["pingpong_512n_sharded"] = bench_pingpong_512n_sharded()
        out["fig3_m2m_128n_sharded"] = bench_fig3_m2m_128n_sharded()
        out["serve_load"] = bench_serve_load()
    return out


def find_bench_files(root: pathlib.Path) -> List[pathlib.Path]:
    """All BENCH_NNNN.json files at ``root``, ordered by number."""
    hits = []
    for p in root.iterdir():
        m = _BENCH_RE.match(p.name)
        if m:
            hits.append((int(m.group(1)), p))
    return [p for _, p in sorted(hits)]


def next_bench_path(root: pathlib.Path) -> pathlib.Path:
    existing = find_bench_files(root)
    n = 1
    if existing:
        n = int(_BENCH_RE.match(existing[-1].name).group(1)) + 1
    return root / f"BENCH_{n:04d}.json"


def load_record(path: pathlib.Path) -> dict:
    with open(path) as f:
        return json.load(f)


def compare_records(
    baseline: dict,
    current: dict,
    tolerance: float = REGRESSION_TOLERANCE,
    checksum_only: bool = False,
) -> Tuple[List[str], List[str]]:
    """Compare two gate records; returns (failures, notes).

    * any simulated-time checksum difference → hard failure;
    * events/sec more than ``tolerance`` below baseline → failure,
      unless ``checksum_only`` (throughput is still reported as a
      note).  Checksums are portable across machines; events/sec is
      not — CI runs on foreign hardware and gates on checksums only,
      while the committed ``BENCH_NNNN.json`` trajectory (recorded on
      the dev box) keeps the throughput gate.

    When both records carry a ``calibration_wall_s`` (see
    :func:`machine_calibration`) the throughput ratio is normalized by
    the machine-speed ratio before gating, so a loaded or slower box
    does not read as a code regression (nor a faster one mask a real
    regression).  A baseline without calibration cannot be
    speed-compared meaningfully; throughput then becomes a note and
    only checksums gate.
    """
    failures: List[str] = []
    notes: List[str] = []
    base_b = baseline.get("benchmarks", {})
    cur_b = current.get("benchmarks", {})
    base_calib = baseline.get("calibration_wall_s")
    cur_calib = current.get("calibration_wall_s")
    # Machine-speed correction: >1 means the current box is slower.
    # Both records uncalibrated (legacy vs legacy) → gate on the raw
    # ratio as before; exactly one calibrated → the speeds are not
    # comparable, so throughput demotes to a note.
    speed = None
    throughput_gated = True
    if base_calib and cur_calib:
        speed = cur_calib / base_calib
        notes.append(
            f"machine calibration: {cur_calib:.3f}s vs baseline "
            f"{base_calib:.3f}s ({speed:.2f}x slower)"
            if speed >= 1.0
            else f"machine calibration: {cur_calib:.3f}s vs baseline "
            f"{base_calib:.3f}s ({1 / speed:.2f}x faster)"
        )
    elif bool(base_calib) != bool(cur_calib):
        throughput_gated = False
        if not checksum_only:
            notes.append(
                "calibration present in only one record — events/sec not "
                "comparable, gating on checksums only"
            )
    for name in cur_b:
        if name not in base_b:
            notes.append(f"{name}: no baseline entry (new benchmark)")
            continue
        b, c = base_b[name], cur_b[name]
        if b["checksum"] != c["checksum"]:
            drift = [
                k
                for k in sorted(set(b["sim_times"]) | set(c["sim_times"]))
                if b["sim_times"].get(k) != c["sim_times"].get(k)
            ]
            failures.append(
                f"{name}: simulated-time checksum drift (HARD FAIL) — "
                f"engine changes must be cycle-for-cycle neutral; "
                f"diverging observables: {', '.join(drift) or 'checksum only'}"
            )
        base_eps, cur_eps = b["events_per_sec"], c["events_per_sec"]
        if base_eps > 0:
            ratio = cur_eps / base_eps
            if speed is not None:
                gated_ratio = ratio * speed
                notes.append(
                    f"{name}: {cur_eps:,.0f} ev/s vs baseline {base_eps:,.0f} "
                    f"({ratio:.2f}x raw, {gated_ratio:.2f}x machine-adjusted)"
                )
                label = f"{gated_ratio:.2f}x machine-adjusted"
            else:
                gated_ratio = ratio
                notes.append(
                    f"{name}: {cur_eps:,.0f} ev/s vs baseline {base_eps:,.0f} "
                    f"({ratio:.2f}x)"
                )
                label = f"{ratio:.2f}x"
            if (
                throughput_gated
                and gated_ratio < 1.0 - tolerance
                and not checksum_only
            ):
                failures.append(
                    f"{name}: events/sec regression {label} "
                    f"(< {1.0 - tolerance:.2f}x of baseline)"
                )
    return failures, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.benchgate", description=__doc__
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output JSON (default: next BENCH_NNNN.json at the repo root)",
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(os.environ.get("REPRO_BENCH_ROOT", ".")),
        help="directory holding BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="explicit baseline file (default: highest-numbered prior BENCH_*.json)",
    )
    parser.add_argument(
        "--no-compare", action="store_true", help="record only; skip the gate check"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=REGRESSION_TOLERANCE,
        help="allowed fractional events/sec drop before failing "
        f"(default {REGRESSION_TOLERANCE}); checksum drift always fails",
    )
    parser.add_argument(
        "--scale", choices=("full", "tiny"), default="full",
        help="benchmark sizes ('tiny' is for self-tests only)",
    )
    parser.add_argument("--label", default="", help="free-form record label")
    parser.add_argument(
        "--checksum-only",
        action="store_true",
        help="gate on simulated-time checksums only (skip the events/sec "
        "comparison — use on machines other than the one that recorded "
        "the baseline, e.g. CI)",
    )
    parser.add_argument(
        "--shard-gate", action="store_true",
        help="run the sharded-vs-serial equivalence gate instead of the "
        "regression gate: every gated benchmark must produce bit-identical "
        "simulated times on the sharded PDES engine (shards in {1,2,4}) "
        "and the serial engine (see docs/SCALING.md)",
    )
    args = parser.parse_args(argv)

    if args.shard_gate:
        from .shardbench import shard_equivalence_gate

        t0 = time.perf_counter()
        failures, notes = shard_equivalence_gate(scale=args.scale)
        wall = time.perf_counter() - t0
        print(f"shard-gate: serial-vs-sharded equivalence ({wall:.1f}s total)")
        for note in notes:
            print(f"  {note}")
        if failures:
            for failure in failures:
                print(f"  FAIL: {failure}", file=sys.stderr)
            return 1
        print("shard-gate: PASS (bit-identical simulated times)")
        return 0

    root = args.root.resolve()
    out = args.out if args.out is not None else next_bench_path(root)
    prior = [p for p in find_bench_files(root) if p.resolve() != out.resolve()]

    t0 = time.perf_counter()
    benchmarks = run_gate(scale=args.scale)
    total_wall = time.perf_counter() - t0
    calibration = machine_calibration()

    record = {
        "schema": 1,
        "id": out.stem,
        "label": args.label,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "engine_fastpath": os.environ.get("REPRO_ENGINE_SLOWPATH") != "1",
        "scale": args.scale,
        "total_wall_s": round(total_wall, 2),
        "calibration_wall_s": round(calibration, 4),
        "benchmarks": benchmarks,
    }
    # Atomic write: a concurrent gate run (or a killed one) must not
    # leave a truncated BENCH record in the committed trajectory.
    atomic_write_json(out, record, indent=2, sort_keys=True, trailing_newline=True)
    print(f"bench-gate: wrote {out} ({total_wall:.1f}s total)")
    for name in benchmarks:
        b = benchmarks[name]
        print(
            f"  {name:13s} {b['events']:>9,d} events  {b['wall_s']:>7.2f}s  "
            f"{b['events_per_sec']:>10,.0f} ev/s  checksum {b['checksum'][:12]}"
        )

    if args.no_compare:
        return 0
    baseline_path = args.baseline if args.baseline is not None else (
        prior[-1] if prior else None
    )
    if baseline_path is None:
        print("bench-gate: no prior BENCH_*.json — recorded baseline, nothing to gate")
        return 0
    baseline = load_record(baseline_path)
    failures, notes = compare_records(
        baseline,
        record,
        tolerance=args.tolerance,
        checksum_only=args.checksum_only,
    )
    print(f"bench-gate: comparing against {baseline_path.name}")
    for note in notes:
        print(f"  {note}")
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
