"""Memory-allocator micro-benchmark (Fig. 6).

The paper's experiment: all 64 threads of a node simultaneously
allocate 100 buffers each and then free them, with (a) direct calls to
the GNU arena allocator and (b) the lockless per-thread L2-atomic pool
allocator.  The mutex contention on ``free`` is what the pool design
eliminates (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..bgq import BGQMachine
from ..bgq.params import BGQParams, CYCLES_PER_US, DEFAULT_PARAMS
from ..converse.alloc import make_allocator
from ..sim import Environment

__all__ = ["AllocBenchResult", "run_alloc_bench", "fig6_allocator"]


@dataclass
class AllocBenchResult:
    """Outcome of one allocator benchmark run."""

    kind: str
    n_threads: int
    buffers_per_thread: int
    total_us: float
    us_per_op: float  # one op = one malloc or one free
    contended_acquires: int
    contention_wait_us: float


def run_alloc_bench(
    kind: str,
    n_threads: int = 64,
    buffers_per_thread: int = 100,
    buffer_size: int = 1024,
    params: BGQParams = DEFAULT_PARAMS,
    warm: bool = False,
) -> AllocBenchResult:
    """Run the Fig. 6 workload on the DES; returns timing + contention.

    ``warm=True`` pre-populates the pools (steady-state behaviour);
    the paper's cold-start run stresses the arena allocator either way
    because pool misses fall through to it.
    """
    env = Environment()
    machine = BGQMachine(env, 1, params=params)
    node = machine.node(0)
    alloc = make_allocator(node, kind, params)

    def pass_once(tid, done):
        thread = node.thread(tid)
        bufs = []
        for _ in range(buffers_per_thread):
            b = yield from alloc.malloc(thread, buffer_size)
            bufs.append(b)
        for b in bufs:
            yield from alloc.free(thread, b)
        done.append(tid)

    if warm:
        warmed = []
        for tid in range(n_threads):
            env.process(pass_once(tid, warmed))
        env.run()
        if len(warmed) != n_threads:
            raise RuntimeError("allocator warm-up did not complete")

    arena = node.arena_allocator
    contended0 = arena.total_contended_acquires()
    wait0 = arena.total_contention_wait()
    t0 = env.now
    finished = []
    for tid in range(n_threads):
        env.process(pass_once(tid, finished))
    env.run()
    if len(finished) != n_threads:
        raise RuntimeError("allocator benchmark did not complete")
    total = env.now - t0
    ops = n_threads * buffers_per_thread * 2
    return AllocBenchResult(
        kind=kind,
        n_threads=n_threads,
        buffers_per_thread=buffers_per_thread,
        total_us=total / CYCLES_PER_US,
        us_per_op=total / CYCLES_PER_US / ops * n_threads,
        contended_acquires=arena.total_contended_acquires() - contended0,
        contention_wait_us=(arena.total_contention_wait() - wait0) / CYCLES_PER_US,
    )


def fig6_allocator(
    n_threads: int = 64, buffers_per_thread: int = 100
) -> Dict[str, AllocBenchResult]:
    """Both sides of Fig. 6."""
    return {
        "gnu": run_alloc_bench("gnu", n_threads, buffers_per_thread),
        "pool": run_alloc_bench("pool", n_threads, buffers_per_thread, warm=True),
    }
