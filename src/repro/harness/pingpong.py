"""Converse-level ping-pong micro-benchmarks (Figs. 4 and 5).

Fig. 4 — one-way latency to a neighbouring node for the three run
modes (non-SMP, SMP without communication threads, SMP with them)
across message sizes.

Fig. 5 — one-way latency within one BG/Q node: (I) between threads in
different processes (MU loopback) and (II) between threads of the same
Charm++ SMP process (pointer exchange; size-independent).

Everything runs on the full DES stack: real lockless queues, PAMI
contexts, MU packets and torus links.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..bgq.params import CYCLES_PER_US
from ..converse import ConverseRuntime, RunConfig
from ..converse.messages import ConverseMessage
from ..sim import Environment
from types import MappingProxyType

__all__ = [
    "pingpong_run",
    "pingpong_oneway_us",
    "fig4_internode",
    "fig5_intranode",
    "FIG4_MODES",
    "FIG4_SIZES",
]

#: The three modes of Fig. 4 (2 nodes each).
FIG4_MODES: Dict[str, RunConfig] = MappingProxyType({
    "non-SMP": RunConfig(nnodes=2, processes_per_node=1, workers_per_process=1),
    "SMP": RunConfig(nnodes=2, workers_per_process=4),
    "SMP+commthread": RunConfig(
        nnodes=2, workers_per_process=4, comm_threads_per_process=1
    ),
})

FIG4_SIZES: Tuple[int, ...] = (16, 32, 128, 512, 2048, 8192, 32768, 131072)


def pingpong_run(
    config: RunConfig,
    nbytes: int,
    src_rank: int = 0,
    dst_rank: int | None = None,
    trips: int = 8,
    skip: int = 2,
) -> Dict[str, object]:
    """Run one DES ping-pong and return raw run statistics.

    Returns a dict with the mean one-way latency (``oneway_us``), the
    raw round-trip samples in cycles (``rtts``), and engine statistics
    the benchmark gate records: wall-clock seconds of the simulation
    loop (``wall_s``), engine events processed (``events``), and the
    final simulated time in cycles (``sim_time``).
    """
    env = Environment()
    rt = ConverseRuntime(env, config)
    if dst_rank is None:
        dst_rank = config.pes_per_node  # first PE of node 1
    rtts: List[float] = []
    done = env.event()
    state = {"t0": 0.0, "trip": 0}

    def pong(pe, msg):
        # Remote side: bounce straight back.
        yield from pe.send(src_rank, hid_ping, nbytes, None)

    def ping(pe, msg):
        now = env.now
        if state["trip"] > 0:
            rtts.append(now - state["t0"])
        if state["trip"] >= trips:
            done.succeed()
            return
        state["t0"] = now
        state["trip"] += 1
        yield from pe.send(dst_rank, hid_pong, nbytes, None)

    hid_pong = rt.register_handler(pong)
    hid_ping = rt.register_handler(ping)
    rt.pes[src_rank].local_q.append(ConverseMessage(hid_ping, 0, None, src_rank, src_rank))
    t0 = time.perf_counter()
    rt.run_until(done)
    wall_s = time.perf_counter() - t0
    usable = rtts[skip:]
    if not usable:
        raise RuntimeError("ping-pong completed no measurable trips")
    return {
        "oneway_us": float(np.mean(usable)) / 2.0 / CYCLES_PER_US,
        "rtts": rtts,
        "wall_s": wall_s,
        "events": env.events_executed,
        "sim_time": env.now,
    }


def pingpong_oneway_us(
    config: RunConfig,
    nbytes: int,
    src_rank: int = 0,
    dst_rank: int | None = None,
    trips: int = 8,
    skip: int = 2,
) -> float:
    """Measure mean one-way latency (microseconds) via DES ping-pong."""
    result = pingpong_run(
        config, nbytes, src_rank=src_rank, dst_rank=dst_rank, trips=trips, skip=skip
    )
    return result["oneway_us"]


def fig4_internode(
    sizes: Sequence[int] = FIG4_SIZES, trips: int = 8
) -> Dict[str, Dict[int, float]]:
    """One-way inter-node latency per mode and size (microseconds)."""
    out: Dict[str, Dict[int, float]] = {}
    for mode, config in FIG4_MODES.items():
        out[mode] = {}
        for size in sizes:
            out[mode][size] = pingpong_oneway_us(config, size, trips=trips)
    return out


def fig5_intranode(
    sizes: Sequence[int] = (16, 512, 8192, 131072), trips: int = 8
) -> Dict[str, Dict[int, float]]:
    """One-way intra-node latency (microseconds).

    Cases: different processes on one node (loopback through the MU)
    and same SMP process (pointer exchange), each with and without
    communication threads.
    """
    cases = {
        "processes": RunConfig(nnodes=1, processes_per_node=2, workers_per_process=2),
        "processes+ct": RunConfig(
            nnodes=1, processes_per_node=2, workers_per_process=2,
            comm_threads_per_process=1,
        ),
        "smp": RunConfig(nnodes=1, workers_per_process=4),
        "smp+ct": RunConfig(
            nnodes=1, workers_per_process=4, comm_threads_per_process=1
        ),
    }
    out: Dict[str, Dict[int, float]] = {}
    for name, config in cases.items():
        out[name] = {}
        if name.startswith("processes"):
            dst = config.workers_per_process  # first PE of process 2
        else:
            dst = config.workers_per_process - 1  # last worker, same process
        for size in sizes:
            out[name][size] = pingpong_oneway_us(config, size, dst_rank=dst, trips=trips)
    return out
