"""Trace-based figures: timelines and utilization profiles (Figs. 3, 9, 10).

These run mini-NAMD on the DES with the timeline recorder enabled and
report what the paper's Projections screenshots show:

* Fig. 3 / Fig. 10 — per-thread timelines of PME steps with standard
  (p2p) vs many-to-many PME, and the number of timesteps completing in
  a fixed simulated window;
* Fig. 9 — binned CPU-utilization profile with and without
  communication threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..bgq.params import CYCLES_PER_US
from ..charm import Charm
from ..converse import RunConfig
from ..namd.charm_app import NamdCharm
from ..namd.system import build_system
from ..sim import TimelineRecorder, render_ascii_timeline, utilization_profile

__all__ = ["TraceResult", "run_traced_namd", "fig9_commthread_profile", "fig10_pme_window", "fig3_pme_timeline"]


@dataclass
class TraceResult:
    """One traced mini-NAMD run."""

    label: str
    n_steps: int
    total_us: float
    us_per_step: float
    busy_fraction: float
    useful_fraction: float
    timeline_ascii: str
    profile: Dict[str, np.ndarray]
    step_times_us: Tuple[float, ...]


def run_traced_namd(
    label: str,
    n_atoms: int = 2048,
    nnodes: int = 2,
    workers: int = 4,
    comm_threads: int = 0,
    pme_every: int = 2,
    use_m2m_pme: bool = False,
    n_steps: int = 4,
    seed: int = 17,
    timeline_threads: int = 4,
    cutoff: float = 7.5,
) -> TraceResult:
    """Run mini-NAMD with timeline recording; returns trace metrics.

    The default cutoff is shortened (7.5 A vs the production 12 A) so
    the miniature run lands in the paper's fine-grained regime — many
    patches and computes per PE, messaging a large share of the step —
    which is where the comm-thread and m2m effects of Figs. 3/9/10
    live.
    """
    import dataclasses

    from repro.namd.system import APOA1

    spec_like = dataclasses.replace(APOA1, cutoff=cutoff)
    system = build_system(
        n_atoms, spec_like=spec_like, temperature=0.003, bond_fraction=0.0, seed=seed
    )
    charm = Charm(
        RunConfig(
            nnodes=nnodes,
            workers_per_process=workers,
            comm_threads_per_process=comm_threads,
            record_timeline=True,
        )
    )
    app = NamdCharm(
        charm,
        system,
        n_steps=n_steps,
        pme_every=pme_every,
        use_m2m_pme=use_m2m_pme,
        dt=0.004,
    )
    t0 = charm.env.now
    app.run()
    rec: TimelineRecorder = charm.recorder
    rec.finish()
    busy, useful = rec.utilization()
    total = charm.env.now - t0
    step_times = tuple(t / CYCLES_PER_US for t, _ in app.step_log)
    return TraceResult(
        label=label,
        n_steps=n_steps,
        total_us=total / CYCLES_PER_US,
        us_per_step=total / CYCLES_PER_US / n_steps,
        busy_fraction=busy,
        useful_fraction=useful,
        timeline_ascii=render_ascii_timeline(
            rec, width=100, threads=rec.threads()[:timeline_threads]
        ),
        profile=utilization_profile(rec, bins=40),
        step_times_us=step_times,
    )


def fig9_commthread_profile(
    n_atoms: int = 1372, nnodes: int = 2, n_steps: int = 3
) -> Dict[str, TraceResult]:
    """ApoA1-like utilization profile with and without comm threads.

    The paper's Fig. 9 point: communication threads raise utilization
    and fit more timestep peaks into the same wall-clock window.
    """
    without = run_traced_namd(
        "no comm threads", n_atoms=n_atoms, nnodes=nnodes,
        workers=4, comm_threads=0, n_steps=n_steps,
    )
    with_ct = run_traced_namd(
        "with comm threads", n_atoms=n_atoms, nnodes=nnodes,
        workers=4, comm_threads=2, n_steps=n_steps,
    )
    return {"without": without, "with": with_ct}


def fig10_pme_window(
    n_atoms: int = 1372,
    nnodes: int = 4,
    n_steps: int = 8,
    workers: int = 2,
    comm_threads: int = 2,
    pme_every: int = 1,
    window_us: Optional[float] = None,
) -> Dict[str, object]:
    """Standard vs many-to-many PME: steps completed in a fixed window.

    The paper's Fig. 10 counts nine timesteps with m2m PME vs seven
    with standard PME in a 15 ms window on 1024 nodes; the miniature
    reproduction uses a PME-heavy configuration (few workers per node,
    PME every step) and counts steps inside a window sized to 3/4 of
    the standard run.
    """
    std = run_traced_namd(
        "standard PME (p2p)", n_atoms=n_atoms, nnodes=nnodes,
        workers=workers, comm_threads=comm_threads, pme_every=pme_every,
        use_m2m_pme=False, n_steps=n_steps,
    )
    m2m = run_traced_namd(
        "optimized PME (m2m)", n_atoms=n_atoms, nnodes=nnodes,
        workers=workers, comm_threads=comm_threads, pme_every=pme_every,
        use_m2m_pme=True, n_steps=n_steps,
    )
    if window_us is None:
        window_us = std.total_us * 0.75
    steps_std = sum(1 for t in std.step_times_us if t <= window_us)
    steps_m2m = sum(1 for t in m2m.step_times_us if t <= window_us)
    return {
        "std": std,
        "m2m": m2m,
        "window_us": window_us,
        "steps_in_window_std": steps_std,
        "steps_in_window_m2m": steps_m2m,
    }


def fig3_pme_timeline(n_atoms: int = 1372, nnodes: int = 4) -> Dict[str, str]:
    """ASCII timelines of PME-heavy steps, p2p vs m2m (Fig. 3)."""
    result = fig10_pme_window(n_atoms=n_atoms, nnodes=nnodes, n_steps=3)
    return {
        "standard": result["std"].timeline_ascii,
        "optimized": result["m2m"].timeline_ascii,
    }
