"""Trace-based figures: timelines and utilization profiles (Figs. 3, 9, 10).

These run mini-NAMD on the DES with the unified tracer
(:mod:`repro.trace`) enabled and report what the paper's Projections
screenshots show:

* Fig. 3 / Fig. 10 — per-thread timelines of PME steps with standard
  (p2p) vs many-to-many PME, and the number of timesteps completing in
  a fixed simulated window;
* Fig. 9 — binned CPU-utilization profile with and without
  communication threads.

Each traced run carries its :class:`~repro.trace.Tracer`, so beyond the
ASCII renderings a run can be exported with
:func:`export_trace_artifacts` — a Chrome ``trace_event`` JSON (open in
``chrome://tracing`` or https://ui.perfetto.dev), a per-PE utilization
table, and a machine-readable manifest — which is what the benchmark
suite archives under ``benchmarks/output/`` for every trace figure.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..bgq.params import CYCLES_PER_US
from ..charm import Charm
from ..converse import RunConfig
from ..namd.charm_app import NamdCharm
from ..namd.system import build_system
from ..sim import render_ascii_timeline, utilization_profile
from ..trace import (
    Tracer,
    format_utilization_table,
    run_manifest,
    write_chrome_trace,
    write_run_manifest,
)

__all__ = [
    "TraceResult",
    "run_traced_namd",
    "export_trace_artifacts",
    "fig9_commthread_profile",
    "fig10_pme_window",
    "fig3_pme_timeline",
]


@dataclass
class TraceResult:
    """One traced mini-NAMD run."""

    label: str
    n_steps: int
    total_us: float
    us_per_step: float
    busy_fraction: float
    useful_fraction: float
    timeline_ascii: str
    profile: Dict[str, np.ndarray]
    step_times_us: Tuple[float, ...]
    #: The run's tracer: spans, counters, and exporter input.
    tracer: Optional[Tracer] = None
    #: Final counter totals (messages, bytes, polls, L2 ops...).
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def utilization_table(self) -> str:
        """Per-PE busy/useful table (µs per category)."""
        return format_utilization_table(
            self.tracer, scale=1.0 / CYCLES_PER_US, unit="us"
        )

    def manifest(self, **meta) -> dict:
        """Machine-readable run record (see repro.trace.run_manifest)."""
        return run_manifest(
            self.tracer,
            label=self.label,
            scale=1.0 / CYCLES_PER_US,
            time_unit="us",
            n_steps=self.n_steps,
            us_per_step=self.us_per_step,
            **meta,
        )


def run_traced_namd(
    label: str,
    n_atoms: int = 2048,
    nnodes: int = 2,
    workers: int = 4,
    comm_threads: int = 0,
    pme_every: int = 2,
    use_m2m_pme: bool = False,
    n_steps: int = 4,
    seed: int = 17,
    timeline_threads: int = 4,
    cutoff: float = 7.5,
) -> TraceResult:
    """Run mini-NAMD with the tracer enabled; returns trace metrics.

    The default cutoff is shortened (7.5 A vs the production 12 A) so
    the miniature run lands in the paper's fine-grained regime — many
    patches and computes per PE, messaging a large share of the step —
    which is where the comm-thread and m2m effects of Figs. 3/9/10
    live.
    """
    import dataclasses

    from repro.namd.system import APOA1

    spec_like = dataclasses.replace(APOA1, cutoff=cutoff)
    system = build_system(
        n_atoms, spec_like=spec_like, temperature=0.003, bond_fraction=0.0, seed=seed
    )
    charm = Charm(
        RunConfig(
            nnodes=nnodes,
            workers_per_process=workers,
            comm_threads_per_process=comm_threads,
            record_timeline=True,
        )
    )
    app = NamdCharm(
        charm,
        system,
        n_steps=n_steps,
        pme_every=pme_every,
        use_m2m_pme=use_m2m_pme,
        dt=0.004,
    )
    t0 = charm.env.now
    app.run()
    tracer: Tracer = charm.tracer
    tracer.finish()
    busy, useful = tracer.utilization()
    total = charm.env.now - t0
    step_times = tuple(t / CYCLES_PER_US for t, _ in app.step_log)
    return TraceResult(
        label=label,
        n_steps=n_steps,
        total_us=total / CYCLES_PER_US,
        us_per_step=total / CYCLES_PER_US / n_steps,
        busy_fraction=busy,
        useful_fraction=useful,
        timeline_ascii=render_ascii_timeline(
            tracer, width=100, threads=tracer.tracks()[:timeline_threads]
        ),
        profile=utilization_profile(tracer, bins=40),
        step_times_us=step_times,
        tracer=tracer,
        counters=dict(tracer.counters),
    )


def export_trace_artifacts(
    result: TraceResult, outdir, basename: str, **meta
) -> Dict[str, str]:
    """Write the Chrome trace + manifest for one traced run.

    Returns ``{"chrome": path, "manifest": path}`` — the artifact paths
    cited in EXPERIMENTS.md's figure→benchmark→trace table.
    """
    if result.tracer is None:
        raise ValueError(f"run {result.label!r} carries no tracer")
    outdir = pathlib.Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    chrome = write_chrome_trace(
        result.tracer,
        str(outdir / f"{basename}.trace.json"),
        scale=1.0 / CYCLES_PER_US,
        process_name=result.label,
        metadata={"label": result.label, "n_steps": result.n_steps, **meta},
    )
    manifest = write_run_manifest(
        result.tracer,
        str(outdir / f"{basename}.manifest.json"),
        label=result.label,
        scale=1.0 / CYCLES_PER_US,
        time_unit="us",
        n_steps=result.n_steps,
        us_per_step=result.us_per_step,
        **meta,
    )
    return {"chrome": chrome, "manifest": manifest}


def fig9_commthread_profile(
    n_atoms: int = 1372, nnodes: int = 2, n_steps: int = 3
) -> Dict[str, TraceResult]:
    """ApoA1-like utilization profile with and without comm threads.

    The paper's Fig. 9 point: communication threads raise utilization
    and fit more timestep peaks into the same wall-clock window.
    """
    without = run_traced_namd(
        "no comm threads", n_atoms=n_atoms, nnodes=nnodes,
        workers=4, comm_threads=0, n_steps=n_steps,
    )
    with_ct = run_traced_namd(
        "with comm threads", n_atoms=n_atoms, nnodes=nnodes,
        workers=4, comm_threads=2, n_steps=n_steps,
    )
    return {"without": without, "with": with_ct}


def fig10_pme_window(
    n_atoms: int = 1372,
    nnodes: int = 4,
    n_steps: int = 8,
    workers: int = 2,
    comm_threads: int = 2,
    pme_every: int = 1,
    window_us: Optional[float] = None,
) -> Dict[str, object]:
    """Standard vs many-to-many PME: steps completed in a fixed window.

    The paper's Fig. 10 counts nine timesteps with m2m PME vs seven
    with standard PME in a 15 ms window on 1024 nodes; the miniature
    reproduction uses a PME-heavy configuration (few workers per node,
    PME every step) and counts steps inside a window sized to 3/4 of
    the standard run.
    """
    std = run_traced_namd(
        "standard PME (p2p)", n_atoms=n_atoms, nnodes=nnodes,
        workers=workers, comm_threads=comm_threads, pme_every=pme_every,
        use_m2m_pme=False, n_steps=n_steps,
    )
    m2m = run_traced_namd(
        "optimized PME (m2m)", n_atoms=n_atoms, nnodes=nnodes,
        workers=workers, comm_threads=comm_threads, pme_every=pme_every,
        use_m2m_pme=True, n_steps=n_steps,
    )
    if window_us is None:
        window_us = std.total_us * 0.75
    steps_std = sum(1 for t in std.step_times_us if t <= window_us)
    steps_m2m = sum(1 for t in m2m.step_times_us if t <= window_us)
    return {
        "std": std,
        "m2m": m2m,
        "window_us": window_us,
        "steps_in_window_std": steps_std,
        "steps_in_window_m2m": steps_m2m,
    }


def fig3_pme_timeline(n_atoms: int = 1372, nnodes: int = 4) -> Dict[str, object]:
    """Timelines of PME-heavy steps, p2p vs m2m (Fig. 3).

    Returns the ASCII renderings plus the full traced runs (so callers
    can export the interactive Chrome/Perfetto artifacts).
    """
    result = fig10_pme_window(n_atoms=n_atoms, nnodes=nnodes, n_steps=3)
    return {
        "standard": result["std"].timeline_ascii,
        "optimized": result["m2m"].timeline_ascii,
        "std_run": result["std"],
        "m2m_run": result["m2m"],
    }
