"""repro-lint core: AST visitor, rule registry, pragmas, suppression.

The analyzer exists because this reproduction's results are only
meaningful while the DES stays bit-deterministic (the benchmark gate
hashes exact simulated-time reprs, EXPERIMENTS.md) and while every
component speaks the engine's protocol (generator processes yield
Events, Event subclasses stay ``__slots__``-complete for the PR 2 fast
path, nobody reaches into ``Environment`` internals).  Fuzz tests catch
violations after the fact; this pass catches them at analysis time.

Design:

* each :class:`Rule` subscribes to AST node-type names; one recursive
  walk per file dispatches nodes to the subscribed rules, maintaining
  an ancestor ``stack`` so rules can ask about enclosing classes,
  functions, or call sites;
* violations are suppressible three ways, checked in this order —
  a line pragma (``# repro-lint: disable=D1,P2``), a file pragma
  (``# repro-lint: disable-file=D1`` anywhere in the file), or an entry
  in the checked-in baseline file (grandfathered violations, matched by
  ``(rule, path, stripped source line)`` so line-number churn does not
  invalidate them);
* rules carry a severity (``error``/``warning``) for reporting; any
  unsuppressed violation fails the run regardless (determinism bugs do
  not become acceptable by being labelled warnings).

See docs/ANALYSIS.md for the rule catalog and how to add a rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Violation",
    "Rule",
    "FileContext",
    "Analyzer",
    "AnalysisResult",
    "register",
    "all_rule_classes",
    "default_rules",
    "dotted_name",
    "last_name",
]

#: Line pragma: ``# repro-lint: disable=D1`` / ``disable=D1,P3`` /
#: ``disable=all``; ``disable-file=...`` suppresses for the whole file.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)="
    r"(all|[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
)

_ALL = "all"


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and the offending source line."""

    rule: str
    severity: str
    path: str  # posix path relative to the analysis root
    line: int
    col: int
    message: str
    line_text: str  # stripped source line (baseline fingerprint)
    #: Dotted symbol path for project-scope findings
    #: (``repro.bgq.params.DEFAULT_PARAMS``); empty for per-file
    #: findings.  When set it becomes the baseline fingerprint, which
    #: survives line churn anywhere in the file.
    symbol: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        if self.symbol:
            return (self.rule, "symbol", self.symbol)
        return (self.rule, self.path, self.line_text)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


# -- rule registry -----------------------------------------------------------

_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator: add a Rule subclass to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rule_classes() -> Dict[str, Type["Rule"]]:
    """Every registered rule class, importing the shipped rule modules."""
    from . import (  # noqa: F401 (registration)
        rules_determinism,
        rules_faults,
        rules_global,
        rules_obs,
        rules_protocol,
        rules_spmd,
        rules_trace,
    )

    return dict(sorted(_REGISTRY.items()))


def default_rules(config=None) -> List["Rule"]:
    """Instantiate the enabled rules (all registered rules by default)."""
    classes = all_rule_classes()
    enabled = None if config is None else config.rules
    out = []
    for rule_id, cls in classes.items():
        if enabled is not None and rule_id not in enabled:
            continue
        out.append(cls(config))
    return out


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` / ``title`` / ``severity`` / ``rationale``,
    subscribe to node-type names via ``node_types``, and implement
    :meth:`check`, calling ``ctx.report(node, self, message)`` for each
    finding.  ``config`` is the loaded ``[tool.repro-lint]`` table (or
    None); rules with path allowlists read them from there.
    """

    id: str = ""
    title: str = ""
    severity: str = "error"
    rationale: str = ""
    node_types: Tuple[str, ...] = ()

    def __init__(self, config=None) -> None:
        self.config = config

    def applies_to(self, rel_path: str) -> bool:
        """Whether this rule runs on the given file at all."""
        return True

    def check(self, node: ast.AST, ctx: "FileContext") -> None:  # pragma: no cover
        raise NotImplementedError


# -- shared AST helpers ------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def last_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def contains(root: ast.AST, target: ast.AST) -> bool:
    """Identity containment: is ``target`` a node inside ``root``'s subtree?"""
    return any(n is target for n in ast.walk(root))


class FileContext:
    """Per-file analysis state handed to rules during the walk."""

    def __init__(self, rel_path: str, tree: ast.AST, source: str) -> None:
        self.rel_path = rel_path
        self.tree = tree
        self.lines = source.splitlines()
        #: Ancestor nodes of the node currently being visited, root first
        #: (the node itself is NOT on the stack while its rules run).
        self.stack: List[ast.AST] = []
        self.violations: List[Violation] = []
        self.line_disabled: Dict[int, Set[str]] = {}
        self.file_disabled: Set[str] = set()
        self._scan_pragmas()

    def _scan_pragmas(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            if "repro-lint" not in text:
                continue
            m = _PRAGMA_RE.search(text)
            if not m:
                continue
            kind, rules = m.group(1), m.group(2)
            ids = {_ALL} if rules == _ALL else {r.strip() for r in rules.split(",")}
            if kind == "disable-file":
                self.file_disabled |= ids
            else:
                self.line_disabled.setdefault(lineno, set()).update(ids)

    # -- rule API -----------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def enclosing_class(self) -> Optional[ast.ClassDef]:
        for node in reversed(self.stack):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def enclosing_function(self):
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def report(self, node: ast.AST, rule: Rule, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        self.violations.append(
            Violation(
                rule=rule.id,
                severity=rule.severity,
                path=self.rel_path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                line_text=self.line_text(lineno),
            )
        )

    def suppressed_by_pragma(self, v: Violation) -> bool:
        if _ALL in self.file_disabled or v.rule in self.file_disabled:
            return True
        disabled = self.line_disabled.get(v.line, ())
        return _ALL in disabled or v.rule in disabled


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    violations: List[Violation] = field(default_factory=list)
    pragma_suppressed: List[Violation] = field(default_factory=list)
    baseline_suppressed: List[Violation] = field(default_factory=list)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files_analyzed: int = 0
    #: Root-relative posix paths of every file this run looked at
    #: (per-file pass plus the project pass) — ``--write-baseline``
    #: uses it to decide which old entries a run supersedes.
    analyzed_paths: Set[str] = field(default_factory=set)
    #: Per-file results served from the content-hash cache.
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class Analyzer:
    """Run a rule set over files under a root directory.

    ``config`` enables the whole-program pass (project rules run over
    ``config.project_paths``); without it only per-file rules run, so
    pre-existing call sites and fixture harnesses are unaffected.
    ``cache`` is an optional :class:`repro.analysis.cache.LintCache`;
    per-file results are reused when a file's content hash and the rule
    set are both unchanged.
    """

    def __init__(
        self,
        root: Path,
        rules: Sequence[Rule],
        baseline=None,
        config=None,
        cache=None,
    ) -> None:
        self.root = Path(root)
        self.rules = list(rules)
        self.baseline = baseline  # repro.analysis.baseline.Baseline or None
        self.config = config
        self.cache = cache
        self.file_rules = [
            r for r in self.rules if not getattr(r, "project", False)
        ]
        self.project_rules = [
            r for r in self.rules if getattr(r, "project", False)
        ]
        #: node-type name -> per-file rules subscribed to it.
        self._dispatch: Dict[str, List[Rule]] = {}
        for rule in self.file_rules:
            for nt in rule.node_types:
                self._dispatch.setdefault(nt, []).append(rule)

    # -- file discovery -----------------------------------------------------
    def iter_files(
        self, paths: Iterable[str], exclude: Sequence[str] = ()
    ) -> List[Path]:
        """Python files under ``paths`` (relative to root), exclusions applied.

        Explicit ``.py`` file arguments bypass the exclusion list (so the
        fixture suite can analyze its own deliberately-bad snippets while
        directory scans skip them).
        """
        norm_excl = [e.rstrip("/") for e in exclude]
        out: List[Path] = []
        for p in paths:
            full = (self.root / p) if not Path(p).is_absolute() else Path(p)
            if full.is_file():
                out.append(full)
                continue
            for f in sorted(full.rglob("*.py")):
                rel = f.relative_to(self.root).as_posix()
                if any(rel == e or rel.startswith(e + "/") for e in norm_excl):
                    continue
                out.append(f)
        return out

    # -- analysis -----------------------------------------------------------
    def analyze_file(self, path: Path) -> FileContext:
        rel = (
            path.relative_to(self.root).as_posix()
            if path.is_relative_to(self.root)
            else path.as_posix()
        )
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        ctx = FileContext(rel, tree, source)
        dispatch = {
            nt: [r for r in rules if r.applies_to(rel)]
            for nt, rules in self._dispatch.items()
        }
        self._walk(tree, ctx, dispatch)
        return ctx

    def _walk(self, tree: ast.AST, ctx: FileContext, dispatch) -> None:
        stack = ctx.stack

        def visit(node: ast.AST) -> None:
            rules = dispatch.get(type(node).__name__)
            if rules:
                for rule in rules:
                    rule.check(node, ctx)
            stack.append(node)
            for child in ast.iter_child_nodes(node):
                visit(child)
            stack.pop()

        visit(tree)

    def run(self, paths: Iterable[str], exclude: Sequence[str] = ()) -> AnalysisResult:
        result = AnalysisResult()
        matched_baseline: Set[Tuple[str, str, str]] = set()

        def triage(pairs) -> None:
            """Route (violation, pragma-suppressed?) pairs into the result."""
            for v, by_pragma in pairs:
                if by_pragma:
                    result.pragma_suppressed.append(v)
                elif self.baseline is not None and self.baseline.contains(v):
                    result.baseline_suppressed.append(v)
                    matched_baseline.add(v.fingerprint)
                else:
                    result.violations.append(v)

        # Per-file pass (cacheable: pragma suppression depends only on
        # file content, so the post-pragma pairs are safe to reuse).
        for path in self.iter_files(paths, exclude):
            rel = self._rel(path)
            result.files_analyzed += 1
            result.analyzed_paths.add(rel)
            cached = (
                self.cache.get_file(rel, path) if self.cache is not None else None
            )
            if cached is not None:
                result.cache_hits += 1
                triage(cached)
                continue
            ctx = self.analyze_file(path)
            pairs = [(v, ctx.suppressed_by_pragma(v)) for v in ctx.violations]
            if self.cache is not None:
                self.cache.put_file(rel, path, pairs)
            triage(pairs)

        # Whole-program pass (project rules over config.project_paths).
        if self.project_rules and self.config is not None:
            pfiles = self.iter_files(self.config.project_paths, exclude)
            if pfiles:
                rels = [self._rel(p) for p in pfiles]
                result.analyzed_paths.update(rels)
                cached = (
                    self.cache.get_project(pfiles)
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    result.cache_hits += 1
                    triage(cached)
                else:
                    from .project import build_project_context

                    pctx = build_project_context(self.root, pfiles)
                    for rule in self.project_rules:
                        rule.check_project(pctx)
                    pairs = [
                        (
                            v,
                            pctx.by_path[v.path].file_ctx.suppressed_by_pragma(v),
                        )
                        for v in pctx.violations
                    ]
                    if self.cache is not None:
                        self.cache.put_project(pfiles, pairs)
                    triage(pairs)

        if self.baseline is not None:
            result.stale_baseline = [
                fp for fp in self.baseline.fingerprints() if fp not in matched_baseline
            ]
        if self.cache is not None:
            self.cache.flush()
        return result

    def _rel(self, path: Path) -> str:
        return (
            path.relative_to(self.root).as_posix()
            if path.is_relative_to(self.root)
            else path.as_posix()
        )
