"""Baseline file: grandfathered violations.

The baseline lets the lint gate turn on strict without first rewriting
history: known violations are recorded once and suppressed until the
offending line changes.  Entries are matched by
``(rule, path, stripped source line)`` — *not* line number — so
unrelated edits above a grandfathered line do not resurrect it, while
any edit *to* the line itself forces a fresh decision (fix or pragma).

Stale entries (no longer matching any violation) are reported so the
baseline only ever shrinks.  ``python -m repro.analysis
--write-baseline`` regenerates the file from current findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from .core import Violation

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """Set of grandfathered violation fingerprints, JSON-backed."""

    def __init__(self, fingerprints: Iterable[Tuple[str, str, str]] = ()) -> None:
        self._entries: Set[Tuple[str, str, str]] = set(fingerprints)

    # -- membership ---------------------------------------------------------
    def contains(self, violation: Violation) -> bool:
        return violation.fingerprint in self._entries

    def fingerprints(self) -> List[Tuple[str, str, str]]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence --------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not Path(path).is_file():
            return cls()
        with open(path) as f:
            data = json.load(f)
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls(
            (e["rule"], e["path"], e["text"]) for e in data.get("entries", [])
        )

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        return cls(v.fingerprint for v in violations)

    def save(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": p, "text": text}
            for rule, p, text in self.fingerprints()
        ]
        with open(path, "w") as f:
            json.dump({"version": _VERSION, "entries": entries}, f, indent=2)
            f.write("\n")
