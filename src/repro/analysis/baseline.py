"""Baseline file: grandfathered violations.

The baseline lets the lint gate turn on strict without first rewriting
history: known violations are recorded once and suppressed until the
offending code changes.  Two entry shapes coexist (format version 2):

* **per-file** entries match by ``(rule, path, stripped source line)``
  — *not* line number — so unrelated edits above a grandfathered line
  do not resurrect it, while any edit *to* the line itself forces a
  fresh decision (fix or pragma);
* **symbol** entries (project-scope findings from the G/S families)
  match by ``(rule, dotted symbol path)`` — stable under any line
  churn; only renaming or fixing the symbol invalidates them.  They
  still record the defining ``path`` so ``--write-baseline`` can prune
  entries whose file no longer exists.

Stale entries (no longer matching any violation) are reported so the
baseline only ever shrinks.  ``python -m repro.analysis
--write-baseline`` merges current findings with still-live entries and
prunes the rest.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .core import Violation

__all__ = ["Baseline"]

_VERSION = 2


def _entry_fingerprint(entry: Dict[str, str]) -> Tuple[str, str, str]:
    if entry.get("symbol"):
        return (entry["rule"], "symbol", entry["symbol"])
    return (entry["rule"], entry.get("path", ""), entry.get("text", ""))


class Baseline:
    """Set of grandfathered violation entries, JSON-backed."""

    def __init__(self, entries: Iterable[Dict[str, str]] = ()) -> None:
        #: De-duplicated entries, keyed by fingerprint.
        self._entries: Dict[Tuple[str, str, str], Dict[str, str]] = {
            _entry_fingerprint(e): dict(e) for e in entries
        }

    # -- membership ---------------------------------------------------------
    def contains(self, violation: Violation) -> bool:
        return violation.fingerprint in self._entries

    def fingerprints(self) -> List[Tuple[str, str, str]]:
        return sorted(self._entries)

    def entries(self) -> List[Dict[str, str]]:
        return [self._entries[fp] for fp in self.fingerprints()]

    def __len__(self) -> int:
        return len(self._entries)

    # -- editing ------------------------------------------------------------
    def merge(self, other: "Baseline") -> None:
        """Adopt ``other``'s entries (other wins on fingerprint ties)."""
        self._entries.update(other._entries)

    def prune_missing_files(self, root: Path) -> List[Dict[str, str]]:
        """Drop entries whose recorded file no longer exists; return them."""
        root = Path(root)
        dropped = []
        for fp, entry in list(self._entries.items()):
            path = entry.get("path", "")
            if path and not (root / path).is_file():
                dropped.append(self._entries.pop(fp))
        return dropped

    # -- persistence --------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not Path(path).is_file():
            return cls()
        with open(path) as f:
            data = json.load(f)
        version = data.get("version")
        if version not in (1, _VERSION):  # v1: per-file entries only
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        return cls(data.get("entries", []))

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        entries = []
        for v in violations:
            if v.symbol:
                entries.append(
                    {"rule": v.rule, "symbol": v.symbol, "path": v.path}
                )
            else:
                entries.append(
                    {"rule": v.rule, "path": v.path, "text": v.line_text}
                )
        return cls(entries)

    def save(self, path: Path) -> None:
        from ..ioutil import atomic_write_json

        atomic_write_json(
            path,
            {"version": _VERSION, "entries": self.entries()},
            indent=2,
            trailing_newline=True,
        )
