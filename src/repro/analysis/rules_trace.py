"""Tracing-discipline rules (T1).

The tracing subsystem's zero-cost-when-disabled contract
(docs/TRACING.md) has one load-bearing clause: hot-path modules hold
``tracer`` attributes that are ``None`` when tracing is off, and every
recording call is guarded by ``if tracer is not None``.  An unguarded
call site either crashes untraced runs (AttributeError on None) or —
worse — forces the component to hold a disabled Tracer instance, which
turns the guard's single pointer test into a Python method call per
event on the DES hot path.  T1 makes the convention checkable.
"""

from __future__ import annotations

import ast
from typing import Optional

from .core import FileContext, Rule, dotted_name, register

__all__ = ["UnguardedTracerCallRule"]

#: Recording methods of repro.trace.Tracer that sit on hot paths.
#: Registration/lifecycle methods (register_track, add_finalizer,
#: finish) run once per run from already-guarded setup code and are
#: deliberately not listed.
_RECORDING_METHODS = frozenset({
    "begin",
    "end",
    "count",
    "mark",
    "record",
    "span",
    "msg_send",
    "msg_recv",
    "msg_exec",
})

#: Local names conventionally bound to a (possibly-None) tracer.  Like
#: P3, this rule is name-based: ``rec = self.tracer`` / ``tr = ...`` /
#: ``tracer = ...`` are the repo-wide spellings.
_TRACER_NAMES = frozenset({"tracer", "rec", "tr"})


def _names_tracer(node: ast.AST) -> Optional[str]:
    """The receiver's dotted name if it plausibly names a tracer."""
    name = dotted_name(node)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    if last in _TRACER_NAMES or last.endswith("tracer"):
        return name
    return None


def _test_guards(test: ast.AST, receiver: str) -> bool:
    """Does this condition establish ``receiver`` is a live tracer?

    Accepts ``X is not None`` (anywhere in the expression, including
    inside ``and`` chains) and plain truthiness tests of ``X``.
    """
    for node in ast.walk(test):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            if (
                isinstance(node.ops[0], ast.IsNot)
                and isinstance(node.comparators[0], ast.Constant)
                and node.comparators[0].value is None
                and dotted_name(node.left) == receiver
            ):
                return True
    if dotted_name(test) == receiver:
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(dotted_name(v) == receiver for v in test.values)
    return False


def _early_exit_guards(fn: ast.AST, receiver: str, lineno: int) -> bool:
    """``if X is None: return`` earlier in the enclosing function."""
    for stmt in getattr(fn, "body", ()):
        if not isinstance(stmt, ast.If) or stmt.lineno >= lineno:
            continue
        test = stmt.test
        is_none = (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
            and dotted_name(test.left) == receiver
        )
        not_x = (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and dotted_name(test.operand) == receiver
        )
        if (is_none or not_x) and stmt.body and isinstance(
            stmt.body[-1], (ast.Return, ast.Continue, ast.Raise)
        ):
            return True
    return False


@register
class UnguardedTracerCallRule(Rule):
    """T1: tracer recording call without an ``is not None`` guard."""

    id = "T1"
    title = "unguarded tracer call in a hot-path module"
    severity = "error"
    rationale = (
        "Hot-path components hold tracer=None when tracing is off "
        "(docs/TRACING.md); a recording call not dominated by an "
        "``if tracer is not None`` test crashes untraced runs or forces "
        "a per-event method call where a pointer test should be.  The "
        "check is name-based (receivers named tracer/rec/tr or ending "
        "in .tracer), mirroring P3's convention-driven matching."
    )
    node_types = ("Call",)

    def applies_to(self, rel_path: str) -> bool:
        roots = (
            self.config.trace_hot_paths
            if self.config is not None
            else ()
        )
        return any(
            rel_path == r or rel_path.startswith(r.rstrip("/") + "/")
            for r in roots
        )

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _RECORDING_METHODS:
            return
        receiver = _names_tracer(func.value)
        if receiver is None:
            return
        lineno = getattr(node, "lineno", 1)
        enclosing_fn = None
        child: ast.AST = node
        for anc in reversed(ctx.stack):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A guard in an outer function does not dominate calls in
                # a nested one (closures run later); stop widening here.
                enclosing_fn = anc
                break
            if isinstance(anc, ast.If) and _test_guards(anc.test, receiver):
                # Only the then-branch is dominated by the guard.
                if any(child is stmt for stmt in anc.body):
                    return
            elif isinstance(anc, ast.IfExp) and _test_guards(anc.test, receiver):
                if child is anc.body:
                    return
            elif isinstance(anc, ast.BoolOp) and isinstance(anc.op, ast.And):
                if _test_guards(anc, receiver) and child is not anc.values[0]:
                    return
            elif isinstance(anc, ast.While) and _test_guards(anc.test, receiver):
                if any(child is stmt for stmt in anc.body):
                    return
            child = anc
        if enclosing_fn is not None and _early_exit_guards(
            enclosing_fn, receiver, lineno
        ):
            return
        ctx.report(
            node,
            self,
            f"{receiver}.{func.attr}(...) is not guarded by "
            f"'if {receiver} is not None' — hot-path tracer calls must "
            "be zero-cost when tracing is off (docs/TRACING.md)",
        )
