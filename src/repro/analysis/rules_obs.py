"""Observability-discipline rules (O1).

The obs layer inherits tracing's zero-cost-when-disabled contract
(docs/OBSERVABILITY.md): engine hot-path modules hold ``profiler``
attributes that are ``None`` when profiling is off, and metrics
recording belongs in the serve/harness layers, never unconditionally on
the per-event dispatch path.  ``make obs-gate`` proves the *shipped*
engine is cycle-neutral, but it cannot stop a future edit from dropping
an unguarded ``profiler.sample(...)`` or ``metrics.observe(...)`` into
``step()`` — that is a static property, so O1 makes it a lint error,
exactly as T1 does for tracer calls.
"""

from __future__ import annotations

import ast
from typing import Optional

from .core import FileContext, Rule, dotted_name, register
from .rules_trace import _early_exit_guards, _test_guards

__all__ = ["UnguardedObsCallRule"]

#: Recording methods of repro.obs objects that must never run
#: unconditionally on an engine hot path: the profiler's accumulation
#: hooks and the metric types' mutation calls.  Aggregation/export
#: methods (profile, snapshot, prometheus_text, to_json) run once per
#: session from cold code and are deliberately not listed.
_RECORDING_METHODS = frozenset({
    "sample",
    "charge",
    "flush",
    "next_gap",
    "inc",
    "dec",
    "set",
    "observe",
    "labels",
})

#: Local names conventionally bound to a (possibly-None) profiler or a
#: metrics registry/metric.  Name-based like T1/P3: ``prof =
#: self.profiler`` / ``metrics = service.metrics`` are the repo-wide
#: spellings.
_OBS_NAMES = frozenset({"profiler", "prof", "metrics"})


def _names_obs(node: ast.AST) -> Optional[str]:
    """The receiver's dotted name if it plausibly names an obs object."""
    name = dotted_name(node)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    if last in _OBS_NAMES or last.endswith("profiler") or last.endswith("metrics"):
        return name
    return None


@register
class UnguardedObsCallRule(Rule):
    """O1: profiler/metrics recording call on an unguarded hot path."""

    id = "O1"
    title = "unguarded profiler/metrics call in an engine hot-path module"
    severity = "error"
    rationale = (
        "Engine hot-path components hold profiler=None when profiling "
        "is off (docs/OBSERVABILITY.md); a recording call not dominated "
        "by an ``if profiler is not None`` test either crashes "
        "unprofiled runs or puts a Python method call on the per-event "
        "dispatch path, blowing the obs-gate's ≤5%% overhead budget.  "
        "Metrics mutation calls (inc/observe/...) get the same "
        "treatment: counters belong in the serve layer, and an engine "
        "module touching one must prove it is off the default path.  "
        "Name-based matching (profiler/prof/metrics receivers), "
        "mirroring T1."
    )
    node_types = ("Call",)

    def applies_to(self, rel_path: str) -> bool:
        roots = (
            self.config.obs_hot_paths
            if self.config is not None
            else ()
        )
        return any(
            rel_path == r or rel_path.startswith(r.rstrip("/") + "/")
            for r in roots
        )

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _RECORDING_METHODS:
            return
        receiver = _names_obs(func.value)
        if receiver is None:
            return
        lineno = getattr(node, "lineno", 1)
        enclosing_fn = None
        child: ast.AST = node
        for anc in reversed(ctx.stack):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A guard in an outer function does not dominate calls in
                # a nested one (closures run later); stop widening here.
                enclosing_fn = anc
                break
            if isinstance(anc, ast.If) and _test_guards(anc.test, receiver):
                # Only the then-branch is dominated by the guard.
                if any(child is stmt for stmt in anc.body):
                    return
            elif isinstance(anc, ast.IfExp) and _test_guards(anc.test, receiver):
                if child is anc.body:
                    return
            elif isinstance(anc, ast.BoolOp) and isinstance(anc.op, ast.And):
                if _test_guards(anc, receiver) and child is not anc.values[0]:
                    return
            elif isinstance(anc, ast.While) and _test_guards(anc.test, receiver):
                if any(child is stmt for stmt in anc.body):
                    return
            child = anc
        if enclosing_fn is not None and _early_exit_guards(
            enclosing_fn, receiver, lineno
        ):
            return
        ctx.report(
            node,
            self,
            f"{receiver}.{func.attr}(...) is not guarded by "
            f"'if {receiver} is not None' — engine hot-path obs calls "
            "must be zero-cost when profiling is off "
            "(docs/OBSERVABILITY.md)",
        )
