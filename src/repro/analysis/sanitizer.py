"""Dynamic determinism sanitizer (``REPRO_SANITIZE=1``).

The static pass (repro-lint) proves what it can from source; this
module backs it with run-time checks for the two hazards static
analysis cannot settle:

* **hash-order dependence at scheduling boundaries** — a ``set`` (or
  ``frozenset``) handed to ``any_of``/``all_of`` registers callbacks in
  hash order, which static analysis only sees when the literal is
  syntactically a set (rule D3).  At run time the *type* is known, so a
  sanitized :class:`~repro.sim.engine.Environment` rejects unordered
  condition inputs no matter how they were built;

* **callback reentrancy** — a handler that re-enters ``step()``/``run()``
  or registers a callback on an already-processed event (a wakeup that
  would silently never fire).  Both are latent ordering bugs the fuzz
  suite can only catch if the wrong interleaving happens to occur.

Activation: set ``REPRO_SANITIZE=1`` before constructing the
Environment (the flag is sampled once in ``Environment.__init__``, the
same pattern as ``REPRO_ENGINE_SLOWPATH``).  Sanitized runs take the
checked step path — same pops, same order, same simulated times; the
trajectory is bit-identical, only host wall time grows (<2x, measured
in CI by running the determinism fuzz suite under the flag).

This module deliberately imports nothing from ``repro.sim`` — the
engine imports *us* (lazily, only on sanitized paths), never the other
way around.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["SanitizerError", "sanitize_enabled", "check_ordered", "sanitized"]

_ENV_VAR = "REPRO_SANITIZE"

#: Types whose iteration order follows the hash seed, not the program.
_UNORDERED_TYPES = (set, frozenset)


class SanitizerError(RuntimeError):
    """A runtime determinism/protocol violation caught under REPRO_SANITIZE=1."""


def sanitize_enabled() -> bool:
    """Whether new Environments should run sanitized."""
    return os.environ.get(_ENV_VAR) == "1"


def check_ordered(obj, where: str) -> None:
    """Reject hash-ordered iterables at a scheduling boundary."""
    if isinstance(obj, _UNORDERED_TYPES):
        raise SanitizerError(
            f"{where} received a {type(obj).__name__}: iteration order would "
            "follow the hash seed, making callback registration (and thus "
            "the event trajectory) host-dependent — sort the events or pass "
            "an ordered container"
        )


@contextmanager
def sanitized(enabled: bool = True):
    """Scoped REPRO_SANITIZE toggle for tests.

    Only Environments *constructed inside* the context are sanitized
    (the engine samples the flag at construction time).
    """
    prior = os.environ.get(_ENV_VAR)
    os.environ[_ENV_VAR] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ[_ENV_VAR]
        else:
            os.environ[_ENV_VAR] = prior
