"""repro-lint command line: ``python -m repro.analysis`` / ``make lint``.

Exit status: 0 when every finding is suppressed (pragma or baseline),
1 when unsuppressed violations remain, 2 on usage errors.  ``--self-
check`` injects one violation per rule family into a scratch directory
and verifies the analyzer catches both — CI runs it so a silently
broken rule set cannot keep returning green.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .config import Config, find_root, load_config
from .core import Analyzer, all_rule_classes, default_rules

__all__ = ["main", "run_self_check"]

#: One deliberately-bad snippet per rule family; --self-check verifies
#: each is caught (determinism family via D2, protocol family via P2).
_SELF_CHECK_SNIPPETS = {
    "D2": (
        "injected_determinism.py",
        "import random\n\n\ndef jitter():\n    return random.random()\n",
    ),
    "P2": (
        "injected_protocol.py",
        "from repro.sim.engine import Event\n\n\n"
        "class Signal(Event):\n    pass\n",
    ),
}


def run_self_check(config: Config) -> int:
    """Inject one violation per family; return 0 iff both are caught."""
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-lint-selfcheck-") as tmp:
        tmpdir = Path(tmp)
        for rule_id, (fname, source) in _SELF_CHECK_SNIPPETS.items():
            (tmpdir / fname).write_text(source)
        analyzer = Analyzer(tmpdir, default_rules(config), baseline=None)
        result = analyzer.run([str(tmpdir)])
        fired = {v.rule for v in result.violations}
        for rule_id, (fname, _) in _SELF_CHECK_SNIPPETS.items():
            if rule_id in fired:
                print(f"self-check: {rule_id} caught injected violation in {fname}")
            else:
                failures.append(rule_id)
    if failures:
        print(
            f"self-check FAILED: rule(s) {', '.join(failures)} missed their "
            "injected violation",
            file=sys.stderr,
        )
        return 1
    print("self-check: PASS (one injected violation per family, both caught)")
    return 0


def _list_rules() -> None:
    for rule_id, cls in all_rule_classes().items():
        print(f"{rule_id}  [{cls.severity:7s}]  {cls.title}")
        print(f"    {' '.join(cls.rationale.split())}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: determinism & runtime-protocol static analysis",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/dirs to analyze (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: configured set)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="output format",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report grandfathered violations too)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current unsuppressed violations to the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="verify each rule family catches an injected violation",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print per-rule violation counts",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    config = load_config(args.root if args.root else find_root())
    if args.rules:
        config.rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = set(config.rules) - set(all_rule_classes())
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    if args.self_check:
        return run_self_check(config)

    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(config.baseline_path)

    analyzer = Analyzer(config.root, default_rules(config), baseline=baseline)
    paths = args.paths or config.paths
    result = analyzer.run(paths, exclude=config.exclude)

    if args.write_baseline:
        Baseline.from_violations(result.violations).save(config.baseline_path)
        print(
            f"repro-lint: wrote {len(result.violations)} grandfathered "
            f"entr{'y' if len(result.violations) == 1 else 'ies'} to "
            f"{config.baseline_path}"
        )
        return 0

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "files_analyzed": result.files_analyzed,
                    "violations": [v.__dict__ for v in result.violations],
                    "pragma_suppressed": len(result.pragma_suppressed),
                    "baseline_suppressed": len(result.baseline_suppressed),
                    "stale_baseline": [list(fp) for fp in result.stale_baseline],
                },
                indent=2,
            )
        )
    else:
        for v in result.violations:
            print(v.format())
        if args.statistics:
            counts: dict = {}
            for v in result.violations:
                counts[v.rule] = counts.get(v.rule, 0) + 1
            for rule_id in sorted(counts):
                print(f"  {rule_id}: {counts[rule_id]}")
        suppressed = ""
        if result.pragma_suppressed or result.baseline_suppressed:
            suppressed = (
                f" ({len(result.pragma_suppressed)} pragma-suppressed, "
                f"{len(result.baseline_suppressed)} baselined)"
            )
        status = "PASS" if result.ok else f"{len(result.violations)} violation(s)"
        print(
            f"repro-lint: {result.files_analyzed} files, {status}{suppressed}"
        )
        for rule_id, path, text in result.stale_baseline:
            print(
                f"repro-lint: stale baseline entry {rule_id} @ {path}: {text!r} "
                "(fixed? remove it)",
            )

    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
