"""repro-lint command line: ``python -m repro.analysis`` / ``make lint``.

Exit status: 0 when every finding is suppressed (pragma or baseline),
1 when unsuppressed violations remain, 2 on usage errors — including
an unknown rule id in ``--rules`` *or* in the ``[tool.repro-lint]
rules`` table (a typo there must not silently disable a rule).
``--self-check`` injects one violation per rule family into a scratch
directory and verifies the analyzer catches each — CI runs it so a
silently broken rule set cannot keep returning green.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from types import MappingProxyType
from typing import List, Optional

from .baseline import Baseline
from .cache import LintCache
from .config import Config, find_root, load_config
from .core import Analyzer, all_rule_classes, default_rules

__all__ = ["main", "run_self_check"]

#: One deliberately-bad snippet per rule family; --self-check verifies
#: each is caught (determinism via D2, protocol via P2, global-state
#: via G1, SPMD via S2).
_SELF_CHECK_SNIPPETS = MappingProxyType({
    "D2": (
        "injected_determinism.py",
        "import random\n\n\ndef jitter():\n    return random.random()\n",
    ),
    "P2": (
        "injected_protocol.py",
        "from repro.sim.engine import Event\n\n\n"
        "class Signal(Event):\n    pass\n",
    ),
    "G1": (
        "injected_global.py",
        "HANDLER_REGISTRY = {}\n",
    ),
    "S2": (
        "injected_spmd.py",
        "def build_mirror(rt, msg):\n"
        "    rt.pes[0].local_q.append(msg)\n",
    ),
})


def run_self_check(config: Config) -> int:
    """Inject one violation per family; return 0 iff every one is caught."""
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-lint-selfcheck-") as tmp:
        tmpdir = Path(tmp)
        for rule_id, (fname, source) in _SELF_CHECK_SNIPPETS.items():
            (tmpdir / fname).write_text(source)
        # Scratch config: the project pass must cover the scratch dir
        # (there is no src/repro inside it) and the injected SPMD file
        # must be in S-family scope.
        scratch = Config(
            root=tmpdir,
            rules=config.rules,
            project_paths=(".",),
            spmd_paths=("injected_spmd.py",),
            global_allow=(),
        )
        analyzer = Analyzer(
            tmpdir, default_rules(scratch), baseline=None, config=scratch
        )
        result = analyzer.run([str(tmpdir)])
        fired = {v.rule for v in result.violations}
        for rule_id, (fname, _) in _SELF_CHECK_SNIPPETS.items():
            if rule_id in fired:
                print(f"self-check: {rule_id} caught injected violation in {fname}")
            else:
                failures.append(rule_id)
    if failures:
        print(
            f"self-check FAILED: rule(s) {', '.join(failures)} missed their "
            "injected violation",
            file=sys.stderr,
        )
        return 1
    print(
        f"self-check: PASS (one injected violation per family, "
        f"all {len(_SELF_CHECK_SNIPPETS)} caught)"
    )
    return 0


def _list_rules() -> None:
    for rule_id, cls in all_rule_classes().items():
        print(f"{rule_id}  [{cls.severity:7s}]  {cls.title}")
        print(f"    {' '.join(cls.rationale.split())}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: determinism & runtime-protocol static analysis",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/dirs to analyze (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: configured set)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="output format",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="also write the JSON report to this file (CI artifact)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report grandfathered violations too)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="merge current unsuppressed violations into the baseline, "
        "prune entries for files that no longer exist, and exit 0",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-hash result cache (.repro-lint-cache.json)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="verify each rule family catches an injected violation",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print per-rule violation counts",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    config = load_config(args.root if args.root else find_root())
    if args.rules:
        config.rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    if config.rules is not None:
        unknown = set(config.rules) - set(all_rule_classes())
        if unknown:
            source = "--rules" if args.rules else "[tool.repro-lint] rules"
            parser.error(
                f"unknown rule id(s) in {source}: {', '.join(sorted(unknown))} "
                f"(known: {', '.join(all_rule_classes())})"
            )

    if args.self_check:
        return run_self_check(config)

    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(config.baseline_path)

    rules = default_rules(config)
    cache = None
    if not args.no_cache:
        cache = LintCache(
            config.root / ".repro-lint-cache.json", [r.id for r in rules]
        )
    analyzer = Analyzer(
        config.root, rules, baseline=baseline, config=config, cache=cache
    )
    paths = args.paths or config.paths
    result = analyzer.run(paths, exclude=config.exclude)

    if args.write_baseline:
        old = Baseline.load(config.baseline_path)
        # Keep entries for files this run did not look at; entries for
        # analyzed files are superseded by the fresh findings.
        kept = Baseline(
            e
            for e in old.entries()
            if e.get("path", "") not in result.analyzed_paths
        )
        pruned = kept.prune_missing_files(config.root)
        kept.merge(Baseline.from_violations(result.violations))
        kept.save(config.baseline_path)
        msg = (
            f"repro-lint: wrote {len(kept)} grandfathered "
            f"entr{'y' if len(kept) == 1 else 'ies'} to {config.baseline_path}"
        )
        if pruned:
            gone = ", ".join(sorted({e.get("path", "?") for e in pruned}))
            msg += f" (pruned {len(pruned)} for missing file(s): {gone})"
        print(msg)
        return 0

    payload = {
        "files_analyzed": result.files_analyzed,
        "cache_hits": result.cache_hits,
        "violations": [v.__dict__ for v in result.violations],
        "pragma_suppressed": len(result.pragma_suppressed),
        "baseline_suppressed": len(result.baseline_suppressed),
        "stale_baseline": [list(fp) for fp in result.stale_baseline],
    }
    if args.json_out is not None:
        from ..ioutil import atomic_write_text

        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.json_out, json.dumps(payload, indent=2) + "\n")

    if args.fmt == "json":
        print(json.dumps(payload, indent=2))
    else:
        for v in result.violations:
            print(v.format())
        if args.statistics:
            counts: dict = {}
            for v in result.violations:
                counts[v.rule] = counts.get(v.rule, 0) + 1
            for rule_id in sorted(counts):
                print(f"  {rule_id}: {counts[rule_id]}")
        suppressed = ""
        if result.pragma_suppressed or result.baseline_suppressed:
            suppressed = (
                f" ({len(result.pragma_suppressed)} pragma-suppressed, "
                f"{len(result.baseline_suppressed)} baselined)"
            )
        status = "PASS" if result.ok else f"{len(result.violations)} violation(s)"
        print(
            f"repro-lint: {result.files_analyzed} files, {status}{suppressed}"
        )
        for rule_id, path, text in result.stale_baseline:
            print(
                f"repro-lint: stale baseline entry {rule_id} @ {path}: {text!r} "
                "(fixed? remove it)",
            )

    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
