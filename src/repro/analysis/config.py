"""``[tool.repro-lint]`` configuration loading.

Configuration lives in ``pyproject.toml`` so the lint pass, CI, and
editors all read one source of truth::

    [tool.repro-lint]
    paths = ["src", "tests"]
    exclude = ["tests/analysis/fixtures"]
    rules = ["D1", "D2", "D3", "D4", "P1", "P2", "P3", "P4"]
    baseline = "lint-baseline.json"
    wallclock-allow = ["src/repro/harness", "src/repro/trace"]

Parsed with :mod:`tomllib` (Python >= 3.11).  On 3.10, where tomllib
does not exist and the offline container bakes no TOML parser, the
defaults below apply unchanged — they mirror the checked-in table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback, defaults only
    tomllib = None

__all__ = ["Config", "load_config", "find_root"]

_DEFAULT_PATHS = ("src", "tests")
_DEFAULT_WALLCLOCK_ALLOW = ("src/repro/harness", "src/repro/trace")
_DEFAULT_FAULTS_PATHS = ("src/repro/faults",)
_DEFAULT_QOS_PATHS = (
    "src/repro/faults",
    "src/repro/pami",
    "src/repro/converse",
)
_DEFAULT_TRACE_HOT_PATHS = (
    "src/repro/converse",
    "src/repro/pami",
    "src/repro/bgq",
    "src/repro/sim",
    "src/repro/queues.py",
    "src/repro/faults",
)
#: Engine hot paths where O1 (profiler/metrics recording must be
#: None-guarded) applies.  The serve layer is deliberately absent:
#: metrics recording there is unconditional by design.
_DEFAULT_OBS_HOT_PATHS = (
    "src/repro/converse",
    "src/repro/pami",
    "src/repro/bgq",
    "src/repro/sim",
    "src/repro/queues.py",
    "src/repro/faults",
)
_DEFAULT_PROJECT_PATHS = ("src/repro",)
#: Dotted symbols exempt from G1 (deliberate globals).  Mirrors the
#: shipped pyproject table, where each entry carries its justification.
_DEFAULT_GLOBAL_ALLOW = ("repro.analysis.core._REGISTRY",)
#: SPMD shard infrastructure: always in S-family scope, in addition to
#: any module the import graph shows reaching it.
_DEFAULT_SPMD_PATHS = (
    "src/repro/sim/shard.py",
    "src/repro/bgq/shardnet.py",
)


@dataclass
class Config:
    """Resolved repro-lint settings (defaults == the shipped pyproject)."""

    root: Path = field(default_factory=Path.cwd)
    paths: List[str] = field(default_factory=lambda: list(_DEFAULT_PATHS))
    exclude: List[str] = field(default_factory=list)
    rules: Optional[List[str]] = None  # None = every registered rule
    baseline: str = "lint-baseline.json"
    wallclock_allow: Tuple[str, ...] = _DEFAULT_WALLCLOCK_ALLOW
    #: Paths where F1 (raw RNG forbidden; sim.rng streams only) applies.
    faults_paths: Tuple[str, ...] = _DEFAULT_FAULTS_PATHS
    #: Hot-path modules where T1 (tracer calls must be None-guarded,
    #: the zero-cost-when-disabled contract) applies.
    trace_hot_paths: Tuple[str, ...] = _DEFAULT_TRACE_HOT_PATHS
    #: Transport/runtime trees where F2 (best-effort QoS branches must
    #: not touch seq/pending reliable-transport state) applies.
    qos_paths: Tuple[str, ...] = _DEFAULT_QOS_PATHS
    #: Engine hot-path modules where O1 (profiler/metrics recording
    #: must be None-guarded, the obs zero-cost contract) applies.
    obs_hot_paths: Tuple[str, ...] = _DEFAULT_OBS_HOT_PATHS
    #: Trees the whole-program pass (ProjectContext, G/S families)
    #: covers.  Entries may be directories or single files.
    project_paths: Tuple[str, ...] = _DEFAULT_PROJECT_PATHS
    #: Dotted symbols exempt from G1: globals that are deliberate.
    #: Every entry in pyproject.toml should carry a justification
    #: comment next to it.
    global_allow: Tuple[str, ...] = _DEFAULT_GLOBAL_ALLOW
    #: Files/dirs always treated as SPMD shard code by the S family,
    #: in addition to modules the import graph shows importing
    #: repro.sim.shard or repro.bgq.shardnet.
    spmd_paths: Tuple[str, ...] = _DEFAULT_SPMD_PATHS

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline


def find_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor directory holding a pyproject.toml (else start)."""
    start = (start or Path.cwd()).resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def load_config(root: Optional[Path] = None) -> Config:
    """Load ``[tool.repro-lint]`` from ``<root>/pyproject.toml``."""
    root = (root or find_root()).resolve()
    cfg = Config(root=root)
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return cfg
    with open(pyproject, "rb") as f:
        data = tomllib.load(f)
    table = data.get("tool", {}).get("repro-lint", {})
    if "paths" in table:
        cfg.paths = list(table["paths"])
    if "exclude" in table:
        cfg.exclude = list(table["exclude"])
    if "rules" in table:
        cfg.rules = list(table["rules"])
    if "baseline" in table:
        cfg.baseline = str(table["baseline"])
    if "wallclock-allow" in table:
        cfg.wallclock_allow = tuple(table["wallclock-allow"])
    if "faults-paths" in table:
        cfg.faults_paths = tuple(table["faults-paths"])
    if "trace-hot-paths" in table:
        cfg.trace_hot_paths = tuple(table["trace-hot-paths"])
    if "qos-paths" in table:
        cfg.qos_paths = tuple(table["qos-paths"])
    if "obs-hot-paths" in table:
        cfg.obs_hot_paths = tuple(table["obs-hot-paths"])
    if "project-paths" in table:
        cfg.project_paths = tuple(table["project-paths"])
    if "global-allow" in table:
        cfg.global_allow = tuple(table["global-allow"])
    if "spmd-paths" in table:
        cfg.spmd_paths = tuple(table["spmd-paths"])
    return cfg
