"""Runtime-protocol rules (P1-P4).

The engine and the Charm-style runtime have load-bearing conventions
that plain Python will not enforce: processes yield Events, Event
subclasses stay ``__slots__``-complete (the PR 2 fast-path invariant —
an instance dict on the hot path is both a slowdown and a sign the
subclass grew state the engine does not manage), engine internals are
mutated only by the engine, and chares interact only through message
delivery.  AMT-runtime studies (Kulkarni & Lumsdaine 2014; Task Bench)
find protocol misuse, not kernels, to be where these systems silently
go wrong — these rules make the conventions checkable.
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, last_name, register

__all__ = [
    "NonEventYieldRule",
    "EventSlotsRule",
    "EngineInternalsRule",
    "ChareIsolationRule",
]

#: Event-class names whose subclasses must declare __slots__.
_EVENT_BASES = frozenset({"Event", "Timeout", "Process", "AllOf", "AnyOf", "_Condition"})

#: Environment attributes only sim/engine.py may touch.
_ENGINE_INTERNALS = frozenset({"_queue", "_imm", "_now", "_seq", "_active_process", "_stepping"})

#: The one module allowed to touch them.
_ENGINE_PATH_SUFFIX = "sim/engine.py"


def _receiver_is_env(node: ast.AST) -> bool:
    """Heuristic: does this expression name a simulation Environment?

    True for ``env``, ``self.env``, ``runtime.env``, ... — the repo-wide
    naming convention for Environment references (P3 is name-based; an
    Environment bound to another name slips through, but so would any
    static check short of type inference).
    """
    if isinstance(node, ast.Name):
        return node.id == "env" or node.id.endswith("env")
    if isinstance(node, ast.Attribute):
        return node.attr == "env" or node.attr.endswith("env")
    return False


@register
class NonEventYieldRule(Rule):
    """P1: generator process yields a bare constant."""

    id = "P1"
    title = "process yields a non-Event constant"
    severity = "error"
    rationale = (
        "Simulated processes communicate with the engine by yielding "
        "Events; a yielded constant reaches Process._resume, which throws "
        "SimulationError into the generator at run time.  Catch it at "
        "analysis time instead.  Bare ``yield`` (the ``return; yield`` "
        "generator-shape idiom) is allowed."
    )
    node_types = ("Yield",)

    def check(self, node: ast.Yield, ctx: FileContext) -> None:
        if isinstance(node.value, ast.Constant) and node.value.value is not None:
            ctx.report(
                node,
                self,
                f"yield of constant {node.value.value!r} — processes must "
                "yield Event instances (timeout(), event(), ...)",
            )


@register
class EventSlotsRule(Rule):
    """P2: Event subclass without ``__slots__``."""

    id = "P2"
    title = "Event subclass missing __slots__"
    severity = "error"
    rationale = (
        "Every Event subclass must be __slots__-complete: the engine fast "
        "path (repro.sim.engine module docstring) relies on dict-free "
        "event instances, and the benchmark gate measures the regression. "
        "A slotless subclass silently re-adds a per-event instance dict."
    )
    node_types = ("ClassDef",)

    def check(self, node: ast.ClassDef, ctx: FileContext) -> None:
        if not any(last_name(base) in _EVENT_BASES for base in node.bases):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ):
                return
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return
        ctx.report(
            node,
            self,
            f"class {node.name} subclasses an Event type but declares no "
            "__slots__ (add __slots__ = () if it has no new state)",
        )


@register
class EngineInternalsRule(Rule):
    """P3: Environment internals touched outside the engine."""

    id = "P3"
    title = "direct access to Environment scheduling internals"
    severity = "error"
    rationale = (
        "The fast path keeps two cooperating event stores (_queue/_imm) "
        "whose merge invariant — all deque entries carry the current "
        "timestamp — holds only if every schedule goes through the "
        "engine's own entry points.  Outside sim/engine.py, use the "
        "public API: event().succeed(), timeout(), process(), run()."
    )
    node_types = ("Attribute",)

    def applies_to(self, rel_path: str) -> bool:
        return not rel_path.endswith(_ENGINE_PATH_SUFFIX)

    def check(self, node: ast.Attribute, ctx: FileContext) -> None:
        if node.attr in _ENGINE_INTERNALS and _receiver_is_env(node.value):
            ctx.report(
                node,
                self,
                f"access to Environment.{node.attr} outside sim/engine.py — "
                "use the public Environment API",
            )


@register
class ChareIsolationRule(Rule):
    """P4: chare entry method touches another chare's state directly."""

    id = "P4"
    title = "cross-chare state access bypassing message delivery"
    severity = "error"
    rationale = (
        "Within a Chare subclass, peers are reached with send()/send_to() "
        "so the invocation is charged, ordered, and delivered by the "
        "runtime (pointer exchange within an SMP process, packed message "
        "across).  Reading or writing ``array.element(i).attr`` directly "
        "is a zero-cost back channel: it desynchronises the simulated "
        "trajectory from what the modelled machine could do.  (Host-side "
        "drivers and setup code outside Chare subclasses are exempt.)"
    )
    node_types = ("Attribute",)

    def check(self, node: ast.Attribute, ctx: FileContext) -> None:
        cls = ctx.enclosing_class()
        if cls is None or not any(last_name(b) == "Chare" for b in cls.bases):
            return
        value = node.value
        # <...>.element(idx).attr
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "element"
        ):
            ctx.report(
                node,
                self,
                f"direct access to a peer chare's .{node.attr} via "
                ".element(...) — use send()/send_to() entry-method delivery",
            )
            return
        # <...>.elements[idx].attr
        if (
            isinstance(value, ast.Subscript)
            and isinstance(value.value, ast.Attribute)
            and value.value.attr == "elements"
        ):
            ctx.report(
                node,
                self,
                f"direct access to a peer chare's .{node.attr} via "
                ".elements[...] — use send()/send_to() entry-method delivery",
            )
