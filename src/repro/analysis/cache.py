"""Content-hash lint cache: reuse per-file results across runs.

``make lint`` re-analyzes every file on every invocation; as the rule
count grows (D/P/F/T + the whole-program G/S families) that cost scales
with rules x files.  But a file's per-file findings are a pure function
of (file content, rule set) — pragma suppression included, since
pragmas live in the file — so they can be cached by content hash and
reused until either input changes.

The cache key has two parts:

* **ruleset key**: sha256 over the sorted enabled rule ids *and* the
  source bytes of every module in ``repro.analysis`` itself, so editing
  any rule (or the engine) invalidates everything without manual
  version bumps;
* **file sha**: sha256 of the file's bytes.

The whole-program pass caches the same way under a combined hash of
every project file, keyed by sorted (rel path, sha) pairs — any file
added, removed, or edited under ``project-paths`` re-runs pass 1+2.

Stored at ``<root>/.repro-lint-cache.json`` (gitignored).  A corrupt or
version-mismatched cache file is treated as empty, never an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..ioutil import atomic_write_text
from .core import Violation

__all__ = ["LintCache", "ruleset_key"]

_VERSION = 1

#: (Violation, suppressed-by-pragma?) pairs — the cacheable unit.
Pairs = List[Tuple[Violation, bool]]


def ruleset_key(rule_ids: Sequence[str]) -> str:
    """Hash of the enabled rule ids + the analysis package's own source."""
    h = hashlib.sha256()
    for rid in sorted(rule_ids):
        h.update(rid.encode())
        h.update(b"\0")
    pkg = Path(__file__).parent
    for src in sorted(pkg.glob("*.py")):
        h.update(src.name.encode())
        h.update(src.read_bytes())
    return h.hexdigest()


def _file_sha(path: Path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


class LintCache:
    """JSON-backed (file sha, rule set) -> findings cache."""

    def __init__(self, path: Path, rule_ids: Sequence[str]) -> None:
        self.path = Path(path)
        self.key = ruleset_key(rule_ids)
        self._files: Dict[str, dict] = {}
        self._project: Optional[dict] = None
        self._dirty = False
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if data.get("version") != _VERSION or data.get("ruleset") != self.key:
            return  # rule set changed: start cold
        self._files = data.get("files", {})
        self._project = data.get("project")

    # -- per-file entries ---------------------------------------------------
    def get_file(self, rel: str, path: Path) -> Optional[Pairs]:
        entry = self._files.get(rel)
        if entry is None or entry.get("sha") != _file_sha(path):
            return None
        return _decode(entry["pairs"])

    def put_file(self, rel: str, path: Path, pairs: Pairs) -> None:
        self._files[rel] = {"sha": _file_sha(path), "pairs": _encode(pairs)}
        self._dirty = True

    # -- whole-program entry ------------------------------------------------
    def _project_sha(self, files: Sequence[Path]) -> str:
        h = hashlib.sha256()
        for f in sorted(files):
            h.update(str(f).encode())
            h.update(_file_sha(f).encode())
        return h.hexdigest()

    def get_project(self, files: Sequence[Path]) -> Optional[Pairs]:
        if self._project is None:
            return None
        if self._project.get("sha") != self._project_sha(files):
            return None
        return _decode(self._project["pairs"])

    def put_project(self, files: Sequence[Path], pairs: Pairs) -> None:
        self._project = {
            "sha": self._project_sha(files),
            "pairs": _encode(pairs),
        }
        self._dirty = True

    # -- persistence --------------------------------------------------------
    def flush(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": _VERSION,
            "ruleset": self.key,
            "files": self._files,
            "project": self._project,
        }
        try:
            # Atomic (temp + rename): two concurrent lint runs sharing
            # one checkout can both flush without either reader ever
            # seeing a truncated cache file.
            atomic_write_text(self.path, json.dumps(payload) + "\n")
        except OSError:  # read-only checkout: caching is best-effort
            pass
        self._dirty = False


def _encode(pairs: Pairs) -> list:
    return [[v.__dict__, bool(p)] for v, p in pairs]


def _decode(raw: list) -> Pairs:
    return [(Violation(**d), bool(p)) for d, p in raw]
