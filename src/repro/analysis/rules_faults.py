"""Fault-subsystem rules (F1).

The fault injector's whole value is that a ``(plan.seed, workload)``
pair reproduces a bit-identical fault schedule — that is what lets a
chaos-matrix failure be replayed and bisected.  Any draw inside
``src/repro/faults/`` that does not come from the named
:class:`~repro.sim.rng.StreamRegistry` streams breaks that contract,
*even when seeded*: a privately seeded ``random.Random(42)`` does not
derive from the plan's root seed and is invisible to stream isolation
(adding a draw perturbs nothing else only because StreamRegistry gives
every consumer its own spawned stream).
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, dotted_name, register

__all__ = ["FaultsSeededStreamRule"]


@register
class FaultsSeededStreamRule(Rule):
    """F1: raw RNG use inside the fault-injection subsystem."""

    id = "F1"
    title = "raw RNG in src/repro/faults (use sim.rng streams)"
    severity = "error"
    rationale = (
        "Fault schedules must be a pure function of FaultPlan.seed so a "
        "chaos failure replays exactly.  All randomness in "
        "src/repro/faults must flow through sim.rng.StreamRegistry named "
        "streams; stdlib random and numpy.random entry points — seeded or "
        "not — bypass the plan's seed derivation and the per-stream "
        "isolation the determinism regime depends on."
    )
    node_types = ("Import", "ImportFrom", "Call")

    def applies_to(self, rel_path: str) -> bool:
        paths = (
            self.config.faults_paths
            if self.config is not None
            else ("src/repro/faults",)
        )
        return any(
            rel_path == p or rel_path.startswith(p.rstrip("/") + "/") for p in paths
        )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random" or alias.name.startswith("numpy.random"):
                    ctx.report(
                        node,
                        self,
                        f"import of {alias.name} in the faults subsystem — "
                        "draw from sim.rng StreamRegistry streams",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "random" or mod.startswith("random.") or "numpy.random" in mod:
                ctx.report(
                    node,
                    self,
                    f"from {mod} import ... in the faults subsystem — "
                    "draw from sim.rng StreamRegistry streams",
                )
            return
        # Calls: random.*, np.random.*, and bare generator constructors.
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "random" and len(parts) > 1:
            ctx.report(
                node,
                self,
                f"{name}() in the faults subsystem — even a seeded "
                "random.Random bypasses the plan's stream derivation",
            )
            return
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            ctx.report(
                node,
                self,
                f"{name}() in the faults subsystem — use StreamRegistry "
                "streams derived from FaultPlan.seed",
            )
            return
        if parts[-1] in ("default_rng", "SeedSequence", "Random", "RandomState"):
            ctx.report(
                node,
                self,
                f"{parts[-1]}() constructed directly in the faults "
                "subsystem — only StreamRegistry may build generators",
            )
