"""Fault-subsystem rules (F1, F2).

The fault injector's whole value is that a ``(plan.seed, workload)``
pair reproduces a bit-identical fault schedule — that is what lets a
chaos-matrix failure be replayed and bisected.  Any draw inside
``src/repro/faults/`` that does not come from the named
:class:`~repro.sim.rng.StreamRegistry` streams breaks that contract,
*even when seeded*: a privately seeded ``random.Random(42)`` does not
derive from the plan's root seed and is invisible to stream isolation
(adding a draw perturbs nothing else only because StreamRegistry gives
every consumer its own spawned stream).
"""

from __future__ import annotations

import ast

from .core import FileContext, Rule, dotted_name, register

__all__ = ["FaultsSeededStreamRule", "BestEffortTransportStateRule"]


@register
class FaultsSeededStreamRule(Rule):
    """F1: raw RNG use inside the fault-injection subsystem."""

    id = "F1"
    title = "raw RNG in src/repro/faults (use sim.rng streams)"
    severity = "error"
    rationale = (
        "Fault schedules must be a pure function of FaultPlan.seed so a "
        "chaos failure replays exactly.  All randomness in "
        "src/repro/faults must flow through sim.rng.StreamRegistry named "
        "streams; stdlib random and numpy.random entry points — seeded or "
        "not — bypass the plan's seed derivation and the per-stream "
        "isolation the determinism regime depends on."
    )
    node_types = ("Import", "ImportFrom", "Call")

    def applies_to(self, rel_path: str) -> bool:
        paths = (
            self.config.faults_paths
            if self.config is not None
            else ("src/repro/faults",)
        )
        return any(
            rel_path == p or rel_path.startswith(p.rstrip("/") + "/") for p in paths
        )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random" or alias.name.startswith("numpy.random"):
                    ctx.report(
                        node,
                        self,
                        f"import of {alias.name} in the faults subsystem — "
                        "draw from sim.rng StreamRegistry streams",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "random" or mod.startswith("random.") or "numpy.random" in mod:
                ctx.report(
                    node,
                    self,
                    f"from {mod} import ... in the faults subsystem — "
                    "draw from sim.rng StreamRegistry streams",
                )
            return
        # Calls: random.*, np.random.*, and bare generator constructors.
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "random" and len(parts) > 1:
            ctx.report(
                node,
                self,
                f"{name}() in the faults subsystem — even a seeded "
                "random.Random bypasses the plan's stream derivation",
            )
            return
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            ctx.report(
                node,
                self,
                f"{name}() in the faults subsystem — use StreamRegistry "
                "streams derived from FaultPlan.seed",
            )
            return
        if parts[-1] in ("default_rng", "SeedSequence", "Random", "RandomState"):
            ctx.report(
                node,
                self,
                f"{parts[-1]}() constructed directly in the faults "
                "subsystem — only StreamRegistry may build generators",
            )


def _mentions_best_effort(test: ast.AST) -> bool:
    """True when a branch test names a best-effort QoS constant.

    Matches ``QOS_BEST_EFFORT`` / ``QOS_BEST_EFFORT_FRESH`` and hot-path
    aliases ending in ``QOS_FRESH`` (e.g. ``_QOS_FRESH``), plus the
    negated-reliable idiom ``qos != QOS_RELIABLE``.  ``qos ==
    QOS_RELIABLE`` branches are the reliable path and never match.
    """
    for node in ast.walk(test):
        ident = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is not None:
            if "BEST_EFFORT" in ident or ident.endswith("QOS_FRESH"):
                return True
        if isinstance(node, ast.Compare) and any(
            isinstance(op, ast.NotEq) for op in node.ops
        ):
            for side in (node.left, *node.comparators):
                name = dotted_name(side)
                if name is not None and name.split(".")[-1].endswith("QOS_RELIABLE"):
                    return True
    return False


@register
class BestEffortTransportStateRule(Rule):
    """F2: best-effort branches touching reliable-transport state."""

    id = "F2"
    title = "best-effort QoS branch touches seq/pending transport state"
    severity = "error"
    rationale = (
        "The QoS contract (docs/ARCHITECTURE.md): a best-effort or FRESH "
        "send must leave zero reliable-transport footprint — no sequence "
        "stamp, no `pending` retransmit record, no ACK obligation — or "
        "quiescence accounting (which ignores best-effort traffic) and "
        "cycle-neutrality both break.  A branch guarded by a best-effort "
        "QoS test that mutates `pending`/`_next_seq`, stores a `.seq`, "
        "or calls `.stamp()` is reintroducing exactly that footprint."
    )
    node_types = ("If",)

    #: Attribute names that are reliable-transport bookkeeping.
    _STATE_ATTRS = frozenset({"pending", "_next_seq"})

    def applies_to(self, rel_path: str) -> bool:
        paths = (
            self.config.qos_paths
            if self.config is not None
            else ("src/repro/faults", "src/repro/pami", "src/repro/converse")
        )
        return any(
            rel_path == p or rel_path.startswith(p.rstrip("/") + "/") for p in paths
        )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if not _mentions_best_effort(node.test):
            return
        # Walk only this branch's body (not orelse: an else/elif chain
        # off a best-effort test is usually the reliable path), pruning
        # nested If statements — they are visited as their own nodes.
        stack = list(node.body)
        while stack:
            cur = stack.pop()
            if isinstance(cur, ast.If):
                continue
            for child in ast.iter_child_nodes(cur):
                stack.append(child)
            if isinstance(cur, ast.Attribute) and cur.attr in self._STATE_ATTRS:
                ctx.report(
                    cur,
                    self,
                    f"best-effort branch touches transport state `.{cur.attr}` "
                    "— unstamped sends must leave no retransmit footprint",
                )
            elif isinstance(cur, (ast.Assign, ast.AugAssign)):
                targets = cur.targets if isinstance(cur, ast.Assign) else [cur.target]
                for t in targets:
                    if isinstance(t, ast.Attribute) and t.attr == "seq":
                        ctx.report(
                            cur,
                            self,
                            "best-effort branch stores a `.seq` — sequence "
                            "stamping is the reliable path's job",
                        )
            elif isinstance(cur, ast.Call):
                name = dotted_name(cur.func)
                if name is not None and name.split(".")[-1] == "stamp":
                    ctx.report(
                        cur,
                        self,
                        f"best-effort branch calls {name}() — stamping "
                        "creates a pending record and an ACK obligation",
                    )
