"""Shard/SPMD determinism rules (S1-S3) — whole-program pass.

docs/SCALING.md §6 states the determinism contract for sharded runs in
prose: every shard builds the *same* mirrored program, registers entry
methods in a fixed order, seeds only the PEs it owns (guarded, because
mirror builders run on every shard but ``rt.pes[r]`` is None for
non-owned ranks), and breaks same-timestamp ties with the canonical
``(t, node, n)`` key.  Until now only code review enforced any of it.

The S family encodes those rules statically.  Scope is resolved through
the import graph built by pass 1: a module is SPMD code when it imports
``repro.sim.shard`` or ``repro.bgq.shardnet`` (so new shard workload
builders are covered automatically, while serial harnesses like
``harness/pingpong.py`` — where unguarded seeding is fine — stay out of
scope), plus anything listed in ``[tool.repro-lint] spmd-paths``.
"""

from __future__ import annotations

import ast
from typing import Optional

from .core import last_name, register
from .project import (
    ModuleInfo,
    ProjectContext,
    ProjectRule,
    enclosing_function,
    walk_with_stack,
)
from .rules_trace import _early_exit_guards, _test_guards

__all__ = [
    "ConditionalRegistrationRule",
    "UnguardedShardSeedRule",
    "NonCanonicalTieKeyRule",
]

#: Importing any of these marks a module as SPMD shard code.
_SPMD_MODULES = ("repro.sim.shard", "repro.bgq.shardnet")

#: Entry-method registration calls (Charm.register_entries /
#: register_entry) whose order must be identical on every shard.
_REGISTRATION_CALLS = frozenset({"register_entries", "register_entry"})


def _spmd_scope(config, pctx: ProjectContext):
    """The modules the S family applies to."""
    extra = tuple(getattr(config, "spmd_paths", ()) or ())
    for mi in pctx.modules.values():
        in_paths = any(
            mi.rel_path == p or mi.rel_path.startswith(p.rstrip("/") + "/")
            for p in extra
        )
        if in_paths or mi.imports_from(*_SPMD_MODULES):
            yield mi


class _SpmdRule(ProjectRule):
    """Shared scope resolution for the S family."""

    def modules(self, pctx: ProjectContext):
        return _spmd_scope(self.config, pctx)


@register
class ConditionalRegistrationRule(_SpmdRule):
    """S1: entry-method registration conditioned on rank or data."""

    id = "S1"
    title = "conditional entry-method registration in SPMD code"
    severity = "error"
    rationale = (
        "Handler ids are assigned in registration order; SCALING.md §6 "
        "requires every shard to register the same entry methods in the "
        "same fixed order before any traffic.  A registration call "
        "under if/while (conditioned on rank, data, or anything else) "
        "can diverge ids across shards, corrupting every cross-shard "
        "send."
    )

    def check_project(self, pctx: ProjectContext) -> None:
        for mi in self.modules(pctx):
            for node, stack in walk_with_stack(mi.tree):
                if not isinstance(node, ast.Call):
                    continue
                if last_name(node.func) not in _REGISTRATION_CALLS:
                    continue
                cond = next(
                    (
                        a
                        for a in stack
                        if isinstance(a, (ast.If, ast.While, ast.IfExp))
                    ),
                    None,
                )
                if cond is None:
                    continue
                pctx.report(
                    mi,
                    node,
                    self,
                    f"{last_name(node.func)}(...) under a conditional "
                    f"(line {cond.lineno}) — SPMD shards must register "
                    "entry methods unconditionally, in one fixed order "
                    "(docs/SCALING.md §6)",
                )


@register
class UnguardedShardSeedRule(_SpmdRule):
    """S2: seeding a possibly-absent PE without a None guard."""

    id = "S2"
    title = "unguarded PE seeding in an SPMD mirror builder"
    severity = "error"
    rationale = (
        "Mirror builders run on every shard, but rt.pes[r] is None for "
        "ranks the shard does not own; seeding via local_q without "
        "binding the PE and testing 'is not None' crashes every "
        "non-owning shard (or worse, silently seeds twice under a "
        "fabric that backfills).  Use charm.seed(...) or the guarded "
        "local_q idiom from harness/shardbench.py."
    )

    def check_project(self, pctx: ProjectContext) -> None:
        for mi in self.modules(pctx):
            for node, stack in walk_with_stack(mi.tree):
                receiver = self._seed_receiver(node)
                if receiver is None:
                    continue
                if isinstance(receiver, ast.Subscript):
                    pctx.report(
                        mi,
                        node,
                        self,
                        "seeding through a direct pes[...] subscript — bind "
                        "the PE first and guard it ('pe = rt.pes[r]; if pe "
                        "is not None: ...') or use charm.seed "
                        "(docs/SCALING.md §6)",
                    )
                    continue
                name = receiver.id if isinstance(receiver, ast.Name) else None
                if name is None:
                    continue
                if self._guarded(node, stack, name):
                    continue
                pctx.report(
                    mi,
                    node,
                    self,
                    f"{name}.local_q.append(...) without an "
                    f"'if {name} is not None' guard — non-owning shards "
                    "hold None here (docs/SCALING.md §6)",
                )

    @staticmethod
    def _seed_receiver(node: ast.AST) -> Optional[ast.AST]:
        """For ``X.local_q.append/extend(...)`` calls, the X node."""
        if not isinstance(node, ast.Call):
            return None
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in ("append", "extend", "appendleft")
            and isinstance(f.value, ast.Attribute)
            and f.value.attr == "local_q"
        ):
            return f.value.value
        return None

    @staticmethod
    def _guarded(node: ast.AST, stack, name: str) -> bool:
        lineno = getattr(node, "lineno", 1)
        child: ast.AST = node
        for anc in reversed(stack):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return _early_exit_guards(anc, name, lineno)
            if isinstance(anc, ast.If) and _test_guards(anc.test, name):
                if any(child is stmt for stmt in anc.body):
                    return True
            child = anc
        return False


@register
class NonCanonicalTieKeyRule(_SpmdRule):
    """S3: same-timestamp sort key without the canonical tie-breakers."""

    id = "S3"
    title = "non-canonical same-timestamp sort key in SPMD code"
    severity = "error"
    rationale = (
        "Cross-shard merge points order work by timestamp; when two "
        "items carry the same t, Python's stable sort preserves "
        "arrival order — which differs per shard layout.  SCALING.md §6 "
        "fixes the canonical key (t, node, n): timestamp, then source "
        "node, then per-source counter.  Sorting by t alone (or t plus "
        "a single tie-breaker) is nondeterministic across layouts."
    )

    def check_project(self, pctx: ProjectContext) -> None:
        for mi in self.modules(pctx):
            for node, _stack in walk_with_stack(mi.tree):
                lam = self._sort_key_lambda(node)
                if lam is None:
                    continue
                body = lam.body
                if isinstance(body, ast.Attribute) and body.attr == "t":
                    pctx.report(
                        mi,
                        node,
                        self,
                        "sort key is the timestamp alone — same-t items "
                        "tie-break by arrival order, which varies across "
                        "shard layouts; use the canonical (t, node, n) key "
                        "(docs/SCALING.md §6)",
                    )
                elif (
                    isinstance(body, ast.Tuple)
                    and body.elts
                    and isinstance(body.elts[0], ast.Attribute)
                    and body.elts[0].attr == "t"
                    and len(body.elts) < 3
                ):
                    pctx.report(
                        mi,
                        node,
                        self,
                        f"sort key has {len(body.elts)} component(s) starting "
                        "with .t — the canonical same-timestamp key is "
                        "(t, node, n) (docs/SCALING.md §6)",
                    )

    @staticmethod
    def _sort_key_lambda(node: ast.AST) -> Optional[ast.Lambda]:
        """The key= lambda of a .sort()/sorted() call, if any."""
        if not isinstance(node, ast.Call):
            return None
        name = last_name(node.func)
        if name not in ("sort", "sorted"):
            return None
        for kw in node.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Lambda):
                return kw.value
        return None
