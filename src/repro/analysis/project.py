"""Whole-program analysis: the ProjectContext two-pass architecture.

The per-file rules (:class:`~repro.analysis.core.Rule` +
:class:`~repro.analysis.core.FileContext`) see one AST at a time, which
is enough for syntactic hazards (a wall-clock call, a slotless Event
subclass) but blind to the property ROADMAP item 5 actually needs:
**no state shared between concurrent ``Environment`` instances**.
Shared state is a *relationship* — a binding defined in one module,
mutated from another, reached from an instance method in a third — so
proving its absence takes cross-module visibility.

Two passes:

1. **Pass 1** (:func:`build_project_context`) parses every file under
   the configured ``project-paths`` (default ``src/repro``) and builds,
   per module, a :class:`ModuleInfo`: the dotted module name, a symbol
   table of module-level bindings (classified mutable / unfrozen
   dataclass instance / other), the import map (local name -> dotted
   target, relative imports resolved), an inventory of class-level
   attributes, and every *runtime write site* — a ``global`` rebind or
   in-place container mutation of a module-level name from function
   scope, i.e. state that changes after import time.
2. **Pass 2** runs :class:`ProjectRule` subclasses (the G and S
   families) over the assembled :class:`ProjectContext`; rules resolve
   names across modules through the import maps and report violations
   anchored to the defining file and line.

Project-scope findings may carry a **dotted symbol path**
(``repro.analysis.core._REGISTRY``) used as their baseline fingerprint:
stable under line churn *and* under edits elsewhere in the file, unlike
the per-file ``(rule, path, line text)`` fingerprint.

Suppression works exactly like the per-file pass: line pragmas on the
reported line, file pragmas, baseline entries — plus the
``global-allow`` config list of dotted symbols for globals that are
deliberate (each entry should carry a justification comment in
pyproject.toml).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import FileContext, Rule, Violation

__all__ = [
    "BindingInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectContext",
    "ProjectRule",
    "WriteSite",
    "build_project_context",
    "module_dotted_name",
    "walk_with_stack",
    "MUTATOR_METHODS",
]

#: Constructor names whose call yields a mutable container (or a
#: stateful iterator, for itertools.count — PR 6's shared-uid lesson).
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque",
     "OrderedDict", "Counter", "count"}
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault", "pop",
     "popitem", "popleft", "appendleft", "remove", "discard", "clear",
     "sort", "reverse"}
)


def module_dotted_name(rel_path: str) -> str:
    """Dotted module name for a path relative to the analysis root.

    ``src/repro/bgq/params.py`` -> ``repro.bgq.params`` (the leading
    ``src`` component is the package dir, not a package);
    ``pkg/__init__.py`` -> ``pkg``; ``mod.py`` -> ``mod``.
    """
    parts = list(Path(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        stem = parts[-1][: -len(".py")]
        parts = parts[:-1] if stem == "__init__" else parts[:-1] + [stem]
    return ".".join(parts)


@dataclass(frozen=True)
class BindingInfo:
    """One module-level (or class-level) binding."""

    name: str
    module: str  # dotted module name
    rel_path: str
    lineno: int
    col: int
    #: ``mutable`` (dict/list/set/... literal or constructor),
    #: ``unfrozen-dataclass`` (instance of a project dataclass without
    #: ``frozen=True``), or ``other`` (not provably shared-mutable).
    kind: str
    #: For ``mutable``: the container kind; for ``unfrozen-dataclass``:
    #: the class name.
    detail: str = ""

    @property
    def symbol(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass(frozen=True)
class WriteSite:
    """A function-scope write/mutation of a module-level name."""

    module: str  # dotted name of the module the write occurs in
    local_name: str  # name as spelled at the write site
    rel_path: str
    lineno: int
    how: str  # 'mutate' (in-place) | 'rebind' (via ``global``)


@dataclass
class ClassInfo:
    """Class-level attribute inventory for one class definition."""

    name: str
    module: str
    rel_path: str
    lineno: int
    bases: Tuple[str, ...]
    #: Attribute name -> BindingInfo for class-body assignments.
    attrs: Dict[str, BindingInfo] = field(default_factory=dict)
    is_dataclass: bool = False
    frozen: bool = False

    @property
    def symbol(self) -> str:
        return f"{self.module}.{self.name}"

    def mutable_attrs(self) -> Dict[str, BindingInfo]:
        return {n: b for n, b in self.attrs.items() if b.kind != "other"}


@dataclass
class ModuleInfo:
    """Pass-1 product for one project module."""

    dotted: str
    rel_path: str
    tree: ast.AST
    file_ctx: FileContext  # pragma state + line text for reports
    #: Local name -> dotted import target (``from m import x`` -> m.x;
    #: ``import m`` -> m).  Used for one-hop cross-module resolution.
    imports: Dict[str, str] = field(default_factory=dict)
    #: Dotted module names this module imports (prefix-matchable).
    imported_modules: List[str] = field(default_factory=list)
    bindings: Dict[str, BindingInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    writes: List[WriteSite] = field(default_factory=list)
    #: ``global`` statements: (name, lineno).
    global_stmts: List[Tuple[str, int]] = field(default_factory=list)

    def imports_from(self, *prefixes: str) -> bool:
        """Does this module import anything under the given dotted prefixes?"""
        return any(
            mod == p or mod.startswith(p + ".")
            for mod in self.imported_modules
            for p in prefixes
        )


class ProjectContext:
    """Pass-2 view: every project module plus cross-module resolution."""

    def __init__(self, root: Path, modules: Dict[str, ModuleInfo]) -> None:
        self.root = Path(root)
        self.modules = modules  # dotted name -> ModuleInfo
        self.by_path: Dict[str, ModuleInfo] = {
            m.rel_path: m for m in modules.values()
        }
        self.violations: List[Violation] = []
        self._writes: Optional[Dict[str, List[WriteSite]]] = None

    # -- resolution ---------------------------------------------------------
    def resolve(self, module: ModuleInfo, name: str) -> Optional[BindingInfo]:
        """Resolve a bare name used in ``module`` to a module-level binding.

        Checks the module's own bindings first, then follows one
        ``from X import name`` hop into another project module.  Returns
        None for builtins, locals, and anything outside the project.
        """
        binding = module.bindings.get(name)
        if binding is not None:
            return binding
        target = module.imports.get(name)
        if target is None or "." not in target:
            return None
        target_mod, _, target_name = target.rpartition(".")
        other = self.modules.get(target_mod)
        return other.bindings.get(target_name) if other is not None else None

    def resolve_class(self, module: ModuleInfo, name: str) -> Optional[ClassInfo]:
        """Resolve a bare name to a project class definition (one hop)."""
        cls = module.classes.get(name)
        if cls is not None:
            return cls
        target = module.imports.get(name)
        if target is None or "." not in target:
            return None
        target_mod, _, target_name = target.rpartition(".")
        other = self.modules.get(target_mod)
        return other.classes.get(target_name) if other is not None else None

    def writes_to(self, symbol: str) -> List[WriteSite]:
        """Every project write site resolving to the given dotted symbol."""
        if self._writes is None:
            self._writes = {}
            for mi in self.modules.values():
                for w in mi.writes:
                    b = self.resolve(mi, w.local_name)
                    if b is not None:
                        self._writes.setdefault(b.symbol, []).append(w)
        return self._writes.get(symbol, [])

    # -- reporting ----------------------------------------------------------
    def report_at(
        self,
        module: ModuleInfo,
        lineno: int,
        col: int,
        rule: Rule,
        message: str,
        symbol: str = "",
    ) -> None:
        self.violations.append(
            Violation(
                rule=rule.id,
                severity=rule.severity,
                path=module.rel_path,
                line=lineno,
                col=col + 1,
                message=message,
                line_text=module.file_ctx.line_text(lineno),
                symbol=symbol,
            )
        )

    def report(
        self,
        module: ModuleInfo,
        node: ast.AST,
        rule: Rule,
        message: str,
        symbol: str = "",
    ) -> None:
        self.report_at(
            module,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            rule,
            message,
            symbol,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (pass 2).

    Subclasses implement :meth:`check_project` instead of :meth:`check`;
    they receive the full :class:`ProjectContext` once per run and call
    ``pctx.report(module, node, self, message, symbol=...)`` per
    finding.  ``symbol`` (a dotted path) makes the finding's baseline
    fingerprint line-churn-proof; leave it empty for positional
    findings.
    """

    project = True
    node_types: Tuple[str, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> None:  # pragma: no cover
        raise NotImplementedError("project rules use check_project()")

    def check_project(self, pctx: ProjectContext) -> None:  # pragma: no cover
        raise NotImplementedError


# -- shared walking helpers --------------------------------------------------

def walk_with_stack(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(node, ancestors)`` pairs, ancestors root-first.

    The yielded list is shared and mutated in place — copy it if you
    need to keep it past the current iteration step.
    """
    stack: List[ast.AST] = []

    def visit(node: ast.AST) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
        yield node, stack
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)


def enclosing_function(stack: Sequence[ast.AST]):
    """Innermost FunctionDef/AsyncFunctionDef ancestor, or None."""
    for node in reversed(stack):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


# -- pass 1 ------------------------------------------------------------------

def _value_kind(
    value: ast.AST, dataclasses_frozen: Dict[str, Optional[bool]]
) -> Tuple[str, str]:
    """Classify a bound value: ('mutable'|'unfrozen-dataclass'|'other', detail)."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "mutable", "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "mutable", "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "mutable", "set"
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name in _MUTABLE_CALLS:
            return "mutable", name
        if name is not None and dataclasses_frozen.get(name) is False:
            return "unfrozen-dataclass", name
    return "other", ""


def _dataclass_frozen(node: ast.ClassDef) -> Optional[bool]:
    """None if not a dataclass; else whether ``frozen=True`` was passed."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "frozen":
                    return bool(getattr(kw.value, "value", False))
        return False
    return None


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def function_locals(fn) -> Set[str]:
    """Names bound locally inside ``fn`` (arguments + assignments).

    Conservative: includes names assigned in nested functions too (a
    mutation of such a name is *probably* local), and excludes names
    declared ``global``.  Used to distinguish mutations of module-level
    bindings from mutations of ordinary locals.
    """
    names: Set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    globals_declared: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names - globals_declared


def _scan_module(
    dotted: str,
    rel_path: str,
    tree: ast.AST,
    source: str,
    dataclasses_frozen: Dict[str, Optional[bool]],
) -> ModuleInfo:
    mi = ModuleInfo(
        dotted=dotted,
        rel_path=rel_path,
        tree=tree,
        file_ctx=FileContext(rel_path, tree, source),
    )
    pkg_parts = dotted.split(".")

    def resolve_relative(level: int, module: Optional[str]) -> str:
        # Inside module a.b.c (a file, so its package is a.b):
        # level 1 -> a.b, level 2 -> a, plus the named tail.
        base = pkg_parts[:-1]
        if level > 1:
            base = base[: max(0, len(base) - (level - 1))]
        return ".".join(base + (module.split(".") if module else []))

    # Imports + module-level bindings (module body only; conditional
    # module-level assignments under try/if are intentionally skipped —
    # they are rare and version-gated, not shared registries).
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    mi.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    mi.imports[head] = head
                mi.imported_modules.append(alias.name)
        elif isinstance(stmt, ast.ImportFrom):
            target_mod = (
                resolve_relative(stmt.level, stmt.module)
                if stmt.level
                else (stmt.module or "")
            )
            if target_mod:
                mi.imported_modules.append(target_mod)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mi.imports[local] = (
                    f"{target_mod}.{alias.name}" if target_mod else alias.name
                )
        else:
            targets: List[Tuple[ast.Name, ast.AST]] = []
            if isinstance(stmt, ast.Assign):
                targets = [
                    (t, stmt.value)
                    for t in stmt.targets
                    if isinstance(t, ast.Name)
                ]
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None
            ):
                targets = [(stmt.target, stmt.value)]
            for tnode, value in targets:
                kind, detail = _value_kind(value, dataclasses_frozen)
                mi.bindings[tnode.id] = BindingInfo(
                    name=tnode.id,
                    module=dotted,
                    rel_path=rel_path,
                    lineno=tnode.lineno,
                    col=tnode.col_offset,
                    kind=kind,
                    detail=detail,
                )

    # Classes, ``global`` statements, and runtime write sites.
    locals_memo: Dict[int, Set[str]] = {}

    def is_local(fn, name: str) -> bool:
        if fn is None:
            return False
        key = id(fn)
        if key not in locals_memo:
            locals_memo[key] = function_locals(fn)
        return name in locals_memo[key]

    for node, stack in walk_with_stack(tree):
        if isinstance(node, ast.ClassDef):
            frozen = _dataclass_frozen(node)
            ci = ClassInfo(
                name=node.name,
                module=dotted,
                rel_path=rel_path,
                lineno=node.lineno,
                bases=tuple(
                    b for b in (_base_name(x) for x in node.bases) if b
                ),
                is_dataclass=frozen is not None,
                frozen=bool(frozen),
            )
            for stmt in node.body:
                tgt = val = None
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    tgt, val = stmt.targets[0].id, stmt.value
                elif (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                ):
                    tgt, val = stmt.target.id, stmt.value
                if tgt is None or tgt.startswith("__"):
                    continue
                if ci.is_dataclass:
                    # Dataclass field defaults become per-instance state
                    # (``field(default_factory=list)`` etc.), not
                    # class-shared — a bare mutable default would raise
                    # at class-creation time anyway.
                    continue
                kind, detail = _value_kind(val, dataclasses_frozen)
                ci.attrs[tgt] = BindingInfo(
                    name=tgt,
                    module=dotted,
                    rel_path=rel_path,
                    lineno=stmt.lineno,
                    col=stmt.col_offset,
                    kind=kind,
                    detail=detail,
                )
            mi.classes[node.name] = ci
            continue

        fn = enclosing_function(stack)
        if isinstance(node, ast.Global):
            for name in node.names:
                mi.global_stmts.append((name, node.lineno))
                mi.writes.append(
                    WriteSite(dotted, name, rel_path, node.lineno, "rebind")
                )
        elif fn is not None and isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr in MUTATOR_METHODS
                and isinstance(f.value, ast.Name)
                and not is_local(fn, f.value.id)
            ):
                mi.writes.append(
                    WriteSite(dotted, f.value.id, rel_path, node.lineno, "mutate")
                )
        elif fn is not None and isinstance(node, ast.Subscript):
            if (
                isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
                and not is_local(fn, node.value.id)
            ):
                mi.writes.append(
                    WriteSite(
                        dotted, node.value.id, rel_path, node.lineno, "mutate"
                    )
                )
        elif fn is not None and isinstance(node, ast.AugAssign):
            tgt = node.target
            if (
                isinstance(tgt, ast.Subscript)
                and isinstance(tgt.value, ast.Name)
                and not is_local(fn, tgt.value.id)
            ):
                mi.writes.append(
                    WriteSite(
                        dotted, tgt.value.id, rel_path, node.lineno, "mutate"
                    )
                )
    return mi


def build_project_context(root: Path, files: Sequence[Path]) -> ProjectContext:
    """Pass 1 over the given project files."""
    root = Path(root)
    parsed: List[Tuple[str, str, ast.AST, str]] = []
    # Project-wide dataclass frozen-ness, needed to classify
    # module-level instances of project dataclasses (the
    # ``DEFAULT_PARAMS = BGQParams()`` shape).
    dataclasses_frozen: Dict[str, Optional[bool]] = {}
    for path in files:
        rel = (
            path.relative_to(root).as_posix()
            if path.is_relative_to(root)
            else path.as_posix()
        )
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        parsed.append((module_dotted_name(rel), rel, tree, source))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                frozen = _dataclass_frozen(node)
                if frozen is not None:
                    dataclasses_frozen[node.name] = frozen
    modules = {
        dotted: _scan_module(dotted, rel, tree, source, dataclasses_frozen)
        for dotted, rel, tree, source in parsed
    }
    return ProjectContext(root, modules)
