"""repro.analysis — determinism & runtime-protocol static analysis.

``repro-lint`` walks the AST of ``src/`` and ``tests/`` and enforces
the invariants the benchmark gate and fuzz suites only check after the
fact: no host-order leaks into the simulated trajectory (rules D1-D4)
and no runtime-protocol misuse (rules P1-P4).  A small dynamic
sanitizer (``REPRO_SANITIZE=1``, :mod:`repro.analysis.sanitizer`)
covers what static analysis cannot prove.

Entry points: ``python -m repro.analysis`` or ``make lint``; the rule
catalog lives in docs/ANALYSIS.md.
"""

from .baseline import Baseline
from .config import Config, find_root, load_config
from .core import (
    AnalysisResult,
    Analyzer,
    FileContext,
    Rule,
    Violation,
    all_rule_classes,
    default_rules,
    register,
)
from .sanitizer import SanitizerError, check_ordered, sanitize_enabled, sanitized

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "Config",
    "FileContext",
    "Rule",
    "SanitizerError",
    "Violation",
    "all_rule_classes",
    "check_ordered",
    "default_rules",
    "find_root",
    "load_config",
    "register",
    "sanitize_enabled",
    "sanitized",
]
