"""repro.analysis — determinism & runtime-protocol static analysis.

``repro-lint`` walks the AST of ``src/`` and ``tests/`` and enforces
the invariants the benchmark gate and fuzz suites only check after the
fact: no host-order leaks into the simulated trajectory (rules D1-D4)
and no runtime-protocol misuse (rules P1-P4).  A second, whole-program
pass (:mod:`repro.analysis.project`) builds cross-module symbol tables
and the import graph, then enforces Environment isolation (rules G1-G4:
no shared module/class-level mutable state) and the SPMD shard
determinism contract from docs/SCALING.md (rules S1-S3).  A small
dynamic sanitizer (``REPRO_SANITIZE=1``,
:mod:`repro.analysis.sanitizer`) covers what static analysis cannot
prove.

Entry points: ``python -m repro.analysis`` or ``make lint``; the rule
catalog lives in docs/ANALYSIS.md.
"""

from .baseline import Baseline
from .cache import LintCache
from .config import Config, find_root, load_config
from .core import (
    AnalysisResult,
    Analyzer,
    FileContext,
    Rule,
    Violation,
    all_rule_classes,
    default_rules,
    register,
)
from .project import (
    ProjectContext,
    ProjectRule,
    build_project_context,
)
from .sanitizer import SanitizerError, check_ordered, sanitize_enabled, sanitized

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "Config",
    "FileContext",
    "LintCache",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "SanitizerError",
    "Violation",
    "all_rule_classes",
    "build_project_context",
    "check_ordered",
    "default_rules",
    "find_root",
    "load_config",
    "register",
    "sanitize_enabled",
    "sanitized",
]
