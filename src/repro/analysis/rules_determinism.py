"""Determinism rules (D1-D4).

The benchmark gate (EXPERIMENTS.md) hashes the exact ``repr`` of every
simulated-time observable: a single host-order leak into the trajectory
is a hard gate failure.  These rules flag the four leak classes that
actually occur in DES codebases — wall-clock reads, unseeded RNGs,
hash-ordered iteration feeding the scheduler, and ``id()``-based
ordering (CPython addresses vary run to run under ASLR).
"""

from __future__ import annotations

import ast
from typing import Optional

from .core import FileContext, Rule, contains, dotted_name, last_name, register

__all__ = ["WallClockRule", "UnseededRandomRule", "UnorderedIterationRule", "IdOrderingRule"]

#: Wall-clock reads: any of these inside simulation/runtime code makes
#: results depend on the host, not the simulated machine.
_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
})

#: ``random.<fn>`` calls that draw from the module-global (unseeded) RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random",
    "randint",
    "randrange",
    "random_sample",
    "getrandbits",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "seed",
})

#: Legacy numpy global-state RNG entry points (``np.random.<fn>``).
_NUMPY_GLOBAL_FNS = frozenset({
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "seed",
})

#: Method/function names whose invocation inside a loop body means the
#: loop feeds event scheduling or message ordering.
_SCHEDULING_NAMES = frozenset({
    "process",
    "succeed",
    "fail",
    "timeout",
    "schedule",
    "_schedule",
    "enqueue",
    "send",
    "send_to",
    "send_prioritized",
    "signal",
    "heappush",
    "put",
    "interrupt",
    "any_of",
    "all_of",
})

#: Condition factories whose argument order becomes callback order.
_CONDITION_NAMES = frozenset({"any_of", "all_of", "AnyOf", "AllOf"})


def _is_unordered_expr(node: ast.AST) -> bool:
    """Expression whose iteration order depends on the hash seed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = last_name(node.func)
        if name in ("set", "frozenset"):
            return True
        # set-algebra methods produce sets too
        if name in ("union", "intersection", "difference", "symmetric_difference"):
            return _is_unordered_expr(node.func.value) if isinstance(node.func, ast.Attribute) else False
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_unordered_expr(node.left) or _is_unordered_expr(node.right)
    return False


def _body_schedules(nodes) -> Optional[ast.Call]:
    """First scheduling-ish call in a statement list, or None."""
    for stmt in nodes:
        for n in ast.walk(stmt):
            if isinstance(n, ast.Call) and last_name(n.func) in _SCHEDULING_NAMES:
                return n
    return None


@register
class WallClockRule(Rule):
    """D1: wall-clock reads outside the measurement harness."""

    id = "D1"
    title = "wall-clock read in simulation code"
    severity = "error"
    rationale = (
        "Simulated time is the only clock: a host wall-clock read inside "
        "engine/runtime/model code couples the trajectory to the machine "
        "running it.  Only the measurement harness (``src/repro/harness``) "
        "and trace exporters (``src/repro/trace``) may read the host clock, "
        "and only for wall-time *reporting*, never for scheduling."
    )
    node_types = ("Call",)

    def applies_to(self, rel_path: str) -> bool:
        allow = (
            self.config.wallclock_allow
            if self.config is not None
            else ("src/repro/harness", "src/repro/trace")
        )
        return not any(
            rel_path == a or rel_path.startswith(a.rstrip("/") + "/") for a in allow
        )

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        name = dotted_name(node.func)
        if name in _WALL_CLOCK:
            ctx.report(
                node,
                self,
                f"wall-clock call {name}() — use env.now (simulated cycles); "
                "host timing belongs in the harness/trace allowlist",
            )


@register
class UnseededRandomRule(Rule):
    """D2: module-global or unseeded RNG use."""

    id = "D2"
    title = "unseeded / global-state RNG"
    severity = "error"
    rationale = (
        "Run-to-run determinism requires every random draw to come from a "
        "named, seeded stream (``repro.sim.rng.StreamRegistry``) or an "
        "explicitly seeded Generator.  The module-global ``random.*`` and "
        "legacy ``numpy.random.*`` entry points share hidden global state "
        "seeded from the OS."
    )
    node_types = ("Call",)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        # random.<fn>() on the module-global RNG (incl. random.seed).
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _GLOBAL_RANDOM_FNS:
            ctx.report(
                node,
                self,
                f"{name}() draws from the global RNG — use sim.rng "
                "StreamRegistry or random.Random(seed)",
            )
            return
        # random.Random() with no seed argument.
        if name in ("random.Random", "Random") and not node.args and not node.keywords:
            ctx.report(node, self, "Random() without a seed — pass an explicit seed")
            return
        # numpy legacy global RNG: np.random.<fn> / numpy.random.<fn>.
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in _NUMPY_GLOBAL_FNS
        ):
            ctx.report(
                node,
                self,
                f"{name}() uses numpy's global RNG state — use "
                "np.random.default_rng(seed) or sim.rng",
            )
            return
        # default_rng()/SeedSequence() with no arguments = OS entropy.
        if parts[-1] in ("default_rng", "SeedSequence") and not node.args and not node.keywords:
            ctx.report(
                node,
                self,
                f"{parts[-1]}() without a seed draws OS entropy — pass an "
                "explicit seed (or use sim.rng streams)",
            )


@register
class UnorderedIterationRule(Rule):
    """D3: hash-ordered iteration feeding scheduling or message order."""

    id = "D3"
    title = "set iteration feeds event scheduling"
    severity = "error"
    rationale = (
        "Python set iteration order depends on the hash seed and insertion "
        "history; if the loop body schedules events, enqueues messages, or "
        "builds a condition, that order becomes the event trajectory and "
        "the bench-gate checksum drifts between hosts.  Sort the elements "
        "(``sorted(...)``) or keep an ordered container."
    )
    node_types = ("For", "Call")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.For):
            if _is_unordered_expr(node.iter):
                call = _body_schedules(node.body)
                if call is not None:
                    ctx.report(
                        node,
                        self,
                        "iterating a set while scheduling "
                        f"({last_name(call.func)}(...) in the loop body) — "
                        "sort the elements first",
                    )
        elif isinstance(node, ast.Call):
            if last_name(node.func) in _CONDITION_NAMES:
                for arg in node.args:
                    if _is_unordered_expr(arg):
                        ctx.report(
                            node,
                            self,
                            f"{last_name(node.func)}() over a set — callback "
                            "registration order would follow hash order",
                        )


@register
class IdOrderingRule(Rule):
    """D4: ``id()`` used for ordering or hashing."""

    id = "D4"
    title = "id()-based ordering/hashing"
    severity = "error"
    rationale = (
        "CPython object addresses vary between runs (allocator state, "
        "ASLR), so any ordering or mapping keyed on ``id()`` — sort keys, "
        "dict-comprehension keys, heap entries — injects host memory "
        "layout into the trajectory.  Identity *membership* tests are "
        "fine; identity *order* is not."
    )
    node_types = ("Call",)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "id"):
            return
        for ancestor in reversed(ctx.stack):
            if isinstance(ancestor, ast.DictComp) and contains(ancestor.key, node):
                ctx.report(node, self, "id() as a dict-comprehension key — "
                           "dedup with an ordered loop + seen-set instead")
                return
            if isinstance(ancestor, ast.Dict) and any(
                k is not None and contains(k, node) for k in ancestor.keys
            ):
                ctx.report(node, self, "id() as a dict key")
                return
            if isinstance(ancestor, ast.Call):
                fname = last_name(ancestor.func)
                if fname in ("sorted", "min", "max"):
                    for kw in ancestor.keywords:
                        if kw.arg == "key" and contains(kw.value, node):
                            ctx.report(node, self, f"id() inside a {fname}() sort key")
                            return
                if fname == "heappush" and any(contains(a, node) for a in ancestor.args):
                    ctx.report(node, self, "id() inside a heap entry")
                    return
                if fname == "hash" and any(a is node for a in ancestor.args):
                    ctx.report(node, self, "hash(id(...)) — address-derived hash")
                    return
