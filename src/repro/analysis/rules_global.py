"""Global-state isolation rules (G1-G4) — whole-program pass.

ROADMAP item 5 (simulation-as-a-service) requires that any number of
``Environment`` instances coexist in one process without observing each
other.  Python offers three ways to smuggle state between them:

* a module-level mutable binding (dict/list/set/unfrozen-dataclass
  instance) — imported once, shared by every instance;
* a ``global`` statement — rebinding module state from function scope;
* a class-level mutable attribute — one object shared by every
  instance of the class (PR 6's ``itertools.count`` uid bug was exactly
  this shape).

The G family makes each shape a lint error, project-wide, using the
pass-1 inventory in :mod:`repro.analysis.project`.  Deliberate globals
(import-time-only registries) are exempted via the ``global-allow``
config list; each entry carries a justification comment in
pyproject.toml.  G findings carry dotted symbol paths as baseline
fingerprints, so grandfathered entries survive line churn.
"""

from __future__ import annotations

import ast

from .core import register
from .project import (
    MUTATOR_METHODS,
    ProjectContext,
    ProjectRule,
    enclosing_function,
    function_locals,
    walk_with_stack,
)

__all__ = [
    "ModuleGlobalMutableRule",
    "GlobalStatementRule",
    "ClassLevelMutableRule",
    "MethodReachesModuleStateRule",
]

#: Base classes whose class-level "attributes" are enum members /
#: namespace constants, not shared mutable state.
_EXEMPT_BASES = frozenset({"Enum", "IntEnum", "Flag", "IntFlag", "Protocol"})


def _allowlist(config) -> frozenset:
    return frozenset(getattr(config, "global_allow", ()) or ())


@register
class ModuleGlobalMutableRule(ProjectRule):
    """G1: module-level mutable binding not frozen or allowlisted."""

    id = "G1"
    title = "module-level mutable binding (shared across Environments)"
    severity = "error"
    rationale = (
        "A module-level dict/list/set or unfrozen-dataclass instance is "
        "created once at import time and shared by every Environment in "
        "the process; any write through it leaks state between "
        "concurrent instances (ROADMAP item 5).  Freeze constant tables "
        "(frozenset/tuple/MappingProxyType, @dataclass(frozen=True)) or "
        "allowlist deliberate import-time registries in "
        "[tool.repro-lint] global-allow with a justification."
    )

    def check_project(self, pctx: ProjectContext) -> None:
        allow = _allowlist(self.config)
        for mi in pctx.modules.values():
            for name, b in sorted(mi.bindings.items()):
                if name.startswith("__") or b.kind == "other":
                    continue
                if b.symbol in allow:
                    continue
                writes = pctx.writes_to(b.symbol)
                if writes:
                    w = writes[0]
                    detail = (
                        f"written after import time at {w.rel_path}:{w.lineno}"
                    )
                elif b.kind == "unfrozen-dataclass":
                    detail = (
                        f"instance of unfrozen dataclass {b.detail}; declare "
                        f"@dataclass(frozen=True) on {b.detail}"
                    )
                else:
                    detail = (
                        f"unfrozen {b.detail}; use frozenset/tuple/"
                        "types.MappingProxyType"
                    )
                pctx.report_at(
                    mi,
                    b.lineno,
                    b.col,
                    self,
                    f"module-level mutable binding '{b.symbol}' {detail} — "
                    "state must be per-Environment, frozen, or allowlisted "
                    "(docs/ANALYSIS.md, G family)",
                    symbol=b.symbol,
                )


@register
class GlobalStatementRule(ProjectRule):
    """G2: ``global`` statement in project code."""

    id = "G2"
    title = "global statement (rebinding module state at runtime)"
    severity = "error"
    rationale = (
        "``global`` rebinds module-level state from function scope — the "
        "most direct way to couple concurrent Environment instances.  "
        "Thread state through Environment/Charm constructor arguments "
        "instead."
    )

    def check_project(self, pctx: ProjectContext) -> None:
        for mi in pctx.modules.values():
            for name, lineno in mi.global_stmts:
                pctx.report_at(
                    mi,
                    lineno,
                    0,
                    self,
                    f"'global {name}' rebinding module state at runtime — "
                    "pass state through the owning Environment/Charm instead",
                )


@register
class ClassLevelMutableRule(ProjectRule):
    """G3: class-level mutable attribute (shared by all instances)."""

    id = "G3"
    title = "class-level mutable attribute (shared across instances)"
    severity = "error"
    rationale = (
        "A mutable object assigned in a class body is one object shared "
        "by every instance — a counter or registry there couples every "
        "Environment that instantiates the class (the shape of PR 6's "
        "shared-uid bug).  Initialize per-instance state in __init__ "
        "(or a dataclass default_factory) instead."
    )

    def check_project(self, pctx: ProjectContext) -> None:
        for mi in pctx.modules.values():
            for ci in mi.classes.values():
                if set(ci.bases) & _EXEMPT_BASES:
                    continue
                for name, b in sorted(ci.mutable_attrs().items()):
                    symbol = f"{ci.symbol}.{name}"
                    pctx.report_at(
                        mi,
                        b.lineno,
                        b.col,
                        self,
                        f"class-level mutable attribute '{symbol}' is shared "
                        "by every instance — move it to __init__ so each "
                        "Environment owns its own",
                        symbol=symbol,
                    )


@register
class MethodReachesModuleStateRule(ProjectRule):
    """G4: instance method reading/mutating a module-level registry."""

    id = "G4"
    title = "instance method reaches module-level mutable state"
    severity = "error"
    rationale = (
        "An instance method that reads or mutates a module-level "
        "registry (directly or via a one-hop import) ties the object's "
        "behaviour to process-wide state instead of state threaded "
        "through Environment/Charm; two concurrent instances then "
        "observe each other's writes.  Resolution is cross-module: the "
        "registry may live in a different file than the method."
    )

    def check_project(self, pctx: ProjectContext) -> None:
        allow = _allowlist(self.config)
        locals_memo = {}
        for mi in pctx.modules.values():
            for node, stack in walk_with_stack(mi.tree):
                if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                    continue
                fn = enclosing_function(stack)
                if fn is None or not any(
                    isinstance(a, ast.ClassDef) for a in stack
                ):
                    continue
                args = fn.args.posonlyargs + fn.args.args
                if not args or args[0].arg not in ("self", "cls"):
                    continue
                if id(fn) not in locals_memo:
                    locals_memo[id(fn)] = function_locals(fn)
                if node.id in locals_memo[id(fn)]:
                    continue
                binding = pctx.resolve(mi, node.id)
                if binding is None or binding.kind == "other":
                    continue
                if binding.symbol in allow:
                    continue
                # Only flag uses that can observe cross-instance state:
                # mutator calls, subscript access, iteration/membership.
                parent = stack[-1] if stack else None
                is_reach = isinstance(parent, ast.Subscript) or (
                    isinstance(parent, ast.Attribute)
                    and parent.attr in (MUTATOR_METHODS | {"get", "keys", "values", "items"})
                ) or isinstance(parent, (ast.Compare, ast.For, ast.comprehension))
                if not is_reach:
                    continue
                cls_name = next(
                    a.name for a in reversed(stack) if isinstance(a, ast.ClassDef)
                )
                method = f"{mi.dotted}.{cls_name}.{fn.name}"
                pctx.report(
                    mi,
                    node,
                    self,
                    f"method {method} reaches module-level mutable state "
                    f"'{binding.symbol}' (defined at {binding.rel_path}:"
                    f"{binding.lineno}) — thread it through the owning "
                    "Environment/Charm instead",
                    symbol=f"{method}->{binding.symbol}",
                )
