"""Priority job queue for the service's worker pool.

A thin asyncio wrapper over a binary heap of :class:`~repro.serve.job.Job`
records ordered by ``(priority, submission seq)`` — smaller priority
runs first, FIFO within a priority band.  The ordering lives on
``Job.__lt__`` so the queue itself stays policy-free.

Cancellation of *queued* jobs is handled lazily: the control plane
finalizes the job in place and :meth:`pop` discards terminal entries
when they surface, which keeps cancel O(1) instead of O(n) heap
surgery.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import List, Optional

from .job import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Async priority queue of jobs (min-heap on ``(priority, seq)``)."""

    def __init__(self) -> None:
        self._heap: List[Job] = []
        self._nonempty = asyncio.Event()
        self._closed = False

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, job: Job) -> None:
        if self._closed:
            raise RuntimeError("queue is closed")
        heapq.heappush(self._heap, job)
        self._nonempty.set()

    async def pop(self) -> Optional[Job]:
        """Next runnable job, or None once the queue is closed and drained.

        Jobs already finalized while queued (lazy cancellation) are
        skipped silently.
        """
        while True:
            while self._heap:
                job = heapq.heappop(self._heap)
                if not self._heap:
                    self._nonempty.clear()
                if not job.terminal:
                    return job
            if self._closed:
                return None
            self._nonempty.clear()
            waiter = asyncio.ensure_future(self._nonempty.wait())
            try:
                await waiter
            finally:
                waiter.cancel()

    def close(self) -> None:
        """Stop accepting work and wake blocked poppers."""
        self._closed = True
        self._nonempty.set()

    def pending(self) -> List[Job]:
        """Queued (non-terminal) jobs in execution order, for inspection."""
        return sorted(j for j in self._heap if not j.terminal)
