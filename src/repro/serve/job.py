"""Job model for the simulation-as-a-service runtime.

A *job* is one independent simulation (or model evaluation) with its
own seed, configuration, delivery-QoS choice and priority.  The
:class:`JobSpec` is the immutable request; the :class:`Job` is the
service-side record that tracks its lifecycle::

    queued -> running -> done | failed | cancelled
       \\______________________________/
              cancel() from any non-terminal state

Concurrency contract (the paper's theme, applied to the service): every
job owns a private :class:`~repro.sim.Environment`, so N jobs can
interleave on one event loop with **bit-identical** results to solo
runs — the property ``make iso-gate`` proves and ``make serve-gate``
re-proves under real service load.  A per-job *session mutex*
(``Job.mutex``) serializes lifecycle transitions between the executing
worker and control-plane calls (``cancel``, shutdown), never the
stepping itself.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .task import SimTask

__all__ = [
    "JobError",
    "JobStallError",
    "JobSpec",
    "Job",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "result_checksum",
]


class JobError(RuntimeError):
    """Raised for invalid job-service usage (unknown id, bad spec...)."""


class JobStallError(JobError):
    """A job's event queue drained before its done event was processed."""


# Lifecycle states (str constants keep status dicts JSON-friendly).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


def result_checksum(payload: Mapping[str, Any]) -> str:
    """Bit-exact digest over repr'd observables (iso-gate convention)."""
    blob = json.dumps(dict(payload), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one job.

    ``build`` constructs the job's :class:`~repro.serve.task.SimTask`
    from this spec — it runs on the executing worker, so a spec is
    cheap to submit and all simulation state is private to the worker
    that runs it.  ``seed``/``config``/``qos`` parameterize the build;
    the service itself only interprets ``priority`` (smaller runs
    first, FIFO within a priority) and the two pacing knobs.
    """

    name: str
    build: Callable[["JobSpec"], "SimTask"]
    seed: int = 0
    config: Mapping[str, Any] = field(default_factory=dict)
    qos: str = "reliable"
    priority: int = 0
    #: Engine events advanced per cooperative slice (the worker yields
    #: the event loop between slices, so this bounds scheduling latency
    #: for other jobs sharing the pool).
    slice_events: int = 256
    #: Emit a progress chunk to stream subscribers every N slices.
    stream_every: int = 4

    def config_key(self) -> str:
        """Canonical repr of (seed, config, qos) — cache/diff friendly."""
        items = sorted((str(k), repr(v)) for k, v in self.config.items())
        return repr((self.seed, items, self.qos))


class Job:
    """Service-side record of one submitted job."""

    def __init__(self, job_id: str, seq: int, spec: JobSpec, now_s: float) -> None:
        self.id = job_id
        #: Global submission sequence number: the priority tie-break,
        #: so equal-priority jobs run in submission order.
        self.seq = seq
        self.spec = spec
        self.state = QUEUED
        self.cancel_requested = False
        #: Session mutex: lifecycle transitions (worker) vs control
        #: plane (cancel/shutdown) — held only around state flips.
        self.mutex = asyncio.Lock()
        self.worker: Optional[int] = None
        self.error: Optional[str] = None
        self.result: Optional[Dict[str, Any]] = None
        self.checksum: Optional[str] = None
        # Host-side latency bookkeeping (service clock, seconds).
        self.submitted_s = now_s
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        #: Emitted stream chunks, in order (subscribers joining late
        #: replay this history first).
        self.chunks: List[Dict[str, Any]] = []
        self._subs: List[asyncio.Queue] = []
        self._done = asyncio.Event()

    # -- ordering (heap entries compare (priority, seq, job)) -------------
    def __lt__(self, other: "Job") -> bool:
        return (self.spec.priority, self.seq) < (other.spec.priority, other.seq)

    # -- streaming ---------------------------------------------------------
    def emit(self, chunk: Dict[str, Any]) -> None:
        """Append a chunk to the stream history and wake subscribers."""
        self.chunks.append(chunk)
        for q in self._subs:
            q.put_nowait(chunk)

    def _close_streams(self) -> None:
        for q in self._subs:
            q.put_nowait(None)
        self._subs = []

    # -- lifecycle ---------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def finalize(
        self,
        state: str,
        now_s: float,
        result: Optional[Dict[str, Any]] = None,
        checksum: Optional[str] = None,
        error: Optional[str] = None,
    ) -> bool:
        """Enter a terminal state exactly once; later calls are no-ops.

        Mirrors the ``Tracer.finish()`` contract: a cancelled job can be
        reached by both the worker and the shutdown sweep.  Returns
        whether *this* call performed the transition — the service keys
        its terminal metrics (completion counters, latency histogram)
        off that, so double finalization can never double-count.
        """
        if self.terminal:
            return False
        self.state = state
        self.finished_s = now_s
        self.result = result
        self.checksum = checksum
        self.error = error
        final = {"type": state, "job": self.id}
        if checksum is not None:
            final["checksum"] = checksum
        if result is not None:
            final["result"] = result
        if error is not None:
            final["error"] = error
        self.emit(final)
        self._close_streams()
        self._done.set()
        return True

    async def wait(self) -> "Job":
        """Block until the job reaches a terminal state."""
        await self._done.wait()
        return self

    # -- inspection --------------------------------------------------------
    def latency_s(self) -> Optional[float]:
        """Submit-to-terminal latency (None while in flight)."""
        if self.finished_s is None:
            return None
        return self.finished_s - self.submitted_s

    def wait_s(self) -> Optional[float]:
        """Queue wait: submit-to-running latency (None while queued).

        Jobs that finalize without ever running (cancelled while
        queued) keep ``started_s is None`` and report no wait — the
        per-priority wait histogram only describes jobs a worker
        actually picked up.
        """
        if self.started_s is None:
            return None
        return self.started_s - self.submitted_s

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly status record (the ``status`` API payload)."""
        return {
            "id": self.id,
            "name": self.spec.name,
            "state": self.state,
            "priority": self.spec.priority,
            "seed": self.spec.seed,
            "qos": self.spec.qos,
            "worker": self.worker,
            "cancel_requested": self.cancel_requested,
            "checksum": self.checksum,
            "error": self.error,
            "latency_s": self.latency_s(),
            "wait_s": self.wait_s(),
        }
