"""The job service: submit/status/cancel/stream over a worker pool.

:class:`JobService` is the tentpole runtime — N independent simulation
jobs multiplexed onto one process.  Architecture:

* **submit** validates the :class:`~repro.serve.job.JobSpec`, mints a
  job id, and pushes onto the :class:`~repro.serve.queue.JobQueue`
  (priority heap; FIFO within a band).
* **worker pool** — ``workers`` asyncio tasks pop jobs and execute
  their :class:`~repro.serve.task.SimTask` in *cooperative slices*:
  ``task.advance(spec.slice_events)`` then ``await asyncio.sleep(0)``,
  so concurrent jobs interleave at slice granularity while each
  Environment's internal event order is untouched (the iso-gate
  property makes this bit-identical to solo execution).
* **session mutex** — each job's ``mutex`` serializes lifecycle
  transitions between its executing worker and control-plane calls
  (``cancel``, ``close``); the stepping itself runs outside the lock so
  cancel latency is one slice, not one job.
* **streaming** — workers emit progress chunks (and, for traced jobs,
  incremental manifest snapshots) into the job's chunk history;
  :meth:`JobService.stream` replays history then follows live until the
  terminal chunk.
* **calibration cache** — a shared :class:`~repro.serve.cache.CalibrationCache`
  handed to model tasks so repeated perfmodel submissions are memoized.

Wall-clock policy: the service measures *host-side* latency (queue wait,
slice scheduling) with ``time.monotonic`` — that is load telemetry, not
simulation state, and never feeds back into an Environment.  Simulated
results remain pure functions of (seed, config); ``make serve-gate``
enforces exactly that.

Operational metrics: every service owns a
:class:`~repro.obs.metrics.MetricsRegistry` (``service.metrics``) fed at
the submit/pop/slice/finalize choke points — queue depth, per-priority
queue wait, slice duration, worker busy/idle split, cancels, completion
counters by terminal state, and end-to-end latency.  The latency
histogram is *the* source for servebench's p50/p99 (the gate number and
the live metric share one code path); :meth:`JobService.metrics_snapshot`
adds the cache gauges and returns the JSON snapshot.  Catalog in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import traceback
from typing import Any, AsyncIterator, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from .cache import CalibrationCache
from .job import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    Job,
    JobError,
    JobSpec,
)
from .queue import JobQueue

__all__ = ["JobService"]

#: Slice-duration buckets (seconds): one cooperative slice is a few
#: hundred engine events (~ms) up to a whole sharded window.
SLICE_BUCKETS_S = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

#: Per-slice event-count buckets: slice_events cycles 32..256 in the
#: servebench load, but sharded windows can run far past the bound.
SLICE_EVENT_BUCKETS = (32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)


class JobService:
    """Concurrent simulation-as-a-service runtime (one process, N jobs)."""

    def __init__(self, workers: int = 4, clock=time.monotonic) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = int(workers)
        self._clock = clock
        self._queue = JobQueue()
        self._jobs: Dict[str, Job] = {}
        self._seq = itertools.count()
        self._worker_tasks: List[asyncio.Task] = []
        self._started = False
        self._closed = False
        self.cache = CalibrationCache()
        #: Live operational metrics (instance-owned: concurrent
        #: services never share counters).  Instruments are declared up
        #: front so a snapshot of an idle service already carries the
        #: full catalog with zeroes.
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_submitted = m.counter(
            "serve.jobs.submitted", "Jobs accepted by submit()"
        )
        self._m_completed = m.counter(
            "serve.jobs.completed",
            "Jobs reaching a terminal state, by state",
            labels=("state",),
        )
        self._m_cancels = m.counter(
            "serve.cancel.requests", "cancel() calls against non-terminal jobs"
        )
        self._m_depth = m.gauge(
            "serve.queue.depth", "Runnable jobs waiting in the priority queue"
        )
        self._m_wait = m.histogram(
            "serve.queue.wait_s",
            "Submit-to-running queue wait, by priority band",
            labels=("priority",),
        )
        self._m_slice = m.histogram(
            "serve.slice.duration_s",
            "Host wall time of one cooperative task.advance() slice",
            buckets=SLICE_BUCKETS_S,
        )
        self._m_slice_events = m.histogram(
            "serve.slice.events",
            "Engine events actually advanced in one slice",
            buckets=SLICE_EVENT_BUCKETS,
        )
        self._m_latency = m.histogram(
            "serve.latency_s", "Submit-to-terminal job latency"
        )
        self._m_busy = m.counter(
            "serve.worker.busy_s", "Wall time spent executing jobs", labels=("worker",)
        )
        self._m_idle = m.counter(
            "serve.worker.idle_s", "Wall time spent waiting on the queue", labels=("worker",)
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool (idempotent; requires a running loop)."""
        if self._started:
            return
        self._started = True
        for wid in range(self.workers):
            t = asyncio.ensure_future(self._worker(wid))
            self._worker_tasks.append(t)

    async def close(self, cancel_pending: bool = True) -> None:
        """Drain (or cancel) outstanding work and stop the pool.

        With ``cancel_pending`` (the default) queued jobs are cancelled
        immediately and running jobs get a cancel request honoured at
        their next slice boundary; otherwise the pool drains the queue
        before exiting.
        """
        if self._closed:
            return
        self._closed = True
        if cancel_pending:
            for job in list(self._jobs.values()):
                if not job.terminal:
                    await self.cancel(job.id)
        self._queue.close()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks)
        self._worker_tasks = []

    # -- control plane -----------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns its service-side record immediately."""
        if self._closed:
            raise JobError("service is closed")
        if not callable(spec.build):
            raise JobError(f"job {spec.name!r}: spec.build is not callable")
        if spec.slice_events < 1:
            raise JobError(f"job {spec.name!r}: slice_events must be >= 1")
        seq = next(self._seq)
        job = Job(f"{spec.name}-{seq:04d}", seq, spec, self._clock())
        self._jobs[job.id] = job
        job.emit({"type": "queued", "job": job.id, "priority": spec.priority})
        self._queue.push(job)
        self._m_submitted.inc()
        self._m_depth.set(len(self._queue))
        return job

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._get(job_id).snapshot()

    def jobs(self) -> List[Dict[str, Any]]:
        """Snapshots of every known job, in submission order."""
        return [j.snapshot() for j in sorted(self._jobs.values(), key=lambda j: j.seq)]

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job will not produce a result.

        Queued jobs finalize immediately (the queue discards them
        lazily); running jobs are flagged and their worker honours the
        flag at the next slice boundary.  Terminal jobs return False.
        """
        job = self._get(job_id)
        async with job.mutex:
            if job.terminal:
                return False
            job.cancel_requested = True
            self._m_cancels.inc()
            if job.state == RUNNING:
                return True  # the executing worker owns the teardown
            self._finalize(job, CANCELLED, error="cancelled while queued")
            return True

    async def join(self, *job_ids: str) -> List[Job]:
        """Wait for the given jobs (all jobs when none named)."""
        targets = [self._get(j) for j in job_ids] if job_ids else list(self._jobs.values())
        await asyncio.gather(*(j.wait() for j in targets))
        return targets

    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Yield the job's chunks: history first, then live to terminal."""
        job = self._get(job_id)
        # Snapshot history, then subscribe under the mutex so no chunk
        # lands in the gap between replay and subscription.
        async with job.mutex:
            history = list(job.chunks)
            live: Optional[asyncio.Queue] = None
            if not job.terminal:
                live = asyncio.Queue()
                job._subs.append(live)
        for chunk in history:
            yield chunk
        if live is None:
            return
        while True:
            chunk = await live.get()
            if chunk is None:
                return
            yield chunk

    # -- metrics -----------------------------------------------------------
    def _finalize(self, job: Job, state: str, **kw: Any) -> None:
        """Terminal transition plus metrics, in one place.

        Callers hold ``job.mutex``.  The completion counter and latency
        histogram key off :meth:`Job.finalize`'s return value, so a job
        racing two finalizers (worker vs shutdown sweep) is counted by
        whichever call actually performed the transition — never both.
        """
        if job.finalize(state, self._clock(), **kw):
            self._m_completed.labels(state=state).inc()
            latency = job.latency_s()
            if latency is not None:
                self._m_latency.observe(latency)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Refresh the sampled gauges and return the registry snapshot.

        Queue depth and the calibration-cache gauges are *read* here
        rather than pushed from the cache (the cache predates the
        metrics layer and stays dependency-free); everything else in
        the snapshot was recorded live at the choke points.
        """
        self._m_depth.set(len(self._queue))
        stats = self.cache.stats()
        m = self.metrics
        m.gauge("serve.cache.entries", "Calibration cache entries").set(
            stats["entries"]
        )
        m.gauge("serve.cache.hits", "Calibration cache hits").set(stats["hits"])
        m.gauge("serve.cache.misses", "Calibration cache misses").set(
            stats["misses"]
        )
        m.gauge("serve.cache.hit_rate", "Calibration cache hit ratio").set(
            stats["hit_rate"]
        )
        return m.snapshot()

    # -- data plane --------------------------------------------------------
    async def _worker(self, wid: int) -> None:
        idle = self._m_idle.labels(worker=wid)
        busy = self._m_busy.labels(worker=wid)
        while True:
            t0 = self._clock()
            job = await self._queue.pop()
            t1 = self._clock()
            idle.inc(t1 - t0)
            if job is None:
                return
            self._m_depth.set(len(self._queue))
            await self._execute(job, wid)
            busy.inc(self._clock() - t1)

    async def _execute(self, job: Job, wid: int) -> None:
        spec = job.spec
        async with job.mutex:
            if job.terminal:
                return
            if job.cancel_requested:
                self._finalize(job, CANCELLED, error="cancelled while queued")
                return
            job.state = RUNNING
            job.worker = wid
            job.started_s = self._clock()
        self._m_wait.labels(priority=spec.priority).observe(job.wait_s())
        job.emit({"type": "running", "job": job.id, "worker": wid})

        task = None
        try:
            task = spec.build(spec)
            task.start()
            slices = 0
            while True:
                if job.cancel_requested:
                    task.stop()
                    async with job.mutex:
                        self._finalize(
                            job, CANCELLED, error="cancelled while running"
                        )
                    return
                ev0 = task.events()
                s0 = self._clock()
                finished = task.advance(spec.slice_events)
                self._m_slice.observe(self._clock() - s0)
                self._m_slice_events.observe(task.events() - ev0)
                if finished:
                    break
                slices += 1
                if spec.stream_every and slices % spec.stream_every == 0:
                    chunk = {
                        "type": "progress",
                        "job": job.id,
                        "queue_depth": len(self._queue),
                        **task.progress(),
                    }
                    manifest = task.manifest()
                    if manifest is not None:
                        chunk["manifest"] = manifest
                    job.emit(chunk)
                # The cooperative yield: other jobs' slices run here.
                await asyncio.sleep(0)
            task.stop()
            result = task.result()
            checksum = task.checksum()
            async with job.mutex:
                self._finalize(job, DONE, result=result, checksum=checksum)
        except Exception as exc:
            if task is not None:
                try:
                    task.stop()
                except Exception:
                    pass  # teardown best-effort; the original error wins
            err = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            async with job.mutex:
                self._finalize(job, FAILED, error=err)
