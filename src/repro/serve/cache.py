"""Calibration-result cache: memoize pure perfmodel evaluations.

Perfmodel curves (:mod:`repro.perfmodel`) are pure functions of their
configuration, yet under service load the same calibration is requested
by many clients — every figure regeneration re-derives the same Fig. 5
latency curve.  The cache keys on the *function identity plus canonical
argument repr*, so two submissions with bit-identical configs share one
evaluation and a changed config can never alias a stale entry.

Determinism note: memoization is safe precisely because the cached
computations are pure — the cache returns the same object a fresh call
would construct, so job checksums are unchanged (servebench asserts
this: hit-path checksums == miss-path checksums).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

__all__ = ["CalibrationCache"]


def _call_key(fn: Callable[..., Any], args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> str:
    parts = (
        getattr(fn, "__module__", "?"),
        getattr(fn, "__qualname__", repr(fn)),
        repr(args),
        repr(sorted(kwargs.items())),
    )
    return "|".join(parts)


class CalibrationCache:
    """Memo table for pure calibration/model calls, with hit statistics."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = int(max_entries)
        self._table: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Return ``fn(*args, **kwargs)``, evaluating at most once per key."""
        key = _call_key(fn, args, kwargs)
        if key in self._table:
            self.hits += 1
            return self._table[key]
        self.misses += 1
        value = fn(*args, **kwargs)
        if len(self._table) >= self.max_entries:
            # Simple FIFO eviction: calibration working sets are small;
            # correctness never depends on residency (pure functions).
            self._table.pop(next(iter(self._table)))
        self._table[key] = value
        return value

    def clear(self) -> None:
        self._table.clear()

    def stats(self) -> Dict[str, Any]:
        total = self.hits + self.misses
        return {
            "entries": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }
