"""Executable units the worker pool advances cooperatively.

A :class:`SimTask` is the bridge between the asyncio service and the
(synchronous, deterministic) simulation engine: the worker repeatedly
calls :meth:`SimTask.advance`, which runs a bounded amount of work and
returns whether the task finished; between calls the worker yields the
event loop, so N tasks interleave.  Three implementations cover the
service's job classes:

* :class:`EnvTask` — one :class:`~repro.sim.Environment` advanced
  through the **public** ``peek()``/``step()``/``Event.processed``
  surface only (lint rule P3; the exact oracle ``make iso-gate``
  validates, so interleaved execution is bit-identical to solo);
* :class:`ShardedTask` — a windowed conservative-PDES run
  (:mod:`repro.sim.shard`): each ``advance()`` executes one
  barrier-to-barrier window across all shard Environments;
* :class:`ModelTask` — a pure analytic-model evaluation
  (:mod:`repro.perfmodel`), optionally memoized through the service's
  :class:`~repro.serve.cache.CalibrationCache`.

Tasks may carry a :class:`~repro.trace.Tracer`; the task's
:meth:`manifest` snapshots it through the standard exporter while the
run is live (incremental result streaming) and :meth:`stop` finishes it
exactly once (the finish() idempotence contract).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence

from ..sim import Environment, Event
from .job import JobStallError, result_checksum

__all__ = ["SimTask", "EnvTask", "ShardedTask", "ModelTask"]

_INF = float("inf")


class SimTask(Protocol):
    """What the worker pool needs from an executable job body."""

    def start(self) -> None:
        """Bring up runtime loops; called once before the first advance."""

    def advance(self, max_events: int) -> bool:
        """Run a bounded amount of work; True when the task completed."""

    def stop(self) -> None:
        """Tear down runtime loops; idempotent, safe mid-run (cancel)."""

    def result(self) -> Dict[str, Any]:
        """Final observables (repr'd) — the checksum payload."""

    def progress(self) -> Dict[str, Any]:
        """Cheap in-flight observables for stream chunks."""

    def events(self) -> int:
        """Cumulative engine events executed so far (0 for model jobs).

        The service reads this before/after each slice to feed the
        per-slice event-throughput histogram — ``advance(max_events)``
        is a *bound*, not a promise (sharded tasks run whole windows),
        so the metric reports what actually happened.
        """

    def checksum(self) -> str:
        """Bit-exact digest of the completed run."""

    def manifest(self) -> Optional[Dict[str, Any]]:
        """Trace-manifest snapshot (None when untraced)."""


class EnvTask:
    """A single-Environment simulation advanced via peek()/step().

    Exactly the iso-gate execution model: stepping stops the moment
    ``done`` is processed — the same stopping point as
    ``env.run(until=done)`` — so the checksum can differ from a solo
    run only through cross-instance interference, which the G/S lint
    families and the iso-gate exclude.
    """

    def __init__(
        self,
        env: Environment,
        done: Event,
        *,
        on_start: Optional[Callable[[], None]] = None,
        on_stop: Optional[Callable[[], None]] = None,
        result_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        tracer: Any = None,
        label: str = "sim",
    ) -> None:
        self.env = env
        self.done = done
        self._on_start = on_start
        self._on_stop = on_stop
        self._result_fn = result_fn
        self.tracer = tracer
        self.label = label
        self._stopped = False

    def start(self) -> None:
        if self._on_start is not None:
            self._on_start()

    def advance(self, max_events: int) -> bool:
        env = self.env
        done = self.done
        for _ in range(max_events):
            if done.processed:
                return True
            if env.peek() == _INF:
                raise JobStallError(
                    f"{self.label}: event queue drained before the done "
                    "event was processed"
                )
            env.step()
        return done.processed

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._on_stop is not None:
            self._on_stop()
        if self.tracer is not None:
            self.tracer.finish()  # idempotent: cancel + shutdown both land here

    def result(self) -> Dict[str, Any]:
        payload = {
            "now": repr(self.env.now),
            "events": self.env.events_executed,
        }
        if self._result_fn is not None:
            payload.update(self._result_fn())
        return payload

    def progress(self) -> Dict[str, Any]:
        return {
            "events": self.env.events_executed,
            "sim_now": self.env.now,
        }

    def events(self) -> int:
        return self.env.events_executed

    def checksum(self) -> str:
        return result_checksum(self.result())

    def manifest(self) -> Optional[Dict[str, Any]]:
        if self.tracer is None:
            return None
        from ..trace.exporters import run_manifest

        return run_manifest(self.tracer, label=self.label)


class ShardedTask:
    """A windowed conservative-PDES run (composes with ``sim.shard``).

    One ``advance()`` call executes one coordinator window: flush
    cross-shard traffic, idle-jump to the earliest pending event, run
    every shard through ``[T, T + window)``.  This is exactly
    :meth:`repro.sim.shard.ShardCoordinator.run`'s loop body, expressed
    as a resumable slice so a sharded job shares the worker pool
    fairly with single-Environment jobs.
    """

    def __init__(
        self,
        shards: Sequence[Environment],
        done: Event,
        window: float,
        fabric: Any = None,
        *,
        on_stop: Optional[Callable[[], None]] = None,
        result_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        label: str = "sharded",
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = list(shards)
        self.done = done
        self.window = float(window)
        self.fabric = fabric
        self._on_stop = on_stop
        self._result_fn = result_fn
        self.label = label
        self.windows_run = 0
        self._stopped = False
        root = done.env
        if root not in self.shards:
            raise ValueError("`done` event does not belong to any shard")
        self._root = root

    def start(self) -> None:  # shard builders start their runtimes
        return None

    def advance(self, max_events: int) -> bool:
        # max_events bounds per-shard work only indirectly: one window
        # per call keeps the barrier structure (and therefore the event
        # order) identical to ShardCoordinator.run.
        if self.done.processed:
            return True
        if self.fabric is not None:
            self.fabric.flush()
        m = min(env.peek() for env in self.shards)
        if m == _INF:
            if self.done.processed:
                return True
            raise JobStallError(
                f"{self.label}: every shard idle, no cross-shard traffic "
                "in flight, and the done event never triggered"
            )
        end = m + self.window
        for env in self.shards:
            env.run_window(end, self.done if env is self._root else None)
        self.windows_run += 1
        return self.done.processed

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._on_stop is not None:
            self._on_stop()

    def result(self) -> Dict[str, Any]:
        payload = {
            "now": repr(self._root.now),
            "events": sum(env.events_executed for env in self.shards),
            "windows": self.windows_run,
        }
        if self._result_fn is not None:
            payload.update(self._result_fn())
        return payload

    def progress(self) -> Dict[str, Any]:
        return {
            "events": sum(env.events_executed for env in self.shards),
            "sim_now": self._root.now,
            "windows": self.windows_run,
        }

    def events(self) -> int:
        return sum(env.events_executed for env in self.shards)

    def checksum(self) -> str:
        payload = self.result()
        # Windows-run is a coordinator artifact, not a sim observable:
        # the serial engine runs zero windows yet must checksum equal.
        payload.pop("windows", None)
        return result_checksum(payload)

    def manifest(self) -> Optional[Dict[str, Any]]:
        return None


class ModelTask:
    """A pure analytic-model evaluation (perfmodel curves).

    The computation is a pure function of its config, so results are
    memoized in the service's :class:`~repro.serve.cache.CalibrationCache`
    when one is provided — repeat submissions of the same curve are
    cache hits, which the servebench report surfaces.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cache: Any = None,
        label: str = "model",
        **kwargs: Any,
    ) -> None:
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.cache = cache
        self.label = label
        self._value: Any = None
        self._ran = False

    def start(self) -> None:
        return None

    def advance(self, max_events: int) -> bool:
        if not self._ran:
            if self.cache is not None:
                self._value = self.cache.call(self.fn, *self.args, **self.kwargs)
            else:
                self._value = self.fn(*self.args, **self.kwargs)
            self._ran = True
        return True

    def stop(self) -> None:
        return None

    def result(self) -> Dict[str, Any]:
        value = self._value
        if isinstance(value, (list, tuple)):
            reprs: List[str] = [repr(v) for v in value]
            return {"curve": reprs}
        return {"value": repr(value)}

    def progress(self) -> Dict[str, Any]:
        return {"ran": self._ran}

    def events(self) -> int:
        return 0

    def checksum(self) -> str:
        return result_checksum(self.result())

    def manifest(self) -> Optional[Dict[str, Any]]:
        return None
