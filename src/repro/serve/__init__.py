"""Simulation-as-a-service: a concurrent job runtime over the engine.

The paper's theme — many independent message-driven contexts multiplexed
onto shared execution resources — applied to the reproduction's own
tooling: one process runs N independent simulation jobs concurrently on
an asyncio event loop, each job a private deterministic
:class:`~repro.sim.Environment` advanced in cooperative slices through
the public ``peek()``/``step()`` surface.  The whole design leans on the
isolation property ``make iso-gate`` proves (PR 8): interleaved
execution is bit-identical to solo execution, so serving adds
throughput without touching results.  ``make serve-gate``
(:mod:`repro.harness.servebench`) re-proves that end to end under a
synthetic many-client load.

Public surface:

* :class:`JobService` — submit/status/cancel/stream over a worker pool;
* :class:`JobSpec` / :class:`Job` — the request and its lifecycle record;
* :class:`EnvTask` / :class:`ShardedTask` / :class:`ModelTask` — job
  bodies (single Environment, windowed-PDES shard group, pure model);
* :class:`CalibrationCache` — memoizes pure perfmodel evaluations;
* :class:`JobQueue` — the priority heap (exposed for tests/tools).
"""

from .cache import CalibrationCache
from .job import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobError,
    JobSpec,
    JobStallError,
    result_checksum,
)
from .manager import JobService
from .queue import JobQueue
from .task import EnvTask, ModelTask, ShardedTask, SimTask

__all__ = [
    "CANCELLED",
    "CalibrationCache",
    "DONE",
    "EnvTask",
    "FAILED",
    "Job",
    "JobError",
    "JobQueue",
    "JobService",
    "JobSpec",
    "JobStallError",
    "ModelTask",
    "QUEUED",
    "RUNNING",
    "ShardedTask",
    "SimTask",
    "TERMINAL_STATES",
    "result_checksum",
]
