"""Analytic model of the pencil 3D FFT step time (Table I).

The DES (:class:`repro.fft.FFT3D`) runs the full machinery for small
partitions; this model extends the same mechanisms to the paper's
64-1024-node cells.  Its structure was derived from the DES behaviour:

* the **software critical path** dominates p2p: a pencil chare sends
  and receives PC (or PR) messages *serially* on its PE, paying the full
  Converse per-message path each time — roughly flat in node count once
  every chare holds a single pencil, exactly the plateau Table I shows;
* many-to-many replaces that with the amortized burst cost spread over
  the communication threads (the ratio grows with node count and with
  finer decomposition, Table I's trend);
* a bandwidth term (all-to-all within rows/columns, with link
  contention) dominates the largest grids at small node counts;
* the FFT compute itself is a small additive term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..bgq.params import BGQParams, CLOCK_HZ, DEFAULT_PARAMS
from ..fft.pencil import choose_grid
from .machine import node_issue_rate, per_thread_ipc
from types import MappingProxyType

__all__ = ["FFTModelConstants", "fft_step_time", "fft_table"]


@dataclass(frozen=True)
class FFTModelConstants:
    """Calibrated constants (anchored on two Table I cells; the rest of
    the table is then *predicted* by the model's structure)."""

    #: Per-message end-to-end software path on the worker's PE for the
    #: p2p transport (send + receive + scheduler + allocation),
    #: instructions. [anchor: 32^3 p2p ~457 us at 64 nodes]
    p2p_msg_instr: float = 2800.0
    #: Amortized per-message cost on a communication thread for m2m
    #: (send or receive side). [anchor: 32^3 m2m ~142 us at 64 nodes]
    m2m_msg_instr: float = 300.0
    #: Per-phase latency leg (network + wakeups + scheduling), seconds.
    phase_latency: float = 7.0e-6
    #: All-to-all link-contention factor on the effective bandwidth.
    net_gamma: float = 2.2
    #: Worker PEs per node available to pencil chares.
    workers_per_node: int = 16
    #: Communication threads per node driving m2m bursts.
    comm_threads: int = 8
    #: Straggler/jitter multiplier on the critical path.
    jitter: float = 1.12


DEFAULT_FFT_CONSTANTS = FFTModelConstants()


def _candidate_chare_counts(n: int, nodes: int, workers_per_node: int):
    """Square pencil decompositions the library could pick: 4^k chares
    from one-per-node up to the pencil limit (at least one candidate)."""
    # The benchmark uses the finest decomposition available — "at
    # scaling limits ... each processor will have only one pencil"
    # [paper §IV-A] — and the same decomposition for both transports.
    cap = min(n * n, nodes * workers_per_node)
    k = 1
    while (2 * k) * (2 * k) <= cap:
        k *= 2
    return [k * k]


def _step_time_for(
    n: int,
    nodes: int,
    mode: str,
    nchares: int,
    params: BGQParams,
    c: FFTModelConstants,
) -> float:
    pr, pc = choose_grid(nchares, n)
    msgs_per_chare = max(pr, pc)  # the wider transpose bounds the phase
    phases = 4  # zy, yx, xy, yz for forward+backward

    # Software critical path.
    ipc_worker = per_thread_ipc(
        min(4.0, (c.workers_per_node + c.comm_threads) / params.cores_per_node),
        params,
    )
    if mode == "p2p":
        # A chare's sends and receives serialize on its PE; chares
        # co-resident on a PE pipeline across phases.
        per_phase_sw = msgs_per_chare * c.p2p_msg_instr / (ipc_worker * CLOCK_HZ)
        overlapped = False
    else:
        # The burst is spread over the node's communication threads;
        # the chare itself only fills its slots and calls start().
        msgs_per_node = nchares * msgs_per_chare / max(1, nodes)
        burst = msgs_per_node * c.m2m_msg_instr / (c.comm_threads * ipc_worker * CLOCK_HZ)
        fill = msgs_per_chare * 90.0 / (ipc_worker * CLOCK_HZ)
        # Receive floor: a chare's arrivals are dispatched serially on
        # the comm thread driving its context.
        recv = msgs_per_chare * c.m2m_msg_instr / (ipc_worker * CLOCK_HZ)
        per_phase_sw = max(burst, fill, recv)
        overlapped = True

    # Network bandwidth: each phase reshuffles the whole grid.
    bytes_per_node = (n**3) * 16.0 / nodes
    per_phase_net = c.net_gamma * bytes_per_node / params.link_effective_bandwidth

    # FFT compute: 3 forward + 3 backward 1D passes.
    flops = 6.0 * 5.0 * n**3 * math.log2(n)
    rate = node_issue_rate(c.workers_per_node, params) * CLOCK_HZ
    t_compute = (flops / 4.0) / (nodes * rate)

    if overlapped:
        per_phase = max(per_phase_sw, per_phase_net)
    else:
        # Worker-driven p2p: software path and wire time do not overlap.
        per_phase = per_phase_sw + per_phase_net
    return (phases * (per_phase + c.phase_latency) + t_compute) * c.jitter


def fft_step_time(
    n: int,
    nodes: int,
    mode: str = "p2p",
    params: BGQParams = DEFAULT_PARAMS,
    consts: FFTModelConstants = DEFAULT_FFT_CONSTANTS,
) -> float:
    """Forward+backward 3D FFT step time in seconds (Table I model).

    The decomposition (number of pencil chares) is chosen per cell to
    minimize the predicted time, mirroring how the benchmark runs were
    tuned; all candidates are square 2^k x 2^k grids between
    one-chare-per-node and the one-pencil-per-chare limit.
    """
    if mode not in ("p2p", "m2m"):
        raise ValueError(f"unknown transport {mode!r}")
    if n < 2 or nodes < 1:
        raise ValueError("invalid problem")
    return min(
        _step_time_for(n, nodes, mode, nc, params, consts)
        for nc in _candidate_chare_counts(n, nodes, consts.workers_per_node)
    )


#: The exact Table I cells from the paper, microseconds:
#: {grid_n: {nodes: (p2p, m2m)}}
PAPER_TABLE1 = MappingProxyType({
    128: {64: (3030, 1826), 128: (2019, 1426), 256: (1930, 944), 512: (1785, 677), 1024: (1560, 583)},
    64: {64: (787, 507), 128: (731, 459), 256: (625, 268), 512: (625, 229), 1024: (621, 208)},
    32: {64: (457, 142), 128: (398, 127), 256: (379, 110), 512: (376, 93), 1024: (377, 74)},
})


def fft_table(
    consts: FFTModelConstants = DEFAULT_FFT_CONSTANTS,
) -> dict:
    """Model predictions for every Table I cell, microseconds."""
    out = {}
    for n, rows in PAPER_TABLE1.items():
        out[n] = {}
        for nodes in rows:
            p2p = fft_step_time(n, nodes, "p2p", consts=consts) * 1e6
            m2m = fft_step_time(n, nodes, "m2m", consts=consts) * 1e6
            out[n][nodes] = (p2p, m2m)
    return out
