"""Analytic NAMD step-time model (Figs. 7, 8, 11, 12; Table II).

The DES runs mini-NAMD in full at small scale; the paper's largest runs
(16,384 nodes, 1M+ hardware threads) are far beyond a Python DES, so
this model extends the same mechanisms analytically:

* **compute throughput** — kernel flops through the SMT issue model
  (the 2.3x four-thread core, QPX 4-wide + the 15.8% L1P tuning);
* **memory bandwidth** — pair-list traffic through the node's memory
  system (dominant for the 100M-atom system);
* **messaging** — per-message software paths on workers or offloaded to
  communication threads, times the L2-atomic/mutex contention factor
  (the Fig. 8 ablation);
* **PME network** — charge-grid transposes through the torus;
* **critical-path chain** — the sequential entry-method/message legs of
  one step; with ~1 atom per core this floor dominates (the reason
  ApoA1 flattens near 683 us while STMV keeps scaling);
* **granularity imbalance** — when threads outnumber work objects.

Calibration anchors (named in :class:`NamdModelConstants`): ApoA1
single-core step time implied by the paper's speedups, ApoA1 at 4096
nodes, STMV-100M at 2048 nodes.  All other points — and every *trend*
(config crossovers, scaling curves, ablation deltas) — are predictions
of the model structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

from ..bgq.params import BGQParams, CLOCK_HZ, DEFAULT_PARAMS
from ..bgq.torus import Torus, bgq_partition_shape
from ..namd.system import APOA1, STMV100M, STMV20M, SystemSpec
from .machine import (
    BGP,
    BGPParams,
    commthread_message_instr,
    node_issue_rate,
    per_thread_ipc,
    queue_contention_factor,
    worker_message_instr,
)

__all__ = [
    "NamdRunConfig",
    "NamdModelConstants",
    "namd_step_time",
    "best_config",
    "bgp_step_time",
    "FIG7_CONFIGS",
]


@dataclass(frozen=True)
class NamdRunConfig:
    """One NAMD launch configuration on BG/Q."""

    workers: int = 64
    comm_threads: int = 0
    processes_per_node: int = 1
    l2_atomics: bool = True
    m2m_pme: bool = True
    qpx: bool = True
    pme_every: int = 4
    nonbonded_every: int = 1

    @property
    def threads_per_process(self) -> int:
        return (self.workers + self.comm_threads) // self.processes_per_node

    def label(self) -> str:
        return (
            f"{self.processes_per_node}p x {self.workers}w+{self.comm_threads}c"
        )


#: The three thread/process configurations compared in Fig. 7.
FIG7_CONFIGS = (
    NamdRunConfig(workers=64, comm_threads=0),
    NamdRunConfig(workers=48, comm_threads=8),
    NamdRunConfig(workers=32, comm_threads=8),
)


@dataclass(frozen=True)
class NamdModelConstants:
    """Calibrated constants with their anchors.

    The master anchor is the paper's own throughput statement: speedup
    3981 at 683 us/step on 4096 nodes means one *core* (4 hardware
    threads) takes 2.72 s/step on ApoA1, i.e. ~6.0G instructions/step at
    the core's 2.2 Ginstr/s — 257 instructions per non-bonded pair for
    *all* per-step work (kernel + exclusions + bookkeeping + bonded +
    integration, QPX-tuned).  Remarkably, the same per-pair cost
    reproduces the STMV-100M Table II anchor within ~7% with no further
    tuning.
    """

    #: Pair-list margin over the ideal cutoff sphere.
    pair_margin: float = 1.4
    #: Total per-step instructions per non-bonded pair, QPX-tuned
    #: [anchor: ApoA1 single-core 2.72 s/step = ~6.0G instructions over
    #: ~46.7M margin-inflated pairs].
    instr_per_pair: float = 128.0
    #: Memory traffic per non-bonded pair, bytes (pairlist + coords).
    pair_traffic_bytes: float = 64.0
    #: Sustained node memory bandwidth, B/s [bgq: ~28 GB/s stream].
    mem_bandwidth: float = 20e9
    #: Work objects (patches + computes) per atom at fine decomposition.
    objects_per_atom: float = 0.37
    #: Messages per object per step.
    msgs_per_object: float = 3.2
    #: Granularity efficiency: full efficiency needs about this many
    #: atoms per worker thread; fewer threads idle in the gaps
    #: [anchor: ApoA1 1090 us at 1024 nodes / 683 us at 4096].
    grain_atoms_per_thread: float = 5.4
    #: Critical-path entry/message legs per step.
    chain_depth: float = 22.0
    #: Per-leg software latency, seconds (scheduler + queues + wakeup),
    #: for worker-driven messaging; comm threads shorten it.
    chain_leg_sw: float = 5.0e-6
    chain_leg_sw_ct: float = 3.2e-6
    #: Extra legs when PME runs, amortized over pme_every.
    pme_chain_legs: float = 10.0
    #: Serialized mutex handoff per allocator operation when the GNU
    #: arena allocator + mutex queues replace the L2-atomic structures
    #: (Fig. 8 ablation), seconds.
    mutex_handoff: float = 0.08e-6
    #: All-to-all contention factor on PME network bytes.
    net_gamma: float = 2.0
    #: Straggler multiplier.
    jitter: float = 1.1


DEFAULT_NAMD_CONSTANTS = NamdModelConstants()


def _system_instr_per_step(
    spec: SystemSpec, cfg: NamdRunConfig, consts: NamdModelConstants
) -> Tuple[float, float]:
    """(total instructions/step, non-bonded pairs/step) whole machine."""
    c = consts
    ppa = (4.0 / 3.0) * math.pi * spec.cutoff**3 * spec.density * c.pair_margin
    pairs = spec.n_atoms * ppa / 2.0 / cfg.nonbonded_every
    # instr_per_pair is the QPX-tuned calibration; without QPX the
    # kernel portion (~45 flops/pair) runs 4*1.158x slower.
    per_pair = c.instr_per_pair
    if not cfg.qpx:
        per_pair += 45.0 * (4.0 * 1.158 - 1.0)
    instr_nb = pairs * per_pair
    # PME: spreading + interpolation + distributed FFT, every pme_every.
    p3 = spec.pme_grid[0] * spec.pme_grid[1] * spec.pme_grid[2]
    fft_flops = 5.0 * p3 * math.log2(max(2, p3)) * 2.0
    spread_flops = spec.n_atoms * (4**3) * 8.0 * 2.0
    instr_pme = (fft_flops + spread_flops) / 4.0 / cfg.pme_every
    total = instr_nb + instr_pme
    return total, pairs


def namd_step_time(
    spec: SystemSpec,
    nodes: int,
    cfg: NamdRunConfig = NamdRunConfig(),
    consts: NamdModelConstants = DEFAULT_NAMD_CONSTANTS,
    params: BGQParams = DEFAULT_PARAMS,
) -> float:
    """Model step time in seconds for one system/configuration/scale."""
    if nodes < 1:
        raise ValueError("need at least one node")
    c = consts
    instr_total, pairs = _system_instr_per_step(spec, cfg, consts)

    # ---- compute throughput -----------------------------------------
    rate = node_issue_rate(cfg.workers, params) * CLOCK_HZ  # instr/s/node
    t_comp = instr_total / (nodes * rate)

    # ---- memory bandwidth ---------------------------------------------
    bytes_mem = pairs * c.pair_traffic_bytes
    t_mem = bytes_mem / (nodes * c.mem_bandwidth)

    # ---- messaging ------------------------------------------------------
    objects = spec.n_atoms * c.objects_per_atom
    msgs_total = objects * c.msgs_per_object
    # PME messages: pencil-grid transposes + charge/potential slabs.
    pencils = min(8.0 * nodes, float(spec.pme_grid[1] * spec.pme_grid[2]))
    pme_msgs = pencils * (2.0 * math.sqrt(pencils) + 4.0) / cfg.pme_every
    msgs_node = (msgs_total + pme_msgs) / nodes
    qf = queue_contention_factor(cfg.threads_per_process, cfg.l2_atomics, params)
    have_ct = cfg.comm_threads > 0
    w_instr = worker_message_instr(
        params, smp=cfg.threads_per_process > 1, comm_threads=have_ct
    )
    t_workers = (instr_total / nodes + msgs_node * w_instr * qf) / rate
    if not cfg.l2_atomics:
        # Without L2 atomics every message's buffer alloc/free and queue
        # ops serialize on process-wide mutexes (arena locks): the
        # handoffs are wall-clock serial within each process and do not
        # parallelize away (added after the imbalance factor below).
        contenders = cfg.threads_per_process / params.gnu_arenas
        msgs_proc = msgs_node / cfg.processes_per_node
        t_alloc_serial = msgs_proc * 2.0 * contenders * c.mutex_handoff
    else:
        t_alloc_serial = 0.0
    if have_ct:
        threads_per_core = (cfg.workers + cfg.comm_threads) / params.cores_per_node
        ipc_ct = per_thread_ipc(min(4.0, max(1.0, threads_per_core)), params)
        ct_instr = commthread_message_instr(params, m2m=cfg.m2m_pme)
        t_ct = msgs_node * ct_instr * qf / (cfg.comm_threads * ipc_ct * CLOCK_HZ)
    else:
        t_ct = 0.0

    # ---- PME network ------------------------------------------------------
    p3 = spec.pme_grid[0] * spec.pme_grid[1] * spec.pme_grid[2]
    pme_bytes_node = 4.0 * p3 * 16.0 / cfg.pme_every / nodes
    t_net = c.net_gamma * pme_bytes_node / (2.0 * params.link_effective_bandwidth)

    # ---- critical-path chain -----------------------------------------------
    shape = bgq_partition_shape(_pow2_at_least(nodes))
    avg_hops = sum(s / 4.0 for s in shape)  # ~half the diameter
    leg_sw = c.chain_leg_sw_ct if have_ct else c.chain_leg_sw
    leg = leg_sw + avg_hops * (params.hop_latency / CLOCK_HZ)
    legs = c.chain_depth + c.pme_chain_legs / cfg.pme_every
    t_chain = legs * leg

    # ---- granularity efficiency ----------------------------------------------
    # With fewer than ~grain_atoms_per_thread atoms per worker thread,
    # scheduling gaps and load imbalance leave threads idle.
    threads = nodes * cfg.workers
    imb = 1.0 + threads * c.grain_atoms_per_thread / spec.n_atoms

    t_work = max(t_comp, t_mem, t_workers, t_ct, t_net)
    return (t_work * imb + t_alloc_serial + t_chain) * c.jitter


def _pow2_at_least(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def best_config(
    spec: SystemSpec,
    nodes: int,
    configs: Iterable[NamdRunConfig] = FIG7_CONFIGS,
    consts: NamdModelConstants = DEFAULT_NAMD_CONSTANTS,
) -> Tuple[NamdRunConfig, float]:
    """The fastest configuration at a node count (Fig. 11's 'best')."""
    best = None
    for cfg in configs:
        t = namd_step_time(spec, nodes, cfg, consts)
        if best is None or t < best[1]:
            best = (cfg, t)
    return best


# ---------------- Blue Gene/P comparison (Fig. 11) ---------------------------

def bgp_step_time(
    spec: SystemSpec,
    nodes: int,
    consts: NamdModelConstants = DEFAULT_NAMD_CONSTANTS,
    bgp: BGPParams = BGP,
) -> float:
    """ApoA1 step time on the BG/P model (4 cores @850 MHz, 3D torus)."""
    c = consts
    ppa = (4.0 / 3.0) * math.pi * spec.cutoff**3 * spec.density * c.pair_margin
    pairs = spec.n_atoms * ppa / 2.0
    # The PPC450's 2-wide double hummer instead of 4-wide QPX: the
    # kernel portion of the per-pair work doubles in instructions.
    per_pair = c.instr_per_pair + 45.0 * (4.0 * 1.158 / 2.0 - 1.0) * 4.0
    p3 = spec.pme_grid[0] * spec.pme_grid[1] * spec.pme_grid[2]
    instr_pme = (5.0 * p3 * math.log2(max(2, p3)) * 2.0) / 2.0 / 4.0
    instr_total = pairs * per_pair + instr_pme
    t_comp = instr_total / (nodes * bgp.node_issue_rate_hz())

    objects = spec.n_atoms * c.objects_per_atom
    msgs_node = objects * c.msgs_per_object / nodes
    t_msg = msgs_node * bgp.per_message_s / bgp.cores_per_node

    side = max(2.0, nodes ** (1.0 / 3.0))
    avg_hops = 3.0 * side / 4.0
    leg = 6.0e-6 + avg_hops * bgp.hop_latency_s
    t_chain = (c.chain_depth + c.pme_chain_legs / 4.0) * leg

    threads = nodes * bgp.cores_per_node
    imb = 1.0 + threads * c.grain_atoms_per_thread / spec.n_atoms
    return ((t_comp + t_msg) * imb + t_chain) * c.jitter
