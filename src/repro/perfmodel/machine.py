"""Node-level throughput and messaging-cost models.

These are the analytic counterparts of the DES components, used for the
node counts (up to 16,384) the paper reports but a Python DES cannot
simulate.  Every formula mirrors a mechanism in :mod:`repro.bgq` /
:mod:`repro.converse`, with the same parameter values, so the analytic
model and the DES agree where they overlap (cross-validated in the test
suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..bgq.params import BGQParams, CLOCK_HZ, DEFAULT_PARAMS

__all__ = [
    "per_thread_ipc",
    "core_issue_rate",
    "node_issue_rate",
    "worker_message_instr",
    "commthread_message_instr",
    "queue_contention_factor",
    "BGP",
    "BGPParams",
]


def per_thread_ipc(threads_per_core: float, params: BGQParams = DEFAULT_PARAMS) -> float:
    """Sustained IPC of one thread with n threads sharing its core.

    The same weighted-processor-sharing formula as
    :class:`repro.bgq.core.Core` (4 threads/core = the paper's 2.3x).
    """
    if threads_per_core <= 0:
        raise ValueError("threads per core must be positive")
    n = threads_per_core
    ipc = params.base_ipc / (1.0 + max(0.0, n - 1.0) * params.smt_interference)
    ipc = min(ipc, params.thread_issue_cap)
    if n * ipc > params.core_issue_width:
        ipc = params.core_issue_width / n
    return ipc


def core_issue_rate(threads_per_core: float, params: BGQParams = DEFAULT_PARAMS) -> float:
    """Aggregate instructions/cycle of one core with n resident threads."""
    return threads_per_core * per_thread_ipc(threads_per_core, params)


def node_issue_rate(worker_threads: int, params: BGQParams = DEFAULT_PARAMS) -> float:
    """Aggregate instructions/cycle of a node running ``worker_threads``.

    Threads spread over the 16 cores as evenly as possible.
    """
    if worker_threads < 1:
        return 0.0
    cores = params.cores_per_node
    full, extra = divmod(worker_threads, cores)
    rate = 0.0
    if full:
        rate += (cores - extra) * core_issue_rate(full, params)
    elif extra:
        rate += 0.0
    if extra:
        rate += extra * core_issue_rate(full + 1, params)
    return rate


def worker_message_instr(
    params: BGQParams = DEFAULT_PARAMS,
    smp: bool = True,
    comm_threads: bool = False,
) -> float:
    """Send+receive software path length charged to *worker* threads
    for one point-to-point message (mirrors the Converse send path)."""
    send = params.converse_send_instr + (params.smp_overhead_instr if smp else 0.0)
    alloc = 2 * params.pool_alloc_instr + params.l2_atomic_latency * params.base_ipc
    if comm_threads:
        # Workers only post to the comm-thread work queue and later
        # dequeue the delivered message from their PE queue.
        return send + params.commthread_post_instr + alloc + 150.0
    recv = params.converse_recv_instr + params.pami_dispatch_instr
    return send + params.pami_send_imm_instr + recv + alloc + 150.0


def commthread_message_instr(params: BGQParams = DEFAULT_PARAMS, m2m: bool = False) -> float:
    """Per-message work executed on a communication thread."""
    if m2m:
        return 2 * params.m2m_per_msg_instr + 70.0
    return (
        params.pami_send_imm_instr
        + params.pami_dispatch_instr
        + params.converse_recv_instr
        + 70.0
    )


def queue_contention_factor(
    threads_per_process: int,
    l2_atomics: bool,
    params: BGQParams = DEFAULT_PARAMS,
) -> float:
    """Multiplier on per-message cost from intra-process queueing.

    With L2 atomic queues and pool allocators the cost is flat; with
    mutex-guarded queues and the GNU arena allocator, contention grows
    with the number of threads hammering shared structures (the Fig. 8
    ablation: 67% slowdown at 1 process x 64 threads on 512 nodes).
    """
    if l2_atomics:
        return 1.0
    t = max(1, threads_per_process)
    # Mutex round trip + expected queueing delay scales with the number
    # of contenders per lock (t threads over gnu_arenas locks).
    contenders = t / params.gnu_arenas
    return 1.0 + 0.55 * contenders


@dataclass(frozen=True)
class BGPParams:
    """Reduced Blue Gene/P model (Fig. 11 comparison curve)."""

    clock_hz: float = 0.85e9
    cores_per_node: int = 4
    #: Sustained IPC per core (PPC450, dual FPU, no SMT).
    core_ipc: float = 0.5
    link_bandwidth: float = 0.425e9  # B/s per link, 3D torus
    hop_latency_s: float = 100e-9
    torus_dims: int = 3
    #: Per-message software cost (seconds): Charm++ over DCMF was more
    #: expensive per message than the PAMI path on BG/Q.
    per_message_s: float = 4.5e-6

    def node_issue_rate_hz(self) -> float:
        return self.cores_per_node * self.core_ipc * self.clock_hz


BGP = BGPParams()
