"""Analytic performance models for the paper's large-scale results.

The DES (packages :mod:`repro.bgq` ... :mod:`repro.namd`) runs the real
mechanisms at small scale; these models extend the same mechanisms to
the paper's 64-16,384-node experiments, with calibration anchors
documented per constant.  Cross-validation DES-vs-model happens in the
test suite.
"""

from .fftmodel import (
    DEFAULT_FFT_CONSTANTS,
    FFTModelConstants,
    PAPER_TABLE1,
    fft_step_time,
    fft_table,
)
from .machine import (
    BGP,
    BGPParams,
    commthread_message_instr,
    core_issue_rate,
    node_issue_rate,
    per_thread_ipc,
    queue_contention_factor,
    worker_message_instr,
)
from .namdmodel import (
    DEFAULT_NAMD_CONSTANTS,
    FIG7_CONFIGS,
    NamdModelConstants,
    NamdRunConfig,
    best_config,
    bgp_step_time,
    namd_step_time,
)

__all__ = [
    "BGP",
    "BGPParams",
    "DEFAULT_FFT_CONSTANTS",
    "DEFAULT_NAMD_CONSTANTS",
    "FFTModelConstants",
    "FIG7_CONFIGS",
    "NamdModelConstants",
    "NamdRunConfig",
    "PAPER_TABLE1",
    "best_config",
    "bgp_step_time",
    "commthread_message_instr",
    "core_issue_rate",
    "fft_step_time",
    "fft_table",
    "namd_step_time",
    "node_issue_rate",
    "per_thread_ipc",
    "queue_contention_factor",
    "worker_message_instr",
]
