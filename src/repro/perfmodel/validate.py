"""Systematic DES-vs-model cross-validation.

The analytic models extend the DES mechanisms to node counts a single
serial Python DES cannot comfortably reach; this module checks them
against each other where they overlap, so a calibration drift in either
engine fails loudly in the test suite.  Since the sharded
conservative-PDES engine (docs/SCALING.md) the overlap includes the
paper's 128-512 node regime (:func:`sharded_torus_crosscheck`).

The comparison is on *ratios* (m2m speedup, mode ordering, contention
factors) rather than absolute microseconds: the analytic constants are
anchored at the paper's scale, the DES constants at the micro-benchmark
scale, and the shapes are the validated quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bgq.params import CYCLES_PER_US
from .fftmodel import fft_step_time
from .machine import per_thread_ipc

__all__ = [
    "CrossCheck",
    "fft_speedup_crosscheck",
    "smt_crosscheck",
    "sharded_torus_crosscheck",
    "run_all",
]


@dataclass
class CrossCheck:
    """One DES-vs-model comparison."""

    name: str
    des_value: float
    model_value: float
    tolerance_ratio: float  # allowed max(des/model, model/des)

    @property
    def ratio(self) -> float:
        lo, hi = sorted([self.des_value, self.model_value])
        return hi / lo if lo > 0 else float("inf")

    @property
    def ok(self) -> bool:
        return self.ratio <= self.tolerance_ratio

    def __str__(self) -> str:  # pragma: no cover - formatting
        flag = "ok" if self.ok else "DIVERGED"
        return (
            f"{self.name}: DES={self.des_value:.3g} model={self.model_value:.3g}"
            f" (x{self.ratio:.2f} <= x{self.tolerance_ratio:.2f}) {flag}"
        )


def fft_speedup_crosscheck(
    n: int = 16, nnodes: int = 8, iterations: int = 3, tolerance: float = 2.5
) -> CrossCheck:
    """m2m/p2p FFT speedup: full DES stack vs analytic model."""
    from ..harness.fftbench import des_fft_step_us

    des_p2p = des_fft_step_us(n, nnodes, use_m2m=False, workers=1,
                              comm_threads=1, iterations=iterations)
    des_m2m = des_fft_step_us(n, nnodes, use_m2m=True, workers=1,
                              comm_threads=1, iterations=iterations)
    model_p2p = fft_step_time(n, nnodes, "p2p") * 1e6
    model_m2m = fft_step_time(n, nnodes, "m2m") * 1e6
    return CrossCheck(
        name=f"fft-{n}^3-{nnodes}n m2m speedup",
        des_value=des_p2p / des_m2m,
        model_value=model_p2p / model_m2m,
        tolerance_ratio=tolerance,
    )


def smt_crosscheck(tolerance: float = 1.05) -> CrossCheck:
    """4-thread core speedup: DES core model vs closed-form."""
    from ..harness.namdbench import smt_thread_speedup_des

    des = smt_thread_speedup_des()
    model = 4 * per_thread_ipc(4) / per_thread_ipc(1)
    return CrossCheck("smt 4-thread speedup", des, model, tolerance)


def pingpong_mode_crosscheck(tolerance: float = 1.6) -> CrossCheck:
    """SMP-over-non-SMP small-message latency ratio, DES vs the
    instruction-count prediction."""
    from ..bgq.params import DEFAULT_PARAMS
    from ..converse import RunConfig
    from ..harness.pingpong import pingpong_oneway_us

    des_nonsmp = pingpong_oneway_us(
        RunConfig(nnodes=2, workers_per_process=1), 16, trips=6
    )
    des_smp = pingpong_oneway_us(
        RunConfig(nnodes=2, workers_per_process=4), 16, trips=6
    )
    p = DEFAULT_PARAMS
    # The SMP mode adds its per-message overhead on the send side.
    extra_us = p.smp_overhead_instr / p.base_ipc / CYCLES_PER_US
    return CrossCheck(
        "smp-over-nonsmp latency delta (us)",
        des_smp - des_nonsmp,
        extra_us,
        tolerance,
    )


def sharded_torus_crosscheck(
    nnodes: int = 512, nshards: int = 4, nbytes: int = 16, tolerance: float = 1.25
) -> CrossCheck:
    """128+-node torus transit: sharded DES vs closed-form hop model.

    The sharded conservative-PDES engine (docs/SCALING.md) simulates
    the paper's 128-512 node regime for real, so the analytic network
    model can now be checked at scale instead of extrapolated: the
    extra one-way latency of a corner-to-corner ping on a ``nnodes``
    torus over a 2-node neighbour ping must equal the analytic
    prediction ``extra_hops * hop_latency`` — everything else in the
    path (software overhead, NIC latency, serialization) is identical
    between the two runs and cancels.
    """
    from ..bgq.params import DEFAULT_PARAMS
    from ..bgq.torus import bgq_partition_shape
    from ..converse import RunConfig
    from ..harness.pingpong import pingpong_run
    from ..harness.shardbench import run_sharded_pingpong

    def _hops(shape: Tuple[int, ...], node: int) -> int:
        # Wraparound distance node 0 -> `node`, dimension-ordered coords.
        total, rest = 0, node
        for d in reversed(shape):
            rest, c = divmod(rest, d)
            total += min(c, d - c) if d > 1 else 0
        return total

    def _oneway(rtts, skip=2):
        usable = rtts[skip:]
        return (sum(usable) / len(usable)) / 2.0 / CYCLES_PER_US

    config2 = RunConfig(nnodes=2, workers_per_process=4)
    near = pingpong_run(config2, nbytes, trips=6)
    far = run_sharded_pingpong(
        RunConfig(nnodes=nnodes, workers_per_process=4), nbytes, nshards, trips=6
    )
    des_delta = _oneway(far["rtts"]) - _oneway(near["rtts"])
    extra_hops = _hops(bgq_partition_shape(nnodes), nnodes - 1) - _hops(
        bgq_partition_shape(2), 1
    )
    model_delta = extra_hops * DEFAULT_PARAMS.hop_latency / CYCLES_PER_US
    return CrossCheck(
        f"sharded {nnodes}n torus transit delta (us)",
        des_delta,
        model_delta,
        tolerance,
    )


def run_all() -> List[CrossCheck]:
    """All cross-checks (used by the test suite and diagnostics)."""
    return [
        smt_crosscheck(),
        pingpong_mode_crosscheck(),
        fft_speedup_crosscheck(),
        sharded_torus_crosscheck(),
    ]
