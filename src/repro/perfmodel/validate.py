"""Systematic DES-vs-model cross-validation.

The analytic models extend the DES mechanisms to node counts a Python
DES cannot reach; this module checks them against each other where they
*do* overlap, so a calibration drift in either engine fails loudly in
the test suite.

The comparison is on *ratios* (m2m speedup, mode ordering, contention
factors) rather than absolute microseconds: the analytic constants are
anchored at the paper's scale, the DES constants at the micro-benchmark
scale, and the shapes are the validated quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bgq.params import CYCLES_PER_US
from .fftmodel import fft_step_time
from .machine import per_thread_ipc

__all__ = ["CrossCheck", "fft_speedup_crosscheck", "smt_crosscheck", "run_all"]


@dataclass
class CrossCheck:
    """One DES-vs-model comparison."""

    name: str
    des_value: float
    model_value: float
    tolerance_ratio: float  # allowed max(des/model, model/des)

    @property
    def ratio(self) -> float:
        lo, hi = sorted([self.des_value, self.model_value])
        return hi / lo if lo > 0 else float("inf")

    @property
    def ok(self) -> bool:
        return self.ratio <= self.tolerance_ratio

    def __str__(self) -> str:  # pragma: no cover - formatting
        flag = "ok" if self.ok else "DIVERGED"
        return (
            f"{self.name}: DES={self.des_value:.3g} model={self.model_value:.3g}"
            f" (x{self.ratio:.2f} <= x{self.tolerance_ratio:.2f}) {flag}"
        )


def fft_speedup_crosscheck(
    n: int = 16, nnodes: int = 8, iterations: int = 3, tolerance: float = 2.5
) -> CrossCheck:
    """m2m/p2p FFT speedup: full DES stack vs analytic model."""
    from ..harness.fftbench import des_fft_step_us

    des_p2p = des_fft_step_us(n, nnodes, use_m2m=False, workers=1,
                              comm_threads=1, iterations=iterations)
    des_m2m = des_fft_step_us(n, nnodes, use_m2m=True, workers=1,
                              comm_threads=1, iterations=iterations)
    model_p2p = fft_step_time(n, nnodes, "p2p") * 1e6
    model_m2m = fft_step_time(n, nnodes, "m2m") * 1e6
    return CrossCheck(
        name=f"fft-{n}^3-{nnodes}n m2m speedup",
        des_value=des_p2p / des_m2m,
        model_value=model_p2p / model_m2m,
        tolerance_ratio=tolerance,
    )


def smt_crosscheck(tolerance: float = 1.05) -> CrossCheck:
    """4-thread core speedup: DES core model vs closed-form."""
    from ..harness.namdbench import smt_thread_speedup_des

    des = smt_thread_speedup_des()
    model = 4 * per_thread_ipc(4) / per_thread_ipc(1)
    return CrossCheck("smt 4-thread speedup", des, model, tolerance)


def pingpong_mode_crosscheck(tolerance: float = 1.6) -> CrossCheck:
    """SMP-over-non-SMP small-message latency ratio, DES vs the
    instruction-count prediction."""
    from ..bgq.params import DEFAULT_PARAMS
    from ..converse import RunConfig
    from ..harness.pingpong import pingpong_oneway_us

    des_nonsmp = pingpong_oneway_us(
        RunConfig(nnodes=2, workers_per_process=1), 16, trips=6
    )
    des_smp = pingpong_oneway_us(
        RunConfig(nnodes=2, workers_per_process=4), 16, trips=6
    )
    p = DEFAULT_PARAMS
    # The SMP mode adds its per-message overhead on the send side.
    extra_us = p.smp_overhead_instr / p.base_ipc / CYCLES_PER_US
    return CrossCheck(
        "smp-over-nonsmp latency delta (us)",
        des_smp - des_nonsmp,
        extra_us,
        tolerance,
    )


def run_all() -> List[CrossCheck]:
    """All cross-checks (used by the test suite and diagnostics)."""
    return [
        smt_crosscheck(),
        pingpong_mode_crosscheck(),
        fft_speedup_crosscheck(),
    ]
