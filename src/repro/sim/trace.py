"""Timeline recording and utilization profiles (rebased on ``repro.trace``).

The paper presents three trace-based figures: Fig. 3 (per-thread
timelines of a PME step), Fig. 9 (time-profile of CPU utilization with
and without communication threads) and Fig. 10 (timestep density in a
fixed window with regular vs. many-to-many PME).  Historically this
module owned the ad-hoc ``TimelineRecorder``; span collection now lives
in the unified :class:`repro.trace.Tracer` (which adds named counters,
nested spans and Chrome/Perfetto + manifest exporters), and this module
keeps the backwards-compatible recorder alias plus the ASCII renderers
used by the miniature figure reproductions.

Activity categories follow the paper's colour legend:

* ``integrate`` — atom velocity/position integration (red)
* ``nonbonded`` — cutoff non-bonded compute (purple)
* ``pme``       — PME/FFT work (green)
* ``comm``      — messaging overhead / runtime scheduling
* ``idle``      — idle poll loop (white)
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..trace.core import Span, Tracer
from .engine import Environment
from types import MappingProxyType

__all__ = ["Segment", "TimelineRecorder", "utilization_profile", "render_ascii_timeline"]

#: Legacy name: one contiguous activity interval on one simulated thread.
Segment = Span


class TimelineRecorder(Tracer):
    """Backwards-compatible face of the unified tracer.

    Threads bracket activities with :meth:`begin`/:meth:`end` (or the
    inherited :meth:`~repro.trace.Tracer.span` context manager for
    nesting), and unclosed segments are closed at the current simulation
    time by :meth:`finish` — exactly the old recorder contract, now with
    the counter and exporter machinery of :class:`repro.trace.Tracer`
    underneath.
    """

    def __init__(self, env: Environment, enabled: bool = True) -> None:
        super().__init__(env, enabled=enabled)

    @property
    def segments(self) -> list:
        """Legacy alias for :attr:`~repro.trace.Tracer.spans`."""
        return self.spans

    def threads(self) -> list:
        """Legacy alias for :meth:`~repro.trace.Tracer.tracks`."""
        return self.tracks()

    def utilization(
        self, thread: Optional[int] = None, track: Optional[int] = None
    ) -> Tuple[float, float]:
        return super().utilization(track=track if track is not None else thread)

    def time_in(
        self, category: str, thread: Optional[int] = None, track: Optional[int] = None
    ) -> float:
        return super().time_in(category, track=track if track is not None else thread)


def utilization_profile(
    recorder: Tracer,
    bins: int = 100,
    categories: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Bin per-category busy time into a time profile (Fig. 9 shape).

    Accepts any :class:`repro.trace.Tracer`.  Returns a mapping
    ``category -> array(bins)`` of the fraction of thread-time spent in
    that category in each bin, plus ``"_edges"`` with the bin edges.
    """
    t0, t1 = recorder.time_span()
    if t1 <= t0:
        raise ValueError("empty timeline")
    edges = np.linspace(t0, t1, bins + 1)
    ntracks = len(recorder.tracks()) or 1
    width = (t1 - t0) / bins
    if categories is None:
        categories = recorder.categories()
    out: Dict[str, np.ndarray] = {c: np.zeros(bins) for c in categories}
    for seg in recorder.spans:
        if seg.category not in out:
            continue
        lo = int(np.searchsorted(edges, seg.start, side="right")) - 1
        hi = int(np.searchsorted(edges, seg.end, side="left"))
        lo = max(lo, 0)
        hi = min(hi, bins)
        for b in range(lo, hi):
            overlap = min(seg.end, edges[b + 1]) - max(seg.start, edges[b])
            if overlap > 0:
                out[seg.category][b] += overlap
    for c in categories:
        out[c] /= width * ntracks
    out["_edges"] = edges
    return out


_GLYPHS = MappingProxyType({
    "integrate": "R",  # red in the paper
    "nonbonded": "P",  # purple
    "bonded": "B",
    "pme": "G",  # green
    "fft": "G",
    "comm": "c",
    "sched": "s",
    "alloc": "a",
    "idle": ".",
})


def render_ascii_timeline(
    recorder: Tracer,
    width: int = 80,
    threads: Optional[Iterable[int]] = None,
) -> str:
    """Render per-track timelines as ASCII art (one row per track).

    This is the textual stand-in for the paper's Projections timeline
    screenshots (Figs. 3 and 10); the interactive equivalent is
    :func:`repro.trace.write_chrome_trace` + Perfetto.
    """
    t0, t1 = recorder.time_span()
    if t1 <= t0:
        return "(empty timeline)"
    sel = sorted(threads) if threads is not None else recorder.tracks()
    scale = width / (t1 - t0)
    rows = []
    for th in sel:
        row = ["."] * width
        for seg in recorder.spans:
            if seg.track != th:
                continue
            a = int((seg.start - t0) * scale)
            b = max(a + 1, int(round((seg.end - t0) * scale)))
            g = _GLYPHS.get(seg.category, "?")
            for i in range(a, min(b, width)):
                row[i] = g
        busy, useful = recorder.utilization(track=th)
        rows.append(f"T{th:3d} |{''.join(row)}| ({busy * 100:.0f}%,{useful * 100:.0f}%)")
    legend = "legend: R=integrate P=nonbonded G=pme/fft c=comm s=sched .=idle"
    return "\n".join(rows + [legend])
