"""Timeline recording and utilization profiles.

The paper presents three trace-based figures: Fig. 3 (per-thread
timelines of a PME step), Fig. 9 (time-profile of CPU utilization with
and without communication threads) and Fig. 10 (timestep density in a
fixed window with regular vs. many-to-many PME).  This module records
per-thread activity segments during a simulation and renders both
ASCII timelines and binned utilization profiles from them.

Activity categories follow the paper's colour legend:

* ``integrate`` — atom velocity/position integration (red)
* ``nonbonded`` — cutoff non-bonded compute (purple)
* ``pme``       — PME/FFT work (green)
* ``comm``      — messaging overhead / runtime scheduling
* ``idle``      — idle poll loop (white)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .engine import Environment

__all__ = ["Segment", "TimelineRecorder", "utilization_profile", "render_ascii_timeline"]

#: Categories counted as "useful work" when computing utilization, as in
#: the paper's "(total CPU utilization, useful work utilization)" labels.
USEFUL = frozenset({"integrate", "nonbonded", "pme", "bonded", "compute", "fft"})
#: Categories counted as busy (useful + overhead) but not idle.
BUSY_OVERHEAD = frozenset({"comm", "sched", "alloc", "pack", "unpack"})


@dataclass(frozen=True)
class Segment:
    """One contiguous activity interval on one simulated thread."""

    thread: int
    category: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class TimelineRecorder:
    """Collects activity segments from simulated threads.

    Threads bracket activities with :meth:`begin`/:meth:`end`, or use the
    :meth:`record` shortcut when start/end are both known.  Unclosed
    segments are closed at the current simulation time by :meth:`finish`.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.segments: List[Segment] = []
        self._open: Dict[int, Tuple[str, float]] = {}

    def begin(self, thread: int, category: str) -> None:
        """Start a new activity on ``thread``, closing any open one."""
        now = self.env.now
        prev = self._open.get(thread)
        if prev is not None:
            cat, t0 = prev
            if now > t0:
                self.segments.append(Segment(thread, cat, t0, now))
        self._open[thread] = (category, now)

    def end(self, thread: int) -> None:
        """Close the open activity on ``thread`` (no-op if none)."""
        prev = self._open.pop(thread, None)
        if prev is not None:
            cat, t0 = prev
            now = self.env.now
            if now > t0:
                self.segments.append(Segment(thread, cat, t0, now))

    def record(self, thread: int, category: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError("segment end precedes start")
        if end > start:
            self.segments.append(Segment(thread, category, start, end))

    def finish(self) -> None:
        """Close all open segments at the current time."""
        for thread in list(self._open):
            self.end(thread)

    # -- queries ---------------------------------------------------------
    def threads(self) -> List[int]:
        return sorted({s.thread for s in self.segments})

    def span(self) -> Tuple[float, float]:
        if not self.segments:
            return (0.0, 0.0)
        return (
            min(s.start for s in self.segments),
            max(s.end for s in self.segments),
        )

    def time_in(self, category: str, thread: Optional[int] = None) -> float:
        return sum(
            s.duration
            for s in self.segments
            if s.category == category and (thread is None or s.thread == thread)
        )

    def utilization(self, thread: Optional[int] = None) -> Tuple[float, float]:
        """Return (total busy fraction, useful-work fraction).

        Mirrors the "(total CPU utilization, useful work utilization)"
        pair printed on the paper's timeline figures.
        """
        t0, t1 = self.span()
        horizon = t1 - t0
        if horizon <= 0:
            return (0.0, 0.0)
        segs = [s for s in self.segments if thread is None or s.thread == thread]
        nthreads = len({s.thread for s in segs}) or 1
        busy = sum(s.duration for s in segs if s.category != "idle")
        useful = sum(s.duration for s in segs if s.category in USEFUL)
        denom = horizon * nthreads
        return (busy / denom, useful / denom)


def utilization_profile(
    recorder: TimelineRecorder,
    bins: int = 100,
    categories: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Bin per-category busy time into a time profile (Fig. 9 shape).

    Returns a mapping ``category -> array(bins)`` of the fraction of
    thread-time spent in that category in each bin, plus ``"_edges"``
    with the bin edges.
    """
    t0, t1 = recorder.span()
    if t1 <= t0:
        raise ValueError("empty timeline")
    edges = np.linspace(t0, t1, bins + 1)
    nthreads = len(recorder.threads()) or 1
    width = (t1 - t0) / bins
    if categories is None:
        categories = sorted({s.category for s in recorder.segments})
    out: Dict[str, np.ndarray] = {c: np.zeros(bins) for c in categories}
    for seg in recorder.segments:
        if seg.category not in out:
            continue
        lo = int(np.searchsorted(edges, seg.start, side="right")) - 1
        hi = int(np.searchsorted(edges, seg.end, side="left"))
        lo = max(lo, 0)
        hi = min(hi, bins)
        for b in range(lo, hi):
            overlap = min(seg.end, edges[b + 1]) - max(seg.start, edges[b])
            if overlap > 0:
                out[seg.category][b] += overlap
    for c in categories:
        out[c] /= width * nthreads
    out["_edges"] = edges
    return out


_GLYPHS = {
    "integrate": "R",  # red in the paper
    "nonbonded": "P",  # purple
    "bonded": "B",
    "pme": "G",  # green
    "fft": "G",
    "comm": "c",
    "sched": "s",
    "alloc": "a",
    "idle": ".",
}


def render_ascii_timeline(
    recorder: TimelineRecorder,
    width: int = 80,
    threads: Optional[Iterable[int]] = None,
) -> str:
    """Render per-thread timelines as ASCII art (one row per thread).

    This is the textual stand-in for the paper's Projections timeline
    screenshots (Figs. 3 and 10).
    """
    t0, t1 = recorder.span()
    if t1 <= t0:
        return "(empty timeline)"
    sel = sorted(threads) if threads is not None else recorder.threads()
    scale = width / (t1 - t0)
    rows = []
    for th in sel:
        row = ["."] * width
        for seg in recorder.segments:
            if seg.thread != th:
                continue
            a = int((seg.start - t0) * scale)
            b = max(a + 1, int(round((seg.end - t0) * scale)))
            g = _GLYPHS.get(seg.category, "?")
            for i in range(a, min(b, width)):
                row[i] = g
        busy, useful = recorder.utilization(thread=th)
        rows.append(f"T{th:3d} |{''.join(row)}| ({busy * 100:.0f}%,{useful * 100:.0f}%)")
    legend = "legend: R=integrate P=nonbonded G=pme/fft c=comm s=sched .=idle"
    return "\n".join(rows + [legend])
