"""Conservative parallel DES: shard-local environments in lockstep.

The single-process :class:`~repro.sim.Environment` tops out around
O(32) simulated BG/Q nodes; this module is the engine side of the
sharded torus (docs/SCALING.md).  The simulated machine is partitioned
into *shards*, each with its own event queue and clock, and a
:class:`ShardCoordinator` advances all shards through a sequence of
half-open time windows::

    window = [T, T + W)   with   W <= lookahead

where the *lookahead* is the minimum simulated delay of any cross-shard
interaction (for the BG/Q torus: NIC injection latency — every packet
spends at least ``nic_latency + hop_latency`` cycles before touching
another node, see :mod:`repro.bgq.shardnet`).  Within a window shards
execute independently; cross-shard sends are buffered and exchanged at
the window barrier, where they are scheduled as *external events* in
the destination shard — always in that shard's future, because the
window never outruns the lookahead.  This is classic conservative
(Chandy–Misra–Bryant-style) synchronization, with the barrier playing
the role of null messages.

Determinism
-----------
The serial engine orders same-time events by an integer schedule
sequence number.  Across shards there is no shared counter, so sharded
runs order events by a :class:`_SeqKey` ``(alloc_time, shard, counter)``
triple instead: within one shard this collapses to allocation order
(the serial order — allocation times are monotonic), and across shards
it is a deterministic total order independent of host scheduling.  The
key type plugs into the engine's hot path *unmodified*: the engine
allocates sequence numbers with ``env._seq = env._seq + 1``, so a
``_SeqKey`` held in ``_seq`` mints its successor via ``__add__``.

Transports
----------
:class:`ShardCoordinator` runs every shard in one host process
(`inproc`) — zero-copy, used by the equivalence gate and tests.
:func:`run_sharded_subprocesses` forks one OS process per shard and
exchanges window/sync frames over shared-memory SPSC rings
(:class:`ShmRing`); payloads must then be picklable.  Both transports
execute the identical window protocol, so they produce identical
trajectories.
"""

from __future__ import annotations

import heapq
import pickle
import struct
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .engine import _TRIGGERED, Environment, Event, SimulationError

__all__ = [
    "ShardEnvironment",
    "ShardCoordinator",
    "ShardStallError",
    "ShmRing",
    "run_sharded_subprocesses",
]

_INF = float("inf")


class ShardStallError(SimulationError):
    """No shard can advance and no cross-shard traffic is in flight.

    The sharded analogue of the serial engine's "ran out of events
    before the stop event triggered" — see docs/SCALING.md
    ("Troubleshooting stalled shards") for how to read the diagnostic.
    """


class _SeqKey:
    """Deterministic total order for same-time events across shards.

    Compares as the tuple ``(t, origin, n)``: allocation time, then the
    allocating shard id, then that shard's allocation counter.  The
    engine's ``env._seq = env._seq + 1`` pattern mints successors via
    :meth:`__add__`, reading the clock and counter through a
    back-reference to the owning :class:`ShardEnvironment`; keys
    reconstructed from the wire carry no environment (``env=None``) and
    are never incremented.
    """

    __slots__ = ("t", "origin", "n", "_env")

    def __init__(self, t: float, origin: int, n: int, env=None) -> None:
        self.t = t
        self.origin = origin
        self.n = n
        self._env = env

    def __add__(self, _other) -> "_SeqKey":
        # Only the engine's `_seq + 1` reaches this.
        env = self._env
        env._key_counter = n = env._key_counter + 1
        return _SeqKey(env.now, env.shard_id, n, env)

    def triple(self) -> Tuple[float, int, int]:
        """Wire form (picklable, env-free)."""
        return (self.t, self.origin, self.n)

    def __lt__(self, other: "_SeqKey") -> bool:
        return (self.t, self.origin, self.n) < (other.t, other.origin, other.n)

    def __le__(self, other: "_SeqKey") -> bool:
        return (self.t, self.origin, self.n) <= (other.t, other.origin, other.n)

    def __gt__(self, other: "_SeqKey") -> bool:
        return (self.t, self.origin, self.n) > (other.t, other.origin, other.n)

    def __ge__(self, other: "_SeqKey") -> bool:
        return (self.t, self.origin, self.n) >= (other.t, other.origin, other.n)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _SeqKey)
            and (self.t, self.origin, self.n) == (other.t, other.origin, other.n)
        )

    def __hash__(self) -> int:
        return hash((self.t, self.origin, self.n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_SeqKey(t={self.t!r}, origin={self.origin}, n={self.n})"


class ShardEnvironment(Environment):
    """An :class:`Environment` that is one shard of a partitioned run.

    Identical hot path; the only differences are (a) schedule sequence
    numbers are :class:`_SeqKey` triples so same-time ordering is
    host-independent, and (b) :meth:`schedule_external` lets the
    coordinator push barrier-exchanged events straight onto the heap.
    With a single shard this is trajectory-identical to the serial
    engine: keys compare in allocation order exactly like the serial
    integer sequence.
    """

    __slots__ = ("shard_id", "_key_counter")

    def __init__(self, shard_id: int = 0, initial_time: float = 0.0) -> None:
        super().__init__(initial_time)
        self.shard_id = int(shard_id)
        self._key_counter = 0
        self._seq = _SeqKey(self._now, self.shard_id, 0, self)

    def next_key(self) -> _SeqKey:
        """Allocate one ordering key from the engine's own sequence.

        Used at cross-shard injection points: the key consumed when a
        packet leaves its source shard later orders both its delivery
        (destination shard) and its completion (source shard) against
        unrelated same-time events.
        """
        self._seq = key = self._seq + 1
        return key

    def schedule_external(self, when: float, key: _SeqKey, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` at ``when`` under a pre-allocated key.

        Bypasses :meth:`Event.succeed` (which would mint a fresh key at
        the *current* time): the event enters the heap already
        triggered, carrying the ordering key allocated when the
        originating send happened.  ``when`` must be in this shard's
        future — guaranteed by the lookahead bound, asserted here
        because violating it silently would corrupt causality.
        """
        if when < self._now:
            raise SimulationError(
                f"external event at t={when} is in shard {self.shard_id}'s "
                f"past (now={self._now}): lookahead/window mismatch"
            )
        ev = Event(self)
        ev._state = _TRIGGERED
        ev.callbacks = [lambda _ev, _fn=fn: _fn()]
        heapq.heappush(self._queue, (when, key, ev))


class ShardCoordinator:
    """Lockstep window driver for in-process shards.

    ``fabric`` is the cross-shard exchange (for the BG/Q torus:
    :class:`repro.bgq.shardnet.ReservationFabric`); it must provide
    ``flush() -> int`` (process buffered sends, schedule externals,
    return how many) and ``pending() -> int`` (sends buffered but not
    yet flushed).  ``window`` must not exceed the fabric's lookahead.
    """

    def __init__(
        self,
        shards: Sequence[ShardEnvironment],
        window: float,
        fabric=None,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.shards = list(shards)
        self.window = float(window)
        self.fabric = fabric
        self.windows_run = 0

    def run(self, until: Event) -> Any:
        """Advance all shards until ``until`` (an event on one of them).

        The clock-advance rule (docs/SCALING.md): at every barrier,
        flush cross-shard traffic, then run every shard through
        ``[T, T + window)`` where ``T = min(next event time over all
        shards)`` — the idle-jump directly to the earliest work, so
        sparsely loaded shard sets don't crawl through empty windows.
        """
        done = until
        root = done.env
        if root not in self.shards:
            raise ValueError("`until` event does not belong to any shard")
        fabric = self.fabric
        from .engine import _PROCESSED  # local import: engine-internal state tag

        while done._state != _PROCESSED:
            if fabric is not None:
                fabric.flush()
            m = min(env.peek() for env in self.shards)
            if m == _INF:
                if done._state == _PROCESSED:
                    break
                raise ShardStallError(self._stall_report(done))
            end = m + self.window
            for env in self.shards:
                env.run_window(end, done if env is root else None)
            self.windows_run += 1
        return done.value

    def _stall_report(self, done: Event) -> str:
        lines = [
            "sharded run stalled: every shard is idle, no cross-shard "
            f"traffic is in flight, and {done!r} never triggered.",
        ]
        for env in self.shards:
            lines.append(
                f"  shard {env.shard_id}: now={env.now} next_event="
                f"{env.peek()} executed={env.events_executed}"
            )
        if self.fabric is not None:
            lines.append(f"  fabric: pending={self.fabric.pending()}")
        lines.append(
            "  (see docs/SCALING.md, 'Troubleshooting stalled shards')"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Subprocess transport: shared-memory rings + window/sync protocol
# ---------------------------------------------------------------------------

_HDR = struct.Struct("<Q")  # one 8-byte cursor per ring end
_LEN = struct.Struct("<I")  # frame length prefix


class ShmRing:
    """SPSC byte ring over ``multiprocessing.shared_memory``.

    Layout: ``[head:8][tail:8][data:capacity]``.  The producer owns
    ``tail``, the consumer owns ``head``; frames are length-prefixed
    pickles.  Polling uses a short host sleep — shard barriers are
    O(windows) per run, far off any hot path.
    """

    def __init__(self, capacity: int = 1 << 20, *, name: Optional[str] = None) -> None:
        from multiprocessing import shared_memory

        self.capacity = capacity
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=16 + capacity)
            self.owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self.owner = False
        self.name = self._shm.name
        self._buf = self._shm.buf

    # -- cursors ----------------------------------------------------------
    def _get(self, off: int) -> int:
        return _HDR.unpack_from(self._buf, off)[0]

    def _set(self, off: int, value: int) -> None:
        _HDR.pack_into(self._buf, off, value)

    # -- byte I/O ---------------------------------------------------------
    def _write_bytes(self, data: bytes, deadline: float) -> None:
        cap = self.capacity
        need = len(data)
        if need >= cap:
            raise ValueError(f"frame of {need} B exceeds ring capacity {cap}")
        while True:
            head = self._get(0)
            tail = self._get(8)
            if cap - (tail - head) > need:  # keep one byte free
                break
            # Host-side IPC deadline (hung-peer guard), never simulated
            # time — the frames themselves carry the simulated clocks.
            if time.monotonic() > deadline:  # repro-lint: disable=D1
                raise TimeoutError("ShmRing write timed out (ring full)")
            time.sleep(0.0002)
        pos = tail % cap
        first = min(need, cap - pos)
        self._buf[16 + pos : 16 + pos + first] = data[:first]
        if first < need:
            self._buf[16 : 16 + need - first] = data[first:]
        self._set(8, tail + need)

    def _read_bytes(self, need: int, deadline: float) -> bytes:
        cap = self.capacity
        while True:
            head = self._get(0)
            tail = self._get(8)
            if tail - head >= need:
                break
            if time.monotonic() > deadline:  # repro-lint: disable=D1
                raise TimeoutError("ShmRing read timed out (ring empty)")
            time.sleep(0.0002)
        pos = head % cap
        first = min(need, cap - pos)
        out = bytes(self._buf[16 + pos : 16 + pos + first])
        if first < need:
            out += bytes(self._buf[16 : 16 + need - first])
        self._set(0, head + need)
        return out

    # -- frames -----------------------------------------------------------
    def send(self, obj: Any, timeout: float = 120.0) -> None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        deadline = time.monotonic() + timeout  # repro-lint: disable=D1
        self._write_bytes(_LEN.pack(len(data)), deadline)
        self._write_bytes(data, deadline)

    def recv(self, timeout: float = 120.0) -> Any:
        deadline = time.monotonic() + timeout  # repro-lint: disable=D1
        (n,) = _LEN.unpack(self._read_bytes(_LEN.size, deadline))
        return pickle.loads(self._read_bytes(n, deadline))

    def close(self) -> None:
        self._buf = None
        self._shm.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass


def _shard_worker(shard_id: int, nshards: int, build_client, to_child: ShmRing, to_parent: ShmRing) -> None:
    """Child main loop: build the shard, then serve window frames."""
    try:
        client = build_client(shard_id, nshards)
        env = client.env
        done = getattr(client, "done", None)
        to_parent.send(
            {"type": "sync", "peek": env.peek(), "requests": [], "done": False}
        )
        while True:
            msg = to_child.recv(timeout=600.0)
            kind = msg["type"]
            if kind == "window":
                for rec in msg["externals"]:
                    client.apply_external(rec)
                env.run_window(msg["end"], done)
                finished = done is not None and done.processed
                to_parent.send(
                    {
                        "type": "sync",
                        "peek": env.peek(),
                        "requests": client.drain_requests(),
                        "done": finished,
                    }
                )
            elif kind == "finish":
                to_parent.send({"type": "result", "value": client.result()})
                return
            elif kind == "abort":
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown frame {kind!r}")
    except BaseException:
        try:
            to_parent.send({"type": "error", "traceback": traceback.format_exc()})
        except Exception:  # pragma: no cover - ring already gone
            pass


def run_sharded_subprocesses(
    nshards: int,
    window: float,
    build_client,
    fabric,
    ring_bytes: int = 1 << 20,
) -> Dict[int, Any]:
    """Fork one OS process per shard and run the window protocol.

    ``build_client(shard_id, nshards)`` runs *in the child* (fork
    start method, so closures travel for free) and returns an object
    with ``env``/``done``/``apply_external``/``drain_requests``/
    ``result`` — see :class:`repro.bgq.shardnet.ShardClient`.
    ``fabric`` runs in the parent and must provide
    ``process(wire_requests) -> (externals_by_shard, min_arrival)``.
    Returns ``{shard_id: result}``.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    to_child = [ShmRing(ring_bytes) for _ in range(nshards)]
    to_parent = [ShmRing(ring_bytes) for _ in range(nshards)]
    procs = []
    try:
        for i in range(nshards):
            pr = ctx.Process(
                target=_shard_worker,
                args=(i, nshards, build_client, to_child[i], to_parent[i]),
                daemon=True,
            )
            pr.start()
            procs.append(pr)

        def read_sync(i: int) -> dict:
            msg = to_parent[i].recv(timeout=600.0)
            if msg["type"] == "error":
                raise RuntimeError(
                    f"shard {i} failed:\n{msg['traceback']}"
                )
            return msg

        peeks: List[float] = []
        finished = False
        for i in range(nshards):
            sync = read_sync(i)
            peeks.append(sync["peek"])
            finished = finished or sync["done"]
        externals_by_shard: Dict[int, list] = {}

        while not finished:
            m = min(peeks)
            if m == _INF:
                raise ShardStallError(
                    "sharded subprocess run stalled: all shards idle with no "
                    "in-flight traffic (see docs/SCALING.md)"
                )
            end = m + window
            for i in range(nshards):
                to_child[i].send(
                    {
                        "type": "window",
                        "end": end,
                        "externals": externals_by_shard.pop(i, []),
                    }
                )
            requests: list = []
            for i in range(nshards):
                sync = read_sync(i)
                peeks[i] = sync["peek"]
                requests.extend(sync["requests"])
                finished = finished or sync["done"]
            externals_by_shard, arrivals = fabric.process(requests)
            for shard_id, recs in externals_by_shard.items():
                first = min(arrivals[shard_id]) if arrivals.get(shard_id) else _INF
                if first < peeks[shard_id]:
                    peeks[shard_id] = first

        results: Dict[int, Any] = {}
        for i in range(nshards):
            to_child[i].send({"type": "finish"})
        for i in range(nshards):
            msg = read_sync(i)
            if msg["type"] != "result":  # pragma: no cover - protocol error
                raise RuntimeError(f"expected result frame, got {msg['type']!r}")
            results[i] = msg["value"]
        return results
    finally:
        for pr in procs:
            pr.join(timeout=5.0)
            if pr.is_alive():  # pragma: no cover - hung child
                pr.terminate()
        for ring in to_child + to_parent:
            ring.close()
