"""Seeded random-stream management.

Determinism rule: every stochastic component draws from its own named
stream derived from a single root seed, so adding a new component never
perturbs the draws of existing ones, and a given root seed reproduces a
bit-identical simulation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["StreamRegistry"]


class StreamRegistry:
    """Hands out independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0x5EED) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                self.root_seed, spawn_key=tuple(name.encode("utf-8"))
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams (next access re-creates from the root seed)."""
        self._streams.clear()
