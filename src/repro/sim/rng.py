"""Seeded random-stream management.

Determinism rule: every stochastic component draws from its own named
stream derived from a single root seed, so adding a new component never
perturbs the draws of existing ones, and a given root seed reproduces a
bit-identical simulation.

Reset semantics
---------------
Components are allowed to *cache* the ``Generator`` a registry hands
out (``self._rng = registry.stream("link.0.1")`` at construction is the
common shape).  :meth:`StreamRegistry.reset` therefore reseeds every
existing generator **in place** — by replacing its bit-generator state
— instead of dropping the mapping: dropping would leave every cached
handle silently drawing from the stale pre-reset sequence, which is
exactly how per-job reseeding fails on engine reuse (the serve job
runtime resets a shared registry between jobs).  ``reset(root_seed=s)``
additionally rebases the registry on a new root seed, which is the
per-job path.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["StreamRegistry"]


class StreamRegistry:
    """Hands out independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0x5EED) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _fresh_state(self, name: str) -> dict:
        """Bit-generator state for ``name`` at the current root seed."""
        seq = np.random.SeedSequence(
            self.root_seed, spawn_key=tuple(name.encode("utf-8"))
        )
        return np.random.default_rng(seq).bit_generator.state

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``.

        The returned generator stays valid across :meth:`reset`: the
        registry reseeds it in place rather than replacing it, so
        holding on to the handle is safe.
        """
        gen = self._streams.get(name)
        if gen is None:
            # The OS-entropy seed never surfaces: the state is replaced
            # with the seed-derived one before the generator is handed
            # out (constructed unseeded only so reset() can later swap
            # states in place without reallocating).
            gen = np.random.default_rng()  # repro-lint: disable=D2
            gen.bit_generator.state = self._fresh_state(name)
            self._streams[name] = gen
        return gen

    def reset(self, root_seed: Optional[int] = None) -> None:
        """Rewind every stream to its seed-derived origin, in place.

        Cached generator handles keep working — they resume from the
        (possibly new) root seed, bit-identical to a freshly
        constructed registry.  ``root_seed`` rebases the registry for
        per-job reseeding; ``None`` keeps the current root seed.
        """
        if root_seed is not None:
            self.root_seed = int(root_seed)
        for name, gen in self._streams.items():
            gen.bit_generator.state = self._fresh_state(name)
