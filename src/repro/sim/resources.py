"""Synchronisation resources with contention accounting.

These model the *software* synchronisation objects the paper contrasts
with BG/Q L2 atomics: pthread-style mutexes (whose contention is the
pathology in §III-A/III-B) and simple FIFO stores used as mailboxes.

Every resource records how long acquirers waited, so benchmarks can
report contention directly (Fig. 6 is essentially a mutex-contention
measurement).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Mutex", "Semaphore", "Store", "ContentionStats"]


class ContentionStats:
    """Aggregate waiting statistics for a resource."""

    __slots__ = ("acquisitions", "contended", "total_wait", "max_wait")

    def __init__(self) -> None:
        self.acquisitions = 0
        self.contended = 0
        self.total_wait = 0.0
        self.max_wait = 0.0

    def record(self, wait: float) -> None:
        self.acquisitions += 1
        if wait > 0:
            self.contended += 1
            self.total_wait += wait
            self.max_wait = max(self.max_wait, wait)

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ContentionStats(acq={self.acquisitions}, contended={self.contended},"
            f" total_wait={self.total_wait:.1f})"
        )


class Mutex:
    """FIFO mutex with uncontended/contended cost model.

    ``acquire_cost`` is charged even when the lock is free (an atomic
    compare-and-swap plus memory fencing); waiters additionally pay the
    queueing delay.  This is the mutex the GNU arena allocator and the
    MPI-ordered PAMI work queues pay for, which L2 atomic queues avoid.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "mutex",
        acquire_cost: float = 0.0,
        release_cost: float = 0.0,
    ) -> None:
        self.env = env
        self.name = name
        self.acquire_cost = acquire_cost
        self.release_cost = release_cost
        self._locked = False
        self._waiters: Deque[tuple[Event, float]] = deque()
        self.stats = ContentionStats()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self):
        """Process-style acquire; ``yield from mutex.acquire()``."""
        if self.acquire_cost:
            yield self.env.timeout(self.acquire_cost)
        t0 = self.env.now
        if self._locked:
            ev = self.env.event()
            self._waiters.append((ev, t0))
            yield ev
            # Ownership transferred to us by release(); wait recorded there.
        else:
            self._locked = True
            self.stats.record(self.env.now - t0)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns False if held (no cost charged)."""
        if self._locked:
            return False
        self._locked = True
        self.stats.record(0.0)
        return True

    def release(self):
        """Process-style release; ``yield from mutex.release()``."""
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name}")
        if self.release_cost:
            yield self.env.timeout(self.release_cost)
        if self._waiters:
            ev, t0 = self._waiters.popleft()
            # Hand the lock directly to the next waiter (still locked).
            self.stats.record(self.env.now - t0)
            ev.succeed()
        else:
            self._locked = False

    def release_nowait(self) -> None:
        """Zero-cost release (for try_acquire pairing)."""
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name}")
        if self._waiters:
            ev, t0 = self._waiters.popleft()
            self.stats.record(self.env.now - t0)
            ev.succeed()
        else:
            self._locked = False


class Semaphore:
    """Counting semaphore with FIFO wakeups."""

    def __init__(self, env: Environment, value: int = 0, name: str = "sem") -> None:
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.env = env
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self):
        if self._value > 0:
            self._value -= 1
            return
            yield  # pragma: no cover - makes this a generator
        ev = self.env.event()
        self._waiters.append(ev)
        yield ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Store:
    """Unbounded FIFO store: put never blocks, get blocks when empty.

    Used as a simple mailbox between simulated threads where the paper's
    specialised queues are *not* the object of study.
    """

    def __init__(self, env: Environment, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self):
        """Process-style get; ``item = yield from store.get()``."""
        if self._items:
            return self._items.popleft()
        ev = self.env.event()
        self._getters.append(ev)
        item = yield ev
        return item

    def try_get(self) -> Optional[Any]:
        if self._items:
            return self._items.popleft()
        return None
