"""Deterministic discrete-event simulation kernel.

All simulated BG/Q hardware and all runtime threads in this
reproduction execute as processes on :class:`~repro.sim.Environment`.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import ContentionStats, Mutex, Semaphore, Store
from .rng import StreamRegistry
from .shard import (
    ShardCoordinator,
    ShardEnvironment,
    ShardStallError,
    run_sharded_subprocesses,
)
from .trace import (
    Segment,
    TimelineRecorder,
    render_ascii_timeline,
    utilization_profile,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "ContentionStats",
    "Environment",
    "Event",
    "Interrupt",
    "Mutex",
    "Process",
    "Segment",
    "Semaphore",
    "ShardCoordinator",
    "ShardEnvironment",
    "ShardStallError",
    "SimulationError",
    "Store",
    "run_sharded_subprocesses",
    "StreamRegistry",
    "Timeout",
    "TimelineRecorder",
    "render_ascii_timeline",
    "utilization_profile",
]
