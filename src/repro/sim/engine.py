"""Deterministic discrete-event simulation kernel.

Every hardware and runtime component in this reproduction executes on top
of this engine: simulated hardware threads are generator-based processes,
hardware latencies are timeouts, and cross-component signalling is done
with :class:`Event`.

The engine is deliberately SimPy-flavoured but self-contained (the
reproduction environment is offline) and fully deterministic: events
scheduled for the same timestamp fire in schedule order, so a given seed
always produces an identical trace.  Time is a float in *simulated
cycles* of the machine being modelled; helpers for converting to
nanoseconds/microseconds live on the machine parameter objects.

Hot path
--------
``Environment.step()`` / ``Process._resume()`` dominate the wall-clock
of every figure reproduction (see EXPERIMENTS.md "Benchmark gate"), so
the kernel keeps a *fast path* that is *cycle-for-cycle identical* to
the straightforward implementation — same event order, same simulated
times — but cheaper on the host:

* zero-delay events (every ``succeed``/``fail``, process init/interrupt
  wakes, condition triggers) go to a FIFO deque instead of the heap.
  Because the clock cannot advance past a pending event, all deque
  entries share the current timestamp and carry their schedule sequence
  number; :meth:`Environment.step` merges deque and heap by
  ``(time, seq)``, reproducing exact heap order with O(1) scheduling
  for the dominant zero-delay class;
* ``Event.callbacks`` is lazily allocated (``None`` until the first
  waiter registers; reset to ``None`` once processed), so events nobody
  waits on never allocate a list;
* each :class:`Process` reuses one bound ``_resume`` callback for every
  wait instead of materialising a new bound method per yield;
* :meth:`Environment.step` inlines callback processing, and
  :class:`Timeout` initialises its slots directly — the common
  ``timeout -> resume`` cycle runs without intermediate method calls;
* every :class:`Event` subclass is ``__slots__``-complete (no instance
  dicts on the hot path).

Setting ``REPRO_ENGINE_SLOWPATH=1`` in the environment before creating
an :class:`Environment` routes *all* scheduling through the heap (the
reference behaviour).  The determinism suite
(``tests/sim/test_determinism.py``) asserts both paths produce
bit-identical trajectories.

Sanitizer
---------
``REPRO_SANITIZE=1`` (sampled at :class:`Environment` construction,
like the slow-path flag) routes stepping through a *checked* path that
pops in exactly the same order but additionally detects runtime
protocol violations the static pass (``repro.analysis``, rule docs in
docs/ANALYSIS.md) cannot prove: reentrant ``step()``/``run()`` calls
from inside event callbacks, callback registration on already-processed
events (lost wakeups), and hash-ordered iterables handed to
``any_of``/``all_of``.  The checks raise
:class:`repro.analysis.sanitizer.SanitizerError`; the trajectory of a
clean run is bit-identical to an unsanitized one.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from time import perf_counter_ns
from types import FunctionType as _FunctionType, MethodType as _MethodType
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]

_INF = float("inf")

#: Construction hook for the engine hotspot profiler (``repro.obs``).
#: Single slot so installation is one list write, not a module
#: rebinding; ``ProfileSession`` sets ``[0]`` to a factory called with
#: each new :class:`Environment` and clears it on exit.  Tooling-only
#: state: it is read exactly once per Environment construction and
#: never influences scheduling, so concurrent-instance isolation is
#: unaffected (allowlisted in ``[tool.repro-lint] global-allow``).
_PROFILER_FACTORY: list = [None]


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (double-trigger, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* with either a value (:meth:`succeed`) or an
    exception (:meth:`fail`).  Callbacks registered before processing run
    in registration order when the event is popped from the event queue.

    ``callbacks`` is ``None`` both before any callback registers (lazy
    allocation — most events never get a waiter) and again after the
    event has been processed; test ``_state`` (via :attr:`processed`)
    to distinguish, never ``callbacks is None`` alone.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = _PENDING
        self._defused = False

    # -- inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid once triggered)."""
        return self._state != _PENDING and self._exc is None

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("value of untriggered event")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering --------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        if env._fastpath:
            env._imm.append((env._now, seq, self))
        else:
            heapq.heappush(env._queue, (env._now, seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._state = _TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        if env._fastpath:
            env._imm.append((env._now, seq, self))
        else:
            heapq.heappush(env._queue, (env._now, seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as another (for chaining)."""
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)

    def cancel(self) -> None:
        """Lazily retire a scheduled event: its pop becomes a no-op.

        Heap entries cannot be removed in O(log n) (and a
        :class:`Timeout` is heap-scheduled at construction), so
        cancellation marks the event processed and drops its callbacks;
        when ``step()`` eventually pops the entry it dispatches nothing.
        Any generator suspended on the event is abandoned — only cancel
        events whose sole waiter should die with them (the reliability
        layer's retransmit timers are the canonical case).  Idempotent;
        also safe on an event that already fired.
        """
        self.callbacks = None
        self._state = _PROCESSED
        self._defused = True

    # -- engine internals ---------------------------------------------
    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` (event must not be processed yet)."""
        if self._state == _PROCESSED and self.env._sanitize:
            from ..analysis.sanitizer import SanitizerError

            raise SanitizerError(
                f"callback registered on already-processed {self!r} — it "
                "would never fire (lost wakeup); wait on a fresh event"
            )
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = [cb]
        else:
            cbs.append(cb)

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        if callbacks is not None:
            for cb in callbacks:
                cb(self)
        if self._exc is not None and not self._defused:
            # Nobody waited on a failed event: surface the error rather
            # than losing it silently.
            raise self._exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {st[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Initialise slots directly (no Event.__init__ call): a Timeout
        # is born triggered, and this constructor is the hottest
        # allocation site in the simulator.
        self.env = env
        self.callbacks = None
        self._value = value
        self._exc = None
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        if delay == 0.0 and env._fastpath:
            env._imm.append((env._now, seq, self))
        else:
            heapq.heappush(env._queue, (env._now + delay, seq, self))


class _ConditionValue:
    """Ordered mapping of events -> values for AllOf/AnyOf results."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)

    def __iter__(self):
        return iter(self.todict().values())

    def todict(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._exc is None}


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        if env._sanitize:
            from ..analysis.sanitizer import check_ordered

            check_ordered(events, type(self).__name__)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed(_ConditionValue([]))
            return
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            # The condition already triggered.  A constituent that
            # *fails* afterwards must still be defused here — this
            # callback is its only consumer, and an un-defused failure
            # would crash the run from _process_callbacks (e.g. an
            # AnyOf whose losing member later fails).
            if event._exc is not None:
                event._defused = True
            return
        self._count += 1
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
        elif self._satisfied():
            self.succeed(_ConditionValue(self._events))

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self._events)


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Process(Event):
    """A generator-based simulated process.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event fires, receiving the event's value (or having
    the event's exception thrown into it).  The Process is itself an
    Event that fires with the generator's return value when it finishes.
    """

    __slots__ = ("gen", "name", "_target", "_interrupts", "_resume_cb")

    def __init__(
        self,
        env: "Environment",
        gen: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(gen, "throw"):
            raise SimulationError(f"process requires a generator, got {gen!r}")
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        #: One bound method reused for every wait (a fresh bound-method
        #: object per yield is pure allocator churn on the hot path).
        self._resume_cb = self._resume
        init = Event(env)
        init.callbacks = [self._resume_cb]
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            raise SimulationError(f"cannot interrupt finished {self.name}")
        self._interrupts.append(Interrupt(cause))
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        wake = Event(self.env)
        wake.callbacks = [self._resume_cb]
        wake.succeed()

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        gen = self.gen
        while True:
            try:
                if self._interrupts:
                    next_ev = gen.throw(self._interrupts.pop(0))
                elif event._exc is not None:
                    event._defused = True
                    next_ev = gen.throw(event._exc)
                else:
                    next_ev = gen.send(event._value)
            except StopIteration as stop:
                env._active_process = None
                if self._state == _PENDING:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                if self._state == _PENDING:
                    self.fail(exc)
                return

            if not isinstance(next_ev, Event):
                env._active_process = None
                err = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
                gen.throw(err)
                raise err

            if next_ev._state != _PROCESSED:
                # Not yet processed: wait for it.
                cbs = next_ev.callbacks
                if cbs is None:
                    next_ev.callbacks = [self._resume_cb]
                else:
                    cbs.append(self._resume_cb)
                self._target = next_ev
                env._active_process = None
                return
            # Already processed: loop and continue immediately with its
            # outcome (common with pre-fired events).
            event = next_ev


class Environment:
    """The simulation environment: clock + event queues + factories.

    Two pending-event stores cooperate (see the module docstring):
    ``_queue`` is the timestamp heap; ``_imm`` is the FIFO deque of
    zero-delay events, all stamped with the current time and a schedule
    sequence number.  :meth:`step` pops whichever holds the globally
    smallest ``(time, seq)``, so the merged order is exactly the
    classic single-heap order.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_imm",
        "_seq",
        "_fastpath",
        "_sanitize",
        "_stepping",
        "_active_process",
        "events_executed",
        "tracer",
        "profiler",
        "_profile",
        "_pacc",
        "_ppend",
        "_pskip",
        "_prng",
        "_pmod",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        #: Zero-delay events: (time, seq, event), FIFO == (time, seq) order.
        self._imm: deque[tuple[float, int, Event]] = deque()
        self._seq = 0
        #: REPRO_ENGINE_SLOWPATH=1 forces all scheduling through the
        #: heap (reference path, bit-identical results — see module doc).
        self._fastpath = os.environ.get("REPRO_ENGINE_SLOWPATH") != "1"
        #: REPRO_SANITIZE=1 routes step() through the checked path (see
        #: module doc "Sanitizer"); trajectory-neutral, host-time only.
        self._sanitize = os.environ.get("REPRO_SANITIZE") == "1"
        self._stepping = False
        self._active_process: Optional[Process] = None
        #: Events processed so far.  Maintained unconditionally (an int
        #: add is far cheaper than a tracer call on the hottest loop in
        #: the simulator); Tracer.finish() harvests it as the
        #: ``engine.events`` counter.
        self.events_executed = 0
        #: Optional repro.trace.Tracer; None when tracing is off (the
        #: runtime wires it, see ConverseRuntime).
        self.tracer = None
        #: Optional repro.obs.EngineProfiler; None when profiling is
        #: off (the hard zero-cost switch, mirroring ``tracer``).  An
        #: active :class:`repro.obs.ProfileSession` attaches one at
        #: construction; profiling only *measures* — simulated times
        #: stay bit-identical (``make obs-gate`` proves it).
        factory = _PROFILER_FACTORY[0]
        if factory is None:
            self.profiler = None
            self._profile = False
            self._pacc = None
            self._ppend = None
            self._pskip = 0
            self._prng = 0
            self._pmod = 1
        else:
            prof = factory(self)
            self.profiler = prof
            self._profile = True
            # Direct slot references into the profiler's accumulator
            # and pending-charge cell: one load each on the profiled
            # hot path instead of two attribute hops per event.
            self._pacc = prof.acc
            self._ppend = prof.pend
            # Sampling state, inlined into slots so the profiled step
            # never makes a Python call to draw the next gap: _pskip is
            # the countdown to the next sample (1 → the very first step
            # samples and opens the first interval), _prng/_pmod the
            # LCG state and gap modulus (gaps are 1 + x % _pmod, i.e.
            # uniform on [1, 2*stride-1], mean = stride; _pmod == 1 is
            # exact per-event mode).  Mirrors EngineProfiler.next_gap.
            self._pskip = 1
            self._prng = prof._rng
            self._pmod = (2 * prof.stride - 1) if prof.stride > 1 else 1

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        self._seq = seq = self._seq + 1
        if delay == 0.0 and self._fastpath:
            self._imm.append((self._now, seq, event))
        else:
            heapq.heappush(self._queue, (self._now + delay, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none.

        A pending zero-delay event always carries the current time (the
        clock cannot advance past it), so the deque head — when present
        — is never later than the heap head.
        """
        imm = self._imm
        if imm:
            return imm[0][0]
        q = self._queue
        return q[0][0] if q else _INF

    def step(self) -> None:
        """Process exactly one event (the globally next in (time, seq))."""
        if self._sanitize:
            return self._step_checked()
        if self._profile:
            return self._step_profiled()
        imm = self._imm
        q = self._queue
        if imm:
            # Deque entries all carry time == now; a heap entry wins
            # only when it was scheduled earlier at this same timestamp
            # (same time, smaller seq).  Tuple compare never reaches the
            # event element: (time, seq) is unique.
            if q and q[0] < imm[0]:
                when, _, event = heapq.heappop(q)
            else:
                when, _, event = imm.popleft()
        elif q:
            when, _, event = heapq.heappop(q)
        else:
            raise SimulationError("step() on empty event queue")
        self._now = when
        self.events_executed += 1
        # Inlined Event._process_callbacks (hot loop).
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        if callbacks is not None:
            for cb in callbacks:
                cb(event)
        if event._exc is not None and not event._defused:
            raise event._exc

    def _step_checked(self) -> None:
        """Sanitized step: identical pop order, plus protocol checks.

        Duplicates the (small) merge logic of :meth:`step` rather than
        branching inside it, so the unsanitized hot loop stays exactly
        as benchmarked.  Detects reentrant stepping (a callback calling
        ``step()``/``run()``) and callbacks re-registered onto the event
        being processed (a wakeup that would be lost silently).
        """
        from ..analysis.sanitizer import SanitizerError

        if self._stepping:
            raise SanitizerError(
                "reentrant Environment.step(): an event callback invoked "
                "step()/run() — schedule follow-up work as events instead"
            )
        self._stepping = True
        try:
            imm = self._imm
            q = self._queue
            if imm:
                if q and q[0] < imm[0]:
                    when, _, event = heapq.heappop(q)
                else:
                    when, _, event = imm.popleft()
            elif q:
                when, _, event = heapq.heappop(q)
            else:
                raise SimulationError("step() on empty event queue")
            self._now = when
            self.events_executed += 1
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            if callbacks is not None:
                for cb in callbacks:
                    cb(event)
            if event.callbacks is not None:
                raise SanitizerError(
                    f"callback list of {event!r} repopulated while it was "
                    "being processed — that callback would never fire"
                )
            if event._exc is not None and not event._defused:
                raise event._exc
        finally:
            self._stepping = False

    def _step_profiled(self) -> None:
        """Profiled step: identical pop order, plus hotspot attribution.

        Like :meth:`_step_checked`, this duplicates the merge logic of
        :meth:`step` so the unprofiled hot loop stays exactly as
        benchmarked.  The ≤5% overhead budget (``make obs-gate``)
        shapes everything here:

        * **Deterministic stride sampling.**  Per-event keying costs
          several hundred ns in CPython — an order of magnitude over
          budget on a ~µs dispatch — so only *sampled* events are
          keyed and timed; the rest run the plain ``step()`` body plus
          one countdown decrement.  Sample gaps come from
          ``EngineProfiler.next_gap()`` (a seeded LCG over the event
          index: deterministic per run, and jittered so periodic
          workloads cannot alias with the stride).  ``stride=1``
          degenerates to exact per-event attribution.
        * **Interval charging, one clock read per sample.**  The read
          at the top of a sampled step closes the interval opened at
          the previous sample: its wall time, its event count (exact —
          every event lands in exactly one interval) and its pop-site
          split are charged to the *previous* sampled event's key, the
          classic sampling-profiler attribution.  The final interval
          is settled by ``EngineProfiler.flush()`` at export.
        * **Bounded keys.**  Keying on the raw callback would make the
          accumulator grow with *events*, not code: callable instances
          (``_FirstWake``-style one-shot wakers) are constructed per
          event.  Methods and plain functions are long-lived (or
          hash-equal across rebinds) and keep per-owner granularity;
          anything else degrades to its class.
        * **No name resolution.**  ``repro.obs.profiler`` resolves and
          normalizes owner names at export time; the accumulator value
          layout it owns is ``[count, nanos, deque_pops, heap_pops,
          span_first, span_last]``, where the span fields correlate the
          site with :mod:`repro.trace` span ids (a span's id is its
          index in ``tracer.spans``) when a tracer is live.

        Only host wall time is *read*: pop order, timestamps and
        callback execution are byte-for-byte those of :meth:`step`,
        which is why profiled runs checksum bit-identically to
        unprofiled ones.
        """
        skip = self._pskip - 1
        if skip > 0:
            # Non-sampled event: the plain step() body verbatim, plus
            # one countdown write — the whole point of sampling is that
            # this path costs a few nanoseconds, not a dict lookup.
            self._pskip = skip
            imm = self._imm
            q = self._queue
            if imm:
                if q and q[0] < imm[0]:
                    when, _, event = heapq.heappop(q)
                else:
                    when, _, event = imm.popleft()
            elif q:
                when, _, event = heapq.heappop(q)
            else:
                raise SimulationError("step() on empty event queue")
            self._now = when
            self.events_executed += 1
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            if callbacks is not None:
                for cb in callbacks:
                    cb(event)
            if event._exc is not None and not event._defused:
                raise event._exc
            return
        # Sampled event: settle the interval pending since the last
        # sample, then key this event and open a new interval.
        t = perf_counter_ns()
        ev = self.events_executed
        pend = self._ppend  # [key, t0_ns, site, span_first, span_last, ev0]
        key = pend[0]
        if key is not None:
            acc = self._pacc
            rec = acc.get(key)
            if rec is None:
                acc[key] = rec = [0, 0, 0, 0, -1, -1]
            gap = ev - pend[5]
            rec[0] += gap
            rec[1] += t - pend[1]
            rec[pend[2]] += gap
            if pend[3] >= 0:
                if rec[4] < 0:
                    rec[4] = pend[3]
                rec[5] = pend[4]
        x = (self._prng * 1103515245 + 12345) & 0x7FFFFFFF
        self._prng = x
        self._pskip = 1 + x % self._pmod
        imm = self._imm
        q = self._queue
        if imm:
            if q and q[0] < imm[0]:
                when, _, event = heapq.heappop(q)
                site = 3
            else:
                when, _, event = imm.popleft()
                site = 2
        elif q:
            when, _, event = heapq.heappop(q)
            site = 3
        else:
            raise SimulationError("step() on empty event queue")
        self._now = when
        self.events_executed += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        if callbacks:
            cb0 = callbacks[0]
            kind = cb0.__class__
            if kind is not _MethodType and kind is not _FunctionType:
                cb0 = kind
        else:
            cb0 = None
        pend[0] = (event.__class__, cb0)
        pend[1] = t
        pend[2] = site
        pend[5] = ev
        tracer = self.tracer
        if tracer is None:
            pend[3] = -1
            if callbacks is not None:
                for cb in callbacks:
                    cb(event)
        else:
            nspan = len(tracer.spans)
            if callbacks is not None:
                for cb in callbacks:
                    cb(event)
            closed = len(tracer.spans)
            if closed > nspan:
                pend[3] = nspan
                pend[4] = closed - 1
            else:
                pend[3] = -1
        if event._exc is not None and not event._defused:
            raise event._exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the given time or event; returns the event's value.

        With ``until=None`` runs until the event queue drains.  A
        numeric ``until=t`` is an *exclusive* bound: events scheduled
        exactly at ``t`` are **not** executed (they belong to the next
        window), and the clock lands exactly on ``t`` — repeated
        windowed ``run(until=...)`` calls each process only their own
        half-open ``[start, t)`` window, matching the documented
        SimPy-flavoured semantics.
        """
        stop_event: Optional[Event] = None
        stop_time = _INF
        if isinstance(until, Event):
            stop_event = until
            if stop_event._state == _PROCESSED:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"run(until={stop_time}) is in the past (now={self._now})"
                )

        # Bind the variant once: skipping the per-event dispatch hop in
        # step() is worth ~100ns/event, a real fraction of the profiled
        # path's ≤5% budget.  step() itself still dispatches for direct
        # callers; _sanitize wins when both are set (step()'s order).
        if self._profile and not self._sanitize:
            step = self._step_profiled
        else:
            step = self.step
        imm = self._imm
        q = self._queue
        if stop_event is None and stop_time == _INF:
            # Drain-the-queue loop (the common benchmark shape).
            while imm or q:
                step()
            return None

        value = self.run_window(stop_time, stop_event)
        if stop_event is not None and stop_event._state != _PROCESSED:
            raise SimulationError(
                f"run() ran out of events before {stop_event!r} triggered"
            )
        return value

    def run_window(self, stop_time: float, stop_event: Optional[Event] = None) -> Any:
        """Process the half-open event window ``[now, stop_time)``.

        The extracted core of the bounded :meth:`run` loop, shared with
        the sharded conservative-PDES driver (:mod:`repro.sim.shard`):
        events strictly before ``stop_time`` execute in ``(time, seq)``
        order, then the clock lands exactly on ``stop_time``.  If
        ``stop_event`` is processed mid-window, execution stops there —
        with the clock at the event's time, exactly like
        ``run(until=event)`` — and its value is returned.  Running out
        of events is *not* an error here: under sharding, a drained
        shard simply waits at the window boundary for neighbour traffic.
        """
        if self._profile and not self._sanitize:
            step = self._step_profiled
        else:
            step = self.step
        imm = self._imm
        q = self._queue
        while imm or q:
            if (imm[0][0] if imm else q[0][0]) >= stop_time:
                self._now = stop_time
                return None
            step()
            if stop_event is not None and stop_event._state == _PROCESSED:
                return stop_event.value
        if stop_time != _INF:
            self._now = stop_time
        return None
