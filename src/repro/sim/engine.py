"""Deterministic discrete-event simulation kernel.

Every hardware and runtime component in this reproduction executes on top
of this engine: simulated hardware threads are generator-based processes,
hardware latencies are timeouts, and cross-component signalling is done
with :class:`Event`.

The engine is deliberately SimPy-flavoured but self-contained (the
reproduction environment is offline) and fully deterministic: events
scheduled for the same timestamp fire in schedule order, so a given seed
always produces an identical trace.  Time is a float in *simulated
cycles* of the machine being modelled; helpers for converting to
nanoseconds/microseconds live on the machine parameter objects.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (double-trigger, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* with either a value (:meth:`succeed`) or an
    exception (:meth:`fail`).  Callbacks registered before processing run
    in registration order when the event is popped from the event heap.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = _PENDING
        self._defused = False

    # -- inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("value of untriggered event")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering --------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._state = _TRIGGERED
        self.env._schedule(self, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as another (for chaining)."""
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)

    # -- engine internals ---------------------------------------------
    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if self._exc is not None and not self._defused:
            # Nobody waited on a failed event: surface the error rather
            # than losing it silently.
            raise self._exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {st[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay)


class _ConditionValue:
    """Ordered mapping of events -> values for AllOf/AnyOf results."""

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)

    def __iter__(self):
        return iter(self.todict().values())

    def todict(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._exc is None}


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed(_ConditionValue([]))
            return
        for ev in self._events:
            if ev.processed:
                self._check(ev)
            else:
                if ev.callbacks is None:
                    self._check(ev)
                else:
                    ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
        elif self._satisfied():
            self.succeed(_ConditionValue(self._events))

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self._events)


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Process(Event):
    """A generator-based simulated process.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event fires, receiving the event's value (or having
    the event's exception thrown into it).  The Process is itself an
    Event that fires with the generator's return value when it finishes.
    """

    __slots__ = ("gen", "name", "_target", "_interrupts")

    def __init__(
        self,
        env: "Environment",
        gen: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(gen, "throw"):
            raise SimulationError(f"process requires a generator, got {gen!r}")
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self.name}")
        self._interrupts.append(Interrupt(cause))
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        wake = Event(self.env)
        wake.callbacks.append(self._resume)
        wake.succeed()

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            try:
                if self._interrupts:
                    intr = self._interrupts.pop(0)
                    next_ev = self.gen.throw(intr)
                elif event._exc is not None:
                    event._defused = True
                    next_ev = self.gen.throw(event._exc)
                else:
                    next_ev = self.gen.send(event._value)
            except StopIteration as stop:
                env._active_process = None
                if self._state == _PENDING:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                if self._state == _PENDING:
                    self.fail(exc)
                return

            if not isinstance(next_ev, Event):
                env._active_process = None
                err = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
                self.gen.throw(err)
                raise err

            if next_ev.callbacks is not None:
                # Not yet processed: wait for it.
                next_ev.callbacks.append(self._resume)
                self._target = next_ev
                env._active_process = None
                return
            # Already processed: loop and continue immediately with its
            # outcome (common with pre-fired events).
            event = next_ev


class Environment:
    """The simulation environment: clock + event heap + factories."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Events processed so far.  Maintained unconditionally (an int
        #: add is far cheaper than a tracer call on the hottest loop in
        #: the simulator); Tracer.finish() harvests it as the
        #: ``engine.events`` counter.
        self.events_executed = 0
        #: Optional repro.trace.Tracer; None when tracing is off (the
        #: runtime wires it, see ConverseRuntime).
        self.tracer = None

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self.events_executed += 1
        event._process_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the given time or event; returns the event's value.

        With ``until=None`` runs until the event queue drains.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"run(until={stop_time}) is in the past (now={self._now})"
                )

        while self._queue:
            if self._queue[0][0] > stop_time:
                self._now = stop_time
                return None
            self.step()
            if stop_event is not None and stop_event.processed:
                return stop_event.value
        if stop_event is not None:
            raise SimulationError(
                f"run() ran out of events before {stop_event!r} triggered"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None
