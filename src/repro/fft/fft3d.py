"""Distributed 3D FFT over the Charm++ runtime (§IV-A, Table I).

Forward transform: FFT along Z on the Z-layout pencils, transpose Z->Y,
FFT along Y, transpose Y->X, FFT along X; the backward transform runs
the same pipeline in reverse.  One *step* (the quantity in Table I) is
a forward followed by a backward transform.

Two transpose transports, as compared in the paper:

* **p2p** — every block is a separate Charm++ point-to-point message
  through the full machine-layer send path;
* **m2m** — each process registers one persistent
  ``CmiDirectManytomany`` handle per transpose phase; chares fill their
  registered slots, a per-process coordinator chare calls ``start()``,
  and the burst is injected by the communication threads at a small
  amortized per-message cost.

The numerics are real: blocks are numpy arrays, transforms are numpy
FFTs, and the distributed result is validated against
``numpy.fft.fftn`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..charm import Chare, Charm
from .kernels import batch_fft, fft_instructions
from .pencil import PencilGrid, choose_grid
from types import MappingProxyType

__all__ = ["FFT3D", "FFTResult", "Slot"]

# Phase tags (offset added per driver so several drivers can coexist).
_PHASES = ("zy", "yx", "xy", "yz")
_TAG_BASE = MappingProxyType({"zy": 1, "yx": 2, "xy": 3, "yz": 4})


class Slot:
    """A persistent registered send buffer (many-to-many semantics)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = None


@dataclass
class FFTResult:
    """Outcome of an FFT3D run."""

    #: Completion time (cycles) of each forward+backward step.
    step_times: List[float] = field(default_factory=list)
    #: Z-layout blocks after the final backward transform.
    blocks: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)
    #: X-layout blocks captured after the first forward transform.
    forward_blocks: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)

    @property
    def mean_step_time(self) -> float:
        """Steady-state step time: the first (cold) step is dropped
        whenever more than one step was run."""
        if not self.step_times:
            raise ValueError("no steps completed")
        if len(self.step_times) == 1:
            return self.step_times[0]
        deltas = np.diff(self.step_times)
        return float(np.mean(deltas))


class _Pencil(Chare):
    """One pencil chare of the decomposition."""

    def __init__(self, idx):
        self.driver: "FFT3D" = None  # injected by the driver
        self.r = self.c = 0
        self.data: Optional[np.ndarray] = None  # current phase layout
        self.y_data: Optional[np.ndarray] = None
        self.x_data: Optional[np.ndarray] = None
        self.recv_count = {p: 0 for p in _PHASES}
        #: Per-phase receive buffers: peers may run a full phase ahead,
        #: so each transpose collects into its own buffer.
        self.bufs: Dict[str, Optional[np.ndarray]] = {p: None for p in _PHASES}
        self.iteration = 0
        self._deposit_count = 0

    # ---- helpers --------------------------------------------------------
    def _charge_fft(self, n, batch):
        yield from self.charge(fft_instructions(n, batch, qpx=self.driver.qpx))

    # ---- service mode: external charge/data deposits -------------------------
    def deposit(self, region, arr):
        """Accumulate external data into this pencil's Z-layout block.

        ``region`` = (x0, x1, y0, y1) in pencil-local coordinates; the
        cycle starts automatically once ``deposits_expected`` blocks
        have arrived (used by NAMD PME charge-grid communication).
        """
        d = self.driver
        if self._deposit_count == 0:
            # First deposit of a cycle: start from a zero grid.
            self.data = np.zeros(d.grid.z_shape(self.r, self.c), dtype=np.complex128)
        x0, x1, y0, y1 = region
        self.data[x0:x1, y0:y1, :] += arr
        self._deposit_count += 1
        expected = d.deposits_expected.get((self.r, self.c), 0)
        if self._deposit_count >= expected:
            self._deposit_count = 0
            yield from self.begin()

    # ---- iteration entry ---------------------------------------------------
    def begin(self):
        """Start one forward+backward step from the Z layout."""
        d = self.driver
        g = d.grid
        # Forward FFT along Z.
        nx, ny, _ = self.data.shape
        yield from self._charge_fft(g.nz, nx * ny)
        self.data = batch_fft(self.data, axis=2)
        yield from d.do_transpose(self, "zy")

    # ---- transposes -------------------------------------------------------
    def _blocks_out(self, phase):
        """Yield (dst_coords, block) for one transpose phase."""
        g = self.driver.grid
        r, c = self.r, self.c
        if phase == "zy":
            for k in range(g.pc):
                z0, z1 = g.z_ranges[k]
                yield (r, k), self.data[:, :, z0:z1]
        elif phase == "yx":
            for k in range(g.pr):
                y0, y1 = g.y2_ranges[k]
                yield (k, c), self.y_data[:, y0:y1, :]
        elif phase == "xy":
            for k in range(g.pr):
                x0, x1 = g.x_ranges[k]
                yield (k, c), self.x_data[x0:x1, :, :]
        elif phase == "yz":
            for k in range(g.pc):
                y0, y1 = g.y_ranges[k]
                yield (r, k), self.y_data[:, y0:y1, :]
        else:  # pragma: no cover - defensive
            raise ValueError(phase)

    # ---- receives (p2p path) ------------------------------------------------

    def _buf(self, phase) -> np.ndarray:
        """Receive buffer for one transpose phase (allocated lazily)."""
        buf = self.bufs[phase]
        if buf is None:
            g = self.driver.grid
            shape_fn = {
                "zy": g.y_shape,
                "yx": g.x_shape,
                "xy": g.y_shape,
                "yz": g.z_shape,
            }[phase]
            buf = np.empty(shape_fn(self.r, self.c), dtype=np.complex128)
            self.bufs[phase] = buf
        return buf

    def _place(self, phase, src, block):
        g = self.driver.grid
        src_r, src_c = src
        buf = self._buf(phase)
        if phase == "zy":
            y0, y1 = g.y_ranges[src_c]
            buf[:, y0:y1, :] = block
        elif phase == "yx":
            x0, x1 = g.x_ranges[src_r]
            buf[x0:x1, :, :] = block
        elif phase == "xy":
            y0, y1 = g.y2_ranges[src_r]
            buf[:, y0:y1, :] = block
        elif phase == "yz":
            z0, z1 = g.z_ranges[src_c]
            buf[:, :, z0:z1] = block

    def _phase_full(self, phase) -> bool:
        g = self.driver.grid
        expected = g.pc if phase in ("zy", "yz") else g.pr
        return self.recv_count[phase] >= expected

    def recv_block(self, phase, src_r, src_c, block):
        """p2p receive of one transpose block."""
        self._place(phase, (src_r, src_c), block)
        self.recv_count[phase] += 1
        if self._phase_full(phase):
            self.recv_count[phase] = 0
            yield from self.phase_done(phase)

    # ---- phase continuations -----------------------------------------------
    def phase_done(self, phase):
        """All blocks of a transpose arrived: run the next compute."""
        d = self.driver
        g = d.grid
        if phase == "zy":
            self.y_data = self.bufs["zy"]
            self.bufs["zy"] = None
            nx, _, nz = self.y_data.shape
            yield from self._charge_fft(g.ny, nx * nz)
            self.y_data = batch_fft(self.y_data, axis=1)
            yield from d.do_transpose(self, "yx")
        elif phase == "yx":
            self.x_data = self.bufs["yx"]
            self.bufs["yx"] = None
            _, ny, nz = self.x_data.shape
            yield from self._charge_fft(g.nx, ny * nz)
            self.x_data = batch_fft(self.x_data, axis=0)
            # Forward transform complete.
            if self.iteration == 0 and d.capture_forward:
                d.result.forward_blocks[(self.r, self.c)] = self.x_data.copy()
            if d.post_forward is not None:
                # Reciprocal-space hook (e.g. PME Green's-function
                # multiply + energy contribution); may be a generator.
                result = d.post_forward(self)
                if result is not None and hasattr(result, "__next__"):
                    yield from result
            # Backward: inverse FFT along X, then transpose back.
            yield from self._charge_fft(g.nx, ny * nz)
            self.x_data = batch_fft(self.x_data, axis=0, inverse=True)
            yield from d.do_transpose(self, "xy")
        elif phase == "xy":
            self.y_data = self.bufs["xy"]
            self.bufs["xy"] = None
            nx, _, nz = self.y_data.shape
            yield from self._charge_fft(g.ny, nx * nz)
            self.y_data = batch_fft(self.y_data, axis=1, inverse=True)
            yield from d.do_transpose(self, "yz")
        elif phase == "yz":
            self.data = self.bufs["yz"]
            self.bufs["yz"] = None
            nx, ny, _ = self.data.shape
            yield from self._charge_fft(g.nz, nx * ny)
            self.data = batch_fft(self.data, axis=2, inverse=True)
            self.iteration += 1
            if d.service:
                # Service mode (NAMD PME): hand the result back to the
                # application (potential-slab collection) and wait for
                # the next deposits.
                if d.on_backward is not None:
                    result = d.on_backward(self)
                    if result is not None and hasattr(result, "__next__"):
                        yield from result
                return
            # Standalone benchmark: account the step, maybe loop.
            yield from self.contribute(
                1, "sum", ("fft-step", d.uid, self.iteration), d.on_step_done
            )
            if self.iteration < d.iterations:
                yield from self.begin()


class FFT3D:
    """Driver for a pencil-decomposed 3D FFT benchmark run."""

    def __init__(
        self,
        charm: Charm,
        n: int,
        nchares: Optional[int] = None,
        use_m2m: bool = False,
        iterations: int = 1,
        qpx: bool = True,
        capture_forward: bool = False,
        data: Optional[np.ndarray] = None,
        service: bool = False,
        post_forward=None,
        on_backward=None,
        deposits_expected: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> None:
        """``service=False``: self-driving benchmark (``run()``).

        ``service=True``: FFT service for an embedding application (NAMD
        PME): pencils accept ``deposit`` entry-method calls, start a
        forward+backward cycle when ``deposits_expected[idx]`` blocks
        have arrived, apply ``post_forward(chare)`` in the fully
        transformed X layout (Green's-function multiply), and hand the
        back-transformed Z-layout data to ``on_backward(chare)``.
        """
        if iterations < 1:
            raise ValueError("need at least one iteration")
        # The uid rides in array names, m2m tags and reduction tags, so
        # it must come from the owning Charm instance (not a class
        # counter): sharded SPMD mirrors — several Charm instances in
        # one process — must mint identical uids.
        self.uid = charm.next_uid()
        self.charm = charm
        self.n = n
        self.use_m2m = use_m2m
        self.iterations = iterations
        self.qpx = qpx
        self.capture_forward = capture_forward
        self.service = service
        self.post_forward = post_forward
        self.on_backward = on_backward
        # Note: the caller may pass a dict it fills *after* construction
        # (NAMD computes the plan once the pencil grid is known).
        self.deposits_expected = (
            deposits_expected if deposits_expected is not None else {}
        )
        nchares = nchares if nchares is not None else charm.npes
        pr, pc = choose_grid(nchares, n)
        self.grid = PencilGrid(n, pr, pc)
        self.result = FFTResult()
        self._t_start = 0.0

        # --- pencil array -------------------------------------------------
        indices = [(r, c) for r in range(pr) for c in range(pc)]
        self.array = charm.create_array(
            f"fft{self.uid}-pencils", _Pencil, indices, map_fn="blocked"
        )
        shape3 = self.grid.shape3
        rng = np.random.default_rng(1234)
        full = (
            data
            if data is not None
            else rng.standard_normal(shape3) + 1j * rng.standard_normal(shape3)
        )
        if full.shape != shape3:
            raise ValueError("data shape mismatch")
        self.input = full.astype(np.complex128)
        blocks = self.grid.scatter_z(self.input)
        for (r, c) in indices:
            ch = self.array.element((r, c))
            ch.driver = self
            ch.r, ch.c = r, c
            ch.data = blocks[(r, c)].copy()

        # --- m2m setup ---------------------------------------------------------
        self.slots: Dict[Tuple[str, Tuple[int, int], Tuple[int, int]], Slot] = {}
        self.m2m_handles: Dict[Tuple[Tuple[int, int], str], Any] = {}
        if use_m2m:
            self._setup_m2m()

    # -- topology helpers ---------------------------------------------------
    def proc_of_pencil(self, idx) -> int:
        pe = self.charm.runtime.pes[self.array.pe_of(idx)]
        return self._proc_index(pe.process)

    def pencils_of_process(self, proc_idx: int) -> List[Tuple[int, int]]:
        out = []
        for idx in self.array.indices:
            pe = self.charm.runtime.pes[self.array.pe_of(idx)]
            if self._proc_index(pe.process) == proc_idx:
                out.append(idx)
        return out

    def local_pencils(self, proc_idx: int) -> int:
        return len(self.pencils_of_process(proc_idx))

    def _proc_index(self, process) -> int:
        return self.charm.runtime.processes.index(process)

    def slot_for(self, phase, src, dst) -> Slot:
        key = (phase, src, dst)
        slot = self.slots.get(key)
        if slot is None:
            slot = Slot()
            self.slots[key] = slot
        return slot

    # -- m2m wiring -----------------------------------------------------------
    def _tag(self, phase: str, idx: Tuple[int, int]):
        return (self.uid, _TAG_BASE[phase], idx)

    def _setup_m2m(self) -> None:
        """One persistent handle per chare per transpose phase.

        Matches the paper's usage ("each thread sends and receives [its]
        small messages... in a single call"): a chare fills its
        registered slots, calls ``start()`` on its own handle, and its
        completion callback fires when all of *its* blocks arrived.
        """
        charm = self.charm
        runtime = charm.runtime
        g = self.grid
        completion_hid = runtime.register_handler(self._m2m_complete, category="comm")
        for idx in self.array.indices:
            r, c = idx
            owner_pe = runtime.pes[self.array.pe_of(idx)]
            if owner_pe is None:
                # Sharded mirror: the shard owning this pencil's PE
                # registers its handle; remote sends reach it through
                # the rank_endpoint formula.
                continue
            for phase in _PHASES:
                sends = []
                for dst, nbytes in self._send_sizes(phase, r, c):
                    slot = self.slot_for(phase, (r, c), dst)
                    data = (dst, (r, c), phase, slot)
                    sends.append(
                        (self.array.pe_of(dst), nbytes, data, self._tag(phase, dst))
                    )
                expected = g.pc if phase in ("zy", "yz") else g.pr
                handle = charm.cmidirect.register(
                    self._tag(phase, idx),
                    owner_pe,
                    sends,
                    expected_recvs=expected,
                    on_message=self._on_m2m_message,
                    completion_handler=completion_hid,
                )
                self.m2m_handles[(idx, phase)] = handle

    def _m2m_complete(self, pe, msg):
        """All blocks of one chare's phase arrived (runs on its PE)."""
        _uid, tag_base, idx = msg.payload
        phase = {v: k for k, v in _TAG_BASE.items()}[tag_base]
        self.m2m_handles[(idx, phase)].reset()  # re-arm for next iteration
        chare = self.array.element(idx)
        yield from chare.phase_done(phase)

    def _send_sizes(self, phase, r, c):
        g = self.grid
        if phase == "zy":
            return [((r, k), g.zy_block_bytes(r, c, k)) for k in range(g.pc)]
        if phase == "yx":
            return [((k, c), g.yx_block_bytes(r, c, k)) for k in range(g.pr)]
        if phase == "xy":
            # Inverse of yx: block (X_k, Y'_r, Z_c) to (k, c).
            return [((k, c), g.yx_block_bytes(k, c, r)) for k in range(g.pr)]
        if phase == "yz":
            # Inverse of zy: block (X_r, Y_k, Z_c) to (r, k).
            return [((r, k), g.zy_block_bytes(r, k, c)) for k in range(g.pc)]
        raise ValueError(phase)

    def _on_m2m_message(self, src_node, data) -> None:
        dst, src, phase, slot = data
        chare = self.array.element(dst)
        chare._place(phase, src, slot.value)

    # -- transpose dispatch (both modes) ------------------------------------
    def do_transpose(self, chare: _Pencil, phase: str):
        """Send one chare's blocks for a transpose phase (generator)."""
        if self.use_m2m:
            for dst, block in chare._blocks_out(phase):
                self.slot_for(phase, (chare.r, chare.c), dst).value = block
            yield from self.m2m_handles[((chare.r, chare.c), phase)].start()
        else:
            for dst, block in chare._blocks_out(phase):
                nbytes = block.size * 16
                if dst == (chare.r, chare.c):
                    # Local block: place directly (pointer exchange).
                    result = chare.recv_block(phase, chare.r, chare.c, block)
                    yield from result
                else:
                    yield from chare.send(
                        dst, "recv_block", nbytes, phase, chare.r, chare.c, block
                    )

    # -- completion --------------------------------------------------------
    def on_step_done(self, _value):
        self.result.step_times.append(self.charm.env.now - self._t_start)
        if len(self.result.step_times) >= self.iterations:
            for idx in self.array.indices:
                self.result.blocks[idx] = self.array.element(idx).data
            self.charm.exit(self.result)

    # -- run ------------------------------------------------------------------
    def run(self) -> FFTResult:
        self._t_start = self.charm.env.now
        for idx in self.array.indices:
            self.charm.seed(self.array, idx, "begin")
        return self.charm.run()
