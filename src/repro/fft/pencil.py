"""2D pencil decomposition geometry for the 3D FFT (§IV-A).

An Nx x Ny x Nz complex grid is decomposed over a PR x PC processor
grid.  Each phase of the 3D FFT owns *pencils* along one axis:

* **Z layout**   — chare (r, c) owns x in X_r, y in Y_c, all z
* **Y layout**   — chare (r, c) owns x in X_r, all y, z in Z_c
* **X layout**   — chare (r, c) owns all x, y in Y'_r, z in Z_c

where X is split into PR ranges, Y into PC ranges (Z layout) and PR
ranges (X layout), and Z into PC ranges.  The Z->Y transpose exchanges
blocks within a *row* of the chare grid (PC messages per chare), the
Y->X transpose within a *column* (PR messages per chare).  At the
strong-scaling limit each chare holds a single pencil and every
transpose message carries one line of the grid or less — the
fine-grained message pattern CmiDirectManytomany accelerates.

Grids may be non-cubic (NAMD's PME grids are, e.g. ApoA1's
108 x 108 x 80); a bare int means a cubic grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

__all__ = ["split_ranges", "choose_grid", "PencilGrid"]

GridSize = Union[int, Tuple[int, int, int]]


def _shape3(n: GridSize) -> Tuple[int, int, int]:
    if isinstance(n, int):
        return (n, n, n)
    shape = tuple(int(v) for v in n)
    if len(shape) != 3:
        raise ValueError(f"grid size must be an int or 3-tuple, got {n!r}")
    return shape


def split_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous (start, stop) ranges.

    Sizes differ by at most one; every range is non-empty, so ``parts``
    must not exceed ``n``.
    """
    if parts < 1 or parts > n:
        raise ValueError(f"cannot split {n} into {parts} non-empty parts")
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def choose_grid(nchares: int, n: GridSize) -> Tuple[int, int]:
    """Choose a near-square PR x PC = nchares grid valid for size n.

    PR splits X and (in the X layout) Y; PC splits Y and Z — so
    PR <= min(Nx, Ny) and PC <= min(Ny, Nz).
    """
    if nchares < 1:
        raise ValueError("need at least one chare")
    nx, ny, nz = _shape3(n)
    pr_max = min(nx, ny)
    pc_max = min(ny, nz)
    best = None
    for pr in range(1, nchares + 1):
        if nchares % pr:
            continue
        pc = nchares // pr
        if pr <= pr_max and pc <= pc_max:
            # Prefer the most square admissible factorization.
            score = abs(pr - pc)
            if best is None or score < best[0]:
                best = (score, pr, pc)
    if best is None:
        raise ValueError(
            f"no PR*PC={nchares} grid fits problem size {_shape3(n)}"
        )
    return best[1], best[2]


@dataclass(frozen=True)
class PencilGrid:
    """Static geometry of one pencil-decomposed 3D FFT."""

    n: GridSize
    pr: int
    pc: int

    def __post_init__(self) -> None:
        nx, ny, nz = _shape3(self.n)
        if min(nx, ny, nz) < 1:
            raise ValueError("grid size must be >= 1")
        if self.pr > min(nx, ny) or self.pc > min(ny, nz):
            raise ValueError("processor grid exceeds problem size")
        object.__setattr__(self, "shape3", (nx, ny, nz))
        object.__setattr__(self, "x_ranges", split_ranges(nx, self.pr))
        object.__setattr__(self, "y_ranges", split_ranges(ny, self.pc))
        object.__setattr__(self, "y2_ranges", split_ranges(ny, self.pr))
        object.__setattr__(self, "z_ranges", split_ranges(nz, self.pc))

    @property
    def nchares(self) -> int:
        return self.pr * self.pc

    @property
    def nx(self) -> int:
        return self.shape3[0]

    @property
    def ny(self) -> int:
        return self.shape3[1]

    @property
    def nz(self) -> int:
        return self.shape3[2]

    def chare_index(self, r: int, c: int) -> int:
        return r * self.pc + c

    def chare_coords(self, index: int) -> Tuple[int, int]:
        return divmod(index, self.pc)

    # -- shapes ---------------------------------------------------------------
    def z_shape(self, r: int, c: int) -> Tuple[int, int, int]:
        (x0, x1), (y0, y1) = self.x_ranges[r], self.y_ranges[c]
        return (x1 - x0, y1 - y0, self.nz)

    def y_shape(self, r: int, c: int) -> Tuple[int, int, int]:
        (x0, x1), (z0, z1) = self.x_ranges[r], self.z_ranges[c]
        return (x1 - x0, self.ny, z1 - z0)

    def x_shape(self, r: int, c: int) -> Tuple[int, int, int]:
        (y0, y1), (z0, z1) = self.y2_ranges[r], self.z_ranges[c]
        return (self.nx, y1 - y0, z1 - z0)

    # -- message sizes -----------------------------------------------------------
    def zy_block_bytes(self, r: int, c: int, k: int) -> int:
        """Bytes of the Z->Y block (r,c) sends to (r,k) (complex128)."""
        (x0, x1), (y0, y1) = self.x_ranges[r], self.y_ranges[c]
        (z0, z1) = self.z_ranges[k]
        return (x1 - x0) * (y1 - y0) * (z1 - z0) * 16

    def yx_block_bytes(self, r: int, c: int, k: int) -> int:
        """Bytes of the Y->X block (r,c) sends to (k,c)."""
        (x0, x1), (z0, z1) = self.x_ranges[r], self.z_ranges[c]
        (y0, y1) = self.y2_ranges[k]
        return (x1 - x0) * (y1 - y0) * (z1 - z0) * 16

    # -- reference scatter/gather (tests & drivers) ------------------------------
    def scatter_z(self, full: np.ndarray) -> dict:
        """Cut a full grid into the Z-layout blocks."""
        if full.shape != self.shape3:
            raise ValueError("array shape does not match grid")
        out = {}
        for r in range(self.pr):
            for c in range(self.pc):
                (x0, x1), (y0, y1) = self.x_ranges[r], self.y_ranges[c]
                out[(r, c)] = np.ascontiguousarray(full[x0:x1, y0:y1, :])
        return out

    def gather_x(self, blocks: dict) -> np.ndarray:
        """Reassemble a full array from X-layout blocks."""
        full = np.empty(self.shape3, dtype=np.complex128)
        for r in range(self.pr):
            for c in range(self.pc):
                (y0, y1), (z0, z1) = self.y2_ranges[r], self.z_ranges[c]
                full[:, y0:y1, z0:z1] = blocks[(r, c)]
        return full

    def gather_z(self, blocks: dict) -> np.ndarray:
        full = np.empty(self.shape3, dtype=np.complex128)
        for r in range(self.pr):
            for c in range(self.pc):
                (x0, x1), (y0, y1) = self.x_ranges[r], self.y_ranges[c]
                full[x0:x1, y0:y1, :] = blocks[(r, c)]
        return full
