"""Pencil-decomposed 3D FFT library on the Charm++ runtime (§IV-A)."""

from .fft3d import FFT3D, FFTResult, Slot
from .kernels import batch_fft, fft_flops, fft_instructions
from .pencil import PencilGrid, choose_grid, split_ranges

__all__ = [
    "FFT3D",
    "FFTResult",
    "PencilGrid",
    "Slot",
    "batch_fft",
    "choose_grid",
    "fft_flops",
    "fft_instructions",
    "split_ranges",
]
