"""1D FFT kernels: real math + BG/Q cost model.

The numerical result comes from numpy (vectorized batch 1D FFTs along
one axis, per the project's hpc-python idioms); the *simulated* cost
charged to the executing core models the QPX-vectorized kernel the
paper uses (§IV-B1): ~5 N log2 N floating-point operations per
length-N complex transform, executed on the 4-wide QPX unit.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["fft_flops", "fft_instructions", "batch_fft"]

#: Floating-point ops per complex FFT point (radix-2 butterfly count).
_FLOPS_PER_POINT_FACTOR = 5.0
#: Sustained flops per instruction with QPX SIMD (4-wide FMA, realistic
#: efficiency well under the 8 flops/cycle peak).
QPX_FLOPS_PER_INSTR = 4.0
#: Scalar fallback (no SIMD).
SCALAR_FLOPS_PER_INSTR = 1.0


def fft_flops(n: int, batch: int = 1) -> float:
    """Floating-point operations for ``batch`` complex FFTs of length n."""
    if n < 1 or batch < 0:
        raise ValueError("invalid FFT size")
    if n == 1:
        return 0.0
    return _FLOPS_PER_POINT_FACTOR * n * math.log2(n) * batch


def fft_instructions(n: int, batch: int = 1, qpx: bool = True) -> float:
    """Simulated instruction count for a batch of 1D FFTs."""
    per_instr = QPX_FLOPS_PER_INSTR if qpx else SCALAR_FLOPS_PER_INSTR
    return fft_flops(n, batch) / per_instr


def batch_fft(data: np.ndarray, axis: int, inverse: bool = False) -> np.ndarray:
    """All 1D transforms of ``data`` along ``axis`` (the real math)."""
    if inverse:
        return np.fft.ifft(data, axis=axis)
    return np.fft.fft(data, axis=axis)
