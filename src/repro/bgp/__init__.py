"""Reduced Blue Gene/P machine model (the Fig. 11 comparison baseline).

BG/P: 4 PowerPC 450 cores at 850 MHz per node, 3D torus at 425 MB/s per
link, DMA-based messaging.  Only the step-time model needed for the
ApoA1 comparison curve is provided; see
:func:`repro.perfmodel.bgp_step_time`.
"""

from ..perfmodel.machine import BGP, BGPParams
from ..perfmodel.namdmodel import bgp_step_time

__all__ = ["BGP", "BGPParams", "bgp_step_time"]
