"""PAMI-like active-message contexts (§II-B).

PAMI exposes *context* objects for fine-grained communication
parallelism: multiple threads can concurrently call different contexts
without acquiring mutexes.  A context bundles

* an MU injection FIFO (sends posted by this context),
* an MU reception FIFO (packets addressed to this context),
* a dispatch table (active-message callbacks), and
* a lockless *work queue* where other threads post work closures —
  the mechanism communication threads consume (§III-C).

``PAMI_Context_advance`` is modelled by :meth:`PamiContext.advance`:
drain newly arrived packets (invoking dispatch callbacks on message
completion) and execute posted work.

Addressing: a remote endpoint is ``(node_id, context_offset)`` — on
real BG/Q an endpoint names a (task, context) pair; our context offset
selects the reception FIFO on the destination node.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..bgq.mu import Descriptor
from ..bgq.network import MEMFIFO
from ..bgq.node import HWThread, Node
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..faults.qos import (
    QOS_BEST_EFFORT_FRESH as _QOS_FRESH,
    QOS_RELIABLE as _QOS_RELIABLE,
)
from ..faults.recovery import RELIABLE_ACK_DISPATCH as _RELIABLE_ACK_DISPATCH
from ..queues import L2AtomicQueue
from ..sim import Environment

__all__ = ["PamiContext", "PamiClient", "Endpoint", "AMPayload"]

#: A remote endpoint: (node_id, reception-FIFO id).
Endpoint = Tuple[int, int]

#: Per-packet software processing cost while draining a reception FIFO.
_PER_PACKET_INSTR = 70.0


class AMPayload:
    """What travels inside a descriptor for an active-message send."""

    __slots__ = ("dispatch_id", "data", "nbytes", "src_endpoint", "seq",
                 "fresh_key", "fresh_gen")

    def __init__(self, dispatch_id: int, data: Any, nbytes: int, src_endpoint: Endpoint):
        self.dispatch_id = dispatch_id
        self.data = data
        self.nbytes = nbytes
        self.src_endpoint = src_endpoint
        #: Per-(source context, destination endpoint) sequence number,
        #: stamped by the reliability layer; None on unstamped sends.
        self.seq: Optional[int] = None
        #: QOS_BEST_EFFORT_FRESH flow key + generation (stamp_fresh);
        #: both None on reliable and plain best-effort sends.
        self.fresh_key = None
        self.fresh_gen: Optional[int] = None


class PamiContext:
    """One PAMI context on one node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        self.env = env
        self.node = node
        self.params = params
        self.ififo = node.mu.allocate_injection_fifo()
        self.rfifo = node.mu.allocate_reception_fifo()
        self.dispatch: Dict[int, Callable] = {}
        self.work = L2AtomicQueue(
            env, node.l2, size=512, name=f"ctx{node.node_id}.{self.rfifo.fifo_id}-work",
            params=params,
        )
        #: Hardware-completion continuations (e.g. "this Rget finished"):
        #: appended with no software cost and drained by advance().
        self.completions: list = []
        # Native statistics (always maintained; the Converse runtime
        # snapshots them into the tracer's pami.* counters at the end
        # of a traced run).
        self.messages_sent = 0
        self.messages_received = 0
        self.advances = 0
        self.bytes_sent = 0
        self.packets_drained = 0
        self.work_posted = 0
        self.completions_posted = 0
        self.rgets = 0
        self.rputs = 0
        #: Optional :class:`~repro.faults.recovery.ReliableTransport`.
        #: When None (the default) the send-stamp and receive-gate hooks
        #: are single ``is None`` tests — trajectory neutral.
        self.reliability = None

    def enable_reliability(self, policy=None, tracer=None):
        """Attach a :class:`~repro.faults.recovery.ReliableTransport`."""
        from ..faults.recovery import ReliableTransport, RetryPolicy

        self.reliability = ReliableTransport(
            self, policy if policy is not None else RetryPolicy(), tracer=tracer
        )
        return self.reliability

    # -- identity ------------------------------------------------------------
    @property
    def endpoint(self) -> Endpoint:
        return (self.node.node_id, self.rfifo.fifo_id)

    # -- dispatch ------------------------------------------------------------
    def register_dispatch(self, dispatch_id: int, fn: Callable) -> None:
        """Register an active-message callback.

        ``fn(context, thread, payload)`` may be a plain function or a
        generator (charged work); it runs on the advancing thread.
        """
        if dispatch_id in self.dispatch:
            raise ValueError(f"dispatch id {dispatch_id} already registered")
        self.dispatch[dispatch_id] = fn

    # -- sends -----------------------------------------------------------------
    def send_immediate(
        self,
        thread: HWThread,
        dest: Endpoint,
        dispatch_id: int,
        nbytes: int,
        data: Any = None,
        qos: int = _QOS_RELIABLE,
        fresh_key: Any = None,
    ):
        """PAMI_Send_immediate: copy payload+metadata, one MU descriptor.

        Short messages only (must fit one packet).  Generator-style;
        returns the :class:`Descriptor`.
        """
        p = self.params
        if nbytes > p.packet_payload_max:
            raise ValueError(
                f"send_immediate limited to {p.packet_payload_max} B, got {nbytes}"
            )
        yield from thread.compute(p.pami_send_imm_instr)
        desc = self._post(dest, dispatch_id, nbytes, data, qos, fresh_key)
        return desc

    def send(
        self,
        thread: HWThread,
        dest: Endpoint,
        dispatch_id: int,
        nbytes: int,
        data: Any = None,
        qos: int = _QOS_RELIABLE,
        fresh_key: Any = None,
    ):
        """PAMI_Send: two MU descriptors (metadata + payload)."""
        p = self.params
        yield from thread.compute(p.pami_send_instr)
        desc = self._post(dest, dispatch_id, nbytes, data, qos, fresh_key)
        return desc

    def _post(
        self,
        dest: Endpoint,
        dispatch_id: int,
        nbytes: int,
        data: Any,
        qos: int = _QOS_RELIABLE,
        fresh_key: Any = None,
    ) -> Descriptor:
        dst_node, dst_fifo = dest
        payload = AMPayload(dispatch_id, data, nbytes, self.endpoint)
        rel = self.reliability
        if rel is not None and dispatch_id != _RELIABLE_ACK_DISPATCH:
            # ACKs travel unstamped (no ACK-of-ACK).  Reliable sends are
            # sequence-numbered and armed for retransmit; FRESH sends
            # carry a supersede generation; plain best-effort sends skip
            # the transport entirely (the enum-default guard keeps the
            # reliable trajectory identical to pre-QoS builds).
            if qos == _QOS_RELIABLE:
                rel.stamp(payload, dest)
            elif qos == _QOS_FRESH:
                rel.stamp_fresh(
                    payload, dest,
                    fresh_key if fresh_key is not None else dispatch_id,
                )
        desc = self.node.mu.make_descriptor(
            dst=dst_node,
            nbytes=max(nbytes, 1),
            kind=MEMFIFO,
            rec_fifo=dst_fifo,
            message=payload,
        )
        self.ififo.post(desc)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return desc

    def _repost(self, dest: Endpoint, payload) -> Descriptor:
        """Retransmit a stamped payload on a fresh descriptor.

        Transport-internal (called by the reliability timer): keeps the
        original sequence number and does not recount ``messages_sent``.
        """
        dst_node, dst_fifo = dest
        desc = self.node.mu.make_descriptor(
            dst=dst_node,
            nbytes=max(payload.nbytes, 1),
            kind=MEMFIFO,
            rec_fifo=dst_fifo,
            message=payload,
        )
        self.ififo.post(desc)
        return desc

    def rget(self, thread: HWThread, src_node: int, nbytes: int):
        """PAMI_Rget: one-sided RDMA read from ``src_node``.

        Returns a descriptor whose ``delivered`` event fires when data
        has arrived locally.
        """
        yield from thread.compute(self.params.pami_send_imm_instr)
        self.rgets += 1
        desc = self.node.mu.post_rget(self.ififo, dst=src_node, nbytes=nbytes)
        return desc

    def rput(self, thread: HWThread, dst_node: int, nbytes: int, data: Any = None):
        """PAMI_Rput: one-sided RDMA write to ``dst_node``.

        The MU streams RDMA-write packets straight into remote memory —
        no dispatch, no remote software.  Returns a descriptor whose
        ``delivered`` event fires when the last packet has landed.
        """
        from ..bgq.network import RDMA_DATA

        yield from thread.compute(self.params.pami_send_imm_instr)
        self.rputs += 1
        desc = self.node.mu.make_descriptor(
            dst=dst_node, nbytes=nbytes, kind=RDMA_DATA, message=("rput", data)
        )
        self.ififo.post(desc)
        return desc

    # -- work posting (other threads -> this context) ---------------------------
    def post_work(self, thread: HWThread, work: Callable):
        """Post a work closure; it runs at the next advance.

        ``work(context, thread)`` may be a generator (charged work).
        Generator-style call.
        """
        yield from thread.compute(self.params.commthread_post_instr)
        self.work_posted += 1
        yield from self.work.enqueue(thread, work)

    def post_completion(self, fn: Callable) -> None:
        """Register a continuation from a *hardware* completion event.

        Unlike :meth:`post_work` this has no software cost (the MU, not
        a thread, produced the event); the closure runs — and is charged
        — on whichever thread advances this context next.
        """
        self.completions.append(fn)
        self.completions_posted += 1
        # Wake any thread sleeping on this context.
        self.rfifo.wakeup.signal()

    # -- progress -----------------------------------------------------------
    def has_pending(self) -> bool:
        return len(self.rfifo) > 0 or len(self.work) > 0 or len(self.completions) > 0

    def advance(self, thread: HWThread):
        """PAMI_Context_advance: returns the number of items processed."""
        p = self.params
        self.advances += 1
        processed = 0
        while self.completions:
            fn = self.completions.pop(0)
            processed += 1
            result = fn(self, thread)
            if result is not None and hasattr(result, "__next__"):
                yield from result
        while True:
            pkt = self.rfifo.pop()
            if pkt is None:
                break
            yield from thread.compute(_PER_PACKET_INSTR)
            processed += 1
            self.packets_drained += 1
            if pkt.is_last:
                desc: Descriptor = pkt.message
                payload: AMPayload = desc.message
                rel = self.reliability
                if rel is not None:
                    ok = yield from rel.on_receive(thread, payload, desc)
                    if not ok:
                        continue
                yield from thread.compute(p.pami_dispatch_instr)
                self.messages_received += 1
                fn = self.dispatch.get(payload.dispatch_id)
                if fn is None:
                    raise RuntimeError(
                        f"no dispatch registered for id {payload.dispatch_id} "
                        f"on node {self.node.node_id}"
                    )
                result = fn(self, thread, payload)
                if result is not None and hasattr(result, "__next__"):
                    yield from result
        # has_ready() skips the dequeue generator when the lockless work
        # queue provably has nothing (an empty L2 dequeue simulates zero
        # events — trajectory neutral, see repro.queues).
        work_q = self.work
        while work_q.has_ready():
            work = yield from work_q.dequeue(thread)
            if work is None:
                break
            processed += 1
            result = work(self, thread)
            if result is not None and hasattr(result, "__next__"):
                yield from result
        if processed == 0:
            yield from thread.compute(p.context_advance_instr)
        return processed


class PamiClient:
    """A PAMI client: the set of contexts owned by one process."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        self.env = env
        self.node = node
        self.params = params
        self.contexts: list[PamiContext] = []

    def create_context(self) -> PamiContext:
        ctx = PamiContext(self.env, self.node, self.params)
        self.contexts.append(ctx)
        return ctx
