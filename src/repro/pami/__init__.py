"""PAMI-like active-message layer over the simulated BG/Q MU.

Parallel Active Messaging Interface: contexts, active-message sends
(`send_immediate`, `send`, `rget`), dispatch callbacks, lockless work
queues, communication threads on the wakeup unit, and the persistent
many-to-many interface for bursts of short messages.
"""

from .commthread import CommThread
from .context import AMPayload, Endpoint, PamiClient, PamiContext
from .manytomany import M2M_DISPATCH_ID, ManyToManyHandle, ManyToManyRegistry

__all__ = [
    "AMPayload",
    "CommThread",
    "Endpoint",
    "M2M_DISPATCH_ID",
    "ManyToManyHandle",
    "ManyToManyRegistry",
    "PamiClient",
    "PamiContext",
]
