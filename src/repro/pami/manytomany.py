"""PAMI many-to-many: optimized bursts of short messages (§III-E).

Neighbourhood collectives like the transposes inside a pencil 3D FFT
send dozens of small messages per rank per phase.  Sending each through
the full per-message software stack (envelope, scheduler, dispatch) is
what limits fine-grained strong scaling; the ManyToMany interface is
*persistent* — the send list (destinations, sizes, offsets) is
registered once — and ``start()`` hands the whole burst to the
communication threads, which issue the sends back-to-back at a far
lower per-message cost and in parallel across several injection FIFOs.

Completion has two sides, as in PAMI: the *send-done* callback when all
local sends are injected, and the *receive-done* callback when all
expected messages of the handle's tag have arrived.

Delivery semantics are per handle (:mod:`repro.faults.qos`): a
``QOS_BEST_EFFORT`` / ``QOS_BEST_EFFORT_FRESH`` handle posts its burst
unstamped — no ACKs, no retransmit state — and its receive-done side
*tolerates shortfall*: when ``deadline_cycles`` is set, ``start()``
arms a watcher that force-fires ``recv_done`` at the deadline if the
expected count has not been reached, accumulating the missing count in
``handle.shortfall``.  FRESH bursts additionally key each send slot as
its own supersede flow, so a re-started iteration's value replaces a
still-undelivered older one instead of arriving after it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bgq.node import HWThread
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..faults.qos import QOS_BEST_EFFORT_FRESH, QOS_RELIABLE
from ..sim import Environment, Event
from .commthread import CommThread
from .context import AMPayload, Endpoint, PamiContext

__all__ = ["ManyToManyHandle", "ManyToManyRegistry", "M2M_DISPATCH_ID"]

#: Dispatch id reserved for many-to-many traffic on every context.
M2M_DISPATCH_ID = 0x7F


class ManyToManyHandle:
    """A persistent many-to-many communication pattern on one process.

    ``sends`` — [(dest_endpoint, nbytes, user_data)] or
    [(dest_endpoint, nbytes, user_data, recv_tag)] registered once; the
    optional ``recv_tag`` addresses a *different* handle at the
    destination (defaults to this handle's tag — symmetric patterns).
    ``expected_recvs`` — how many messages addressed to this handle's
    tag will arrive per iteration.

    ``qos`` — delivery semantics for the burst (default reliable).
    ``deadline_cycles`` — with a best-effort qos, how long after
    ``start()`` the receive side waits before declaring the iteration
    complete-with-shortfall (None = wait forever, reliable-style).
    """

    def __init__(
        self,
        env: Environment,
        tag,
        sends: Sequence[Tuple],
        expected_recvs: int,
        qos: int = QOS_RELIABLE,
        deadline_cycles: Optional[float] = None,
    ) -> None:
        self.env = env
        self.tag = tag
        self.sends = []
        for entry in sends:
            if len(entry) == 3:
                dest, nbytes, data = entry
                self.sends.append((dest, nbytes, data, tag))
            elif len(entry) == 4:
                self.sends.append(tuple(entry))
            else:
                raise ValueError(f"bad many-to-many send entry {entry!r}")
        self.expected_recvs = int(expected_recvs)
        self.qos = qos
        self.deadline_cycles = deadline_cycles
        self._recv_count = 0
        self.send_done: Event = env.event()
        self.recv_done: Event = env.event()
        self.starts = 0
        #: Cumulative expected-but-missing receives across iterations
        #: whose deadline fired before the count was reached.
        self.shortfall = 0
        #: Iterations that completed via the deadline, not the count.
        self.deadline_completions = 0
        #: Optional sink invoked per arrived message: fn(src_endpoint, data).
        self.on_message = None

    def reset(self) -> None:
        """Re-arm for the next iteration (persistent handles are reused)."""
        self._recv_count = 0
        self.send_done = self.env.event()
        self.recv_done = self.env.event()

    def _note_arrival(self, payload: AMPayload) -> None:
        self._recv_count += 1
        if self.on_message is not None:
            tag, data = payload.data
            self.on_message(payload.src_endpoint, data)
        if self._recv_count == self.expected_recvs and not self.recv_done.triggered:
            self.recv_done.succeed()

    @property
    def complete(self) -> Event:
        """Fires when both sides are done."""
        return self.env.all_of([self.send_done, self.recv_done])


class ManyToManyRegistry:
    """Per-process many-to-many engine.

    Registers the shared dispatch on the process's contexts and fans
    ``start()`` out across the process's communication threads (or runs
    the burst inline on the calling thread when there are none).
    """

    def __init__(
        self,
        env: Environment,
        contexts: List[PamiContext],
        comm_threads: Optional[List[CommThread]] = None,
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        self.env = env
        self.params = params
        self.contexts = contexts
        self.comm_threads = comm_threads or []
        self.handles: Dict[int, ManyToManyHandle] = {}
        for ctx in contexts:
            ctx.register_dispatch(M2M_DISPATCH_ID, self._dispatch)

    # -- registration ------------------------------------------------------
    def register(
        self,
        tag,
        sends: Sequence[Tuple],
        expected_recvs: int,
        qos: int = QOS_RELIABLE,
        deadline_cycles: Optional[float] = None,
    ) -> ManyToManyHandle:
        if tag in self.handles:
            raise ValueError(f"many-to-many tag {tag} already registered")
        h = ManyToManyHandle(
            self.env, tag, sends, expected_recvs,
            qos=qos, deadline_cycles=deadline_cycles,
        )
        self.handles[tag] = h
        return h

    def _dispatch(self, ctx: PamiContext, thread: HWThread, payload: AMPayload):
        tag, _data = payload.data
        handle = self.handles.get(tag)
        if handle is None:
            raise RuntimeError(f"m2m message for unregistered tag {tag}")
        # Amortized per-message receive cost.
        yield from thread.compute(self.params.m2m_per_msg_instr)
        handle._note_arrival(payload)

    def _arm_shortfall_watcher(self, handle: ManyToManyHandle) -> None:
        """Force recv_done at the deadline, counting what never arrived.

        Captures this iteration's ``recv_done`` locally: a reset() that
        re-arms the handle mints a fresh event, so a late deadline for
        a normally-completed iteration is a no-op.
        """
        env = self.env
        recv_done = handle.recv_done
        deadline = env.timeout(handle.deadline_cycles)

        def watch():
            yield env.any_of([recv_done, deadline])
            if not recv_done.triggered:
                handle.shortfall += handle.expected_recvs - handle._recv_count
                handle.deadline_completions += 1
                recv_done.succeed()

        env.process(watch(), name=f"m2m-{handle.tag}-shortfall")

    # -- start ---------------------------------------------------------------
    def start(self, thread: HWThread, handle: ManyToManyHandle):
        """CmiDirectManytomany_start: trigger the registered burst.

        Generator-style.  Returns immediately after the burst has been
        handed off (posted to communication threads) or, without comm
        threads, after the calling thread has injected all messages.
        """
        p = self.params
        handle.starts += 1
        yield from thread.compute(p.m2m_start_instr)
        if handle.expected_recvs == 0 and not handle.recv_done.triggered:
            handle.recv_done.succeed()
        elif handle.qos != QOS_RELIABLE and handle.deadline_cycles is not None:
            self._arm_shortfall_watcher(handle)
        if not handle.sends:
            if not handle.send_done.triggered:
                handle.send_done.succeed()
            return

        nworkers = max(1, len(self.comm_threads))
        chunks: List[List[Tuple[int, Tuple[Endpoint, int, Any, Any]]]] = [
            [] for _ in range(nworkers)
        ]
        for i, send in enumerate(handle.sends):
            # The slot index rides along as the FRESH flow key suffix:
            # each registered send slot is its own supersede flow.
            chunks[i % nworkers].append((i, send))
        pending = {"count": sum(1 for c in chunks if c)}
        qos = handle.qos
        fresh = qos == QOS_BEST_EFFORT_FRESH

        def make_work(chunk):
            def work(ctx: PamiContext, wthread: HWThread):
                for slot, (dest, nbytes, data, recv_tag) in chunk:
                    yield from wthread.compute(p.m2m_per_msg_instr)
                    ctx._post(
                        dest, M2M_DISPATCH_ID, nbytes, (recv_tag, data), qos,
                        (recv_tag, slot) if fresh else None,
                    )
                pending["count"] -= 1
                if pending["count"] == 0 and not handle.send_done.triggered:
                    handle.send_done.succeed()

            return work

        if self.comm_threads:
            for ct, chunk in zip(self.comm_threads, chunks):
                if chunk:
                    yield from ct.contexts[0].post_work(thread, make_work(chunk))
        else:
            ctx = self.contexts[0]
            work = make_work([s for c in chunks for s in c])
            pending["count"] = 1
            yield from work(ctx, thread)
