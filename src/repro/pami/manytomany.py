"""PAMI many-to-many: optimized bursts of short messages (§III-E).

Neighbourhood collectives like the transposes inside a pencil 3D FFT
send dozens of small messages per rank per phase.  Sending each through
the full per-message software stack (envelope, scheduler, dispatch) is
what limits fine-grained strong scaling; the ManyToMany interface is
*persistent* — the send list (destinations, sizes, offsets) is
registered once — and ``start()`` hands the whole burst to the
communication threads, which issue the sends back-to-back at a far
lower per-message cost and in parallel across several injection FIFOs.

Completion has two sides, as in PAMI: the *send-done* callback when all
local sends are injected, and the *receive-done* callback when all
expected messages of the handle's tag have arrived.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bgq.node import HWThread
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..sim import Environment, Event
from .commthread import CommThread
from .context import AMPayload, Endpoint, PamiContext

__all__ = ["ManyToManyHandle", "ManyToManyRegistry", "M2M_DISPATCH_ID"]

#: Dispatch id reserved for many-to-many traffic on every context.
M2M_DISPATCH_ID = 0x7F


class ManyToManyHandle:
    """A persistent many-to-many communication pattern on one process.

    ``sends`` — [(dest_endpoint, nbytes, user_data)] or
    [(dest_endpoint, nbytes, user_data, recv_tag)] registered once; the
    optional ``recv_tag`` addresses a *different* handle at the
    destination (defaults to this handle's tag — symmetric patterns).
    ``expected_recvs`` — how many messages addressed to this handle's
    tag will arrive per iteration.
    """

    def __init__(
        self,
        env: Environment,
        tag,
        sends: Sequence[Tuple],
        expected_recvs: int,
    ) -> None:
        self.env = env
        self.tag = tag
        self.sends = []
        for entry in sends:
            if len(entry) == 3:
                dest, nbytes, data = entry
                self.sends.append((dest, nbytes, data, tag))
            elif len(entry) == 4:
                self.sends.append(tuple(entry))
            else:
                raise ValueError(f"bad many-to-many send entry {entry!r}")
        self.expected_recvs = int(expected_recvs)
        self._recv_count = 0
        self.send_done: Event = env.event()
        self.recv_done: Event = env.event()
        self.starts = 0
        #: Optional sink invoked per arrived message: fn(src_endpoint, data).
        self.on_message = None

    def reset(self) -> None:
        """Re-arm for the next iteration (persistent handles are reused)."""
        self._recv_count = 0
        self.send_done = self.env.event()
        self.recv_done = self.env.event()

    def _note_arrival(self, payload: AMPayload) -> None:
        self._recv_count += 1
        if self.on_message is not None:
            tag, data = payload.data
            self.on_message(payload.src_endpoint, data)
        if self._recv_count == self.expected_recvs and not self.recv_done.triggered:
            self.recv_done.succeed()

    @property
    def complete(self) -> Event:
        """Fires when both sides are done."""
        return self.env.all_of([self.send_done, self.recv_done])


class ManyToManyRegistry:
    """Per-process many-to-many engine.

    Registers the shared dispatch on the process's contexts and fans
    ``start()`` out across the process's communication threads (or runs
    the burst inline on the calling thread when there are none).
    """

    def __init__(
        self,
        env: Environment,
        contexts: List[PamiContext],
        comm_threads: Optional[List[CommThread]] = None,
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        self.env = env
        self.params = params
        self.contexts = contexts
        self.comm_threads = comm_threads or []
        self.handles: Dict[int, ManyToManyHandle] = {}
        for ctx in contexts:
            ctx.register_dispatch(M2M_DISPATCH_ID, self._dispatch)

    # -- registration ------------------------------------------------------
    def register(
        self,
        tag,
        sends: Sequence[Tuple],
        expected_recvs: int,
    ) -> ManyToManyHandle:
        if tag in self.handles:
            raise ValueError(f"many-to-many tag {tag} already registered")
        h = ManyToManyHandle(self.env, tag, sends, expected_recvs)
        self.handles[tag] = h
        return h

    def _dispatch(self, ctx: PamiContext, thread: HWThread, payload: AMPayload):
        tag, _data = payload.data
        handle = self.handles.get(tag)
        if handle is None:
            raise RuntimeError(f"m2m message for unregistered tag {tag}")
        # Amortized per-message receive cost.
        yield from thread.compute(self.params.m2m_per_msg_instr)
        handle._note_arrival(payload)

    # -- start ---------------------------------------------------------------
    def start(self, thread: HWThread, handle: ManyToManyHandle):
        """CmiDirectManytomany_start: trigger the registered burst.

        Generator-style.  Returns immediately after the burst has been
        handed off (posted to communication threads) or, without comm
        threads, after the calling thread has injected all messages.
        """
        p = self.params
        handle.starts += 1
        yield from thread.compute(p.m2m_start_instr)
        if handle.expected_recvs == 0 and not handle.recv_done.triggered:
            handle.recv_done.succeed()
        if not handle.sends:
            if not handle.send_done.triggered:
                handle.send_done.succeed()
            return

        nworkers = max(1, len(self.comm_threads))
        chunks: List[List[Tuple[Endpoint, int, Any]]] = [[] for _ in range(nworkers)]
        for i, send in enumerate(handle.sends):
            chunks[i % nworkers].append(send)
        pending = {"count": sum(1 for c in chunks if c)}

        def make_work(chunk):
            def work(ctx: PamiContext, wthread: HWThread):
                for dest, nbytes, data, recv_tag in chunk:
                    yield from wthread.compute(p.m2m_per_msg_instr)
                    desc = ctx._post(dest, M2M_DISPATCH_ID, nbytes, (recv_tag, data))
                pending["count"] -= 1
                if pending["count"] == 0 and not handle.send_done.triggered:
                    handle.send_done.succeed()

            return work

        if self.comm_threads:
            for ct, chunk in zip(self.comm_threads, chunks):
                if chunk:
                    yield from ct.contexts[0].post_work(thread, make_work(chunk))
        else:
            ctx = self.contexts[0]
            work = make_work([s for c in chunks for s in c])
            pending["count"] = 1
            yield from work(ctx, thread)
