"""PAMI communication threads (§II-B, §III-C).

A communication thread asynchronously advances one or more PAMI
contexts.  When there is no messaging work it arms the wakeup unit on
its contexts' reception FIFOs and work queues and executes the ``wait``
instruction — consuming *no* core resources — and is awakened within a
low-overhead interrupt latency when a packet arrives or work is posted.

"Typically, a communication thread is enabled for four worker threads.
Multiple communication threads can accelerate messages from several
worker threads" [paper §III-C]: the mapping of worker threads to
communication threads lives in the Converse machine layer; this class
is the thread itself.
"""

from __future__ import annotations

from typing import List, Optional

from ..bgq.node import HWThread
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..sim import Environment
from .context import PamiContext

__all__ = ["CommThread"]


class CommThread:
    """A dedicated communication thread driving PAMI contexts."""

    def __init__(
        self,
        env: Environment,
        thread: HWThread,
        contexts: List[PamiContext],
        params: BGQParams = DEFAULT_PARAMS,
        name: Optional[str] = None,
    ) -> None:
        if not contexts:
            raise ValueError("a communication thread needs at least one context")
        self.env = env
        self.thread = thread
        self.contexts = contexts
        self.params = params
        self.name = name or f"commthread-n{thread.node.node_id}t{thread.tid}"
        self._stopped = False
        self.wakeup_count = 0
        self.items_processed = 0
        self.process = env.process(self._run(), name=self.name)

    def stop(self) -> None:
        self._stopped = True
        # Poke every source so a waiting thread observes the stop flag.
        for ctx in self.contexts:
            ctx.rfifo.wakeup.signal()

    def _wakeup_sources(self):
        out = []
        for ctx in self.contexts:
            out.append(ctx.rfifo.wakeup)
            out.append(ctx.work.wakeup)
        return out

    def _run(self):
        env = self.env
        while not self._stopped:
            n = 0
            for ctx in self.contexts:
                n += yield from ctx.advance(self.thread)
            self.items_processed += n
            if n == 0 and not self._stopped:
                # No work: arm the wakeup unit and execute `wait`.
                sources = self._wakeup_sources()
                armed = [(s, s.arm()) for s in sources]
                yield env.any_of([ev for _, ev in armed])
                for s, ev in armed:
                    s.disarm(ev)
                self.wakeup_count += 1
