"""PAMI communication threads (paper §II-B hardware context, §III-C design).

A communication thread asynchronously advances one or more PAMI
contexts.  When there is no messaging work it arms the wakeup unit on
its contexts' reception FIFOs and work queues and executes the ``wait``
instruction — consuming *no* core resources — and is awakened within a
low-overhead interrupt latency when a packet arrives or work is posted.

"Typically, a communication thread is enabled for four worker threads.
Multiple communication threads can accelerate messages from several
worker threads" [paper §III-C]: the mapping of worker threads to
communication threads lives in the Converse machine layer; this class
is the thread itself.  Its activity is what the paper's Fig. 9
utilization profiles attribute messaging overhead to — when tracing is
enabled (see :mod:`repro.trace` and docs/ARCHITECTURE.md) each comm
thread records ``comm``/``idle`` spans on its own track and feeds the
``commthread.*`` counters.
"""

from __future__ import annotations

from typing import List, Optional

from ..bgq.node import HWThread
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..sim import Environment
from .context import PamiContext

__all__ = ["CommThread"]


class CommThread:
    """A dedicated communication thread driving PAMI contexts."""

    def __init__(
        self,
        env: Environment,
        thread: HWThread,
        contexts: List[PamiContext],
        params: BGQParams = DEFAULT_PARAMS,
        name: Optional[str] = None,
    ) -> None:
        if not contexts:
            raise ValueError("a communication thread needs at least one context")
        self.env = env
        self.thread = thread
        self.contexts = contexts
        self.params = params
        self.name = name or f"commthread-n{thread.node.node_id}t{thread.tid}"
        self._stopped = False
        # Native statistics (always maintained; snapshotted into the
        # tracer's commthread.* counters at the end of a traced run).
        self.wakeup_count = 0
        self.items_processed = 0
        self.advance_rounds = 0
        #: Optional repro.trace.Tracer + span track id for comm/idle
        #: span recording (wired by the Converse runtime before the
        #: simulation starts).
        self.tracer = None
        self.track: Optional[int] = None
        self.process = env.process(self._run(), name=self.name)

    def stop(self) -> None:
        self._stopped = True
        # Poke every source so a waiting thread observes the stop flag.
        for ctx in self.contexts:
            ctx.rfifo.wakeup.signal()

    def _wakeup_sources(self):
        out = []
        for ctx in self.contexts:
            out.append(ctx.rfifo.wakeup)
            out.append(ctx.work.wakeup)
        return out

    def _run(self):
        env = self.env
        tr = self.tracer
        # Span recording only on comm<->idle transitions: consecutive
        # advance rounds merge into one "comm" span (keeps the tracer
        # off the per-round hot path and the timeline uncluttered).
        if tr is not None:
            tr.begin(self.track, "comm")
        while not self._stopped:
            n = 0
            for ctx in self.contexts:
                n += yield from ctx.advance(self.thread)
            self.items_processed += n
            self.advance_rounds += 1
            if n == 0 and not self._stopped:
                # No work: arm the wakeup unit and execute `wait`.
                if tr is not None:
                    tr.begin(self.track, "idle")
                sources = self._wakeup_sources()
                armed = [(s, s.arm()) for s in sources]
                yield env.any_of([ev for _, ev in armed])
                for s, ev in armed:
                    s.disarm(ev)
                self.wakeup_count += 1
                if tr is not None:
                    tr.begin(self.track, "comm")
        if tr is not None:
            tr.end(self.track)
