"""Fault-tolerant application workloads for the chaos harness.

Two degraded-but-correct applications exercise the QoS delivery modes
(:mod:`repro.faults.qos`) end to end:

* :mod:`repro.workloads.jacobi` — asynchronous Jacobi / chaotic
  relaxation on a damped 1-D chain, a Charm++ chare-array app whose
  halo exchanges tolerate drops and staleness (contraction ensures
  convergence as long as *some* halos get through);
* :mod:`repro.workloads.lattice` — a JLQCD-style 4D lattice
  halo-exchange stencil over two SMP processes, driving the CmiDirect
  many-to-many burst path with best-effort deadlines and per-site
  staleness accounting.

Both are wired into :mod:`repro.harness.chaosbench` as the
degraded-but-correct gate axis.
"""

from .jacobi import JacobiCell, build_jacobi, exact_solution, forcing
from .lattice import LatticeHalo, SITES, site_value

__all__ = [
    "JacobiCell",
    "build_jacobi",
    "exact_solution",
    "forcing",
    "LatticeHalo",
    "SITES",
    "site_value",
]
