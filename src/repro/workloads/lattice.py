"""JLQCD-style 4D lattice halo exchange over CmiDirect bursts.

A 2x2x2x2 periodic lattice is split along the t-direction across two
SMP processes (one per BG/Q node): process p owns the 8 sites with
``t == p``.  Intra-slab neighbour updates are pointer-local; the
cross-process boundary — every site's +-t neighbours live on the peer
slab — is the JLQCD communication pattern, exchanged each round as a
persistent :class:`~repro.converse.cmidirect.CmiDirectHandle` burst of
8 short messages per process.

Delivery semantics are the handle's QoS (:mod:`repro.faults.qos`):

* reliable — every round's burst arrives exactly once; the round
  barrier waits for the full expected count;
* best-effort / FRESH — the burst is unstamped and the round completes
  at ``deadline_cycles`` with whatever arrived, accumulating the
  missing count in ``shortfall``.  Receivers keep, per peer site, the
  newest round seen; *staleness* (rounds since the last update) is the
  degraded-but-correct quality metric.

Every payload carries ``site_value(site, round)``, so the harness can
verify that everything that *did* arrive is bit-exact — degradation is
allowed to lose updates, never to invent or corrupt them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..converse.messages import ConverseMessage
from ..faults.qos import QOS_RELIABLE

__all__ = ["SITES", "site_value", "LatticeHalo"]

#: All 16 sites of the 2x2x2x2 lattice, lexicographic.
SITES: Tuple[Tuple[int, int, int, int], ...] = tuple(
    (x, y, z, t)
    for x in range(2)
    for y in range(2)
    for z in range(2)
    for t in range(2)
)


def site_value(site: Tuple[int, int, int, int], rnd: int) -> int:
    """Deterministic per-(site, round) field value for integrity checks."""
    x, y, z, t = site
    return ((x + 2 * y + 4 * z + 8 * t + 1) * (rnd + 1) * 17) % 251


class LatticeHalo:
    """The halo-exchange driver: handles, kick loop, degradation metrics.

    One handle per (process, round) keeps rounds race-free (reset-less;
    the same idiom as the m2m chaos workload).  ``install()`` registers
    everything and seeds a kick message on the first PE of each
    process; the ``all_done`` event fires when both processes have
    completed every round barrier.
    """

    def __init__(
        self,
        runtime,
        cmidirect,
        rounds: int = 4,
        qos: int = QOS_RELIABLE,
        deadline_cycles: Optional[float] = None,
        nbytes: int = 48,
        compute_instr: float = 4000.0,
    ) -> None:
        if len(runtime.processes) != 2:
            raise ValueError("lattice workload needs exactly 2 processes")
        self.runtime = runtime
        self.cmidirect = cmidirect
        self.rounds = rounds
        self.qos = qos
        # Reliable barriers wait for the full count; a deadline would
        # let a round complete short and break exactly-once accounting.
        self.deadline_cycles = None if qos == QOS_RELIABLE else deadline_cycles
        self.nbytes = nbytes
        self.compute_instr = compute_instr
        self.owned: List[List[Tuple[int, int, int, int]]] = [
            [s for s in SITES if s[3] == p] for p in range(2)
        ]
        #: Per process: every (site, round, value) arrival, duplicates
        #: included (best-effort has no dedup — that is the semantics).
        self.arrivals: List[List[Tuple[Any, int, int]]] = [[], []]
        #: Per process: site -> newest round received.
        self.newest: List[Dict[Any, int]] = [{}, {}]
        self.handles: Dict[Tuple[int, int], Any] = {}
        self.all_done = runtime.env.event()
        self._finished = 0

    # -- setup -------------------------------------------------------------
    def install(self) -> "LatticeHalo":
        rt = self.runtime
        procs = rt.processes
        # First PE of each process registers that process's handles.
        first_pe = [
            next(pe for pe in rt.pes if pe.process is proc) for proc in procs
        ]
        for pi in range(2):
            peer_rank = first_pe[1 - pi].rank
            for rnd in range(self.rounds):
                sends = [
                    (
                        peer_rank,
                        self.nbytes,
                        ("lat", site, rnd, site_value(site, rnd)),
                        rnd,
                    )
                    for site in self.owned[pi]
                ]
                self.handles[(pi, rnd)] = self.cmidirect.register(
                    rnd,
                    first_pe[pi],
                    sends,
                    expected_recvs=len(self.owned[1 - pi]),
                    on_message=self._make_sink(pi),
                    qos=self.qos,
                    deadline_cycles=self.deadline_cycles,
                )
        hid_kick = rt.register_handler(self._kick)
        for pi in range(2):
            pe = first_pe[pi]
            pe.local_q.append(ConverseMessage(hid_kick, 0, pi, pe.rank, pe.rank))
        return self

    def _make_sink(self, pi: int):
        def sink(src_rank, data):
            _tag, site, rnd, value = data
            self.arrivals[pi].append((site, rnd, value))
            if rnd > self.newest[pi].get(site, -1):
                self.newest[pi][site] = rnd

        return sink

    def _kick(self, pe, msg):
        pi = msg.payload
        for rnd in range(self.rounds):
            h = self.handles[(pi, rnd)]
            yield from h.start()
            yield h.send_done
            yield h.recv_done
            # The stencil update between exchanges.
            yield from pe.thread.compute(self.compute_instr)
        self._finished += 1
        if self._finished == 2 and not self.all_done.triggered:
            self.all_done.succeed()

    # -- degradation metrics ----------------------------------------------
    def integrity_ok(self) -> bool:
        """Everything that arrived is a bit-exact peer-slab value."""
        for pi in range(2):
            peer = set(self.owned[1 - pi])
            for site, rnd, value in self.arrivals[pi]:
                if site not in peer:
                    return False
                if not 0 <= rnd < self.rounds:
                    return False
                if value != site_value(site, rnd):
                    return False
        return True

    def staleness(self) -> Dict[Any, int]:
        """Per peer site: rounds elapsed since its newest received
        update (``rounds`` = never heard from it at all)."""
        out: Dict[Any, int] = {}
        for pi in range(2):
            for site in self.owned[1 - pi]:
                out[site] = self.rounds - 1 - self.newest[pi].get(site, -1)
        return out

    def distinct_updates(self) -> int:
        """Count of distinct (receiver, site, round) deliveries."""
        return sum(len({(s, r) for s, r, _v in self.arrivals[pi]}) for pi in range(2))

    @property
    def expected_updates(self) -> int:
        return 2 * self.rounds * len(self.owned[0])

    @property
    def shortfall(self) -> int:
        return sum(h.shortfall for h in self.handles.values())
